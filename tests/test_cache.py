"""Unit tests for the cache cost model and cache simulator."""

import pytest

from repro.isa import build
from repro.isa.registers import virtual
from repro.machine import base_machine, ideal_superscalar
from repro.sim.cache import (
    TABLE_5_1,
    CacheConfig,
    CacheResult,
    parallel_issue_speedup_with_misses,
    simulate_with_cache,
)
from repro.sim.timing import simulate
from repro.sim.trace import Trace


class TestMissCostModel:
    def test_table_5_1_values(self):
        by_name = {row.machine: row for row in TABLE_5_1}
        vax = by_name["VAX 11/780"]
        assert vax.miss_cost_cycles == pytest.approx(6.0)
        assert vax.miss_cost_instructions == pytest.approx(0.6)
        titan = by_name["WRL Titan"]
        assert titan.miss_cost_cycles == pytest.approx(12.0)
        assert titan.miss_cost_instructions == pytest.approx(8.571, abs=1e-3)
        future = by_name["future superscalar"]
        assert future.miss_cost_cycles == pytest.approx(70.0)
        assert future.miss_cost_instructions == pytest.approx(140.0)

    def test_section_5_1_example(self):
        with_misses, without = parallel_issue_speedup_with_misses()
        assert without == pytest.approx(2.0)
        assert with_misses == pytest.approx(4.0 / 3.0)

    def test_cost_rises_down_the_table(self):
        costs = [row.miss_cost_instructions for row in TABLE_5_1]
        assert costs == sorted(costs)


class TestCacheConfig:
    def test_validates_geometry(self):
        with pytest.raises(ValueError):
            CacheConfig(size_words=100, line_words=3)
        with pytest.raises(ValueError):
            CacheConfig(size_words=100, line_words=8)

    def test_line_count(self):
        assert CacheConfig(size_words=64, line_words=4).n_lines == 16


def loads_at(addresses, base_reg=100) -> Trace:
    instrs = [
        build.lw(virtual(i), virtual(base_reg + i), 0)
        for i in range(len(addresses))
    ]
    return Trace.from_instructions(instrs, addrs=list(addresses))


class TestCacheSimulation:
    def test_cold_misses_counted(self):
        cache = CacheConfig(size_words=64, line_words=4, miss_penalty=10)
        trace = loads_at([16, 17, 18, 19])  # one line
        result = simulate_with_cache(trace, base_machine(), cache)
        assert result.loads == 4
        assert result.load_misses == 1

    def test_conflict_misses(self):
        cache = CacheConfig(size_words=16, line_words=4, miss_penalty=10)
        # two addresses mapping to the same line index (16 words apart)
        trace = loads_at([16, 32, 16, 32])
        result = simulate_with_cache(trace, base_machine(), cache)
        assert result.load_misses == 4

    def test_hit_after_fill(self):
        cache = CacheConfig(size_words=64, line_words=4, miss_penalty=10)
        trace = loads_at([20, 20, 20])
        result = simulate_with_cache(trace, base_machine(), cache)
        assert result.load_misses == 1
        assert result.miss_rate == pytest.approx(1 / 3)

    def test_miss_penalty_extends_time(self):
        cache = CacheConfig(size_words=64, line_words=4, miss_penalty=25)
        trace = loads_at([20])
        without = simulate(trace, base_machine())
        with_cache = simulate_with_cache(trace, base_machine(), cache)
        assert with_cache.timing.minor_cycles == (
            without.minor_cycles + 25
        )

    def test_misses_dilute_wide_issue_speedup(self):
        # many independent loads: a 4-wide machine is 4x faster without
        # misses, but much less when every load misses
        cache = CacheConfig(size_words=16, line_words=1, miss_penalty=30)
        addresses = [16 + 64 * i for i in range(32)]  # all conflict
        trace = loads_at(addresses)
        base_nc = simulate(trace, base_machine()).base_cycles
        wide_nc = simulate(trace, ideal_superscalar(4)).base_cycles
        base_c = simulate_with_cache(trace, base_machine(), cache)
        wide_c = simulate_with_cache(trace, ideal_superscalar(4), cache)
        speedup_nc = base_nc / wide_nc
        speedup_c = (
            base_c.timing.base_cycles / wide_c.timing.base_cycles
        )
        assert speedup_nc > 3.0
        assert speedup_c < speedup_nc

    def test_zero_loads(self):
        trace = Trace.from_instructions(
            [build.li(virtual(0), 1)]
        )
        cache = CacheConfig()
        result = simulate_with_cache(trace, base_machine(), cache)
        assert result.loads == 0
        assert result.miss_rate == 0.0

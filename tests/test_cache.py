"""Unit tests for the cache cost model and cache simulator."""

import pytest

from repro.isa import build
from repro.isa.registers import virtual
from repro.machine import base_machine, ideal_superscalar
from repro.sim.cache import (
    TABLE_5_1,
    CacheConfig,
    CacheResult,
    parallel_issue_speedup_with_misses,
    simulate_with_cache,
)
from repro.sim.timing import simulate
from repro.sim.trace import Trace


class TestMissCostModel:
    def test_table_5_1_values(self):
        by_name = {row.machine: row for row in TABLE_5_1}
        vax = by_name["VAX 11/780"]
        assert vax.miss_cost_cycles == pytest.approx(6.0)
        assert vax.miss_cost_instructions == pytest.approx(0.6)
        titan = by_name["WRL Titan"]
        assert titan.miss_cost_cycles == pytest.approx(12.0)
        assert titan.miss_cost_instructions == pytest.approx(8.571, abs=1e-3)
        future = by_name["future superscalar"]
        assert future.miss_cost_cycles == pytest.approx(70.0)
        assert future.miss_cost_instructions == pytest.approx(140.0)

    def test_section_5_1_example(self):
        with_misses, without = parallel_issue_speedup_with_misses()
        assert without == pytest.approx(2.0)
        assert with_misses == pytest.approx(4.0 / 3.0)

    def test_cost_rises_down_the_table(self):
        costs = [row.miss_cost_instructions for row in TABLE_5_1]
        assert costs == sorted(costs)


class TestCacheConfig:
    def test_validates_geometry(self):
        with pytest.raises(ValueError):
            CacheConfig(size_words=100, line_words=3)
        with pytest.raises(ValueError):
            CacheConfig(size_words=100, line_words=8)

    def test_line_count(self):
        assert CacheConfig(size_words=64, line_words=4).n_lines == 16


def loads_at(addresses, base_reg=100) -> Trace:
    instrs = [
        build.lw(virtual(i), virtual(base_reg + i), 0)
        for i in range(len(addresses))
    ]
    return Trace.from_instructions(instrs, addrs=list(addresses))


class TestCacheSimulation:
    def test_cold_misses_counted(self):
        cache = CacheConfig(size_words=64, line_words=4, miss_penalty=10)
        trace = loads_at([16, 17, 18, 19])  # one line
        result = simulate_with_cache(trace, base_machine(), cache)
        assert result.loads == 4
        assert result.load_misses == 1

    def test_conflict_misses(self):
        cache = CacheConfig(size_words=16, line_words=4, miss_penalty=10)
        # two addresses mapping to the same line index (16 words apart)
        trace = loads_at([16, 32, 16, 32])
        result = simulate_with_cache(trace, base_machine(), cache)
        assert result.load_misses == 4

    def test_hit_after_fill(self):
        cache = CacheConfig(size_words=64, line_words=4, miss_penalty=10)
        trace = loads_at([20, 20, 20])
        result = simulate_with_cache(trace, base_machine(), cache)
        assert result.load_misses == 1
        assert result.miss_rate == pytest.approx(1 / 3)

    def test_miss_penalty_extends_time(self):
        cache = CacheConfig(size_words=64, line_words=4, miss_penalty=25)
        trace = loads_at([20])
        without = simulate(trace, base_machine())
        with_cache = simulate_with_cache(trace, base_machine(), cache)
        assert with_cache.timing.minor_cycles == (
            without.minor_cycles + 25
        )

    def test_misses_dilute_wide_issue_speedup(self):
        # many independent loads: a 4-wide machine is 4x faster without
        # misses, but much less when every load misses
        cache = CacheConfig(size_words=16, line_words=1, miss_penalty=30)
        addresses = [16 + 64 * i for i in range(32)]  # all conflict
        trace = loads_at(addresses)
        base_nc = simulate(trace, base_machine()).base_cycles
        wide_nc = simulate(trace, ideal_superscalar(4)).base_cycles
        base_c = simulate_with_cache(trace, base_machine(), cache)
        wide_c = simulate_with_cache(trace, ideal_superscalar(4), cache)
        speedup_nc = base_nc / wide_nc
        speedup_c = (
            base_c.timing.base_cycles / wide_c.timing.base_cycles
        )
        assert speedup_nc > 3.0
        assert speedup_c < speedup_nc

    def test_zero_loads(self):
        trace = Trace.from_instructions(
            [build.li(virtual(0), 1)]
        )
        cache = CacheConfig()
        result = simulate_with_cache(trace, base_machine(), cache)
        assert result.loads == 0
        assert result.miss_rate == 0.0


# ----------------------------------------------------------------------
# On-disk trace cache robustness (repro.engine.cache)

class TestTraceCacheConcurrency:
    """Concurrent writers and partial writes must never corrupt a read."""

    def _run_result(self):
        import repro.api as api

        return api.run("proc main(): int { return 41 + 1; }")

    def test_concurrent_writers_same_key(self, tmp_path):
        import threading

        from repro.engine.cache import TraceCache

        result = self._run_result()
        cache = TraceCache(str(tmp_path))
        key = "ab" + "0" * 62
        errors = []

        def writer():
            try:
                for _ in range(10):
                    cache.store(key, result)
            except Exception as exc:  # pragma: no cover - the assertion
                errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        loaded = cache.load(key)
        assert loaded is not None
        assert loaded.value == result.value
        assert loaded.instructions == result.instructions
        # The atomic-rename protocol leaves no temp spill behind.
        assert list(tmp_path.rglob("*.tmp")) == []

    def test_injected_partial_write_reads_as_miss(self, tmp_path):
        from repro.engine.cache import TraceCache
        from repro.engine.faults import FaultPlan

        result = self._run_result()
        cache = TraceCache(str(tmp_path))
        key = "cd" + "1" * 62
        cache.store(key, result)
        assert cache.load(key) is not None

        # Simulate a torn write via the fault plan's truncation hook.
        faults = FaultPlan.parse("corrupt-cache@main")
        faults.maybe_corrupt_cache(cache, key, "main", attempt=1)

        assert cache.load(key) is None
        # The corrupt entry is dropped, so the next store repopulates.
        import os

        assert not os.path.exists(cache.path_for(key))
        cache.store(key, result)
        assert cache.load(key) is not None

    def test_interrupted_store_leaves_no_tmp(self, tmp_path):
        from repro.engine.cache import TraceCache

        cache = TraceCache(str(tmp_path))
        key = "ef" + "2" * 62

        class Unpicklable:
            def __reduce__(self):
                raise RuntimeError("simulated mid-write failure")

        with pytest.raises(RuntimeError):
            cache.store(key, Unpicklable())
        assert list(tmp_path.rglob("*.tmp")) == []
        assert cache.load(key) is None

    def test_truncated_entry_never_served_under_race(self, tmp_path):
        """A reader racing a corruptor sees a hit or a miss, never junk."""
        from repro.engine.cache import TraceCache

        result = self._run_result()
        cache = TraceCache(str(tmp_path))
        key = "aa" + "3" * 62
        for _ in range(5):
            cache.store(key, result)
            path = cache.path_for(key)
            import os

            size = os.path.getsize(path)
            with open(path, "r+b") as handle:
                handle.truncate(size // 2)
            loaded = cache.load(key)
            assert loaded is None  # structural validation rejected it


class TestDebrisJanitor:
    """Startup sweep of orphaned ``*.tmp`` files (killed writers)."""

    @staticmethod
    def _plant(root, rel, age_seconds):
        import os
        import time as _time

        path = os.path.join(str(root), rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as handle:
            handle.write("partial")
        stamp = _time.time() - age_seconds
        os.utime(path, (stamp, stamp))
        return path

    def test_trace_cache_sweeps_old_tmp_files(self, tmp_path):
        import os

        from repro.engine.cache import TraceCache, reset_debris_sweeps

        reset_debris_sweeps()
        old = self._plant(tmp_path, "ab/dead.pkl.tmp", 7200)
        young = self._plant(tmp_path, "cd/live.pkl.tmp", 10)
        keep = self._plant(tmp_path, "ab/entry.pkl", 7200)  # not *.tmp

        cache = TraceCache(str(tmp_path))
        assert cache.stats.debris == 1
        assert not os.path.exists(old)
        assert os.path.exists(young)  # may belong to a live writer
        assert os.path.exists(keep)

    def test_sweep_runs_once_per_process_per_root(self, tmp_path):
        from repro.engine.cache import TraceCache, reset_debris_sweeps

        reset_debris_sweeps()
        self._plant(tmp_path, "ab/dead.pkl.tmp", 7200)
        assert TraceCache(str(tmp_path)).stats.debris == 1
        # Second handle on the same root: already swept, nothing found.
        self._plant(tmp_path, "ab/dead2.pkl.tmp", 7200)
        assert TraceCache(str(tmp_path)).stats.debris == 0

    def test_trace_cache_prunes_memo_and_flow_subtrees(self, tmp_path):
        import os

        from repro.engine.cache import TraceCache, reset_debris_sweeps

        reset_debris_sweeps()
        memo_tmp = self._plant(tmp_path, "memo/ab/dead.pkl.tmp", 7200)
        flow_tmp = self._plant(tmp_path, "flow/state/x.pkl.tmp", 7200)
        cache = TraceCache(str(tmp_path))
        # Those subtrees sweep themselves; the trace janitor must not
        # double-count them.
        assert cache.stats.debris == 0
        assert os.path.exists(memo_tmp) and os.path.exists(flow_tmp)

    def test_memo_store_sweeps_its_own_debris(self, tmp_path):
        import os

        from repro.engine.cache import reset_debris_sweeps
        from repro.sim.memo import MemoStore

        reset_debris_sweeps()
        root = tmp_path / "memo"
        old = self._plant(root, "ab/dead.pkl.tmp", 7200)
        store = MemoStore(str(root))
        assert store.stats.debris == 1
        assert not os.path.exists(old)

    def test_debris_counts_flow_into_metrics(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry
        from repro.sim.memo import MemoStore
        from repro.engine.cache import reset_debris_sweeps

        reset_debris_sweeps()
        self._plant(tmp_path / "memo", "ab/dead.pkl.tmp", 7200)
        store = MemoStore(str(tmp_path / "memo"))
        metrics = MetricsRegistry()
        store.stats.record_to(metrics)
        assert metrics.counters.get("cache.memo_debris") == 1
        # Conservation law is unaffected by janitor work.
        assert store.stats.gets == (store.stats.hits
                                    + store.stats.misses
                                    + store.stats.corrupt)

"""Tests for block statistics, the sweep API, and scheduler heuristics."""

import pytest

from repro.analysis.blockstats import block_stats
from repro.analysis.sweep import summarize, sweep
from repro.benchmarks import suite
from repro.errors import SchedulingError
from repro.isa import BasicBlock, Opcode, build
from repro.isa.registers import virtual
from repro.machine import base_machine, cray1, ideal_superscalar
from repro.opt.options import CompilerOptions
from repro.sched.list_scheduler import schedule_block
from repro.sim.timing import simulate
from repro.sim.trace import Trace


class TestBlockStats:
    def test_straight_line_is_one_block(self):
        instrs = [build.li(virtual(i), i) for i in range(5)]
        stats = block_stats(Trace.from_instructions(instrs))
        assert stats.dynamic_blocks == 1
        assert stats.mean_block_length == 5.0
        assert stats.branch_frequency == 0.0

    def test_branches_delimit_blocks(self):
        instrs = [
            build.li(virtual(0), 1),
            build.bnez(virtual(0), "L"),
            build.li(virtual(1), 2),
            build.jump("L"),
        ]
        trace = Trace(static=instrs)
        for i in range(4):
            trace.append(i)
        stats = block_stats(trace)
        assert stats.dynamic_blocks == 2
        assert stats.branch_instructions == 2
        assert stats.mean_block_length == 2.0

    def test_histogram_buckets(self):
        instrs = [build.li(virtual(0), 1), build.jump("L")]
        trace = Trace(static=instrs)
        for _ in range(3):
            trace.append(0)
            trace.append(1)
        stats = block_stats(trace)
        assert dict(stats.histogram) == {2: 3}

    def test_suite_blocks_are_short(self):
        """The structural reason for ILP ~ 2: a control transfer every
        handful of instructions."""
        result = suite.run_benchmark(suite.get("grr"))
        stats = block_stats(result.trace)
        assert 2.0 < stats.mean_block_length < 12.0
        assert 0.05 < stats.branch_frequency < 0.4

    def test_block_length_correlates_with_ilp(self):
        lengths = {}
        ilps = {}
        for name in ("grr", "linpack"):
            result = suite.run_benchmark(suite.get(name))
            lengths[name] = block_stats(result.trace).mean_block_length
            ilps[name] = simulate(
                result.trace, ideal_superscalar(64)
            ).parallelism
        assert lengths["linpack"] > lengths["grr"]
        assert ilps["linpack"] > ilps["grr"]


class TestSweep:
    def test_sweep_rows_shape(self):
        rows = sweep(
            ["whet"], [base_machine(), ideal_superscalar(2)]
        )
        assert len(rows) == 2
        assert {r.machine for r in rows} == {"base", "superscalar-2"}
        base_row = next(r for r in rows if r.machine == "base")
        assert base_row.parallelism == pytest.approx(1.0)

    def test_summarize_renders_table(self):
        rows = sweep(["whet", "grr"], [base_machine()])
        text = summarize(rows)
        assert "whet" in text and "grr" in text
        assert "harmonic mean" in text

    def test_options_and_target_exclusive(self):
        with pytest.raises(ValueError):
            sweep(
                ["whet"], [base_machine()],
                options=CompilerOptions(),
                schedule_for_target=True,
            )

    def test_schedule_for_target(self):
        rows = sweep(
            ["whet"], [ideal_superscalar(4)], schedule_for_target=True
        )
        assert rows[0].parallelism > 1.0


class TestSchedulerHeuristics:
    def test_unknown_heuristic_rejected(self):
        block = BasicBlock("b", [build.nop(), build.nop(), build.nop()])
        with pytest.raises(SchedulingError):
            schedule_block(block, base_machine(), heuristic="magic")

    def test_options_validate_heuristic(self):
        with pytest.raises(ValueError):
            CompilerOptions(sched_heuristic="magic")

    def test_source_order_preserves_order_when_free(self):
        instrs = [
            build.li(virtual(i), i) for i in range(6)
        ]
        block = BasicBlock("b", list(instrs))
        schedule_block(block, base_machine(), heuristic="source-order")
        assert block.instrs == instrs

    def test_critical_path_beats_source_order_on_latency(self):
        """On a latency-heavy machine the critical-path priority must
        not lose to naive source order (harmonic mean over a kernel)."""
        cfg = cray1()
        vals = {}
        for heuristic in ("critical-path", "source-order"):
            opts = suite.default_options(
                suite.get("whet"),
                schedule_for=cfg, sched_heuristic=heuristic,
            )
            result = suite.run_benchmark(suite.get("whet"), opts)
            vals[heuristic] = simulate(result.trace, cfg).parallelism
        assert vals["critical-path"] >= vals["source-order"] - 1e-9

"""Tests for the span tracer, metrics registry, Chrome trace export,
live progress line, and the engine's end-to-end observability.

The determinism cases pin the tentpole guarantee: two identical runs —
serial or parallel, clean or faulted — produce identical merged metric
values and identical span trees (names and structure; timestamps and
worker PIDs are explicitly excluded).  The overhead guard pins the
other half: tracing the warm full grid costs at most 2% of wall clock.
"""

from __future__ import annotations

import io
import json
import time

import pytest

from repro.engine.executor import execute
from repro.engine.faults import FaultPlan
from repro.engine.plan import plan_sweep
from repro.engine.resilience import RetryPolicy
from repro.obs.live import ProgressLine
from repro.obs.metrics import (
    COUNT_BUCKETS,
    NULL_METRICS,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    active_metrics,
)
from repro.obs.recorder import JsonlRecorder, read_jsonl
from repro.obs.trace import (
    MAIN_TRACK,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    active_tracer,
    chrome_trace,
    emit_span_events,
    profile_tree,
    spans_from_events,
    write_chrome_trace,
)

FAST = RetryPolicy(base_delay=0.001, max_delay=0.01, group_timeout=60.0)


class TestTracer:
    def test_nesting_records_parent_child_ids(self):
        tr = Tracer()
        with tr.span("outer", cat="a"):
            with tr.span("inner", cat="b", benchmark="whet"):
                pass
        outer, inner = tr.spans
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert inner.args == {"benchmark": "whet"}
        assert outer.dur_ns >= inner.dur_ns >= 0

    def test_current_id_tracks_open_span(self):
        tr = Tracer()
        assert tr.current_id() is None
        with tr.span("outer"):
            outer_id = tr.current_id()
            with tr.span("inner"):
                assert tr.current_id() != outer_id
            assert tr.current_id() == outer_id
        assert tr.current_id() is None

    def test_exception_closes_span(self):
        tr = Tracer()
        with pytest.raises(RuntimeError):
            with tr.span("doomed"):
                raise RuntimeError("boom")
        assert tr.spans[0].dur_ns >= 0
        assert tr.current_id() is None

    def test_record_retroactive_span(self):
        tr = Tracer()
        with tr.span("parent"):
            now = time.monotonic_ns()
            span = tr.record("backoff", "resilience", now - 5_000_000,
                             5_000_000, attempt=2)
        assert span.parent_id == tr.spans[0].span_id
        assert span.dur_ns == 5_000_000
        assert tr.record("x", "y", 0, -10).dur_ns == 0  # clamped

    def test_merge_renames_ids_and_reparents_roots(self):
        parent = Tracer()
        with parent.span("engine.run"):
            root_id = parent.current_id()
        worker = Tracer(track="worker-123")
        with worker.span("group.run"):
            with worker.span("simulate"):
                pass
        parent.merge(worker.export(), parent_id=root_id)
        ids = [s.span_id for s in parent.spans]
        assert len(ids) == len(set(ids))  # no collisions
        group = next(s for s in parent.spans if s.name == "group.run")
        sim = next(s for s in parent.spans if s.name == "simulate")
        assert group.parent_id == root_id
        assert sim.parent_id == group.span_id
        assert group.track == "worker-123"  # worker identity preserved
        # A second merge of the same batch must still not collide.
        parent.merge(worker.export(), parent_id=root_id)
        ids = [s.span_id for s in parent.spans]
        assert len(ids) == len(set(ids))

    def test_merge_empty_is_noop(self):
        tr = Tracer()
        tr.merge([], parent_id=None)
        assert tr.spans == []

    def test_span_dict_round_trip(self):
        tr = Tracer()
        with tr.span("s", cat="c", k=1):
            pass
        clone = Span.from_dict(tr.spans[0].as_dict())
        assert clone == tr.spans[0]

    def test_null_tracer_records_nothing(self):
        tr = NullTracer()
        with tr.span("ignored"):
            pass
        tr.record("ignored", "c", 0, 1)
        tr.merge([{"name": "x", "span_id": 0}])
        assert tr.spans == []
        assert not tr.enabled
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")  # shared

    def test_active_tracer(self):
        assert active_tracer(None) is NULL_TRACER
        tr = Tracer()
        assert active_tracer(tr) is tr


class TestMetrics:
    def test_counters_gauges_histograms(self):
        mx = MetricsRegistry()
        mx.incr("hits")
        mx.incr("hits", 2)
        mx.gauge("workers", 4)
        mx.gauge("workers", 2)
        mx.observe("lat", 0.003)
        snap = mx.as_dict()
        assert snap["counters"] == {"hits": 3}
        assert snap["gauges"] == {"workers": 2}
        assert snap["histograms"]["lat"]["count"] == 1

    def test_histogram_conservation_and_overflow(self):
        h = Histogram(bounds=(1, 10, 100))
        for v in (0.5, 5, 50, 500, 5000):
            h.observe(v)
        assert sum(h.counts) == h.count == 5
        assert h.counts == [1, 1, 1, 2]  # last slot is overflow
        assert h.sum == 5555.5

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram(bounds=())
        with pytest.raises(ValueError):
            Histogram(bounds=(5, 1))

    def test_histogram_merge_requires_identical_bounds(self):
        a = Histogram(bounds=(1, 10))
        b = Histogram(bounds=(1, 100))
        with pytest.raises(ValueError):
            a.merge(b.as_dict())

    def test_merge_is_order_independent(self):
        def snapshot(k):
            mx = MetricsRegistry()
            mx.incr("cells", k)
            mx.observe("size", 10 ** k, bounds=COUNT_BUCKETS)
            return mx.as_dict()

        parts = [snapshot(k) for k in (1, 2, 3)]
        ab = MetricsRegistry()
        ba = MetricsRegistry()
        for p in parts:
            ab.merge(p)
        for p in reversed(parts):
            ba.merge(p)
        a, b = ab.as_dict(), ba.as_dict()
        assert a["counters"] == b["counters"]
        assert a["histograms"] == b["histograms"]

    def test_merge_none_is_noop(self):
        mx = MetricsRegistry()
        mx.merge(None)
        mx.merge({})
        assert mx.as_dict() == {"counters": {}, "gauges": {},
                                "histograms": {}}

    def test_null_metrics_records_nothing(self):
        mx = NullMetrics()
        mx.incr("x")
        mx.gauge("g", 1)
        mx.observe("h", 1.0)
        mx.merge({"counters": {"x": 5}})
        assert mx.as_dict() == {"counters": {}, "gauges": {},
                                "histograms": {}}
        assert not mx.enabled

    def test_active_metrics(self):
        assert active_metrics(None) is NULL_METRICS
        mx = MetricsRegistry()
        assert active_metrics(mx) is mx


def _tree(n=3) -> Tracer:
    tr = Tracer()
    with tr.span("run", cat="engine"):
        for i in range(n):
            with tr.span("step", cat="engine", i=i):
                pass
    return tr


class TestChromeTrace:
    def test_structure(self):
        tr = _tree()
        worker = Tracer(track="worker-7")
        with worker.span("group.run"):
            pass
        tr.merge(worker.export(), parent_id=tr.spans[0].span_id)
        doc = chrome_trace(tr.spans, process_name="repro-test")
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == len(tr.spans)
        names = {e["name"]: e for e in meta}
        assert names["process_name"]["args"]["name"] == "repro-test"
        threads = [e["args"]["name"] for e in meta
                   if e["name"] == "thread_name"]
        assert threads == [MAIN_TRACK, "worker-7"]  # main row first
        # Times are relative microseconds from the earliest span.
        assert min(e["ts"] for e in complete) == 0
        assert all(e["dur"] >= 0 and e["pid"] == 0 for e in complete)
        worker_tid = next(e["args"]["name"] == "worker-7" and e["tid"]
                          for e in meta if e["name"] == "thread_name"
                          and e["args"]["name"] == "worker-7")
        assert any(e["tid"] == worker_tid for e in complete)

    def test_write_chrome_trace_creates_dirs(self, tmp_path):
        path = tmp_path / "nested" / "trace.json"
        write_chrome_trace(str(path), _tree().spans)
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert any(e["ph"] == "X" for e in doc["traceEvents"])


class TestProfileTree:
    def test_aggregates_siblings(self):
        text = profile_tree(_tree(5).spans)
        assert "run" in text
        # Five sibling "step" spans fold into one line with count 5.
        step_lines = [ln for ln in text.splitlines() if "step" in ln]
        assert len(step_lines) == 1
        assert step_lines[0].rstrip().endswith("5")

    def test_empty(self):
        assert "(no spans recorded)" in profile_tree([])


class TestSpanEvents:
    def test_emit_and_rebuild(self, tmp_path):
        tr = _tree(2)
        path = tmp_path / "run.jsonl"
        with JsonlRecorder(path) as rec:
            emit_span_events(rec, tr)
            emit_span_events(rec, tr)  # watermark: no duplicates
        events = read_jsonl(path)
        spans = spans_from_events(events)
        assert len(spans) == len(tr.spans)
        assert [s.name for s in spans] == [s.name for s in tr.spans]
        rebuilt_root = next(s for s in spans if s.parent_id is None)
        assert rebuilt_root.name == "run"

    def test_null_paths_emit_nothing(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with JsonlRecorder(path) as rec:
            emit_span_events(rec, NULL_TRACER)
            emit_span_events(rec, Tracer())  # enabled but empty
        assert read_jsonl(path) == []


class TestProgressLine:
    def test_paints_counts_and_rate(self):
        out = io.StringIO()
        line = ProgressLine(total_cells=4, stream=out, min_interval=0.0)
        line.update(2, "ok", 1000)
        line.update(1, "retried", 500)
        line.update(1, "failed", 0)
        line.finish()
        text = out.getvalue()
        assert "cells 4/4" in text
        assert "2 ok 1 retried 0 degraded 1 failed" in text
        assert text.endswith("\n")

    def test_format_rate(self):
        assert ProgressLine._format_rate(2_500_000) == "2.5M"
        assert ProgressLine._format_rate(2_500) == "2.5k"
        assert ProgressLine._format_rate(42) == "42"


BENCHES = ["whet", "linpack"]
MACHINES = ["base", "superscalar:4"]


def _run(workers=1, faults=None, tracer=None, metrics=None, progress=None):
    from repro.benchmarks import suite

    # Start from a cold in-process run memo so every call records the
    # same spans (compile.run included) regardless of test order.
    suite.clear_cache()
    plan = plan_sweep(BENCHES, MACHINES, observe=True)
    return execute(plan, workers=workers, policy=FAST, faults=faults,
                   tracer=tracer, metrics=metrics, progress=progress)


def span_tree(tracer: Tracer) -> list[tuple]:
    """Canonical (structure-only) form of a span forest: every span as
    ``(path-of-names, cat)``, sorted — timestamps, IDs, and worker PID
    tracks excluded so identical runs compare equal."""
    by_id = {s.span_id: s for s in tracer.spans}

    def path(span: Span) -> tuple:
        names = [span.name]
        while span.parent_id is not None:
            span = by_id[span.parent_id]
            names.append(span.name)
        return tuple(reversed(names))

    return sorted((path(s), s.cat) for s in tracer.spans)


def stable_metrics(metrics: MetricsRegistry) -> dict:
    """Metrics snapshot minus wall-time histograms (the one
    nondeterministic shape)."""
    snap = metrics.as_dict()
    snap["histograms"] = {
        name: hist for name, hist in snap["histograms"].items()
        if not name.endswith(".seconds")
    }
    return snap


class TestEngineObservability:
    def test_serial_run_records_spans_and_metrics(self):
        tr, mx = Tracer(), MetricsRegistry()
        result = _run(tracer=tr, metrics=mx)
        names = {s.name for s in tr.spans}
        assert {"engine.run", "group.run", "compile.run",
                "simulate"} <= names
        root = next(s for s in tr.spans if s.name == "engine.run")
        assert root.parent_id is None and root.dur_ns > 0
        groups = [s for s in tr.spans if s.name == "group.run"]
        assert all(g.parent_id == root.span_id for g in groups)
        c = mx.counters
        assert c["engine.cells"] == len(result.cells) == 4
        assert c["engine.cells.ok"] == 4
        hist = mx.histograms["cell.instructions"]
        assert sum(hist.counts) == hist.count == 4

    def test_parallel_run_merges_worker_tracks(self):
        tr, mx = Tracer(), MetricsRegistry()
        result = _run(workers=2, tracer=tr, metrics=mx)
        tracks = {s.track for s in tr.spans}
        assert MAIN_TRACK in tracks
        assert any(t.startswith("worker-") for t in tracks)
        # Worker roots are re-parented under the engine root.
        by_id = {s.span_id: s for s in tr.spans}
        for span in tr.spans:
            if span.parent_id is not None:
                assert span.parent_id in by_id  # tree stays connected
        assert mx.counters["engine.cells"] == len(result.cells)
        assert mx.gauges["engine.workers"] == 2

    def test_faulted_run_records_resilience_spans(self):
        tr, mx = Tracer(), MetricsRegistry()
        result = _run(workers=2, tracer=tr, metrics=mx,
                      faults=FaultPlan.parse("crash@whet#1"))
        names = {s.name for s in tr.spans}
        assert {"attempt.failed", "retry.backoff", "pool.respawn"} <= names
        assert mx.counters["engine.group_retries"] >= 1
        assert mx.counters["engine.pool_restarts"] >= 1
        # At least the whet cells retried (the innocent in-flight group
        # may also be resubmitted when the pool dies under it).
        assert mx.counters["engine.cells.retried"] >= 2
        assert all(c.status in ("ok", "retried") for c in result.cells)

    def test_progress_callback_sees_every_cell(self):
        seen = []
        _run(workers=2, progress=lambda key, outcome, n:
             seen.append((key[0], outcome.status, n)))
        assert sum(n for _, _, n in seen) == 4
        assert all(status == "ok" for _, status, _ in seen)

    def test_recorder_auto_enables_tracing(self, tmp_path):
        path = tmp_path / "run.jsonl"
        plan = plan_sweep(BENCHES, MACHINES)
        with JsonlRecorder(path) as rec:
            execute(plan, workers=1, recorder=rec)
        kinds = {e.get("event") for e in read_jsonl(path)}
        assert "span" in kinds
        assert "metrics" in kinds

    def test_cache_counter_conservation(self, tmp_path):
        from repro.benchmarks import suite
        from repro.engine.cache import open_cache

        plan = plan_sweep(BENCHES, MACHINES)
        for _ in range(2):  # second pass is all cache hits
            suite.clear_cache()  # force the disk cache to be consulted
            mx = MetricsRegistry()
            execute(plan, cache=open_cache(str(tmp_path)), metrics=mx)
            c = mx.counters
            assert c["cache.gets"] == (c.get("cache.hits", 0)
                                       + c.get("cache.misses", 0)
                                       + c.get("cache.corrupt", 0))
        assert c["cache.hits"] == 2  # one get per compile group


class TestMergeDeterminism:
    """Two identical runs must merge to identical metrics and span
    trees — the fixed-bucket + plan-order-merge guarantee."""

    def _pair(self, **kwargs):
        runs = []
        for _ in range(2):
            tr, mx = Tracer(), MetricsRegistry()
            _run(tracer=tr, metrics=mx, **kwargs)
            runs.append((tr, mx))
        return runs

    def test_serial_runs_identical(self):
        (tr_a, mx_a), (tr_b, mx_b) = self._pair()
        assert stable_metrics(mx_a) == stable_metrics(mx_b)
        assert span_tree(tr_a) == span_tree(tr_b)

    def test_parallel_runs_identical(self):
        (tr_a, mx_a), (tr_b, mx_b) = self._pair(workers=2)
        assert stable_metrics(mx_a) == stable_metrics(mx_b)
        assert span_tree(tr_a) == span_tree(tr_b)

    def test_faulted_runs_identical(self):
        # corrupt-result retries deterministically without killing the
        # pool (a crash fault's pool teardown can catch the innocent
        # in-flight group at a timing-dependent point).
        faults = "corrupt-result@linpack#1"
        (tr_a, mx_a), (tr_b, mx_b) = self._pair(
            workers=2, faults=FaultPlan.parse(faults))
        assert stable_metrics(mx_a) == stable_metrics(mx_b)
        assert span_tree(tr_a) == span_tree(tr_b)
        # The retry rungs are part of the deterministic tree.
        names = {path[-1] for path, _ in span_tree(tr_a)}
        assert {"attempt.failed", "retry.backoff"} <= names

    def test_serial_and_parallel_metrics_agree(self):
        tr_s, mx_s = Tracer(), MetricsRegistry()
        _run(tracer=tr_s, metrics=mx_s)
        tr_p, mx_p = Tracer(), MetricsRegistry()
        _run(workers=2, tracer=tr_p, metrics=mx_p)
        stable_s, stable_p = stable_metrics(mx_s), stable_metrics(mx_p)
        # Same work, same deterministic counts (modulo the workers gauge).
        assert stable_s["histograms"] == stable_p["histograms"]
        assert stable_s["counters"]["engine.cells"] == \
            stable_p["counters"]["engine.cells"]


class TestOverheadGuard:
    """Tracing the warm full grid must cost at most 2% of wall clock."""

    def test_warm_grid_overhead_within_two_percent(self, tmp_path):
        from repro.benchmarks import suite
        from repro.engine.cache import open_cache

        plan = plan_sweep(suite.all_benchmarks(),
                          ["base", "superscalar:2", "superscalar:4",
                           "superscalar:8", "superpipelined:4",
                           "multititan", "cray1"])
        cache = open_cache(str(tmp_path / "cache"))
        execute(plan, cache=cache)  # populate: later runs are warm

        def timed(traced: bool) -> float:
            tr = Tracer() if traced else None
            mx = MetricsRegistry() if traced else None
            start = time.perf_counter()
            execute(plan, cache=cache, tracer=tr, metrics=mx)
            return time.perf_counter() - start

        # Interleaved best-of timing damps scheduler noise; keep
        # sampling (to a bound) until the comparison stabilizes.
        plain = traced = float("inf")
        for _ in range(5):
            plain = min(plain, timed(False))
            traced = min(traced, timed(True))
            if traced <= plain * 1.02:
                break
        overhead = traced / plain - 1.0
        assert overhead <= 0.02, (
            f"tracing overhead {overhead:.1%} exceeds 2% "
            f"(plain {plain:.3f}s, traced {traced:.3f}s)"
        )

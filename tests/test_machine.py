"""Unit tests for machine descriptions, presets and metrics."""

import pytest

from repro.errors import MachineConfigError
from repro.isa import InstrClass
from repro.machine import (
    CRAY1_LATENCIES,
    MULTITITAN_LATENCIES,
    MachineConfig,
    PAPER_FREQUENCIES,
    average_degree_of_superpipelining,
    base_machine,
    cray1,
    dynamic_frequencies,
    ideal_superscalar,
    machine_degree,
    multititan,
    required_parallelism,
    superpipelined,
    superpipelined_superscalar,
    superscalar_with_class_conflicts,
    underpipelined_half_issue,
    underpipelined_slow_cycle,
    unit,
)


class TestMachineConfig:
    def test_base_machine_is_ideal(self):
        cfg = base_machine()
        assert cfg.issue_width == 1
        assert cfg.superpipeline_degree == 1
        assert cfg.is_ideal
        assert all(cfg.latency_of(k) == 1 for k in InstrClass)

    def test_rejects_zero_width(self):
        with pytest.raises(MachineConfigError):
            MachineConfig(name="bad", issue_width=0)

    def test_rejects_missing_latency(self):
        with pytest.raises(MachineConfigError):
            MachineConfig(name="bad", latencies={InstrClass.ADDSUB: 1})

    def test_rejects_zero_latency(self):
        lats = {k: 1 for k in InstrClass}
        lats[InstrClass.LOAD] = 0
        with pytest.raises(MachineConfigError):
            MachineConfig(name="bad", latencies=lats)

    def test_rejects_uncovered_class(self):
        only_alu = unit("alu", [InstrClass.ADDSUB])
        with pytest.raises(MachineConfigError):
            MachineConfig(name="bad", units=(only_alu,))

    def test_unit_validation(self):
        with pytest.raises(MachineConfigError):
            unit("u", [InstrClass.ADDSUB], issue_latency=0)
        with pytest.raises(MachineConfigError):
            unit("u", [InstrClass.ADDSUB], multiplicity=0)

    def test_latency_table_is_frozen(self):
        cfg = base_machine()
        with pytest.raises(TypeError):
            cfg.latencies[InstrClass.LOAD] = 5  # type: ignore[index]

    def test_minor_to_base_conversion(self):
        cfg = superpipelined(4)
        assert cfg.minor_to_base(8) == pytest.approx(2.0)
        slow = underpipelined_slow_cycle()
        assert slow.minor_to_base(3) == pytest.approx(6.0)

    def test_with_issue_width(self):
        cfg = cray1().with_issue_width(4)
        assert cfg.issue_width == 4
        assert cfg.latencies[InstrClass.LOAD] == 11

    def test_with_unit_latencies(self):
        cfg = cray1().with_unit_latencies()
        assert all(v == 1 for v in cfg.latencies.values())


class TestPresets:
    def test_superpipelined_latencies_scale(self):
        cfg = superpipelined(3)
        assert cfg.superpipeline_degree == 3
        assert all(v == 3 for v in cfg.latencies.values())

    def test_superpipelined_superscalar(self):
        cfg = superpipelined_superscalar(2, 3)
        assert cfg.issue_width == 2
        assert cfg.superpipeline_degree == 3

    def test_half_issue_preset_has_class_conflicts(self):
        cfg = underpipelined_half_issue()
        assert not cfg.is_ideal
        assert cfg.units[0].issue_latency == 2

    def test_table_2_1_latency_values(self):
        assert MULTITITAN_LATENCIES[InstrClass.LOAD] == 2
        assert MULTITITAN_LATENCIES[InstrClass.FPADD] == 3
        assert CRAY1_LATENCIES[InstrClass.LOAD] == 11
        assert CRAY1_LATENCIES[InstrClass.STORE] == 1
        assert CRAY1_LATENCIES[InstrClass.ADDSUB] == 3

    def test_class_conflict_preset(self):
        cfg = superscalar_with_class_conflicts(4, n_mem_units=1)
        mem_units = [u for u in cfg.units if InstrClass.LOAD in u.classes]
        assert len(mem_units) == 1
        assert mem_units[0].multiplicity == 1


class TestMetrics:
    def test_paper_frequencies_sum_to_one(self):
        assert sum(PAPER_FREQUENCIES.values()) == pytest.approx(1.0)

    def test_multititan_average_degree_is_1_7(self):
        value = average_degree_of_superpipelining(MULTITITAN_LATENCIES)
        assert value == pytest.approx(1.7)

    def test_cray1_average_degree_is_4_4(self):
        value = average_degree_of_superpipelining(CRAY1_LATENCIES)
        assert value == pytest.approx(4.4)

    def test_machine_degree_uses_base_cycles(self):
        assert machine_degree(multititan()) == pytest.approx(1.7)
        # a degree-m superpipelined machine has average degree m... in
        # minor cycles; converted to base cycles it is exactly 1.0 * m / m
        cfg = superpipelined(3)
        assert machine_degree(cfg) == pytest.approx(1.0)

    def test_dynamic_frequencies_normalize(self):
        freqs = dynamic_frequencies(
            {InstrClass.ADDSUB: 3, InstrClass.LOAD: 1}
        )
        assert freqs[InstrClass.ADDSUB] == pytest.approx(0.75)
        assert sum(freqs.values()) == pytest.approx(1.0)

    def test_dynamic_frequencies_reject_empty(self):
        with pytest.raises(ValueError):
            dynamic_frequencies({})

    def test_required_parallelism_grid(self):
        assert required_parallelism(2, 2) == 4
        assert required_parallelism(3, 5) == 15
        with pytest.raises(ValueError):
            required_parallelism(0, 1)

"""Unit tests for home-register promotion and temporary assignment."""

import pytest

from repro.errors import RegisterAllocationError
from repro.isa import Opcode
from repro.isa.registers import RegisterFileSpec
from repro.lang import parse
from repro.lang.codegen import generate
from repro.lang.semantics import check
from repro.opt.options import CompilerOptions, OptLevel
from repro.opt.regalloc import assign_temporaries, promote_variables
from tests.helpers import run_tin_value

SRC = """
var g: int;
var arr: int[8];
proc inc(x: int): int {
    return x + g;
}
proc main(): int {
    var i, local: int;
    g = 3;
    local = 0;
    for i = 0 to 7 {
        arr[i] = i;
        local = local + inc(i);
    }
    return local;
}
"""


def fresh_program():
    module = parse(SRC)
    return generate(module, check(module))


class TestPromotion:
    def test_promotes_hot_scalars(self):
        program = fresh_program()
        assignment = promote_variables(program, RegisterFileSpec())
        objs = set(assignment)
        assert "g:g" in objs
        assert "s:main:i" in objs
        assert "s:main:local" in objs

    def test_arrays_never_promoted(self):
        program = fresh_program()
        assignment = promote_variables(program, RegisterFileSpec())
        assert not any("arr" in obj for obj in assignment)

    def test_ra_slot_never_promoted(self):
        program = fresh_program()
        assignment = promote_variables(program, RegisterFileSpec())
        assert not any("__ra" in obj for obj in assignment)

    def test_rewrites_accesses_to_moves(self):
        program = fresh_program()
        promote_variables(program, RegisterFileSpec())
        main = program.functions["main"]
        # no remaining loads/stores of the promoted scalar objects
        for ins in main.instructions():
            if ins.op in (Opcode.LW, Opcode.SW) and ins.mem is not None:
                assert ins.mem.obj not in ("g:g", "s:main:i", "s:main:local")

    def test_global_homes_disjoint_from_local_homes(self):
        program = fresh_program()
        assignment = promote_variables(program, RegisterFileSpec())
        global_regs = {r for o, r in assignment.items() if o.startswith("g:")}
        local_regs = {r for o, r in assignment.items() if o.startswith("s:")}
        assert not (global_regs & local_regs)

    def test_callee_save_inserted(self):
        program = fresh_program()
        assignment = promote_variables(program, RegisterFileSpec())
        main = program.functions["main"]
        local_regs = {
            r for o, r in assignment.items() if o.startswith("s:main:")
        }
        entry_saves = [
            ins for ins in main.blocks[0].instrs
            if ins.op is Opcode.SW and ins.mem and "__save" in ins.mem.obj
        ]
        assert {ins.srcs[0] for ins in entry_saves} >= local_regs

    def test_start_initializes_global_homes(self):
        program = fresh_program()
        assignment = promote_variables(program, RegisterFileSpec())
        start = program.functions["_start"]
        inits = [
            ins for ins in start.blocks[0].instrs if ins.op is Opcode.LW
        ]
        assert any(ins.dest == assignment["g:g"] for ins in inits)

    def test_home_bindings_recorded(self):
        program = fresh_program()
        assignment = promote_variables(program, RegisterFileSpec())
        main = program.functions["main"]
        assert main.home_bindings.get("g:g") == assignment["g:g"]

    def test_no_home_registers_means_no_promotion(self):
        program = fresh_program()
        assignment = promote_variables(
            program, RegisterFileSpec(n_temp=16, n_home=0)
        )
        assert assignment == {}

    def test_limited_pool_takes_hottest_first(self):
        program = fresh_program()
        assignment = promote_variables(
            program, RegisterFileSpec(n_temp=16, n_home=2)
        )
        # loop-resident variables beat anything else
        assert len(assignment) <= 4  # 2 globalish + per-function reuse


class TestTemporaries:
    def test_no_virtual_registers_survive(self):
        program = fresh_program()
        for fn in program.functions.values():
            assign_temporaries(fn, RegisterFileSpec())
            for ins in fn.instructions():
                assert ins.dest is None or not ins.dest.virtual
                assert all(not r.virtual for r in ins.srcs)

    def test_tiny_pool_spills_but_stays_correct(self):
        for n_temp in (3, 4, 6):
            opts = CompilerOptions(
                opt_level=OptLevel.REGALLOC,
                regfile=RegisterFileSpec(n_temp=n_temp, n_home=4),
            )
            assert run_tin_value(SRC, opts) == sum(i + 3 for i in range(8))

    def test_spill_stats_reported(self):
        program = fresh_program()
        fn = program.functions["main"]
        stats = assign_temporaries(fn, RegisterFileSpec(n_temp=3, n_home=0))
        assert stats.n_virtual > 0
        assert stats.n_spilled >= 0
        assert fn.frame_slots >= stats.spill_slots

    def test_call_crossing_values_are_spilled(self):
        src = """
        proc g(x: int): int { return x * 2; }
        proc main(): int {
            var a, b: int;
            a = 5;
            b = g(1) + a * 3;     # a*3 evaluated around the call
            return b + g(a);
        }
        """
        opts = CompilerOptions(opt_level=OptLevel.REGALLOC)
        assert run_tin_value(src, opts) == 2 + 15 + 10

    def test_frame_grows_for_spills(self):
        program = fresh_program()
        fn = program.functions["main"]
        before = fn.frame_slots
        stats = assign_temporaries(fn, RegisterFileSpec(n_temp=3, n_home=0))
        assert fn.frame_slots == before + stats.spill_slots


class TestRegisterPressureKnob:
    def test_more_temps_never_hurt_correctness(self):
        for n_temp in (8, 16, 40):
            opts = CompilerOptions(
                regfile=RegisterFileSpec(n_temp=n_temp, n_home=26)
            )
            assert run_tin_value(SRC, opts) == sum(i + 3 for i in range(8))

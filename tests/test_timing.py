"""Unit tests for the in-order timing model on hand-built traces."""

import pytest

from repro.isa import InstrClass, Opcode, build
from repro.isa.registers import virtual
from repro.machine import (
    MachineConfig,
    base_machine,
    ideal_superscalar,
    superpipelined,
    superpipelined_superscalar,
    underpipelined_half_issue,
    underpipelined_slow_cycle,
    unit,
)
from repro.sim.timing import issue_schedule, parallelism, simulate
from repro.sim.trace import Trace


def independent(n: int) -> Trace:
    return Trace.from_instructions(
        [build.alui(Opcode.ADDI, virtual(i), virtual(100 + i), 1)
         for i in range(n)]
    )


def chain(n: int) -> Trace:
    return Trace.from_instructions(
        [build.alui(Opcode.ADDI, virtual(i + 1), virtual(i), 1)
         for i in range(n)]
    )


class TestBaseMachine:
    def test_one_instruction_per_cycle(self):
        trace = independent(10)
        result = simulate(trace, base_machine())
        assert result.minor_cycles == 10
        assert result.parallelism == pytest.approx(1.0)

    def test_chain_runs_without_stalls(self):
        # one-cycle latency: the result is always ready for the next
        # instruction; never any interlocks on the base machine
        result = simulate(chain(10), base_machine())
        assert result.minor_cycles == 10

    def test_empty_trace(self):
        result = simulate(Trace(static=[]), base_machine())
        assert result.minor_cycles == 0
        assert result.parallelism == 0.0


class TestSuperscalar:
    def test_independent_instructions_fill_width(self):
        trace = independent(12)
        result = simulate(trace, ideal_superscalar(4))
        # issue cycles 0,1,2; the last group's results land in cycle 3
        assert result.minor_cycles == 3
        assert result.parallelism == pytest.approx(4.0)

    def test_chain_gains_nothing(self):
        result = simulate(chain(12), ideal_superscalar(4))
        assert result.minor_cycles == 12

    def test_width_cap(self):
        trace = independent(64)
        r2 = simulate(trace, ideal_superscalar(2))
        r8 = simulate(trace, ideal_superscalar(8))
        assert r2.minor_cycles > r8.minor_cycles
        assert r2.parallelism <= 2.0 + 1e-9
        assert r8.parallelism <= 8.0 + 1e-9


class TestSuperpipelined:
    def test_degree_m_converts_to_base_cycles(self):
        trace = independent(6)
        result = simulate(trace, superpipelined(3))
        # issue at minor cycles 0..5, last completes at 5+3=8 minors
        assert result.minor_cycles == 8
        assert result.base_cycles == pytest.approx(8 / 3)

    def test_startup_transient_vs_superscalar(self):
        trace = independent(6)
        ss = simulate(trace, ideal_superscalar(3))
        sp = simulate(trace, superpipelined(3))
        assert ss.base_cycles == pytest.approx(2.0)
        assert sp.base_cycles == pytest.approx(8 / 3)
        assert sp.base_cycles > ss.base_cycles

    def test_transient_shrinks_with_degree(self):
        # a parallelism-2 workload (two interleaved chains): once the
        # superscalar machine saturates, the superpipelined machine closes
        # in from below as its issue spacing shrinks (Fig 4-1's shape)
        instrs = []
        for i in range(12):
            chain_base = 200 if i % 2 else 100
            v = i // 2
            instrs.append(build.alui(
                Opcode.ADDI, virtual(chain_base + v + 1),
                virtual(chain_base + v), 1,
            ))
        trace = Trace.from_instructions(instrs)
        gaps = []
        for degree in (2, 4, 8):
            ss = simulate(trace, ideal_superscalar(degree))
            sp = simulate(trace, superpipelined(degree))
            gaps.append(sp.base_cycles - ss.base_cycles)
        assert gaps[0] > gaps[1] > gaps[2] > 0

    def test_superpipelined_superscalar_combines(self):
        trace = independent(12)
        result = simulate(trace, superpipelined_superscalar(3, 2))
        # 4 minor issue cycles (0..3), last finishes at 3+2=5 minors
        assert result.minor_cycles == 5
        assert result.base_cycles == pytest.approx(2.5)


class TestUnderpipelined:
    def test_slow_cycle_halves_performance(self):
        trace = independent(10)
        slow = simulate(trace, underpipelined_slow_cycle())
        assert slow.base_cycles == pytest.approx(20.0)

    def test_half_issue_halves_performance(self):
        trace = independent(10)
        half = simulate(trace, underpipelined_half_issue())
        # one instruction every other cycle
        assert half.minor_cycles == pytest.approx(19.0)


class TestLatencies:
    def test_load_latency_stalls_consumer(self):
        instrs = [
            build.lw(virtual(1), virtual(100), 8),
            build.alui(Opcode.ADDI, virtual(2), virtual(1), 1),
        ]
        lats = {k: 1 for k in InstrClass}
        lats[InstrClass.LOAD] = 5
        cfg = MachineConfig(name="slowload", latencies=lats)
        result = simulate(Trace.from_instructions(instrs), cfg)
        # load issues at 0, completes at 5; add issues at 5, done 6
        assert result.minor_cycles == 6

    def test_independent_op_hides_latency(self):
        instrs = [
            build.lw(virtual(1), virtual(100), 8),
            build.alui(Opcode.ADDI, virtual(3), virtual(101), 1),
            build.alui(Opcode.ADDI, virtual(2), virtual(1), 1),
        ]
        lats = {k: 1 for k in InstrClass}
        lats[InstrClass.LOAD] = 3
        cfg = MachineConfig(name="slowload", latencies=lats)
        times = issue_schedule(Trace.from_instructions(instrs), cfg)
        assert times == [0, 1, 3]

    def test_store_to_load_same_address(self):
        instrs = [
            build.sw(virtual(1), virtual(100), 0),
            build.lw(virtual(2), virtual(101), 0),
        ]
        trace = Trace.from_instructions(instrs, addrs=[64, 64])
        lats = {k: 1 for k in InstrClass}
        lats[InstrClass.STORE] = 4
        cfg = MachineConfig(name="slowstore", latencies=lats)
        result = simulate(trace, cfg)
        # load waits for the store to complete at minor cycle 4
        assert issue_schedule(trace, cfg) == [0, 4]
        assert result.minor_cycles == 5

    def test_store_to_load_different_address(self):
        instrs = [
            build.sw(virtual(1), virtual(100), 0),
            build.lw(virtual(2), virtual(101), 0),
        ]
        trace = Trace.from_instructions(instrs, addrs=[64, 65])
        lats = {k: 1 for k in InstrClass}
        lats[InstrClass.STORE] = 4
        cfg = MachineConfig(name="slowstore", issue_width=2, latencies=lats)
        assert issue_schedule(trace, cfg) == [0, 0]


class TestClassConflicts:
    def test_single_load_unit_serializes_loads(self):
        instrs = [build.lw(virtual(i), virtual(100 + i), i) for i in range(4)]
        cfg = MachineConfig(
            name="mem1",
            issue_width=4,
            units=(
                unit("mem", [InstrClass.LOAD, InstrClass.STORE]),
                unit("alu", [k for k in InstrClass
                             if k not in (InstrClass.LOAD, InstrClass.STORE)],
                     multiplicity=4),
            ),
        )
        times = issue_schedule(Trace.from_instructions(instrs), cfg)
        assert times == [0, 1, 2, 3]

    def test_duplicated_unit_allows_parallel_issue(self):
        instrs = [build.lw(virtual(i), virtual(100 + i), i) for i in range(4)]
        cfg = MachineConfig(
            name="mem2",
            issue_width=4,
            units=(
                unit("mem", [InstrClass.LOAD, InstrClass.STORE], multiplicity=2),
                unit("alu", [k for k in InstrClass
                             if k not in (InstrClass.LOAD, InstrClass.STORE)],
                     multiplicity=4),
            ),
        )
        times = issue_schedule(Trace.from_instructions(instrs), cfg)
        assert times == [0, 0, 1, 1]

    def test_unit_issue_latency(self):
        instrs = [
            build.alu(Opcode.MUL, virtual(i), virtual(50 + i), virtual(80 + i))
            for i in range(3)
        ]
        cfg = MachineConfig(
            name="slowmul",
            issue_width=2,
            units=(
                unit("mul", [InstrClass.INTMUL], issue_latency=3),
                unit("rest", [k for k in InstrClass if k != InstrClass.INTMUL],
                     multiplicity=2),
            ),
        )
        times = issue_schedule(Trace.from_instructions(instrs), cfg)
        assert times == [0, 3, 6]


class TestInOrderIssue:
    def test_issue_times_nondecreasing(self):
        instrs = [
            build.alui(Opcode.ADDI, virtual(1), virtual(0), 1),
            build.alui(Opcode.ADDI, virtual(2), virtual(1), 1),  # stalls
            build.alui(Opcode.ADDI, virtual(3), virtual(100), 1),  # ready
        ]
        lats = {k: 1 for k in InstrClass}
        lats[InstrClass.ADDSUB] = 4
        cfg = MachineConfig(name="slow", issue_width=4, latencies=lats)
        times = issue_schedule(Trace.from_instructions(instrs), cfg)
        # the third is independent but must not issue before the second
        assert times == sorted(times)
        assert times[1] == 4
        assert times[2] == 4

    def test_parallelism_helper(self):
        assert parallelism(independent(8), ideal_superscalar(8)) == pytest.approx(8.0)


class TestBranches:
    def test_branches_never_stall_the_front_end(self):
        # perfect prediction: a branch plus independent work all issue
        # back-to-back even with branch latency > 1
        instrs = [
            build.bnez(virtual(0), "somewhere"),
            build.alui(Opcode.ADDI, virtual(1), virtual(2), 1),
        ]
        trace = Trace(static=instrs)
        trace.append(0)
        trace.append(1)
        lats = {k: 1 for k in InstrClass}
        lats[InstrClass.BRANCH] = 3
        cfg = MachineConfig(name="slowbr", issue_width=2, latencies=lats)
        assert issue_schedule(trace, cfg) == [0, 0]

"""Tests for the fault-tolerant execution engine.

Covers the fault-injection DSL (:mod:`repro.engine.faults`), the retry /
backoff / degradation ladder (:mod:`repro.engine.resilience`), and the
end-to-end guarantees the supervised engine advertises: a sweep always
completes, surviving cells are bit-identical to a clean serial run, and
run reports pass the schema validator's status-conservation check.
"""

from __future__ import annotations

import importlib.util
import os
import pickle
import subprocess
import sys
from pathlib import Path

import pytest

import repro.api as api
from repro.benchmarks import suite
from repro.engine.executor import execute
from repro.engine.faults import (
    FAULT_EXIT_CODE,
    NO_FAULTS,
    FaultPlan,
    FaultSpec,
    InjectedFaultError,
)
from repro.engine.plan import plan_sweep
from repro.engine.resilience import (
    CELL_STATUSES,
    CellError,
    GroupOutcome,
    ResourceLimits,
    RetryPolicy,
    classify_exception,
    failure_manifest,
    run_group_serial,
)
from repro.errors import InterpBudgetError, ResourceLimitError, ReproError
from repro.obs.recorder import JsonlRecorder, SCHEMA_VERSION

SCRIPTS_DIR = Path(__file__).resolve().parent.parent / "scripts"

#: A fast policy so retry/backoff tests don't sleep for real.
FAST = RetryPolicy(base_delay=0.001, max_delay=0.01, group_timeout=60.0)


@pytest.fixture(autouse=True)
def _fresh_memo():
    suite.clear_cache()
    yield
    suite.clear_cache()


@pytest.fixture(autouse=True)
def _no_env_faults(monkeypatch):
    """Keep ambient $REPRO_FAULTS out of every test in this module."""
    monkeypatch.delenv("REPRO_FAULTS", raising=False)


def load_validator():
    spec = importlib.util.spec_from_file_location(
        "check_report_schema", SCRIPTS_DIR / "check_report_schema.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestFaultParsing:
    def test_empty_plans(self):
        assert not FaultPlan.parse(None)
        assert not FaultPlan.parse("")
        assert not FaultPlan.parse("  ")
        assert not NO_FAULTS

    def test_single_spec(self):
        plan = FaultPlan.parse("crash@whet")
        assert plan.specs == (FaultSpec(kind="crash", benchmark="whet"),)
        assert plan.specs[0].count == 1

    def test_full_syntax(self):
        plan = FaultPlan.parse(
            "hang@linpack/base#2~0.5, corrupt-result@*; seed=7, hang=1.5"
        )
        assert plan.seed == 7
        assert plan.hang_seconds == 1.5
        hang, corrupt = plan.specs
        assert (hang.kind, hang.benchmark, hang.machine) == \
            ("hang", "linpack", "base")
        assert hang.count == 2
        assert hang.probability == 0.5
        assert (corrupt.kind, corrupt.benchmark) == ("corrupt-result", "*")

    def test_inf_count(self):
        plan = FaultPlan.parse("crash@whet#inf")
        assert plan.should_fire("crash", "whet", "base", 10_000)

    def test_machine_matching_is_loose(self):
        plan = FaultPlan.parse("crash@whet/superscalar:4")
        assert plan.should_fire("crash", "whet", "superscalar-4", 1)
        assert not plan.should_fire("crash", "whet", "base", 1)

    def test_count_limits_attempts(self):
        plan = FaultPlan.parse("crash@whet#2")
        assert plan.should_fire("crash", "whet", "base", 1)
        assert plan.should_fire("crash", "whet", "base", 2)
        assert not plan.should_fire("crash", "whet", "base", 3)

    def test_malformed_specs_raise(self):
        for bad in ("crash", "nosuchkind@whet", "crash@whet#x",
                    "crash@whet~2.0"):
            with pytest.raises(ValueError):
                FaultPlan.parse(bad)

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "crash@whet")
        assert FaultPlan.from_env().specs[0].kind == "crash"
        monkeypatch.delenv("REPRO_FAULTS")
        assert not FaultPlan.from_env()

    def test_probability_gate_is_deterministic(self):
        plan = FaultPlan.parse("crash@*~0.5, seed=3")
        draws = [plan.should_fire("crash", f"b{i}", "m", 1)
                 for i in range(64)]
        assert draws == [plan.should_fire("crash", f"b{i}", "m", 1)
                         for i in range(64)]
        assert any(draws) and not all(draws)

    def test_plan_is_picklable(self):
        plan = FaultPlan.parse("crash@whet#2, seed=9")
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_parent_crash_raises_instead_of_exiting(self):
        plan = FaultPlan.parse("crash@whet")
        with pytest.raises(InjectedFaultError) as exc:
            plan.fire_group_faults("whet", ["base"], 1, in_worker=False)
        assert exc.value.kind == "crash"

    def test_injected_fault_error_pickles(self):
        err = InjectedFaultError("hang", "whet/base")
        clone = pickle.loads(pickle.dumps(err))
        assert (clone.kind, clone.site) == ("hang", "whet/base")


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=0.5, jitter=0.0)
        delays = [policy.backoff_delay(a) for a in range(1, 6)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=1.0, jitter=0.5)
        d1 = policy.backoff_delay(2, "whet/default")
        assert d1 == policy.backoff_delay(2, "whet/default")
        assert 0.2 <= d1 <= 0.3
        assert d1 != policy.backoff_delay(2, "linpack/default")

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(group_timeout=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)


class TestClassification:
    def test_typed_errors(self):
        assert classify_exception(InterpBudgetError(10, 3, 10)) == "budget"
        assert classify_exception(
            ResourceLimitError("rss_mb", 2048.0, 1024.0)) == "rss"
        assert classify_exception(
            InjectedFaultError("crash", "x")) == "crash"
        assert classify_exception(
            InjectedFaultError("corrupt-result", "x")) == "corrupt"
        assert classify_exception(ReproError("boom")) == "error"
        assert classify_exception(RuntimeError("?")) == "unknown"

    def test_transient_vs_deterministic(self):
        assert CellError("crash", "", 1, "worker").transient
        assert CellError("hang", "", 1, "worker").transient
        assert not CellError("budget", "", 1, "worker").transient
        assert not CellError("error", "", 1, "worker").transient


class TestSerialLadder:
    def test_clean_first_attempt(self):
        outcome = run_group_serial(
            "k", lambda attempt: ([(0, _cell())], False), FAST,
        )
        assert outcome.status == "ok"
        assert outcome.attempts == 1
        assert outcome.history == []

    def test_transient_then_success(self):
        calls = []

        def runner(attempt):
            calls.append(attempt)
            if attempt == 1:
                raise InjectedFaultError("crash", "k")
            return ([(0, _cell())], False)

        outcome = run_group_serial("k", runner, FAST)
        assert outcome.status == "retried"
        assert outcome.attempts == 2
        assert calls == [1, 2]
        assert [r.kind for r in outcome.history] == ["crash"]

    def test_deterministic_error_fails_fast(self):
        calls = []

        def runner(attempt):
            calls.append(attempt)
            raise InterpBudgetError(100, 7, 100)

        outcome = run_group_serial("k", runner, FAST)
        assert outcome.status == "failed"
        assert calls == [1]
        assert outcome.error.kind == "budget"

    def test_budget_exhaustion_fails(self):
        def runner(attempt):
            raise InjectedFaultError("crash", "k")

        outcome = run_group_serial("k", runner, FAST)
        assert outcome.status == "failed"
        assert outcome.attempts == FAST.max_attempts
        assert len(outcome.history) == FAST.max_attempts

    def test_corrupt_payload_is_retried(self):
        def runner(attempt):
            cell = _cell(instructions=-1 if attempt == 1 else 5)
            return ([(0, cell)], False)

        outcome = run_group_serial("k", runner, FAST,
                                   expected_indices={0})
        assert outcome.status == "retried"
        assert outcome.history[0].kind == "corrupt"


def _cell(**overrides):
    """A structurally valid CellResult for ladder unit tests."""
    from repro.engine.executor import CellResult

    fields = dict(
        benchmark="whet", options_label="default", machine="base",
        instructions=5, checksum_ok=True, minor_cycles=5,
        base_cycles=5.0, parallelism=1.0, stalls=None, seconds=0.0,
        compile_seconds=0.0, compile_cached=False,
    )
    fields.update(overrides)
    return CellResult(**fields)


class TestFailureManifest:
    def test_none_when_clean(self):
        assert failure_manifest([_cell()]) is None

    def test_lists_failures(self):
        bad = _cell(machine="superscalar-4")
        bad.status = "failed"
        bad.error = {"kind": "crash", "message": "worker died"}
        text = failure_manifest([_cell(), bad])
        assert text.startswith("FAILED 1 cell(s):")
        assert "whet@superscalar-4" in text
        assert "crash" in text


BENCHES = ["whet", "linpack"]
MACHINES = ["base", "superscalar:4"]


def _sweep(workers=1, faults=None, policy=FAST, benches=BENCHES):
    plan = plan_sweep(benches, MACHINES, observe=True)
    return execute(plan, workers=workers, policy=policy, faults=faults)


def _payload(cell):
    """Every measurement field of one cell (identity comparison)."""
    return (cell.benchmark, cell.machine, cell.options_label,
            cell.instructions, cell.checksum_ok, cell.minor_cycles,
            cell.base_cycles, cell.parallelism,
            cell.stalls.as_dict() if cell.stalls is not None else None,
            cell.replay)


class TestSupervisedEngine:
    def test_clean_parallel_matches_serial(self):
        serial = _sweep(workers=1)
        parallel = _sweep(workers=2)
        assert [_payload(c) for c in parallel.cells] == \
            [_payload(c) for c in serial.cells]
        assert all(c.status == "ok" and c.attempts == 1
                   for c in parallel.cells)
        report = parallel.report
        assert report.ok_cells == len(parallel.cells)
        assert report.failed_cells == 0

    def test_worker_crash_recovers(self):
        clean = _sweep(workers=1)
        res = _sweep(workers=2, faults=FaultPlan.parse("crash@whet#1"))
        assert [_payload(c) for c in res.cells] == \
            [_payload(c) for c in clean.cells]
        whet = [c for c in res.cells if c.benchmark == "whet"]
        assert all(c.status == "retried" for c in whet)
        assert res.report.pool_restarts >= 1
        assert res.report.failed_cells == 0

    def test_hang_times_out_and_recovers(self):
        clean = _sweep(workers=1)
        policy = RetryPolicy(base_delay=0.001, max_delay=0.01,
                             group_timeout=2.0)
        res = _sweep(workers=2, policy=policy,
                     faults=FaultPlan.parse("hang@whet#1, hang=30"))
        assert [_payload(c) for c in res.cells] == \
            [_payload(c) for c in clean.cells]
        whet = [c for c in res.cells if c.benchmark == "whet"]
        assert all(c.status == "retried" for c in whet)
        assert any(r["kind"] == "hang"
                   for c in whet for r in c.history)
        # The innocent in-flight group must not be charged an attempt.
        linpack = [c for c in res.cells if c.benchmark == "linpack"]
        assert all(c.status == "ok" for c in linpack)

    def test_corrupt_result_is_caught_and_retried(self):
        clean = _sweep(workers=1)
        res = _sweep(workers=2,
                     faults=FaultPlan.parse("corrupt-result@linpack#1"))
        assert [_payload(c) for c in res.cells] == \
            [_payload(c) for c in clean.cells]
        linpack = [c for c in res.cells if c.benchmark == "linpack"]
        assert all(c.status == "retried" for c in linpack)
        assert any(r["kind"] == "corrupt"
                   for c in linpack for r in c.history)

    def test_degraded_serial_fallback(self):
        # Corrupt exactly the worker attempts; the serial rerun (attempt
        # max_attempts+1) is clean, so the group degrades successfully.
        clean = _sweep(workers=1)
        res = _sweep(
            workers=2,
            faults=FaultPlan.parse(f"corrupt-result@whet#{FAST.max_attempts}"),
        )
        whet = [c for c in res.cells if c.benchmark == "whet"]
        assert all(c.status == "degraded" for c in whet)
        assert [_payload(c) for c in res.cells] == \
            [_payload(c) for c in clean.cells]

    def test_exhausted_ladder_fails_without_aborting(self):
        res = _sweep(workers=2,
                     faults=FaultPlan.parse("corrupt-result@whet#inf"))
        whet = [c for c in res.cells if c.benchmark == "whet"]
        assert all(c.status == "failed" for c in whet)
        assert all(c.error["kind"] == "corrupt" for c in whet)
        linpack = [c for c in res.cells if c.benchmark == "linpack"]
        assert all(c.status == "ok" for c in linpack)
        assert failure_manifest(res.cells) is not None
        assert res.failed_cells() == whet

    def test_error_kind_fails_fast(self):
        res = _sweep(workers=2, faults=FaultPlan.parse("error@whet"))
        whet = [c for c in res.cells if c.benchmark == "whet"]
        assert all(c.status == "failed" for c in whet)
        # One worker attempt, no retries, no serial fallback.
        assert all(c.attempts == 1 for c in whet)

    def test_serial_path_retries_too(self):
        clean = _sweep(workers=1)
        res = _sweep(workers=1, faults=FaultPlan.parse("crash@whet#1"))
        assert [_payload(c) for c in res.cells] == \
            [_payload(c) for c in clean.cells]
        whet = [c for c in res.cells if c.benchmark == "whet"]
        assert all(c.status == "retried" for c in whet)

    def test_status_conservation_in_report(self):
        res = _sweep(workers=2,
                     faults=FaultPlan.parse("corrupt-result@whet#inf"))
        report = res.report
        assert (report.ok_cells + report.retried_cells
                + report.degraded_cells + report.failed_cells) \
            == report.cells

    def test_instruction_budget_guardrail(self):
        policy = RetryPolicy(
            base_delay=0.001, max_delay=0.01,
            limits=ResourceLimits(max_instructions=100),
        )
        res = _sweep(workers=1, policy=policy, benches=["whet"])
        assert all(c.status == "failed" for c in res.cells)
        assert all(c.error["kind"] == "budget" for c in res.cells)
        # Deterministic: exactly one attempt, no pointless retries.
        assert all(c.attempts == 1 for c in res.cells)


class TestAcceptance:
    """The issue's acceptance scenario: crash + hang + corrupt payload
    injected into three distinct cells of a reduced grid."""

    BENCHES = ["whet", "linpack", "stanford"]

    def test_faulted_sweep_matches_clean_run(self, tmp_path):
        plan = plan_sweep(self.BENCHES, MACHINES, observe=True)
        clean = execute(plan, workers=1)
        suite.clear_cache()

        faults = FaultPlan.parse(
            "crash@whet#1, hang@linpack#1, corrupt-result@stanford#1,"
            " hang=30"
        )
        policy = RetryPolicy(base_delay=0.001, max_delay=0.01,
                             group_timeout=5.0)
        report_path = tmp_path / "run_report.jsonl"
        with JsonlRecorder(str(report_path)) as rec:
            rec.emit("run_start", schema=SCHEMA_VERSION, run_id="faulted")
            plan2 = plan_sweep(self.BENCHES, MACHINES, observe=True)
            res = execute(plan2, workers=2, recorder=rec,
                          policy=policy, faults=faults)
            rec.emit("run_end", seconds=res.report.seconds,
                     counters=dict(rec.counters))

        # The sweep completed; every injected cell survived the ladder.
        assert res.report.failed_cells == 0
        for bench in self.BENCHES:
            cells = [c for c in res.cells if c.benchmark == bench]
            assert all(c.status in ("retried", "degraded")
                       for c in cells), bench

        # Survivors are bit-identical to the clean serial run, stall
        # and replay-memo counters included.
        assert [_payload(c) for c in res.cells] == \
            [_payload(c) for c in clean.cells]

        # The JSONL report passes the extended schema validator,
        # including its status-conservation check.
        validator = load_validator()
        assert validator.check_file(str(report_path)) == []
        engine_events = [e for e in rec.events_named("engine")]
        assert engine_events, "no engine event recorded"

    def test_validator_rejects_conservation_violation(self, tmp_path):
        validator = load_validator()
        errors = validator.check_event({
            "event": "engine", "workers": 1, "cells": 4, "groups": 2,
            "cache_hits": 0, "cache_misses": 2, "seconds": 0.1,
            "ok_cells": 1, "retried_cells": 1, "degraded_cells": 1,
            "failed_cells": 0,
        })
        assert any("status conservation" in e for e in errors)

    def test_validator_rejects_unknown_status(self):
        validator = load_validator()
        errors = validator.check_event({
            "event": "cell", "benchmark": "whet", "machine": "base",
            "options": "default", "seconds": 0.1, "cached": False,
            "status": "exploded",
        })
        assert any("status" in e for e in errors)


class TestBudgetError:
    def test_fields_and_message(self):
        err = InterpBudgetError(12345, 67, 10000)
        assert err.executed == 12345
        assert err.pc == 67
        assert err.budget == 10000
        assert "12345" in str(err) and "pc=67" in str(err)

    def test_pickles(self):
        err = InterpBudgetError(5, 2, 4)
        clone = pickle.loads(pickle.dumps(err))
        assert (clone.executed, clone.pc, clone.budget) == (5, 2, 4)

    def test_raised_by_interpreter(self):
        from repro.sim.interp import run

        program = api.compile(suite.get("whet").source())
        with pytest.raises(InterpBudgetError) as exc:
            run(program, max_instructions=100)
        assert exc.value.budget == 100
        assert exc.value.executed >= 100


class TestCliFailurePropagation:
    def test_suite_exits_nonzero_on_failed_cell(self, capsys):
        from repro.__main__ import main

        code = main([
            "suite", "--benchmarks", "whet", "--machines", "base",
            "--no-cache", "--faults", "error@whet", "--retries", "1",
        ])
        assert code == 1
        err = capsys.readouterr().err
        assert "FAILED 1 cell(s)" in err
        assert "whet@base" in err

    def test_suite_exits_zero_when_faults_recovered(self, capsys):
        from repro.__main__ import main

        code = main([
            "suite", "--benchmarks", "whet", "--machines", "base",
            "--no-cache", "--faults", "crash@whet#1",
        ])
        assert code == 0
        assert "FAILED" not in capsys.readouterr().err

    def test_measure_exits_nonzero_on_failed_cell(self, capsys):
        from repro.__main__ import main

        code = main([
            "measure", "whet", "--machines", "base", "--no-cache",
            "--faults", "error@whet", "--retries", "1",
        ])
        assert code == 1
        assert "FAILED 1 cell(s)" in capsys.readouterr().err

    def test_bad_faults_spec_exits_2(self, capsys):
        from repro.__main__ import main

        with pytest.raises(SystemExit) as exc:
            main(["suite", "--benchmarks", "whet", "--machines", "base",
                  "--no-cache", "--faults", "nosuchkind@whet"])
        assert exc.value.code == 2


WORKER_CLEANUP_SCRIPT = r"""
import os, signal, sys, threading, time
sys.path.insert(0, {src!r})

import repro.api as api
from repro.engine.faults import FaultPlan
from repro.engine.resilience import RetryPolicy

def interrupt_soon():
    time.sleep({delay})
    os.kill(os.getpid(), signal.SIGINT)

threading.Thread(target=interrupt_soon, daemon=True).start()
plan = api.plan(["whet", "linpack", "stanford"], ["base", "superscalar:4"])
try:
    api.sweep(plan, workers=2, cache_dir={cache!r},
              faults=FaultPlan.parse("hang@*#inf, hang=60"),
              policy=RetryPolicy(group_timeout=120.0))
except KeyboardInterrupt:
    print("INTERRUPTED", flush=True)
    sys.exit(3)
print("COMPLETED", flush=True)
"""


class TestInterruptCleanup:
    """KeyboardInterrupt / shutdown must not leak workers or temp files."""

    def test_no_leaked_workers_or_tmp_files(self, tmp_path):
        cache_dir = tmp_path / "cache"
        script = WORKER_CLEANUP_SCRIPT.format(
            src=str(Path(__file__).resolve().parent.parent / "src"),
            delay=3.0,
            cache=str(cache_dir),
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, timeout=120,
        )
        assert "INTERRUPTED" in proc.stdout, (proc.stdout, proc.stderr)
        assert proc.returncode == 3
        # Every worker the supervised pool spawned must be gone: the
        # parent exited, so any survivor is reparented and would still
        # show our cache dir / faults marker in its cmdline. Instead we
        # assert no orphaned python process holds the cache dir open and
        # no temp spill remains.
        leftovers = list(cache_dir.rglob("*.tmp"))
        assert leftovers == []

    def test_completed_run_leaves_no_tmp_files(self, tmp_path):
        cache_dir = tmp_path / "cache"
        plan = plan_sweep(["whet"], MACHINES)
        from repro.engine.cache import TraceCache

        execute(plan, workers=2, cache=TraceCache(str(cache_dir)))
        assert list(cache_dir.rglob("*.tmp")) == []
        assert list(cache_dir.rglob("*.pkl"))


class TestWorkerCrashExitCode:
    def test_injected_crash_uses_distinct_exit_code(self):
        # The fault fires through os._exit in a true worker; simulate by
        # spawning a child that calls the firing path with in_worker=True.
        script = (
            "import sys; sys.path.insert(0, {src!r});"
            "from repro.engine.faults import FaultPlan;"
            "FaultPlan.parse('crash@whet').fire_group_faults("
            "'whet', ['base'], 1, in_worker=True)"
        ).format(src=str(Path(__file__).resolve().parent.parent / "src"))
        proc = subprocess.run([sys.executable, "-c", script],
                              capture_output=True, timeout=60)
        assert proc.returncode == FAULT_EXIT_CODE


class TestSigtermHandler:
    """SIGTERM must take the KeyboardInterrupt shutdown path."""

    def test_sigterm_raises_keyboard_interrupt(self):
        script = (
            "import os, signal, sys; sys.path.insert(0, {src!r})\n"
            "from repro.engine.resilience import install_sigterm_handler\n"
            "assert install_sigterm_handler()\n"
            "try:\n"
            "    os.kill(os.getpid(), signal.SIGTERM)\n"
            "    print('NOT DELIVERED')\n"
            "except KeyboardInterrupt as exc:\n"
            "    print('CAUGHT', exc)\n"
        ).format(src=str(Path(__file__).resolve().parent.parent / "src"))
        proc = subprocess.run([sys.executable, "-c", script],
                              capture_output=True, text=True, timeout=60)
        assert proc.returncode == 0, proc.stderr
        assert "CAUGHT SIGTERM" in proc.stdout

    def test_install_from_worker_thread_is_refused(self):
        import signal
        import threading

        from repro.engine.resilience import install_sigterm_handler

        before = signal.getsignal(signal.SIGTERM)
        results = []
        thread = threading.Thread(
            target=lambda: results.append(install_sigterm_handler()))
        thread.start()
        thread.join()
        assert results == [False]
        assert signal.getsignal(signal.SIGTERM) is before

    def test_cli_maps_interrupt_to_exit_130(self, monkeypatch, capsys):
        import signal

        import repro.__main__ as cli

        def boom(args):
            raise KeyboardInterrupt("SIGTERM")

        before = signal.getsignal(signal.SIGTERM)
        monkeypatch.setitem(
            cli.main.__globals__, "_cmd_trace", boom)
        try:
            code = cli.main(["trace", "whatever.jsonl"])
        finally:
            signal.signal(signal.SIGTERM, before)
        assert code == 130
        assert "interrupted" in capsys.readouterr().err

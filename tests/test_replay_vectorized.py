"""Tests for the vectorized replay kernel and the persistent memo store.

Three guarantees, layered:

* **Bit-identity** — the vectorized structure-of-arrays kernel
  (:mod:`repro.sim.replay_vec`, NumPy backend) and the persistent-memo
  warm-start path (:mod:`repro.sim.memo`) produce exactly the results
  of the scalar memoized loop and of forced direct per-instruction
  replay: minor cycles, stall breakdowns, and issue schedules.
  Hypothesis drives this over random Tin programs on every edge
  machine shape.
* **Persistence hygiene** — memo payloads round-trip through the
  on-disk store (a cold handle starts fully warm with zero misses),
  and corrupt or stale entries are dropped and rewritten, never
  trusted and never fatal.
* **Degradation** — with NumPy unavailable (``REPRO_NO_NUMPY=1``) the
  pure-stdlib scalar backend is selected and produces the same cycle
  counts, checked in a subprocess.
"""

from __future__ import annotations

import os
import pickle
import subprocess
import sys

import pytest
from hypothesis import HealthCheck, given, settings

from repro.benchmarks import suite
from repro.engine.cache import TraceCache
from repro.engine.executor import execute
from repro.engine.plan import plan_sweep
from repro.machine.presets import resolve
from repro.obs.schema import check_replay
from repro.sim import replay as replay_mod
from repro.sim.memo import (
    MemoStore,
    NULL_MEMO_STORE,
    clear_registry,
    memo_key,
    open_memo_store,
    replay_with_memo,
)
from repro.sim.replay import ReplayCore
from repro.sim.timing import simulate
from tests.test_fuzz_differential import _block, _program
from tests.test_replay import _edge_machines, _trace_for

requires_numpy = pytest.mark.skipif(
    replay_mod.BACKEND != "numpy",
    reason="vectorized kernel needs the NumPy backend",
)


@pytest.fixture(autouse=True)
def _isolated_memo_registry():
    """Keep the process-wide memo payload registry out of every test."""
    clear_registry()
    yield
    clear_registry()


def _whet_trace():
    bench = suite.get("whet")
    return suite.run_benchmark(bench, suite.default_options(bench)).trace


class TestVectorizedEqualsScalar:
    """The kernel's verify-and-advance path never changes results."""

    @settings(
        max_examples=15, deadline=None,
        suppress_health_check=[HealthCheck.too_slow,
                               HealthCheck.data_too_large],
    )
    @given(body=_block(2, 0))
    def test_random_programs_all_machines(self, body):
        trace = _trace_for(_program(body))
        for config in _edge_machines():
            ref = simulate(trace, config, observe=True, memoize=False)
            core = ReplayCore(trace, config, observe=True)
            first = core.run()      # resolves (scalar)
            steady = core.run()     # vectorized under the NumPy backend
            label = config.name
            assert first.minor_cycles == ref.minor_cycles, label
            assert steady.minor_cycles == ref.minor_cycles, label
            assert first.stalls == ref.stalls, label
            assert steady.stalls == ref.stalls, label
            stats = steady.stats
            assert (stats.vectorized_blocks + stats.scalar_fallback_blocks
                    <= stats.blocks), label

    @settings(
        max_examples=10, deadline=None,
        suppress_health_check=[HealthCheck.too_slow,
                               HealthCheck.data_too_large],
    )
    @given(body=_block(2, 0))
    def test_issue_schedules_match(self, body):
        trace = _trace_for(_program(body))
        for config in _edge_machines():
            core = ReplayCore(trace, config, want_times=True)
            ref = ReplayCore(trace, config, want_times=True).run(
                memoize=False)
            core.run()
            steady = core.run()
            assert steady.times == ref.times, config.name

    @requires_numpy
    def test_real_benchmark_fully_vectorized(self):
        """On a real trace the steady-state rerun goes entirely through
        the kernel — no scalar fallback."""
        trace = _whet_trace()
        for config in _edge_machines():
            core = ReplayCore(trace, config, observe=True)
            core.run()
            steady = core.run()
            stats = steady.stats
            assert stats.vectorized_blocks == stats.blocks, config.name
            assert stats.scalar_fallback_blocks == 0, config.name

    @requires_numpy
    def test_tampered_resolution_falls_back_to_scalar(self):
        """A recorded schedule that no longer verifies is re-resolved
        on the scalar path — bit-identically, with the fallback
        counted."""
        trace = _whet_trace()
        config = resolve("superscalar:4")
        ref = simulate(trace, config, observe=True, memoize=False)
        core = ReplayCore(trace, config, observe=True)
        core.run()
        # Corrupt one recorded memo key's issue-count component so
        # verification of the recorded schedule cannot succeed.
        bid, key, entry, kind = core._resolved[0]
        core._resolved[0] = (bid, (key[0] + 1,) + key[1:], entry, kind)
        core._vec = None
        out = core.run()
        assert out.minor_cycles == ref.minor_cycles
        assert out.stalls == ref.stalls
        assert out.stats.scalar_fallback_blocks == out.stats.blocks
        assert out.stats.vectorized_blocks == 0
        # ... and the re-resolution repaired the schedule for good.
        repaired = core.run()
        assert repaired.minor_cycles == ref.minor_cycles
        assert repaired.stats.vectorized_blocks == repaired.stats.blocks


class TestMemoPersistence:
    """Round-trip, hygiene, and accounting of the on-disk memo store."""

    def test_round_trip_is_bit_identical_and_warm(self, tmp_path):
        trace = _whet_trace()
        config = resolve("superscalar:4")
        ref = simulate(trace, config, observe=True, memoize=False)
        first_store = MemoStore(str(tmp_path / "memo"))
        warmup = replay_with_memo(first_store, trace, config, observe=True)
        assert warmup.minor_cycles == ref.minor_cycles
        assert first_store.stats.misses == 1
        assert first_store.stats.stores >= 1

        clear_registry()  # force the second handle to hit the disk
        store = MemoStore(str(tmp_path / "memo"))
        out = replay_with_memo(store, trace, config, observe=True)
        assert out.minor_cycles == ref.minor_cycles
        assert out.stalls == ref.stalls
        assert store.stats.hits == 1
        assert store.stats.misses == 0
        assert out.stats.memo_misses == 0
        assert out.stats.memo_persisted_hits > 0
        assert (out.stats.memo_persisted_hits
                <= out.stats.memo_hits)
        # Steady state: nothing new was learned, nothing is rewritten.
        assert store.stats.stores == 0
        if replay_mod.BACKEND == "numpy":
            assert out.stats.vectorized_blocks == out.stats.blocks

    def test_corrupt_entry_is_dropped_and_rewritten(self, tmp_path):
        trace = _whet_trace()
        config = resolve("base")
        ref = simulate(trace, config, memoize=False)
        prime = MemoStore(str(tmp_path / "memo"))
        replay_with_memo(prime, trace, config)
        key = memo_key(trace, config)
        path = prime.path_for(key)
        assert os.path.exists(path)
        with open(path, "wb") as handle:
            handle.write(b"\x00not a pickle")

        clear_registry()
        store = MemoStore(str(tmp_path / "memo"))
        out = replay_with_memo(store, trace, config)
        assert out.minor_cycles == ref.minor_cycles
        assert store.stats.corrupt == 1
        assert store.stats.hits == 0
        assert store.stats.stores == 1      # rewritten from this run
        assert store.stats.gets == (store.stats.hits
                                    + store.stats.misses
                                    + store.stats.corrupt)
        # The rewritten entry is healthy again.
        clear_registry()
        fresh = MemoStore(str(tmp_path / "memo"))
        again = replay_with_memo(fresh, trace, config)
        assert again.minor_cycles == ref.minor_cycles
        assert fresh.stats.hits == 1

    def test_stale_payload_is_rejected_not_trusted(self, tmp_path):
        """A structurally valid file whose payload fails deep
        validation (here: recorded for the wrong replay mode) is
        reclassified hit -> corrupt and replaced."""
        trace = _whet_trace()
        config = resolve("base")
        ref = simulate(trace, config, memoize=False)
        prime = MemoStore(str(tmp_path / "memo"))
        replay_with_memo(prime, trace, config)
        key = memo_key(trace, config)
        path = prime.path_for(key)
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        payload["mode"] = (not payload["mode"][0], payload["mode"][1])
        with open(path, "wb") as handle:
            pickle.dump(payload, handle)

        clear_registry()
        store = MemoStore(str(tmp_path / "memo"))
        out = replay_with_memo(store, trace, config)
        assert out.minor_cycles == ref.minor_cycles
        assert store.stats.corrupt == 1
        assert store.stats.hits == 0
        assert store.stats.stores == 1

    def test_wrong_format_tag_is_corrupt(self, tmp_path):
        trace = _whet_trace()
        config = resolve("base")
        prime = MemoStore(str(tmp_path / "memo"))
        replay_with_memo(prime, trace, config)
        path = prime.path_for(memo_key(trace, config))
        with open(path, "wb") as handle:
            pickle.dump({"format": "replay-memo-v0"}, handle)
        clear_registry()
        store = MemoStore(str(tmp_path / "memo"))
        replay_with_memo(store, trace, config)
        assert store.stats.corrupt == 1

    def test_null_store_runs_plain(self):
        trace = _whet_trace()
        config = resolve("base")
        out = replay_with_memo(NULL_MEMO_STORE, trace, config)
        ref = simulate(trace, config, memoize=False)
        assert out.minor_cycles == ref.minor_cycles
        assert NULL_MEMO_STORE.stats.gets == 0

    def test_open_memo_store_follows_cache(self, tmp_path):
        assert open_memo_store(None) is not None
        assert open_memo_store(None).enabled is False
        cache = TraceCache(str(tmp_path))
        store = open_memo_store(cache)
        assert store.enabled
        assert store.root == os.path.join(cache.root, "memo")

    def test_memo_key_separates_modes(self):
        trace = _whet_trace()
        config = resolve("base")
        keys = {
            memo_key(trace, config),
            memo_key(trace, config, observe=True),
            memo_key(trace, config, want_times=True),
            memo_key(trace, resolve("superscalar:4")),
        }
        assert len(keys) == 4


class TestEngineIntegration:
    """The engine persists and re-adopts memo tables via its cache."""

    def test_cache_dir_grows_memo_store(self, tmp_path):
        suite.clear_cache()
        plan = plan_sweep(["whet"], ["base", "superscalar:4"],
                          observe=True)
        result = execute(plan, cache=TraceCache(str(tmp_path)))
        assert result.report.replay_backend == replay_mod.BACKEND
        memo_root = tmp_path / "memo"
        assert memo_root.is_dir()
        assert any(memo_root.rglob("*.pkl"))

        clear_registry()
        suite.clear_cache()
        again = execute(plan_sweep(["whet"], ["base", "superscalar:4"],
                                   observe=True),
                        cache=TraceCache(str(tmp_path)))
        assert again.report.memo_persisted_hits > 0
        for mine, theirs in zip(result.cells, again.cells):
            assert mine.minor_cycles == theirs.minor_cycles
            assert mine.stalls == theirs.stalls


class TestSchemaConservation:
    """The validator enforces the new vectorized-counter laws."""

    def _payload(self, **overrides):
        payload = {
            "blocks": 10, "memo_hits": 6, "memo_misses": 4,
            "fallbacks": 0, "memo_instructions": 90,
            "direct_instructions": 10,
            "vectorized_blocks": 10, "scalar_fallback_blocks": 0,
            "memo_persisted_hits": 5,
        }
        payload.update(overrides)
        return payload

    def test_valid_payload_passes(self):
        record = {"instructions": 100}
        assert check_replay(self._payload(), record) == []

    def test_vectorized_exceeding_blocks_fails(self):
        record = {"instructions": 100}
        errors = check_replay(
            self._payload(vectorized_blocks=8, scalar_fallback_blocks=3),
            record)
        assert any("vectorized+fallback" in e for e in errors)

    def test_persisted_exceeding_hits_fails(self):
        record = {"instructions": 100}
        errors = check_replay(self._payload(memo_persisted_hits=7), record)
        assert any("memo_persisted_hits" in e for e in errors)

    def test_pre_kernel_payload_still_valid(self):
        payload = self._payload()
        for name in ("vectorized_blocks", "scalar_fallback_blocks",
                     "memo_persisted_hits"):
            del payload[name]
        assert check_replay(payload, {"instructions": 100}) == []


_SCALAR_SNIPPET = """
import repro.sim.replay as replay_mod
assert replay_mod.BACKEND == "scalar", replay_mod.BACKEND
from repro.benchmarks import suite
from repro.machine.presets import resolve
from repro.sim.timing import simulate

bench = suite.get("whet")
trace = suite.run_benchmark(bench, suite.default_options(bench)).trace
for spec in ("base", "superscalar:4", "superpipelined:4"):
    config = resolve(spec)
    memo = simulate(trace, config, observe=True)
    ref = simulate(trace, config, observe=True, memoize=False)
    assert memo.minor_cycles == ref.minor_cycles
    assert memo.stalls == ref.stalls
    assert memo.replay.vectorized_blocks == 0
    print(spec, memo.minor_cycles)
"""


class TestScalarBackendFallback:
    """REPRO_NO_NUMPY selects the stdlib path with identical results."""

    def test_subprocess_scalar_backend_matches(self):
        env = dict(os.environ, REPRO_NO_NUMPY="1")
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", _SCALAR_SNIPPET],
            capture_output=True, text=True, env=env, check=False,
        )
        assert proc.returncode == 0, proc.stderr
        reported = {}
        for line in proc.stdout.splitlines():
            spec, cycles = line.split()
            reported[spec] = int(cycles)
        trace = _whet_trace()
        for spec, cycles in reported.items():
            assert simulate(trace, resolve(spec)).minor_cycles == cycles

"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.opt.options import CompilerOptions, OptLevel


@pytest.fixture(params=list(OptLevel), ids=lambda lvl: f"O{int(lvl)}")
def opt_level(request):
    """Parametrize a test over every optimization level."""
    return request.param


@pytest.fixture(params=list(OptLevel), ids=lambda lvl: f"O{int(lvl)}")
def options(request):
    """CompilerOptions at every optimization level."""
    return CompilerOptions(opt_level=request.param)

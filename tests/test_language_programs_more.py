"""Second conformance battery: each program exercises a distinct
behaviour not covered by the first battery (interactions between
features, evaluation order, edge values)."""

import pytest

from tests.helpers import run_tin_value

PROGRAMS = [
    ("call_in_condition",
     "proc pos(x: int): int { if (x > 0) { return 1; } return 0; }\n"
     "proc main(): int { var s, i: int; s = 0;"
     " for i = -2 to 2 { if (pos(i)) { s = s + i; } } return s; }", 3),
    ("nested_calls_in_args",
     "proc f(a: int, b: int): int { return a * 10 + b; }\n"
     "proc main(): int { return f(f(1, 2), f(3, 4)); }", 154),
    ("call_argument_evaluation_order",
     "var log: int;\n"
     "proc tick(v: int): int { log = log * 10 + v; return v; }\n"
     "proc use(a: int, b: int, c: int): int { return a + b + c; }\n"
     "proc main(): int { log = 0; use(tick(1), tick(2), tick(3));"
     " return log; }", 123),
    ("while_with_compound_condition",
     "proc main(): int { var i, j: int; i = 0; j = 10;"
     " while (i < j && j > 2) { i = i + 1; j = j - 1; }"
     " return i * 100 + j; }", 505),
    ("deeply_nested_if",
     "proc main(): int { var x: int; x = 7;"
     " if (x > 0) { if (x > 5) { if (x > 6) { return 3; }"
     " return 2; } return 1; } return 0; }", 3),
    ("chained_array_indexing",
     "var idx: int[4];\nvar val: int[4];\n"
     "proc main(): int { var i: int;"
     " for i = 0 to 3 { idx[i] = 3 - i; val[i] = i * 11; }"
     " return val[idx[0]] + val[idx[3]]; }", 33),
    ("expression_as_index",
     "var t: int[16];\n"
     "proc main(): int { var i: int;"
     " for i = 0 to 15 { t[i] = i; }"
     " return t[3 * 4 + 2] + t[(2 + 2) / 2]; }", 16),
    ("negative_numbers_through_memory",
     "var g: int;\nproc main(): int { g = -12345; return g / 100; }",
     -123),
    ("modulo_in_loop",
     "proc main(): int { var i, s: int; s = 0;"
     " for i = 1 to 30 { if (i % 3 == 0) { s = s + 1; } } return s; }",
     10),
    ("float_accumulation_order",
     "proc main(): int { var i: int; var s: float; s = 0.0;"
     " for i = 1 to 100 { s = s + 0.01; } return int(s * 100.0 + 0.5); }",
     100),
    ("int_float_int_roundtrip",
     "proc main(): int { return int(float(123456)); }", 123456),
    ("mixed_promotion_in_compare",
     "proc main(): int { var i: int; i = 3;"
     " return (i < 3.5) * 10 + (2.5 > i); }", 10),
    ("unary_minus_in_call",
     "proc neg(x: int): int { return -x; }\n"
     "proc main(): int { return neg(-5) + neg(5); }", 0),
    ("recursion_with_array_state",
     "var visited: int[8];\n"
     "proc walk(n: int): int {\n"
     "  if (n >= 8) { return 0; }\n"
     "  if (visited[n]) { return 0; }\n"
     "  visited[n] = 1;\n"
     "  return 1 + walk(n + 2) + walk(n + 3);\n"
     "}\n"
     "proc main(): int { return walk(0); }", 7),
    ("global_array_param_mutation_visible",
     "var shared: int[4];\n"
     "proc bump(a: int[]) { a[0] = a[0] + 1; }\n"
     "proc main(): int { shared[0] = 10; bump(shared); bump(shared);"
     " return shared[0]; }", 12),
    ("two_arrays_same_function",
     "var a: int[4];\nvar b: int[4];\n"
     "proc cross(x: int[], y: int[]) { var i: int;"
     " for i = 0 to 3 { x[i] = y[3 - i]; } }\n"
     "proc main(): int { var i: int;"
     " for i = 0 to 3 { b[i] = i + 1; }"
     " cross(a, b);"
     " return a[0]*1000 + a[1]*100 + a[2]*10 + a[3]; }", 4321),
    ("shift_as_multiply",
     "proc main(): int { var x: int; x = 3;"
     " return (x << 4) + (x << 0); }", 51),
    ("boolean_arithmetic",
     "proc main(): int { var a, b: int; a = 4; b = 9;"
     " return (a < b) + (a == 4) * 2 + (b != 9) * 4 + (a >= 4) * 8; }",
     11),
    ("while_false_never_runs",
     "proc main(): int { var s: int; s = 5;"
     " while (0) { s = 99; } return s; }", 5),
    ("float_compare_chain",
     "proc main(): int { var x, y: float; x = 0.5; y = 0.25;"
     " if (x > y) { if (y > 0.0) { return 1; } } return 0; }", 1),
    ("large_frame_many_arrays",
     "proc main(): int { var p: int[30]; var q: int[30]; var i, s: int;"
     " for i = 0 to 29 { p[i] = i; q[i] = 29 - i; }"
     " s = 0; for i = 0 to 29 { s = s + p[i] * q[i]; } return s; }",
     sum(i * (29 - i) for i in range(30))),
    ("const_float_arithmetic",
     "const H = 0.5;\nconst Q = 0.25;\n"
     "proc main(): int { return int((H + Q) * 8.0); }", 6),
]


@pytest.mark.parametrize(
    "name,source,expected", PROGRAMS, ids=[p[0] for p in PROGRAMS]
)
def test_program_semantics_more(name, source, expected, options):
    assert run_tin_value(source, options) == expected

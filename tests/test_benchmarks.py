"""Integration tests: the eight-benchmark suite end to end.

Every benchmark's checksum must match its pure-Python reference at every
optimization level and under unrolling — this exercises the entire
compiler, allocator, scheduler and simulator against real programs.
"""

import pytest

from repro.benchmarks import suite
from repro.isa.registers import RegisterFileSpec
from repro.machine import base_machine, ideal_superscalar
from repro.opt.options import CompilerOptions, OptLevel
from repro.sim.timing import simulate

NAMES = ["ccom", "grr", "linpack", "livermore", "met", "stanford", "whet",
         "yacc"]


def test_suite_has_the_papers_eight_benchmarks():
    assert [b.name for b in suite.all_benchmarks()] == NAMES


@pytest.mark.parametrize("name", NAMES)
def test_reference_is_deterministic(name):
    bench = suite.get(name)
    assert bench.reference() == bench.reference()


@pytest.mark.parametrize("name", NAMES)
def test_checksum_at_every_opt_level(name, opt_level):
    bench = suite.get(name)
    expected = bench.reference()
    result = suite.run_benchmark(
        bench, CompilerOptions(opt_level=opt_level)
    )
    assert abs(result.value - expected) <= bench.fp_tolerance


@pytest.mark.parametrize("name", NAMES)
@pytest.mark.parametrize("careful", [False, True])
def test_checksum_under_unrolling(name, careful):
    bench = suite.get(name)
    expected = bench.reference()
    opts = CompilerOptions(
        unroll=4, careful=careful,
        regfile=RegisterFileSpec(n_temp=40, n_home=26),
    )
    result = suite.run_benchmark(bench, opts)
    assert abs(result.value - expected) <= bench.fp_tolerance


@pytest.mark.parametrize("name", NAMES)
def test_default_options_match_reference(name):
    bench = suite.get(name)
    result = suite.run_benchmark(bench)
    assert abs(result.value - bench.reference()) <= bench.fp_tolerance


@pytest.mark.parametrize("name", NAMES)
def test_parallelism_in_plausible_band(name):
    """The paper's central result: available ILP sits in a low band
    (roughly 1.6 to 3.2 across benchmarks)."""
    result = suite.run_benchmark(suite.get(name))
    ilp = simulate(result.trace, ideal_superscalar(64)).parallelism
    assert 1.3 <= ilp <= 4.0


def test_linpack_is_most_parallel_and_cluster_is_low():
    values = {}
    for name in NAMES:
        result = suite.run_benchmark(suite.get(name))
        values[name] = simulate(
            result.trace, ideal_superscalar(64)
        ).parallelism
    assert max(values, key=values.get) in ("linpack", "livermore")
    # "there is a factor of two difference ... but the ceiling is still
    # quite low"
    assert max(values.values()) / min(values.values()) < 2.5


def test_base_machine_parallelism_exactly_one():
    result = suite.run_benchmark(suite.get("whet"))
    timing = simulate(result.trace, base_machine())
    assert timing.parallelism == pytest.approx(1.0)


def test_run_cache_returns_same_object():
    bench = suite.get("whet")
    first = suite.run_benchmark(bench)
    second = suite.run_benchmark(bench)
    assert first is second


def test_measure_helper():
    timing = suite.measure("whet", ideal_superscalar(2))
    assert 1.0 < timing.parallelism <= 2.0


def test_default_overrides_applied():
    linpack = suite.get("linpack")
    opts = suite.default_options(linpack)
    assert opts.unroll == 4 and opts.careful
    over = suite.default_options(linpack, unroll=2)
    assert over.unroll == 2

"""Property-based tests (hypothesis) for core invariants."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.isa import BasicBlock, Opcode, build
from repro.isa.registers import Reg, virtual
from repro.machine import MachineConfig, base_machine, ideal_superscalar
from repro.opt.options import CompilerOptions, OptLevel
from repro.sched.list_scheduler import schedule_block
from repro.sim.timing import simulate
from repro.sim.trace import Trace
from repro.analysis.stats import harmonic_mean
from tests.helpers import run_tin_value

# ------------------------------------------------------------ expression trees

VARS = ["va", "vb", "vc"]
VAR_VALUES = {"va": 7, "vb": -3, "vc": 11}


def exprs(depth: int):
    """Strategy producing (tin_text, python_value) pairs of int exprs."""
    leaf = st.one_of(
        st.integers(min_value=-50, max_value=50).map(
            lambda v: (f"({v})" if v < 0 else str(v), v)
        ),
        st.sampled_from(VARS).map(lambda name: (name, VAR_VALUES[name])),
    )
    if depth == 0:
        return leaf

    def combine(children):
        (lt, lv), op, (rt, rv) = children
        if op == "+":
            return (f"({lt} + {rt})", lv + rv)
        if op == "-":
            return (f"({lt} - {rt})", lv - rv)
        if op == "*":
            return (f"({lt} * {rt})", lv * rv)
        if op == "&":
            return (f"({lt} & {rt})", lv & rv)
        if op == "|":
            return (f"({lt} | {rt})", lv | rv)
        return (f"({lt} ^ {rt})", lv ^ rv)

    sub = exprs(depth - 1)
    return st.one_of(
        leaf,
        st.tuples(sub, st.sampled_from("+-*&|^"), sub).map(combine),
    )


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(pair=exprs(3), level=st.sampled_from([OptLevel.NONE, OptLevel.REGALLOC]))
def test_expression_compilation_matches_python(pair, level):
    text, expected = pair
    src = (
        f"var va, vb, vc: int;\n"
        f"proc main(): int {{ va = 7; vb = -3; vc = 11;"
        f" return {text}; }}"
    )
    assert run_tin_value(src, CompilerOptions(opt_level=level)) == expected


# -------------------------------------------------------- straight-line blocks
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    steps=st.lists(
        st.tuples(
            st.sampled_from(VARS),
            st.sampled_from("+-*"),
            st.sampled_from(VARS + ["5", "3"]),
        ),
        min_size=1,
        max_size=12,
    ),
    level=st.sampled_from(list(OptLevel)),
)
def test_straight_line_programs_match_python(steps, level):
    env = dict(VAR_VALUES)
    lines = []
    for dst, op, src in steps:
        lines.append(f"{dst} = {dst} {op} {src};")
        rhs = env[src] if src in env else int(src)
        if op == "+":
            env[dst] = env[dst] + rhs
        elif op == "-":
            env[dst] = env[dst] - rhs
        else:
            env[dst] = env[dst] * rhs
    expected = env["va"] + 2 * env["vb"] + 3 * env["vc"]
    src_text = (
        "var va, vb, vc: int;\n"
        "proc main(): int { va = 7; vb = -3; vc = 11;\n"
        + "\n".join(lines)
        + "\nreturn va + 2 * vb + 3 * vc; }"
    )
    assert run_tin_value(
        src_text, CompilerOptions(opt_level=level)
    ) == expected


# --------------------------------------------------------------- timing model
def random_trace_strategy():
    """Traces of ALU/memory ops over a small physical register set."""
    regs = [Reg(20 + i) for i in range(6)]

    def to_trace(spec):
        instrs = []
        addrs = []
        for kind, d, a, b, addr in spec:
            if kind == 0:
                instrs.append(build.alu(Opcode.ADD, regs[d], regs[a], regs[b]))
                addrs.append(-1)
            elif kind == 1:
                instrs.append(build.lw(regs[d], regs[a], 0))
                addrs.append(64 + addr)
            else:
                instrs.append(build.sw(regs[d], regs[a], 0))
                addrs.append(64 + addr)
        trace = Trace(static=instrs)
        for i, addr in enumerate(addrs):
            trace.append(i, addr)
        return trace

    step = st.tuples(
        st.integers(0, 2), st.integers(0, 5), st.integers(0, 5),
        st.integers(0, 5), st.integers(0, 7),
    )
    return st.lists(step, min_size=1, max_size=30).map(to_trace)


@settings(max_examples=60, deadline=None)
@given(trace=random_trace_strategy(), width=st.integers(1, 7))
def test_wider_issue_never_slower(trace, width):
    narrow = simulate(trace, ideal_superscalar(width))
    wide = simulate(trace, ideal_superscalar(width + 1))
    assert wide.minor_cycles <= narrow.minor_cycles


@settings(max_examples=60, deadline=None)
@given(trace=random_trace_strategy(), lat=st.integers(1, 6))
def test_longer_latency_never_faster(trace, lat):
    from repro.isa import InstrClass

    lats_short = {k: lat for k in InstrClass}
    lats_long = {k: lat + 1 for k in InstrClass}
    short = simulate(trace, MachineConfig(name="s", latencies=lats_short))
    longer = simulate(trace, MachineConfig(name="l", latencies=lats_long))
    assert longer.minor_cycles >= short.minor_cycles


@settings(max_examples=60, deadline=None)
@given(trace=random_trace_strategy())
def test_base_machine_never_stalls(trace):
    result = simulate(trace, base_machine())
    assert result.minor_cycles == len(trace)


@settings(max_examples=60, deadline=None)
@given(trace=random_trace_strategy(), width=st.integers(1, 8))
def test_parallelism_bounded_by_width(trace, width):
    result = simulate(trace, ideal_superscalar(width))
    assert result.parallelism <= width + 1e-9


# ----------------------------------------------------------------- scheduling
@settings(max_examples=40, deadline=None)
@given(trace=random_trace_strategy())
def test_scheduler_emits_valid_permutation(trace):
    block = BasicBlock("b", list(trace.instructions()))
    original = list(block.instrs)
    # schedule_block internally re-verifies topological validity
    schedule_block(block, ideal_superscalar(4))
    assert sorted(map(id, block.instrs)) == sorted(map(id, original))


# ------------------------------------------------------------------ statistics
@settings(max_examples=100, deadline=None)
@given(st.lists(st.floats(min_value=0.01, max_value=100), min_size=1,
                max_size=10))
def test_harmonic_mean_bounds(values):
    hm = harmonic_mean(values)
    assert min(values) - 1e-9 <= hm <= max(values) + 1e-9

"""Unit tests for the control-flow cleanup passes."""

from repro.isa import BasicBlock, Function, Opcode, build
from repro.isa.registers import virtual
from repro.opt.cleanup import (
    cleanup_control_flow,
    remove_redundant_jumps,
    thread_jumps,
)
from repro.opt.options import CompilerOptions, OptLevel
from tests.helpers import run_tin_value


def fn_of(blocks) -> Function:
    fn = Function("f")
    fn.blocks = blocks
    return fn


class TestThreadJumps:
    def test_threads_through_trampoline(self):
        fn = fn_of([
            BasicBlock("a", [build.bnez(virtual(0), "tramp")]),
            BasicBlock("b", [build.ret()]),
            BasicBlock("tramp", [build.jump("end")]),
            BasicBlock("end", [build.ret()]),
        ])
        changed = thread_jumps(fn)
        assert changed == 1
        assert fn.blocks[0].terminator.target == "end"
        assert "tramp" not in {b.label for b in fn.blocks}

    def test_threads_chains(self):
        fn = fn_of([
            BasicBlock("a", [build.jump("t1")]),
            BasicBlock("t1", [build.jump("t2")]),
            BasicBlock("t2", [build.jump("end")]),
            BasicBlock("end", [build.ret()]),
        ])
        thread_jumps(fn)
        assert fn.blocks[0].terminator.target == "end"
        assert len(fn.blocks) == 2

    def test_cycle_of_jumps_left_alone(self):
        fn = fn_of([
            BasicBlock("a", [build.bnez(virtual(0), "x")]),
            BasicBlock("exit", [build.ret()]),
            BasicBlock("x", [build.jump("y")]),
            BasicBlock("y", [build.jump("x")]),
        ])
        thread_jumps(fn)  # must terminate; targets stay inside the cycle
        assert fn.blocks[0].terminator.target in ("x", "y")

    def test_non_empty_block_not_threaded(self):
        fn = fn_of([
            BasicBlock("a", [build.jump("work")]),
            BasicBlock("work", [build.li(virtual(0), 1), build.jump("end")]),
            BasicBlock("end", [build.ret()]),
        ])
        assert thread_jumps(fn) == 0


class TestRemoveRedundantJumps:
    def test_jump_to_next_removed(self):
        fn = fn_of([
            BasicBlock("a", [build.li(virtual(0), 1), build.jump("b")]),
            BasicBlock("b", [build.ret()]),
        ])
        assert remove_redundant_jumps(fn) == 1
        assert fn.blocks[0].terminator is None

    def test_jump_elsewhere_kept(self):
        fn = fn_of([
            BasicBlock("a", [build.jump("c")]),
            BasicBlock("b", [build.ret()]),
            BasicBlock("c", [build.ret()]),
        ])
        assert remove_redundant_jumps(fn) == 0

    def test_conditional_branches_untouched(self):
        fn = fn_of([
            BasicBlock("a", [build.beqz(virtual(0), "b")]),
            BasicBlock("b", [build.ret()]),
        ])
        assert remove_redundant_jumps(fn) == 0


class TestFixpointAndSemantics:
    def test_fixpoint_combines_both(self):
        fn = fn_of([
            BasicBlock("a", [build.li(virtual(0), 1), build.jump("tramp")]),
            BasicBlock("tramp", [build.jump("end")]),
            BasicBlock("end", [build.ret()]),
        ])
        total = cleanup_control_flow(fn)
        assert total >= 2
        # a falls through straight to end now
        assert fn.blocks[0].terminator is None
        assert [b.label for b in fn.blocks] == ["a", "end"]

    def test_cleanup_shrinks_dynamic_branch_count(self):
        src = """
        var s: int;
        proc main(): int {
            var i, r: int;
            s = 0;
            for i = 0 to 60 {
                r = (i > 10 && i < 50) || i == 5;
                if (r) { s = s + i; } else { s = s - 1; }
            }
            return s;
        }
        """
        plain = run_tin_value(src, CompilerOptions(opt_level=OptLevel.NONE))
        optimized = run_tin_value(src, CompilerOptions(opt_level=OptLevel.LOCAL))
        assert plain == optimized

    def test_preserves_semantics_across_suite_spot_check(self):
        from repro.benchmarks import suite

        bench = suite.get("ccom")
        result = suite.run_benchmark(
            bench, CompilerOptions(opt_level=OptLevel.LOCAL)
        )
        assert result.value == bench.reference()

"""Shared helper functions for the test suite."""

from __future__ import annotations

from repro.opt.driver import compile_source
from repro.opt.options import CompilerOptions
from repro.sim.interp import run


def run_tin(source: str, options: CompilerOptions | None = None, **kwargs):
    """Compile and execute Tin source, returning the RunResult."""
    return run(compile_source(source, options), **kwargs)


def run_tin_value(source: str, options: CompilerOptions | None = None):
    """Compile and execute Tin source, returning main's value."""
    return run_tin(source, options).value

"""Unit tests for the instruction set and program representation."""

import pytest

from repro.isa import (
    BasicBlock,
    Function,
    InstrClass,
    Instruction,
    MemRef,
    Opcode,
    Program,
    build,
    compute_dominators,
    format_function,
    format_instruction,
    loop_depths,
    natural_loops,
)
from repro.isa.opcodes import SIMPLE_CLASSES, TERMINATORS
from repro.isa.program import remove_unreachable_blocks
from repro.isa.registers import (
    ARG_REGS,
    RA,
    SP,
    VIRT_OFFSET,
    ZERO,
    Reg,
    RegisterFileSpec,
    VirtualRegAllocator,
    flat_index,
    virtual,
)


class TestRegisters:
    def test_virtual_allocator_is_sequential(self):
        alloc = VirtualRegAllocator()
        regs = [alloc.fresh() for _ in range(5)]
        assert [r.index for r in regs] == [0, 1, 2, 3, 4]
        assert all(r.virtual for r in regs)
        assert alloc.count == 5

    def test_flat_index_separates_spaces(self):
        assert flat_index(Reg(3)) == 3
        assert flat_index(virtual(3)) == 3 + VIRT_OFFSET
        assert flat_index(Reg(3)) != flat_index(virtual(3))

    def test_register_names(self):
        assert ZERO.name == "zero"
        assert SP.name == "sp"
        assert RA.name == "ra"
        assert virtual(7).name == "v7"
        assert Reg(20).name == "r20"

    def test_register_file_spec_layout(self):
        spec = RegisterFileSpec(n_temp=16, n_home=26)
        temps = spec.temp_regs
        homes = spec.home_regs
        assert len(temps) == 16
        assert len(homes) == 26
        # disjoint, and above the fixed registers
        assert temps[0].index == 12
        assert homes[0].index == temps[-1].index + 1
        assert spec.total_registers == 12 + 16 + 26

    def test_register_file_spec_validates(self):
        with pytest.raises(ValueError):
            RegisterFileSpec(n_temp=1)
        with pytest.raises(ValueError):
            RegisterFileSpec(n_home=-1)

    def test_arg_regs_count(self):
        assert len(ARG_REGS) == 6


class TestOpcodes:
    def test_fourteen_instruction_classes(self):
        assert len(InstrClass) == 14

    def test_divides_are_not_simple(self):
        assert InstrClass.INTDIV not in SIMPLE_CLASSES
        assert InstrClass.FPDIV not in SIMPLE_CLASSES
        assert InstrClass.ADDSUB in SIMPLE_CLASSES
        assert InstrClass.LOAD in SIMPLE_CLASSES

    def test_every_opcode_has_info(self):
        for op in Opcode:
            info = op.info
            assert info.klass in InstrClass
            assert info.n_srcs >= 0

    def test_memory_flags(self):
        assert Opcode.LW.info.is_load and Opcode.LW.info.is_mem
        assert Opcode.SW.info.is_store and Opcode.SW.info.is_mem
        assert not Opcode.ADD.info.is_mem

    def test_terminators(self):
        assert Opcode.J in TERMINATORS
        assert Opcode.RET in TERMINATORS
        assert Opcode.HALT in TERMINATORS
        assert Opcode.CALL not in TERMINATORS

    def test_commutativity(self):
        assert Opcode.ADD.info.commutative
        assert Opcode.FMUL.info.commutative
        assert not Opcode.SUB.info.commutative
        assert not Opcode.FDIV.info.commutative


class TestInstruction:
    def test_validate_catches_bad_arity(self):
        ins = Instruction(Opcode.ADD, dest=virtual(0), srcs=(virtual(1),))
        with pytest.raises(ValueError):
            ins.validate()

    def test_validate_requires_dest(self):
        ins = Instruction(Opcode.ADD, srcs=(virtual(1), virtual(2)))
        with pytest.raises(ValueError):
            ins.validate()

    def test_validate_requires_branch_target(self):
        ins = Instruction(Opcode.J)
        with pytest.raises(ValueError):
            ins.validate()

    def test_builders_produce_valid_instructions(self):
        samples = [
            build.alu(Opcode.ADD, virtual(0), virtual(1), virtual(2)),
            build.alui(Opcode.ADDI, virtual(0), virtual(1), 4),
            build.li(virtual(0), 7),
            build.lif(virtual(0), 1.5),
            build.mov(virtual(0), virtual(1)),
            build.lw(virtual(0), SP, 3),
            build.sw(virtual(0), SP, 3),
            build.beqz(virtual(0), "L1"),
            build.bnez(virtual(0), "L1"),
            build.jump("L1"),
            build.call("f"),
            build.ret(),
            build.nop(),
            build.halt(),
        ]
        for ins in samples:
            ins.validate()

    def test_copy_is_independent(self):
        ins = build.alu(Opcode.ADD, virtual(0), virtual(1), virtual(2))
        dup = ins.copy()
        dup.dest = virtual(9)
        assert ins.dest == virtual(0)

    def test_memref_with_offset(self):
        mem = MemRef(obj="g:a", offset=3)
        assert mem.with_offset(5).offset == 5
        assert mem.offset == 3  # frozen original unchanged

    def test_format_instruction_smoke(self):
        ins = build.lw(virtual(0), SP, 3, mem=MemRef(obj="g:x", offset=0))
        text = format_instruction(ins)
        assert "lw" in text and "g:x" in text


def _diamond_function() -> Function:
    """entry -> (left | right) -> join -> exit, with a loop on join."""
    fn = Function("f")
    fn.blocks = [
        BasicBlock("entry", [build.bnez(virtual(0), "right")]),
        BasicBlock("left", [build.jump("join")]),
        BasicBlock("right", [build.jump("join")]),
        BasicBlock("join", [build.bnez(virtual(1), "join")]),
        BasicBlock("exit", [build.ret()]),
    ]
    return fn


class TestCFG:
    def test_successors(self):
        fn = _diamond_function()
        succ = fn.successors()
        assert succ["entry"] == ["right", "left"]
        assert succ["left"] == ["join"]
        assert succ["join"] == ["join", "exit"]
        assert succ["exit"] == []

    def test_predecessors(self):
        fn = _diamond_function()
        pred = fn.predecessors()
        assert set(pred["join"]) == {"left", "right", "join"}

    def test_rpo_starts_at_entry(self):
        fn = _diamond_function()
        order = fn.rpo()
        assert order[0] == "entry"
        assert set(order) == {"entry", "left", "right", "join", "exit"}

    def test_dominators(self):
        fn = _diamond_function()
        dom = compute_dominators(fn)
        assert dom["join"] == {"entry", "join"}
        assert dom["left"] == {"entry", "left"}
        assert "entry" in dom["exit"]

    def test_natural_loops(self):
        fn = _diamond_function()
        loops = natural_loops(fn)
        assert len(loops) == 1
        header, body = loops[0]
        assert header == "join"
        assert body == {"join"}

    def test_loop_depths(self):
        fn = _diamond_function()
        depths = loop_depths(fn)
        assert depths["join"] == 1
        assert depths["entry"] == 0

    def test_validate_catches_bad_target(self):
        fn = Function("f")
        fn.blocks = [BasicBlock("entry", [build.jump("nowhere")])]
        with pytest.raises(ValueError):
            fn.validate()

    def test_validate_catches_missing_terminator(self):
        fn = Function("f")
        fn.blocks = [BasicBlock("entry", [build.nop()])]
        with pytest.raises(ValueError):
            fn.validate()

    def test_validate_catches_duplicate_labels(self):
        fn = Function("f")
        fn.blocks = [
            BasicBlock("a", [build.jump("a")]),
            BasicBlock("a", [build.ret()]),
        ]
        with pytest.raises(ValueError):
            fn.validate()

    def test_remove_unreachable_blocks(self):
        fn = Function("f")
        fn.blocks = [
            BasicBlock("entry", [build.jump("end")]),
            BasicBlock("dead", [build.jump("end")]),
            BasicBlock("end", [build.ret()]),
        ]
        removed = remove_unreachable_blocks(fn)
        assert removed == 1
        assert [b.label for b in fn.blocks] == ["entry", "end"]

    def test_format_function_smoke(self):
        fn = _diamond_function()
        text = format_function(fn)
        assert "join:" in text and "func f" in text


class TestProgram:
    def test_validate_checks_entry(self):
        prog = Program(entry="main")
        with pytest.raises(ValueError):
            prog.validate()

    def test_validate_checks_call_targets(self):
        fn = Function("main")
        fn.blocks = [BasicBlock("main.entry", [build.call("ghost"), build.ret()])]
        prog = Program(functions={"main": fn}, entry="main")
        with pytest.raises(ValueError):
            prog.validate()

    def test_instruction_count(self):
        fn = _diamond_function()
        prog = Program(functions={"f": fn}, entry="f")
        assert prog.instruction_count() == fn.instruction_count() == 5

"""Coverage tests for the printer, trace utilities, suite plumbing,
pipeviz vector diagram, and the errors hierarchy."""

import pytest

from repro import errors
from repro.analysis.pipeviz import render_vector_diagram
from repro.benchmarks import suite
from repro.isa import InstrClass, MemRef, Opcode, build, format_instruction
from repro.isa.registers import RA, SP, ZERO, virtual
from repro.machine import ideal_superscalar, superpipelined_superscalar
from repro.machine.metrics import machine_degree
from repro.opt.options import CompilerOptions, OptLevel
from repro.sim.trace import Trace


class TestPrinter:
    CASES = [
        (build.alu(Opcode.ADD, virtual(0), virtual(1), virtual(2)),
         "add v0 <- v1, v2"),
        (build.alui(Opcode.ADDI, virtual(0), virtual(1), -3),
         "addi v0 <- v1, -3"),
        (build.li(virtual(0), 7), "li v0 <- 7"),
        (build.lif(virtual(0), 2.5), "lif v0 <- 2.5"),
        (build.mov(virtual(0), virtual(1)), "mov v0 <- v1"),
        (build.lw(virtual(0), SP, 4), "lw v0 <- 4(sp)"),
        (build.sw(virtual(0), ZERO, 16), "sw 16(zero) <- v0"),
        (build.beqz(virtual(0), "L1"), "beqz v0, L1"),
        (build.bnez(virtual(0), "L2"), "bnez v0, L2"),
        (build.jump("L3"), "j L3"),
        (build.call("f"), "call f"),
        (build.ret(), "ret"),
        (build.nop(), "nop"),
        (build.halt(), "halt"),
    ]

    @pytest.mark.parametrize(
        "ins,expected", CASES, ids=[c[1].split()[0] for c in CASES]
    )
    def test_format(self, ins, expected):
        assert format_instruction(ins) == expected

    def test_frame_slot_marker_rendering(self):
        ins = build.lw(virtual(0), SP, 3, frame_slot=3)
        assert "#3(sp)" in format_instruction(ins)

    def test_mem_annotation_rendering(self):
        ins = build.lw(virtual(0), ZERO, 20, mem=MemRef(obj="g:x", offset=0))
        text = format_instruction(ins)
        assert "g:x+0" in text

    def test_comment_rendering(self):
        ins = build.nop()
        ins.comment = "hello"
        assert "hello" in format_instruction(ins)

    def test_unary_ops(self):
        ins = build.unary(Opcode.FNEG, virtual(0), virtual(1))
        assert format_instruction(ins) == "fneg v0 <- v1"
        ins = build.unary(Opcode.CVTIF, virtual(0), virtual(1))
        assert format_instruction(ins) == "cvtif v0 <- v1"


class TestTrace:
    def test_from_instructions_default_addresses(self):
        instrs = [
            build.lw(virtual(0), ZERO, 100),
            build.li(virtual(1), 5),
        ]
        trace = Trace.from_instructions(instrs)
        assert trace.addrs == [100, -1]

    def test_explicit_addresses(self):
        instrs = [build.sw(virtual(0), virtual(1), 0)]
        trace = Trace.from_instructions(instrs, addrs=[321])
        assert trace.addrs == [321]

    def test_len_and_iteration(self):
        instrs = [build.nop(), build.nop()]
        trace = Trace.from_instructions(instrs)
        assert len(trace) == 2
        assert len(list(trace.instructions())) == 2

    def test_class_counts(self):
        instrs = [
            build.lw(virtual(0), ZERO, 100),
            build.li(virtual(1), 5),
            build.li(virtual(2), 6),
        ]
        counts = Trace.from_instructions(instrs).class_counts()
        assert counts[InstrClass.LOAD] == 1
        assert counts[InstrClass.MOVE] == 2


class TestSuitePlumbing:
    def test_options_cache_key_distinguishes(self):
        from repro.benchmarks.suite import _options_key

        a = _options_key(CompilerOptions())
        b = _options_key(CompilerOptions(unroll=2))
        c = _options_key(CompilerOptions(opt_level=OptLevel.NONE))
        d = _options_key(
            CompilerOptions(schedule_for=ideal_superscalar(3))
        )
        assert len({a, b, c, d}) == 4

    def test_clear_cache(self):
        bench = suite.get("whet")
        first = suite.run_benchmark(bench)
        suite.clear_cache()
        second = suite.run_benchmark(bench)
        assert first is not second
        assert first.value == second.value

    def test_duplicate_registration_rejected(self):
        from repro.benchmarks.suite import Benchmark, register

        with pytest.raises(ValueError):
            register(Benchmark(
                name="whet", description="dup",
                source=lambda: "", reference=lambda: 0,
            ))

    def test_descriptions_present(self):
        for bench in suite.all_benchmarks():
            assert bench.description


class TestVectorDiagram:
    def test_rows_and_overlap(self):
        text = render_vector_diagram(n_elements=4)
        lines = [l for l in text.splitlines() if "|" in l]
        assert len(lines) == 3
        first = lines[0].index("#")
        second = lines[1].index("#")
        assert second == first + 1  # chained: one cycle of skew

    def test_reports_ops_per_cycle(self):
        assert "ops/cycle" in render_vector_diagram()


class TestMetricsExtra:
    def test_superpipelined_superscalar_degree(self):
        # (n=2, m=3): latencies are 3 minor cycles = 1 base cycle
        cfg = superpipelined_superscalar(2, 3)
        assert machine_degree(cfg) == pytest.approx(1.0)


class TestErrors:
    def test_hierarchy(self):
        for exc in (
            errors.TinSyntaxError,
            errors.TinSemanticError,
            errors.CodegenError,
            errors.MachineConfigError,
            errors.SimulationError,
            errors.RegisterAllocationError,
            errors.SchedulingError,
        ):
            assert issubclass(exc, errors.ReproError)

    def test_syntax_error_formats_position(self):
        err = errors.TinSyntaxError("boom", line=3, column=9)
        assert "3:9" in str(err)
        assert err.line == 3 and err.column == 9

    def test_syntax_error_without_position(self):
        assert str(errors.TinSyntaxError("boom")) == "boom"

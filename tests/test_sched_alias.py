"""Unit tests for alias analysis and the pipeline scheduler."""

import pytest

from repro.errors import SchedulingError
from repro.isa import BasicBlock, Function, InstrClass, MemRef, Opcode, build
from repro.isa.registers import Reg, virtual
from repro.machine import MachineConfig, base_machine, ideal_superscalar
from repro.opt.alias import bind_array_parameters, may_conflict
from repro.opt.options import AliasLevel, CompilerOptions, OptLevel
from repro.sched.dag import build_dag
from repro.sched.list_scheduler import schedule_block
from repro.sim.timing import simulate
from repro.sim.trace import Trace
from tests.helpers import run_tin


def scalar(name: str, offset: int = 0) -> MemRef:
    return MemRef(obj=name, offset=offset)


def array(name: str, offset=None, affine=None, affine_vars=(),
          may_alias=False) -> MemRef:
    return MemRef(obj=name, offset=offset, affine=affine,
                  affine_vars=affine_vars, may_alias_all=may_alias,
                  is_array=True)


class TestMayConflict:
    def test_none_conflicts_with_everything(self):
        assert may_conflict(None, scalar("g:x"), AliasLevel.AFFINE)

    def test_known_addresses_compare_at_any_level(self):
        a, b = scalar("g:x"), scalar("g:y")
        assert not may_conflict(a, b, AliasLevel.CONSERVATIVE)
        assert may_conflict(a, scalar("g:x"), AliasLevel.CONSERVATIVE)

    def test_known_array_elements_compare(self):
        a = array("g:t", offset=1)
        b = array("g:t", offset=2)
        assert not may_conflict(a, b, AliasLevel.CONSERVATIVE)
        assert may_conflict(a, array("g:t", offset=1), AliasLevel.AFFINE)

    def test_computed_address_conflicts_conservatively(self):
        a = array("g:t")          # runtime index
        b = scalar("g:x")
        assert may_conflict(a, b, AliasLevel.CONSERVATIVE)
        assert not may_conflict(a, b, AliasLevel.OBJECT)

    def test_object_level_separates_objects(self):
        a, b = array("g:t"), array("g:u")
        assert may_conflict(a, b, AliasLevel.CONSERVATIVE)
        assert not may_conflict(a, b, AliasLevel.OBJECT)

    def test_param_may_alias_arrays_but_not_scalars(self):
        p = array("p:f:a", may_alias=True)
        assert may_conflict(p, array("g:t"), AliasLevel.OBJECT)
        assert not may_conflict(p, scalar("g:x"), AliasLevel.OBJECT)

    def test_distinct_params_independent_at_affine(self):
        p = array("p:f:a", may_alias=True)
        q = array("p:f:b", may_alias=True)
        assert may_conflict(p, q, AliasLevel.OBJECT)
        assert not may_conflict(p, q, AliasLevel.AFFINE)

    def test_same_object_runtime_indices_conflict(self):
        a = array("g:t", affine=("(i)", 0))
        b = array("g:t", affine=("(i)", 1))
        # position-free oracle cannot apply the affine rule
        assert may_conflict(a, b, AliasLevel.AFFINE)


class TestDag:
    def _block(self, instrs):
        return BasicBlock("b", list(instrs))

    def test_raw_edge_carries_latency(self):
        block = self._block([
            build.lw(virtual(0), virtual(9), 0),
            build.alui(Opcode.ADDI, virtual(1), virtual(0), 1),
        ])
        lats = {k: 1 for k in InstrClass}
        lats[InstrClass.LOAD] = 7
        cfg = MachineConfig(name="m", latencies=lats)
        dag = build_dag(block, cfg)
        assert dag.succs[0][1] == 7

    def test_war_and_waw_edges(self):
        block = self._block([
            build.alui(Opcode.ADDI, virtual(1), virtual(0), 1),   # reads v0
            build.alui(Opcode.ADDI, virtual(0), virtual(2), 1),   # WAR
            build.alui(Opcode.ADDI, virtual(0), virtual(3), 1),   # WAW
        ])
        dag = build_dag(block, base_machine())
        assert 1 in dag.succs[0]
        assert 2 in dag.succs[1]

    def test_conservative_memory_serializes(self):
        mem_t = array("g:t")
        block = self._block([
            build.sw(virtual(0), virtual(8), 0, mem=mem_t),
            build.lw(virtual(1), virtual(9), 0, mem=array("g:u")),
        ])
        dag = build_dag(block, base_machine(), AliasLevel.CONSERVATIVE)
        assert 1 in dag.succs[0]
        dag2 = build_dag(block, base_machine(), AliasLevel.OBJECT)
        assert 1 not in dag2.succs[0]

    def test_affine_disambiguation_with_side_condition(self):
        key = "(s:f:i)"
        block = self._block([
            build.sw(virtual(0), virtual(8), 0,
                     mem=array("g:t", affine=(key, 0), affine_vars=("s:f:i",))),
            build.lw(virtual(1), virtual(8), 1,
                     mem=array("g:t", affine=(key, 1), affine_vars=("s:f:i",))),
        ])
        dag = build_dag(block, base_machine(), AliasLevel.AFFINE)
        assert 1 not in dag.succs[0]

    def test_affine_blocked_by_index_redefinition(self):
        key = "(s:f:i)"
        home_i = Reg(30)
        block = self._block([
            build.sw(virtual(0), virtual(8), 0,
                     mem=array("g:t", affine=(key, 0), affine_vars=("s:f:i",))),
            build.alui(Opcode.ADDI, home_i, home_i, 1),  # i changes!
            build.lw(virtual(1), virtual(8), 1,
                     mem=array("g:t", affine=(key, 1), affine_vars=("s:f:i",))),
        ])
        dag = build_dag(
            block, base_machine(), AliasLevel.AFFINE,
            home_bindings={"s:f:i": home_i},
        )
        assert 2 in dag.succs[0]

    def test_call_is_barrier(self):
        block = self._block([
            build.alui(Opcode.ADDI, virtual(1), virtual(0), 1),
            build.call("g"),
            build.alui(Opcode.ADDI, virtual(2), virtual(9), 1),
        ])
        dag = build_dag(block, base_machine())
        assert 1 in dag.succs[0]
        assert 2 in dag.succs[1]

    def test_terminator_is_last(self):
        block = self._block([
            build.alui(Opcode.ADDI, virtual(1), virtual(0), 1),
            build.alui(Opcode.ADDI, virtual(2), virtual(9), 1),
            build.jump("L"),
        ])
        dag = build_dag(block, base_machine())
        assert 2 in dag.succs[0] and 2 in dag.succs[1]

    def test_topological_order_detects_cycles(self):
        from repro.sched.dag import DepDAG

        dag = DepDAG(2, [dict(), dict()], [dict(), dict()])
        dag.add_edge(0, 1, 1)
        dag.preds[0][1] = 1  # manufacture a cycle
        dag.succs[1][0] = 1
        with pytest.raises(ValueError):
            dag.topological_order()


class TestScheduler:
    def test_interleaves_independent_chains(self):
        # two chains of 3; unscheduled in-order issue needs 5 cycles on a
        # 2-wide machine, scheduled needs 3
        instrs = []
        for base in (100, 200):
            for i in range(3):
                instrs.append(build.alui(
                    Opcode.ADDI, virtual(base + i + 1), virtual(base + i), 1
                ))
        block = BasicBlock("b", instrs)
        cfg = ideal_superscalar(2)
        before = simulate(Trace.from_instructions(block.instrs), cfg)
        schedule_block(block, cfg)
        after = simulate(Trace.from_instructions(block.instrs), cfg)
        assert after.minor_cycles < before.minor_cycles
        assert after.minor_cycles == 3

    def test_respects_memory_dependences(self):
        mem = array("g:t")
        instrs = [
            build.sw(virtual(0), virtual(8), 0, mem=mem),
            build.lw(virtual(1), virtual(8), 0, mem=mem),
            build.alui(Opcode.ADDI, virtual(2), virtual(1), 1),
        ]
        block = BasicBlock("b", instrs)
        schedule_block(block, ideal_superscalar(4), AliasLevel.CONSERVATIVE)
        ops = [ins.op for ins in block.instrs]
        assert ops.index(Opcode.SW) < ops.index(Opcode.LW)

    def test_schedule_reduces_stalls_with_latencies(self):
        lats = {k: 1 for k in InstrClass}
        lats[InstrClass.LOAD] = 6
        cfg = MachineConfig(name="slowload", issue_width=1, latencies=lats)
        instrs = [
            build.lw(virtual(0), virtual(9), 0, mem=array("g:t", offset=0)),
            build.alui(Opcode.ADDI, virtual(1), virtual(0), 1),  # stalls
            build.alui(Opcode.ADDI, virtual(2), virtual(8), 1),
            build.alui(Opcode.ADDI, virtual(3), virtual(7), 1),
        ]
        block = BasicBlock("b", instrs)
        before = simulate(Trace.from_instructions(block.instrs), cfg)
        schedule_block(block, cfg)
        after = simulate(Trace.from_instructions(block.instrs), cfg)
        assert after.minor_cycles < before.minor_cycles

    def test_scheduled_code_same_result(self):
        src = """
        var a, b, c, d: int;
        proc main(): int {
            a = 1; b = 2; c = 3; d = 4;
            a = b + c * d;
            b = a - d;
            return a * 100 + b;
        }
        """
        plain = run_tin(src, CompilerOptions(opt_level=OptLevel.NONE))
        sched = run_tin(src, CompilerOptions(opt_level=OptLevel.SCHEDULE))
        assert plain.value == sched.value

    def test_scheduler_verifies_topology(self):
        # schedule_block on any real block must not raise
        instrs = [
            build.alui(Opcode.ADDI, virtual(i + 1), virtual(i), 1)
            for i in range(5)
        ] + [build.jump("L")]
        block = BasicBlock("b", instrs)
        schedule_block(block, ideal_superscalar(4))
        assert block.instrs[-1].op is Opcode.J


BIND_SRC = """
var xs: float[8];
var ys: float[8];
proc axpy(dst: float[], src: float[], n: int) {
    var i: int;
    for i = 0 to n - 1 {
        dst[i] = dst[i] + src[i] * 2.0;
    }
}
proc main(): int {
    var i: int;
    for i = 0 to 7 { xs[i] = float(i); ys[i] = 1.0; }
    axpy(ys, xs, 8);
    return int(ys[7]);
}
"""


class TestInterproceduralBinding:
    def test_unique_bindings_are_applied(self):
        from repro.lang import parse
        from repro.lang.codegen import generate
        from repro.lang.semantics import check

        module = parse(BIND_SRC)
        program = generate(module, check(module))
        bound = bind_array_parameters(program)
        assert bound > 0
        axpy = program.functions["axpy"]
        objs = {
            ins.mem.obj for ins in axpy.instructions()
            if ins.mem is not None and ins.mem.is_array
        }
        assert "g:xs" in objs and "g:ys" in objs
        assert not any(obj.startswith("p:") for obj in objs)

    def test_conflicting_bindings_left_alone(self):
        src = BIND_SRC.replace(
            "axpy(ys, xs, 8);", "axpy(ys, xs, 8); axpy(xs, ys, 8);"
        )
        from repro.lang import parse
        from repro.lang.codegen import generate
        from repro.lang.semantics import check

        module = parse(src)
        program = generate(module, check(module))
        bind_array_parameters(program)
        axpy = program.functions["axpy"]
        objs = {
            ins.mem.obj for ins in axpy.instructions()
            if ins.mem is not None and ins.mem.is_array
        }
        assert all(obj.startswith("p:") for obj in objs)

    def test_binding_preserves_semantics(self):
        expected = int(1.0 + 7.0 * 2.0)
        for careful in (False, True):
            opts = CompilerOptions(careful=careful)
            assert run_tin(BIND_SRC, opts).value == expected

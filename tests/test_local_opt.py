"""Unit tests for local value numbering and dead-code elimination."""

from repro.isa import BasicBlock, Function, Opcode, build
from repro.isa.registers import ARG_REGS, RV, SP, virtual
from repro.opt.local import dead_code_elimination, value_number_function
from repro.opt.options import AliasLevel


def make_fn(instrs) -> Function:
    fn = Function("f")
    fn.blocks = [BasicBlock("f.entry", list(instrs) + [build.ret()])]
    return fn


def ops_of(fn: Function) -> list[Opcode]:
    return [ins.op for ins in fn.blocks[0].instrs]


class TestConstantFolding:
    def test_fold_add(self):
        fn = make_fn([
            build.li(virtual(0), 4),
            build.li(virtual(1), 5),
            build.alu(Opcode.ADD, virtual(2), virtual(0), virtual(1)),
            build.mov(RV, virtual(2)),
        ])
        value_number_function(fn)
        folded = fn.blocks[0].instrs[2]
        assert folded.op is Opcode.LI
        assert folded.imm == 9

    def test_fold_through_imm_form(self):
        fn = make_fn([
            build.li(virtual(0), 10),
            build.alui(Opcode.SLLI, virtual(1), virtual(0), 2),
            build.mov(RV, virtual(1)),
        ])
        value_number_function(fn)
        assert fn.blocks[0].instrs[1].imm == 40

    def test_fold_float(self):
        fn = make_fn([
            build.lif(virtual(0), 1.5),
            build.lif(virtual(1), 2.0),
            build.alu(Opcode.FMUL, virtual(2), virtual(0), virtual(1)),
            build.mov(RV, virtual(2)),
        ])
        value_number_function(fn)
        folded = fn.blocks[0].instrs[2]
        assert folded.op is Opcode.LIF and folded.imm == 3.0

    def test_never_folds_constant_division_by_zero(self):
        fn = make_fn([
            build.li(virtual(0), 4),
            build.li(virtual(1), 0),
            build.alu(Opcode.DIV, virtual(2), virtual(0), virtual(1)),
            build.mov(RV, virtual(2)),
        ])
        value_number_function(fn)
        assert fn.blocks[0].instrs[2].op is Opcode.DIV


class TestIdentities:
    def test_add_zero_becomes_move(self):
        fn = make_fn([
            build.li(virtual(0), 0),
            build.alu(Opcode.ADD, virtual(1), virtual(10), virtual(0)),
            build.mov(RV, virtual(1)),
        ])
        value_number_function(fn)
        assert fn.blocks[0].instrs[1].op is Opcode.MOV

    def test_mul_one(self):
        fn = make_fn([
            build.li(virtual(0), 1),
            build.alu(Opcode.MUL, virtual(1), virtual(0), virtual(10)),
            build.mov(RV, virtual(1)),
        ])
        value_number_function(fn)
        assert fn.blocks[0].instrs[1].op is Opcode.MOV

    def test_mul_zero(self):
        fn = make_fn([
            build.li(virtual(0), 0),
            build.alu(Opcode.MUL, virtual(1), virtual(10), virtual(0)),
            build.mov(RV, virtual(1)),
        ])
        value_number_function(fn)
        folded = fn.blocks[0].instrs[1]
        assert folded.op is Opcode.LI and folded.imm == 0

    def test_strength_reduction_power_of_two(self):
        fn = make_fn([
            build.li(virtual(0), 8),
            build.alu(Opcode.MUL, virtual(1), virtual(10), virtual(0)),
            build.mov(RV, virtual(1)),
        ])
        value_number_function(fn)
        reduced = fn.blocks[0].instrs[1]
        assert reduced.op is Opcode.SLLI and reduced.imm == 3


class TestCSE:
    def test_common_subexpression_becomes_move(self):
        fn = make_fn([
            build.alu(Opcode.ADD, virtual(2), virtual(0), virtual(1)),
            build.alu(Opcode.ADD, virtual(3), virtual(0), virtual(1)),
            build.mov(RV, virtual(3)),
        ])
        value_number_function(fn)
        assert fn.blocks[0].instrs[1].op is Opcode.MOV

    def test_commutative_cse(self):
        fn = make_fn([
            build.alu(Opcode.ADD, virtual(2), virtual(0), virtual(1)),
            build.alu(Opcode.ADD, virtual(3), virtual(1), virtual(0)),
            build.mov(RV, virtual(3)),
        ])
        value_number_function(fn)
        assert fn.blocks[0].instrs[1].op is Opcode.MOV

    def test_non_commutative_not_csed(self):
        fn = make_fn([
            build.alu(Opcode.SUB, virtual(2), virtual(0), virtual(1)),
            build.alu(Opcode.SUB, virtual(3), virtual(1), virtual(0)),
            build.mov(RV, virtual(3)),
        ])
        value_number_function(fn)
        assert fn.blocks[0].instrs[1].op is Opcode.SUB

    def test_redundant_load_eliminated(self):
        fn = make_fn([
            build.lw(virtual(0), SP, 3),
            build.lw(virtual(1), SP, 3),
            build.mov(RV, virtual(1)),
        ])
        value_number_function(fn)
        assert fn.blocks[0].instrs[1].op is Opcode.MOV

    def test_store_kills_loads_conservatively(self):
        fn = make_fn([
            build.lw(virtual(0), SP, 3),
            build.sw(virtual(9), virtual(8), 0),   # unknown address
            build.lw(virtual(1), SP, 3),
            build.mov(RV, virtual(1)),
        ])
        value_number_function(fn, AliasLevel.CONSERVATIVE)
        assert fn.blocks[0].instrs[2].op is Opcode.LW

    def test_store_to_load_forwarding(self):
        fn = make_fn([
            build.sw(virtual(5), SP, 3),
            build.lw(virtual(0), SP, 3),
            build.mov(RV, virtual(0)),
        ])
        value_number_function(fn)
        assert fn.blocks[0].instrs[1].op is Opcode.MOV
        assert fn.blocks[0].instrs[1].srcs[0] == virtual(5)

    def test_call_kills_loads(self):
        fn = make_fn([
            build.lw(virtual(0), SP, 3),
            build.call("g"),
            build.lw(virtual(1), SP, 3),
            build.mov(RV, virtual(1)),
        ])
        value_number_function(fn)
        assert fn.blocks[0].instrs[2].op is Opcode.LW

    def test_call_kills_argument_registers(self):
        fn = make_fn([
            build.mov(ARG_REGS[0], virtual(5)),
            build.call("g"),
            build.mov(virtual(1), ARG_REGS[0]),  # not v5 anymore
            build.mov(RV, virtual(1)),
        ])
        value_number_function(fn)
        # rv move must NOT have been propagated back to v5
        assert fn.blocks[0].instrs[3].srcs[0] != virtual(5)


class TestCopyPropagation:
    def test_mov_chain_propagates(self):
        fn = make_fn([
            build.mov(virtual(1), virtual(0)),
            build.mov(virtual(2), virtual(1)),
            build.alui(Opcode.ADDI, virtual(3), virtual(2), 1),
            build.mov(RV, virtual(3)),
        ])
        value_number_function(fn)
        add = fn.blocks[0].instrs[2]
        assert add.srcs[0] == virtual(0)

    def test_redefinition_stops_propagation(self):
        fn = make_fn([
            build.mov(virtual(1), virtual(0)),
            build.alui(Opcode.ADDI, virtual(0), virtual(9), 1),  # v0 changed
            build.alui(Opcode.ADDI, virtual(3), virtual(1), 1),
            build.mov(RV, virtual(3)),
        ])
        value_number_function(fn)
        add = fn.blocks[0].instrs[2]
        assert add.srcs[0] == virtual(1)  # must not read the new v0


class TestDCE:
    def test_removes_dead_computation(self):
        fn = make_fn([
            build.li(virtual(0), 1),
            build.li(virtual(1), 2),              # dead
            build.mov(RV, virtual(0)),
        ])
        removed = dead_code_elimination(fn)
        assert removed == 1
        assert len(fn.blocks[0].instrs) == 3

    def test_removes_transitive_chains(self):
        fn = make_fn([
            build.li(virtual(0), 1),
            build.alui(Opcode.ADDI, virtual(1), virtual(0), 1),
            build.alui(Opcode.ADDI, virtual(2), virtual(1), 1),  # all dead
        ])
        removed = dead_code_elimination(fn)
        assert removed == 3

    def test_keeps_stores_and_calls(self):
        fn = make_fn([
            build.li(virtual(0), 1),
            build.sw(virtual(0), SP, 3),
            build.call("g"),
        ])
        removed = dead_code_elimination(fn)
        assert removed == 0

    def test_keeps_physical_destinations(self):
        fn = make_fn([build.mov(RV, virtual(0))])
        assert dead_code_elimination(fn) == 0

    def test_respects_cross_block_liveness(self):
        fn = Function("f")
        fn.blocks = [
            BasicBlock("a", [build.li(virtual(0), 7), build.jump("b")]),
            BasicBlock("b", [build.mov(RV, virtual(0)), build.ret()]),
        ]
        assert dead_code_elimination(fn) == 0

    def test_removes_self_move(self):
        fn = make_fn([
            build.mov(virtual(0), virtual(0)),
            build.mov(RV, virtual(0)),
        ])
        assert dead_code_elimination(fn) == 1

"""Tests for the analysis layer: stats, tables, pipeline diagrams."""

import pytest

from repro.analysis.pipeviz import demo_trace, render_pipeline
from repro.analysis.stats import geometric_mean, harmonic_mean, percent_change
from repro.analysis.tables import format_table, line_chart
from repro.machine import (
    base_machine,
    ideal_superscalar,
    superpipelined,
    superpipelined_superscalar,
)
from repro.sim.timing import simulate


class TestStats:
    def test_harmonic_mean_known_value(self):
        assert harmonic_mean([1, 2, 4]) == pytest.approx(12 / 7)

    def test_harmonic_mean_rejects_empty(self):
        with pytest.raises(ValueError):
            harmonic_mean([])

    def test_harmonic_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            harmonic_mean([1.0, 0.0])

    def test_geometric_mean(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)

    def test_percent_change(self):
        assert percent_change(3.0, 2.0) == pytest.approx(50.0)
        with pytest.raises(ValueError):
            percent_change(1.0, 0.0)


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1.5], ["bb", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0] and "value" in lines[0]
        assert "1.500" in text

    def test_line_chart_contains_markers_and_legend(self):
        chart = line_chart(
            {"up": [(1, 1), (2, 2)], "down": [(1, 2), (2, 1)]},
            width=20, height=6,
        )
        assert "U=up" in chart and "D=down" in chart
        assert "U" in chart.replace("U=up", "")

    def test_line_chart_rejects_empty(self):
        with pytest.raises(ValueError):
            line_chart({"s": []})


class TestPipeviz:
    def test_base_machine_diagram_one_issue_per_cycle(self):
        trace = demo_trace("independent", 4)
        text = render_pipeline(trace, base_machine())
        lines = [l for l in text.splitlines() if l.startswith("i")]
        assert len(lines) == 4
        # execution marks '#' move right one column per instruction
        positions = [line.index("#") for line in lines]
        assert positions == sorted(positions)
        assert len(set(positions)) == 4

    def test_superscalar_diagram_groups_issues(self):
        trace = demo_trace("independent", 6)
        text = render_pipeline(trace, ideal_superscalar(3))
        lines = [l for l in text.splitlines() if l.startswith("i")]
        positions = [line.index("#") for line in lines]
        assert positions[0] == positions[1] == positions[2]
        assert positions[3] == positions[4] == positions[5]

    def test_superpipelined_diagram_long_execute(self):
        trace = demo_trace("independent", 3)
        text = render_pipeline(trace, superpipelined(3))
        lines = [l for l in text.splitlines() if l.startswith("i")]
        assert all(line.count("#") == 3 for line in lines)

    def test_chain_runs_serially(self):
        trace = demo_trace("chain", 4)
        ss = simulate(trace, ideal_superscalar(4))
        assert ss.minor_cycles == 4

    def test_superpipelined_superscalar(self):
        trace = demo_trace("independent", 9)
        text = render_pipeline(trace, superpipelined_superscalar(3, 3))
        lines = [l for l in text.splitlines() if l.startswith("i")]
        positions = [line.index("#") for line in lines]
        assert positions[0] == positions[1] == positions[2]

    def test_unknown_demo_kind(self):
        with pytest.raises(ValueError):
            demo_trace("bogus")

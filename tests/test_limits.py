"""Tests for the ILP-limit extensions: branch stalls, out-of-order issue,
and the instruction cache."""

import pytest

from repro.errors import MachineConfigError
from repro.isa import InstrClass, Opcode, build
from repro.isa.registers import virtual
from repro.machine import MachineConfig, base_machine, ideal_superscalar
from repro.sim.cache import CacheConfig, simulate_with_icache
from repro.sim.limits import branch_inhibition, simulate_out_of_order
from repro.sim.timing import issue_schedule, simulate
from repro.sim.trace import Trace


def trace_of(instrs, addrs=None) -> Trace:
    return Trace.from_instructions(instrs, addrs=addrs)


class TestBranchPolicy:
    def test_policy_validated(self):
        with pytest.raises(MachineConfigError):
            MachineConfig(name="bad", branch_policy="oracle")

    def test_with_branch_policy_copies(self):
        cfg = base_machine().with_branch_policy("stall")
        assert cfg.branch_policy == "stall"
        assert base_machine().branch_policy == "perfect"

    def test_stall_blocks_issue_after_conditional(self):
        instrs = [
            build.bnez(virtual(0), "L"),
            build.alui(Opcode.ADDI, virtual(1), virtual(2), 1),
        ]
        trace = Trace(static=instrs)
        trace.append(0)
        trace.append(1)
        lats = {k: 1 for k in InstrClass}
        lats[InstrClass.BRANCH] = 3
        perfect = MachineConfig(name="p", issue_width=2, latencies=lats)
        stall = perfect.with_branch_policy("stall")
        assert issue_schedule(trace, perfect) == [0, 0]
        assert issue_schedule(trace, stall) == [0, 3]

    def test_unconditional_jumps_never_stall(self):
        instrs = [
            build.jump("L"),
            build.alui(Opcode.ADDI, virtual(1), virtual(2), 1),
        ]
        trace = Trace(static=instrs)
        trace.append(0)
        trace.append(1)
        cfg = MachineConfig(
            name="s", issue_width=2, branch_policy="stall"
        )
        assert issue_schedule(trace, cfg) == [0, 0]

    def test_branch_inhibition_on_real_code(self):
        from repro.benchmarks import suite

        result = suite.run_benchmark(suite.get("whet"))
        perfect, stalled = branch_inhibition(
            result.trace, ideal_superscalar(8)
        )
        assert stalled.parallelism < perfect.parallelism
        assert stalled.parallelism > 1.0


class TestOutOfOrder:
    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            simulate_out_of_order(
                trace_of([build.nop()]), base_machine(), window=0
            )

    def test_ooo_reorders_past_stalled_head(self):
        # head instruction waits on a slow load; in-order blocks the
        # independent tail, out-of-order does not
        instrs = [
            build.lw(virtual(0), virtual(9), 0),
            build.alui(Opcode.ADDI, virtual(1), virtual(0), 1),  # dependent
            build.alui(Opcode.ADDI, virtual(2), virtual(8), 1),  # independent
            build.alui(Opcode.ADDI, virtual(3), virtual(8), 2),
        ]
        lats = {k: 1 for k in InstrClass}
        lats[InstrClass.LOAD] = 8
        cfg = MachineConfig(name="m", issue_width=2, latencies=lats)
        trace = trace_of(instrs)
        inorder = simulate(trace, cfg)
        ooo = simulate_out_of_order(trace, cfg, window=8)
        assert ooo.minor_cycles < inorder.minor_cycles

    def test_window_one_is_no_better_than_in_order(self):
        instrs = [
            build.lw(virtual(0), virtual(9), 0),
            build.alui(Opcode.ADDI, virtual(1), virtual(0), 1),
            build.alui(Opcode.ADDI, virtual(2), virtual(8), 1),
        ]
        lats = {k: 1 for k in InstrClass}
        lats[InstrClass.LOAD] = 8
        cfg = MachineConfig(name="m", issue_width=2, latencies=lats)
        trace = trace_of(instrs)
        narrow = simulate_out_of_order(trace, cfg, window=1)
        wide = simulate_out_of_order(trace, cfg, window=8)
        assert wide.minor_cycles <= narrow.minor_cycles

    def test_wider_window_monotone(self):
        from repro.benchmarks import suite

        result = suite.run_benchmark(suite.get("whet"))
        cfg = ideal_superscalar(8)
        prev = 0.0
        for window in (1, 4, 16, 64):
            p = simulate_out_of_order(result.trace, cfg, window).parallelism
            assert p >= prev - 1e-9
            prev = p

    def test_memory_same_address_stays_ordered(self):
        instrs = [
            build.sw(virtual(1), virtual(9), 0),
            build.lw(virtual(2), virtual(9), 0),
        ]
        trace = trace_of(instrs, addrs=[64, 64])
        lats = {k: 1 for k in InstrClass}
        lats[InstrClass.STORE] = 5
        cfg = MachineConfig(name="m", issue_width=2, latencies=lats)
        result = simulate_out_of_order(trace, cfg, window=8)
        assert result.minor_cycles == 6  # load waits for store completion

    def test_ooo_beats_inorder_on_suite(self):
        """The hardware alternative the paper argues against building is
        genuinely more powerful once renaming and cross-branch lookahead
        are granted (cf. Wall 1991)."""
        from repro.benchmarks import suite

        result = suite.run_benchmark(suite.get("stanford"))
        cfg = ideal_superscalar(8)
        inorder = simulate(result.trace, cfg).parallelism
        ooo = simulate_out_of_order(result.trace, cfg, window=32).parallelism
        assert ooo > inorder


class TestInstructionCache:
    def test_tiny_icache_thrashes(self):
        # a loop bigger than the cache misses on every trip
        instrs = [
            build.alui(Opcode.ADDI, virtual(i), virtual(100 + i), 1)
            for i in range(32)
        ]
        trace = Trace(static=instrs)
        for _rep in range(4):
            for i in range(32):
                trace.append(i)
        small = CacheConfig(size_words=16, line_words=4, miss_penalty=8)
        big = CacheConfig(size_words=256, line_words=4, miss_penalty=8)
        r_small = simulate_with_icache(trace, base_machine(), small)
        r_big = simulate_with_icache(trace, base_machine(), big)
        assert r_small.fetch_misses > r_big.fetch_misses
        assert (
            r_small.timing.minor_cycles > r_big.timing.minor_cycles
        )

    def test_fits_in_cache_misses_once_per_line(self):
        instrs = [
            build.alui(Opcode.ADDI, virtual(i), virtual(100 + i), 1)
            for i in range(8)
        ]
        trace = Trace(static=instrs)
        for _rep in range(3):
            for i in range(8):
                trace.append(i)
        cache = CacheConfig(size_words=64, line_words=4, miss_penalty=5)
        result = simulate_with_icache(trace, base_machine(), cache)
        assert result.fetch_misses == 2  # 8 instructions / 4 per line
        assert result.miss_rate == pytest.approx(2 / 24)

    def test_unrolling_declines_with_limited_icache(self):
        """Section 4.4: 'If limited instruction caches were present, the
        actual performance would decline for large degrees of
        unrolling.'"""
        from repro.benchmarks import suite
        from repro.isa.registers import RegisterFileSpec
        from repro.opt.options import CompilerOptions

        cache = CacheConfig(size_words=256, line_words=4, miss_penalty=20)
        cfg = ideal_superscalar(8)
        perf = {}
        for factor in (1, 10):
            opts = CompilerOptions(
                unroll=factor, careful=True,
                regfile=RegisterFileSpec(n_temp=40, n_home=26),
            )
            result = suite.run_benchmark(suite.get("linpack"), opts)
            timing = simulate_with_icache(result.trace, cfg, cache)
            perf[factor] = (
                result.instructions / timing.timing.base_cycles,
                simulate(result.trace, cfg).parallelism,
            )
        with_cache_1, no_cache_1 = perf[1]
        with_cache_10, no_cache_10 = perf[10]
        # unrolling helps on the ideal machine...
        assert no_cache_10 > no_cache_1
        # ...but the icache takes a bigger bite out of the unrolled code
        assert (no_cache_10 - with_cache_10) > (no_cache_1 - with_cache_1)


class TestDataflowLimit:
    def test_oracle_bounds_everything(self):
        from repro.benchmarks import suite
        from repro.sim.limits import dataflow_limit

        result = suite.run_benchmark(suite.get("whet"))
        oracle = dataflow_limit(result.trace).parallelism
        inorder = simulate(result.trace, ideal_superscalar(64)).parallelism
        ooo = simulate_out_of_order(
            result.trace, ideal_superscalar(64), window=64
        ).parallelism
        assert oracle >= ooo >= inorder

    def test_chain_has_limit_one(self):
        from repro.sim.limits import dataflow_limit

        instrs = [
            build.alui(Opcode.ADDI, virtual(i + 1), virtual(i), 1)
            for i in range(20)
        ]
        oracle = dataflow_limit(trace_of(instrs))
        assert oracle.parallelism == pytest.approx(1.0)

    def test_independent_work_is_unbounded_by_width(self):
        from repro.sim.limits import dataflow_limit

        instrs = [
            build.alui(Opcode.ADDI, virtual(i), virtual(1000 + i), 1)
            for i in range(50)
        ]
        oracle = dataflow_limit(trace_of(instrs))
        assert oracle.parallelism == pytest.approx(50.0)

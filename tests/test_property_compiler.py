"""Property-based tests for the compiler passes (hypothesis)."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.isa import format_program
from repro.lang import parse
from repro.lang.codegen import generate
from repro.lang.semantics import check
from repro.opt.local import dead_code_elimination, value_number_function
from repro.opt.options import CompilerOptions, OptLevel
from repro.isa.registers import RegisterFileSpec
from tests.helpers import run_tin_value

_SLOW = dict(
    max_examples=25, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ------------------------------------------------------------- loop programs
@settings(**_SLOW)
@given(
    start=st.integers(-5, 5),
    stop=st.integers(-5, 20),
    step=st.integers(1, 4),
    factor=st.integers(1, 6),
    careful=st.booleans(),
    direction=st.booleans(),
)
def test_unrolled_counted_loops_match_python(
    start, stop, step, factor, careful, direction
):
    if direction:
        start, stop, step_signed = stop, start, -step
    else:
        step_signed = step
    src = f"""
    var a: int[64];
    proc main(): int {{
        var i, s: int;
        s = 0;
        for i = {start} to {stop} by {step_signed} {{
            s = s * 3 + i;
            a[(i + 32) % 64] = s;
        }}
        return s;
    }}
    """
    expected = 0
    rng = (
        range(start, stop + 1, step_signed)
        if step_signed > 0
        else range(start, stop - 1, step_signed)
    )
    for i in rng:
        expected = expected * 3 + i
    value = run_tin_value(
        src, CompilerOptions(unroll=factor, careful=careful)
    )
    assert value == expected


# ---------------------------------------------------- array store/load mixes
@settings(**_SLOW)
@given(
    writes=st.lists(
        st.tuples(st.integers(0, 15), st.integers(-20, 20)),
        min_size=1, max_size=10,
    ),
    level=st.sampled_from(list(OptLevel)),
)
def test_array_write_read_sequences(writes, level):
    body = []
    model = [0] * 16
    for idx, value in writes:
        body.append(f"t[{idx}] = t[{idx}] + ({value});")
        model[idx] += value
    expected = sum(v * (i + 1) for i, v in enumerate(model))
    src = (
        "var t: int[16];\n"
        "proc main(): int { var i, s: int;\n"
        + "\n".join(body)
        + "\ns = 0; for i = 0 to 15 { s = s + t[i] * (i + 1); }"
        + " return s; }"
    )
    assert run_tin_value(src, CompilerOptions(opt_level=level)) == expected


# ----------------------------------------------------------- pass idempotence
_VN_SRC = """
var g1, g2: int;
var buf: int[8];
proc main(): int {
    var a, b, c: int;
    a = g1 * 4 + g2;
    b = g1 * 4 + g2;
    buf[2] = a;
    c = buf[2] + b;
    g1 = c - a;
    return c + g1 + buf[2];
}
"""


def test_value_numbering_reaches_fixpoint_quickly():
    module = parse(_VN_SRC)
    program = generate(module, check(module))
    fn = program.functions["main"]
    value_number_function(fn)
    dead_code_elimination(fn)
    before = format_program(program)
    # a second identical pass must change nothing
    value_number_function(fn)
    dead_code_elimination(fn)
    assert format_program(program) == before


@settings(**_SLOW)
@given(
    exprs=st.lists(
        st.sampled_from([
            "g1 + g2", "g1 * g2", "g1 + g2", "g2 - g1", "g1 * 8",
            "g1 + 0", "g2 * 1",
        ]),
        min_size=2, max_size=8,
    ),
)
def test_vn_dce_preserve_semantics_on_expression_soup(exprs):
    assigns = "\n".join(
        f"t{i} = {expr};" for i, expr in enumerate(exprs)
    )
    decls = ", ".join(f"t{i}" for i in range(len(exprs)))
    total = " + ".join(f"t{i} * {i + 1}" for i in range(len(exprs)))
    src = (
        "var g1, g2: int;\n"
        f"proc main(): int {{ var {decls}: int;\n"
        "g1 = 13; g2 = -7;\n"
        f"{assigns}\n"
        f"return {total}; }}"
    )
    plain = run_tin_value(src, CompilerOptions(opt_level=OptLevel.NONE))
    optimized = run_tin_value(src, CompilerOptions(opt_level=OptLevel.LOCAL))
    assert plain == optimized


# ----------------------------------------------------- register-pool sweeps
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    n_temp=st.integers(3, 24),
    n_home=st.integers(0, 20),
)
def test_any_register_budget_is_correct(n_temp, n_home):
    src = """
    var g: int;
    proc fib(n: int): int {
        if (n < 2) { return n; }
        return fib(n - 1) + fib(n - 2);
    }
    proc main(): int {
        g = fib(10);
        return g * 2 + fib(5);
    }
    """
    opts = CompilerOptions(
        regfile=RegisterFileSpec(n_temp=n_temp, n_home=n_home)
    )
    assert run_tin_value(src, opts) == 55 * 2 + 5

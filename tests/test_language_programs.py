"""End-to-end Tin programs checked against Python semantics at every
optimization level.  These are the compiler's conformance suite: each
program exercises a distinct language feature through the full pipeline
(parse, check, codegen, optimize, allocate, schedule, execute)."""

import pytest

from tests.helpers import run_tin_value

# (name, source, expected value) — expected computed by hand/Python.
PROGRAMS = [
    ("return_const", "proc main(): int { return 42; }", 42),
    ("arith", "proc main(): int { return 2 + 3 * 4 - 6 / 2; }", 11),
    ("division_truncates_toward_zero",
     "proc main(): int { return (0 - 7) / 2; }", -3),
    ("modulo_c_semantics",
     "proc main(): int { return (0 - 7) % 3; }", -(7 % 3) if False else -1),
    ("shift_ops", "proc main(): int { return (1 << 6) + (256 >> 3); }", 96),
    ("bitwise", "proc main(): int { return (12 & 10) | (1 ^ 3); }", 10),
    ("comparisons",
     "proc main(): int { return (1 < 2) + (2 <= 2) + (3 > 4) + (4 >= 5)"
     " + (1 == 1) + (1 != 1); }", 3),
    ("unary_not", "proc main(): int { return !0 + !5; }", 1),
    ("negation", "proc main(): int { var x: int; x = 5; return -x; }", -5),
    ("globals",
     "var g: int = 7;\nproc main(): int { g = g + 1; return g; }", 8),
    ("global_array_init",
     "var t: int[4] = {3, 1, 4, 1};\n"
     "proc main(): int { return t[0]*1000 + t[1]*100 + t[2]*10 + t[3]; }",
     3141),
    ("global_array_fill_init",
     "var t: int[5] = 9;\nproc main(): int { return t[0] + t[4]; }", 18),
    ("local_array",
     "proc main(): int { var a: int[3]; var i: int;"
     " for i = 0 to 2 { a[i] = i * i; } return a[0] + a[1] + a[2]; }", 5),
    ("while_loop",
     "proc main(): int { var i, s: int; i = 0; s = 0;"
     " while (i < 10) { s = s + i; i = i + 1; } return s; }", 45),
    ("for_loop_inclusive",
     "proc main(): int { var i, s: int; s = 0;"
     " for i = 1 to 10 { s = s + i; } return s; }", 55),
    ("for_loop_negative_step",
     "proc main(): int { var i, s: int; s = 0;"
     " for i = 10 to 1 by -1 { s = s + i; } return s; }", 55),
    ("for_loop_step_3",
     "proc main(): int { var i, s: int; s = 0;"
     " for i = 0 to 10 by 3 { s = s + i; } return s; }", 18),
    ("for_loop_zero_trips",
     "proc main(): int { var i, s: int; s = 7;"
     " for i = 5 to 4 { s = 0; } return s; }", 7),
    ("nested_loops",
     "proc main(): int { var i, j, s: int; s = 0;"
     " for i = 1 to 5 { for j = 1 to i { s = s + 1; } } return s; }", 15),
    ("if_else",
     "proc main(): int { var x: int; x = 3;"
     " if (x > 5) { return 1; } else { return 2; } }", 2),
    ("else_if_chain",
     "proc classify(x: int): int {"
     " if (x > 0) { return 1; } else if (x < 0) { return -1; }"
     " else { return 0; } }"
     "proc main(): int { return classify(5)*100 + classify(-5)*10 +"
     " classify(0) + 111; }", 211 - 10 + 0 + 0),
    ("short_circuit_and",
     "var count: int;\n"
     "proc bump(): int { count = count + 1; return 1; }\n"
     "proc main(): int { var r: int; count = 0;"
     " r = 0 && bump(); return count * 10 + r; }", 0),
    ("short_circuit_or",
     "var count: int;\n"
     "proc bump(): int { count = count + 1; return 1; }\n"
     "proc main(): int { var r: int; count = 0;"
     " r = 1 || bump(); return count * 10 + r; }", 1),
    ("and_or_values",
     "proc main(): int { return (2 && 3) * 10 + (0 || 7); }", 11),
    ("procedure_calls",
     "proc add(a: int, b: int): int { return a + b; }\n"
     "proc main(): int { return add(add(1, 2), add(3, 4)); }", 10),
    ("six_args",
     "proc f(a: int, b: int, c: int, d: int, e: int, g: int): int"
     " { return a + 2*b + 3*c + 4*d + 5*e + 6*g; }\n"
     "proc main(): int { return f(1, 2, 3, 4, 5, 6); }", 91),
    ("recursion_factorial",
     "proc fact(n: int): int { if (n <= 1) { return 1; }"
     " return n * fact(n - 1); }\n"
     "proc main(): int { return fact(7); }", 5040),
    ("mutual_recursion",
     "proc is_even(n: int): int { if (n == 0) { return 1; }"
     " return is_odd(n - 1); }\n"
     "proc is_odd(n: int): int { if (n == 0) { return 0; }"
     " return is_even(n - 1); }\n"
     "proc main(): int { return is_even(10)*10 + is_odd(7); }", 11),
    ("array_by_reference",
     "var data: int[4];\n"
     "proc double_all(a: int[], n: int) { var i: int;"
     " for i = 0 to n - 1 { a[i] = a[i] * 2; } }\n"
     "proc main(): int { var i: int;"
     " for i = 0 to 3 { data[i] = i + 1; }"
     " double_all(data, 4);"
     " return data[0] + data[1] + data[2] + data[3]; }", 20),
    ("local_array_by_reference",
     "proc sum3(a: int[]): int { return a[0] + a[1] + a[2]; }\n"
     "proc main(): int { var b: int[3]; b[0] = 5; b[1] = 6; b[2] = 7;"
     " return sum3(b); }", 18),
    ("float_arith",
     "proc main(): int { var x: float; x = 1.5 * 4.0 - 2.0;"
     " return int(x); }", 4),
    ("float_compare",
     "proc main(): int { var x: float; x = 0.1 + 0.2;"
     " return (x > 0.3) + (x < 0.300001) * 10; }", 11),
    ("float_division",
     "proc main(): int { return int(7.0 / 2.0 * 100.0); }", 350),
    ("float_negate",
     "proc main(): int { var x: float; x = -2.5; return int(x * -2.0); }",
     5),
    ("int_float_conversion",
     "proc main(): int { return int(float(7) / 2.0); }", 3),
    ("cvtfi_truncates",
     "proc main(): int { return int(2.9) * 10 + int(-2.9 + 0.0); }", 18),
    ("float_params_and_return",
     "proc scale(x: float, k: float): float { return x * k; }\n"
     "proc main(): int { return int(scale(2.5, 4.0)); }", 10),
    ("global_float",
     "var acc: float;\nproc main(): int { acc = 0.5; acc = acc + 0.25;"
     " return int(acc * 8.0); }", 6),
    ("const_expr",
     "const W = 10;\nconst H = 4;\n"
     "proc main(): int { return W * H + W; }", 50),
    ("float_const",
     "const PI = 3.14159;\nproc main(): int { return int(PI * 100.0); }",
     314),
    ("deep_expression",
     "proc main(): int { return ((((1+2)*(3+4))+((5+6)*(7+8)))*2); }",
     (((1 + 2) * (3 + 4)) + ((5 + 6) * (7 + 8))) * 2),
    ("aliased_params_same_array",
     "var a: int[6];\n"
     "proc shift(dst: int[], src: int[], n: int) { var i: int;"
     " for i = 0 to n - 1 { dst[i] = src[i + 1] + 1; } }\n"
     "proc main(): int { var i: int;"
     " for i = 0 to 5 { a[i] = i * 10; }"
     " shift(a, a, 4);"
     " return a[0] + a[1] + a[2] + a[3]; }",
     (10 + 1) + (20 + 1) + (30 + 1) + (40 + 1)),
    ("stores_then_loads",
     "var a, b, c: int;\n"
     "proc main(): int { a = 1; b = 2; c = 3;"
     " a = b + c; b = a + c; c = a + b; return c; }", 13),
    ("many_locals_spill",
     "proc main(): int { var a, b, c, d, e, f, g, h, i, j, k, l: int;"
     " a=1; b=2; c=3; d=4; e=5; f=6; g=7; h=8; i=9; j=10; k=11; l=12;"
     " return a+b+c+d+e+f+g+h+i+j+k+l +"
     " (a*b) + (c*d) + (e*f) + (g*h) + (i*j) + (k*l); }",
     78 + 2 + 12 + 30 + 56 + 90 + 132),
]


@pytest.mark.parametrize(
    "name,source,expected", PROGRAMS, ids=[p[0] for p in PROGRAMS]
)
def test_program_semantics(name, source, expected, options):
    assert run_tin_value(source, options) == expected

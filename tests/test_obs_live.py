"""Direct unit tests for the ``--live`` progress line.

:class:`repro.obs.live.ProgressLine` has three behavioral contracts:
TTY detection (animate with ``\\r`` on a terminal, stay silent until
one plain summary line otherwise), error-path cleanliness (a painted
line is erased before a traceback prints), and idempotent completion.
"""

from __future__ import annotations

import io

import pytest

from repro.obs.live import ProgressLine


class _Tty(io.StringIO):
    def isatty(self):
        return True


class _BrokenIsatty(io.StringIO):
    def isatty(self):
        raise ValueError("stream closed")


class TestTtyDetection:
    def test_stringio_is_not_a_tty(self):
        line = ProgressLine(4, stream=io.StringIO())
        assert line.animate is False

    def test_tty_stream_animates(self):
        line = ProgressLine(4, stream=_Tty())
        assert line.animate is True

    def test_force_tty_overrides_detection(self):
        assert ProgressLine(4, stream=io.StringIO(),
                            force_tty=True).animate is True
        assert ProgressLine(4, stream=_Tty(),
                            force_tty=False).animate is False

    def test_broken_isatty_means_no_animation(self):
        line = ProgressLine(4, stream=_BrokenIsatty())
        assert line.animate is False

    def test_stream_without_isatty(self):
        class Bare:
            def write(self, text):
                pass

            def flush(self):
                pass

        assert ProgressLine(4, stream=Bare()).animate is False


class TestNonTty:
    def test_updates_write_nothing(self):
        stream = io.StringIO()
        line = ProgressLine(4, stream=stream)
        line.update(2, "ok", 1000)
        line.update(2, "ok", 1000)
        assert stream.getvalue() == ""

    def test_finish_writes_one_plain_line(self):
        stream = io.StringIO()
        line = ProgressLine(4, stream=stream)
        line.update(3, "ok", 1000)
        line.update(1, "retried", 500)
        line.finish()
        text = stream.getvalue()
        assert "\r" not in text
        assert text.endswith("\n") and text.count("\n") == 1
        assert "cells 4/4" in text
        assert "3 ok 1 retried 0 degraded 0 failed" in text

    def test_clear_is_a_noop(self):
        stream = io.StringIO()
        line = ProgressLine(4, stream=stream)
        line.update(4, "ok", 100)
        line.clear()
        assert stream.getvalue() == ""


class TestTty:
    def _line(self, **kwargs):
        stream = io.StringIO()
        kwargs.setdefault("min_interval", 0.0)
        return ProgressLine(4, stream=stream, force_tty=True,
                            **kwargs), stream

    def test_update_repaints_in_place(self):
        line, stream = self._line()
        line.update(1, "ok", 100)
        text = stream.getvalue()
        assert text.startswith("\r")
        assert "cells 1/4" in text
        line.update(1, "ok", 100)
        assert "cells 2/4" in stream.getvalue()
        # Repaints rewrite the same padded-width line, never newline.
        assert "\n" not in stream.getvalue()

    def test_throttle_skips_rapid_repaints(self):
        line, stream = self._line(min_interval=3600.0)
        line.update(1, "ok", 100)
        painted = stream.getvalue()
        line.update(1, "ok", 100)
        assert stream.getvalue() == painted

    def test_finish_terminates_the_line(self):
        line, stream = self._line()
        line.update(4, "ok", 100)
        line.finish()
        assert stream.getvalue().endswith("\n")
        assert "cells 4/4" in stream.getvalue()

    def test_finish_is_idempotent(self):
        line, stream = self._line()
        line.update(4, "ok", 100)
        line.finish()
        once = stream.getvalue()
        line.finish()
        assert stream.getvalue() == once

    def test_clear_erases_the_painted_line(self):
        line, stream = self._line()
        line.update(1, "ok", 100)
        line.clear()
        # The final write is blanks-and-return: the cursor sits at
        # column 0 of an empty line, ready for a traceback.
        assert stream.getvalue().endswith(
            "\r" + " " * ProgressLine.WIDTH + "\r")

    def test_counts_unknown_status_still_counts_cells(self):
        line, stream = self._line()
        line.update(2, "weird", 100)
        assert line.done == 2
        assert sum(line.counts.values()) == 0


class TestContextManager:
    def test_clean_exit_finishes(self):
        stream = io.StringIO()
        with ProgressLine(2, stream=stream) as line:
            line.update(2, "ok", 100)
        assert "cells 2/2" in stream.getvalue()
        assert stream.getvalue().endswith("\n")

    def test_exception_clears_instead_of_finishing(self):
        stream = io.StringIO()
        with pytest.raises(RuntimeError):
            with ProgressLine(2, stream=stream,
                              force_tty=True, min_interval=0.0) as line:
                line.update(1, "ok", 100)
                raise RuntimeError("boom")
        # Painted line erased, no summary spliced before the traceback.
        assert stream.getvalue().endswith(
            "\r" + " " * ProgressLine.WIDTH + "\r")
        assert not stream.getvalue().endswith("\n")

    def test_keyboard_interrupt_clears(self):
        stream = io.StringIO()
        with pytest.raises(KeyboardInterrupt):
            with ProgressLine(2, stream=stream,
                              force_tty=True, min_interval=0.0) as line:
                line.update(1, "ok", 100)
                raise KeyboardInterrupt()
        assert stream.getvalue().endswith("\r")

    def test_exception_without_paint_writes_nothing(self):
        stream = io.StringIO()
        with pytest.raises(RuntimeError):
            with ProgressLine(2, stream=stream):
                raise RuntimeError("early")
        assert stream.getvalue() == ""


class TestRateFormatting:
    @pytest.mark.parametrize("rate,expected", [
        (0.0, "0"),
        (999.4, "999"),
        (1500.0, "1.5k"),
        (999_999.0, "1000.0k"),
        (2_500_000.0, "2.5M"),
    ])
    def test_format_rate(self, rate, expected):
        assert ProgressLine._format_rate(rate) == expected

    def test_render_mentions_every_status(self):
        line = ProgressLine(8, stream=io.StringIO())
        for status in ("ok", "retried", "degraded", "failed"):
            line.update(1, status, 10)
        text = line._render()
        assert "1 ok 1 retried 1 degraded 1 failed" in text
        assert text.startswith("cells 4/8")

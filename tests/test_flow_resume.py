"""Property tests: crash resume re-runs exactly the unfinished slice.

Hypothesis generates random DAG shapes (layered, with random edges)
and a random kill point; the test kills the flow in-process at that
node boundary, resumes it, and asserts:

* the resume *restores* exactly the nodes journaled complete before
  the kill (their checkpoints survived),
* it *executes* exactly the rest,
* the final values equal an uninterrupted run's, node for node.
"""

from __future__ import annotations

import shutil
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.faults import FaultPlan
from repro.flow import (
    FlowDag,
    FlowNode,
    FlowRunner,
    journal_completed,
    journal_path,
    read_journal,
    run_flow,
)


class _Kill(Exception):
    """In-process stand-in for the SIGKILL a kill fault delivers."""


def _kill_action(node, ordinal):
    raise _Kill(f"{node}@{ordinal}")


def _value_func(name, payload, deps):
    # Deterministic, dependency-mixing: catches both lost checkpoints
    # and stale ones fed to downstream recomputation.
    total = payload
    for dep_name in sorted(deps):
        value = deps[dep_name]
        total = total * 31 + (value if value is not None else -1)
    return total


RUNNERS = {"t": FlowRunner("t", _value_func, local=True)}


@st.composite
def dag_and_kill(draw):
    """A random layered DAG plus a kill ordinal within it."""
    n = draw(st.integers(min_value=1, max_value=8))
    deps: list[tuple[int, ...]] = []
    for i in range(n):
        if i == 0:
            deps.append(())
        else:
            chosen = draw(st.sets(st.integers(0, i - 1), max_size=3))
            deps.append(tuple(sorted(chosen)))
    kill_at = draw(st.integers(min_value=1, max_value=n))
    return deps, kill_at


def _build(deps):
    dag = FlowDag()
    for i, dep_indices in enumerate(deps):
        dag.add(FlowNode(
            name=f"n{i}", kind="t", fingerprint=f"fp{i}",
            deps=tuple(f"n{j}" for j in dep_indices), payload=i,
        ))
    return dag


@given(dag_and_kill())
@settings(max_examples=30, deadline=None)
def test_kill_resume_runs_only_unfinished_nodes(case):
    deps, kill_at = case
    clean_root = tempfile.mkdtemp(prefix="flow-prop-clean-")
    chaos_root = tempfile.mkdtemp(prefix="flow-prop-chaos-")
    try:
        clean = run_flow(_build(deps), RUNNERS, root=clean_root)
        assert clean.ok

        interrupted = False
        try:
            run_flow(_build(deps), RUNNERS, root=chaos_root,
                     run_id="chaos",
                     faults=FaultPlan.parse(f"kill@{kill_at}"),
                     kill_action=_kill_action)
        except _Kill:
            interrupted = True
        assert interrupted  # kill_at <= node count, so it always fires

        events = read_journal(journal_path(chaos_root, "chaos"))
        sigs = _build(deps).signatures()
        completed_sigs = {
            sig for sig, status in journal_completed(events).items()
            if status == "executed"
        }
        completed = {name for name in sigs
                     if sigs[name] in completed_sigs}
        assert len(completed) == kill_at

        resumed = run_flow(_build(deps), RUNNERS, root=chaos_root,
                           run_id="chaos")
        assert resumed.ok
        assert set(resumed.restored) == completed
        assert set(resumed.executed) == set(sigs) - completed
        assert resumed.values == clean.values
    finally:
        shutil.rmtree(clean_root, ignore_errors=True)
        shutil.rmtree(chaos_root, ignore_errors=True)


@given(dag_and_kill())
@settings(max_examples=15, deadline=None)
def test_double_kill_then_resume_converges(case):
    """Two successive crashes still converge to the clean values."""
    deps, kill_at = case
    n = len(deps)
    clean_root = tempfile.mkdtemp(prefix="flow-prop-clean-")
    chaos_root = tempfile.mkdtemp(prefix="flow-prop-chaos-")
    try:
        clean = run_flow(_build(deps), RUNNERS, root=clean_root)

        for attempt_kill in (kill_at, max(1, n - kill_at)):
            try:
                run_flow(_build(deps), RUNNERS, root=chaos_root,
                         run_id="chaos",
                         faults=FaultPlan.parse(f"kill@{attempt_kill}"),
                         kill_action=_kill_action)
            except _Kill:
                pass
        final = run_flow(_build(deps), RUNNERS, root=chaos_root,
                         run_id="chaos")
        assert final.ok
        assert final.values == clean.values
    finally:
        shutil.rmtree(clean_root, ignore_errors=True)
        shutil.rmtree(chaos_root, ignore_errors=True)

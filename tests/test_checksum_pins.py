"""Pinned reference checksums.

The benchmark workloads are fixed (sizes, seeds); these literals pin the
pure-Python reference values so an accidental edit to a benchmark's
source or reference shows up as an explicit diff here rather than as a
silent change to every measured number in EXPERIMENTS.md.
"""

import pytest

from repro.benchmarks import suite

PINNED = {
    "ccom": 41484483,
    "grr": 1004216,
    "linpack": 24000,
    "livermore": 490272207,
    "met": 256364598,
    "stanford": 530887626,
    "whet": 533080,
    "yacc": 193804343,
}


@pytest.mark.parametrize("name", sorted(PINNED))
def test_reference_checksum_pinned(name):
    assert suite.get(name).reference() == PINNED[name]


def test_every_benchmark_is_pinned():
    assert {b.name for b in suite.all_benchmarks()} == set(PINNED)

"""Tests for the run-history ledger, cross-run diffing, and the dashboard.

Covers :mod:`repro.obs.history` (content-addressed SQLite ledger,
lossless per-cell round-trips, idempotent ingestion),
:mod:`repro.obs.diff` (per-metric regression policy and gating), and
:mod:`repro.obs.dash` (the self-contained HTML dashboard whose embedded
JSON must equal the ledger export exactly), plus the ``repro
ingest`` / ``repro diff`` / ``repro dash`` CLI surface.
"""

from __future__ import annotations

import copy
import json

import pytest

from repro.__main__ import main as cli_main
from repro.benchmarks import suite
from repro.engine.executor import execute
from repro.engine.faults import FaultPlan
from repro.engine.plan import plan_sweep
from repro.engine.resilience import RetryPolicy
from repro.obs.dash import render_dashboard, write_dashboard
from repro.obs.diff import DiffPolicy, diff_payloads, load_diff_side
from repro.obs.history import (
    HistoryLedger,
    LedgerError,
    fingerprint_payload,
    payload_from_bench,
    payload_from_events,
)
from repro.obs.recorder import (
    SCHEMA_VERSION,
    JsonlRecorder,
    read_jsonl,
)

#: Fast retry policy so faulted runs don't sleep for real.
FAST = RetryPolicy(base_delay=0.001, max_delay=0.01, group_timeout=60.0)

#: The paper's full grid — the round-trip acceptance runs on all of it.
ALL_BENCHES = ["ccom", "grr", "linpack", "livermore", "met", "stanford",
               "whet", "yacc"]
SEVEN_MACHINES = ["base", "superscalar:2", "superscalar:4",
                  "superscalar:8", "superpipelined:4", "multititan",
                  "cray1"]

#: Small grid for the cheaper per-behavior tests.
BENCHES = ["whet", "linpack"]
MACHINES = ["base", "superscalar:4"]


@pytest.fixture(autouse=True)
def _no_env(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_LEDGER", raising=False)


def _write_report(path, benches, machines, faults=None, workers=1):
    suite.clear_cache()
    plan = plan_sweep(benches, machines, observe=True)
    with JsonlRecorder(str(path)) as rec:
        rec.emit("run_start", schema=SCHEMA_VERSION, run_id="history-test")
        result = execute(plan, workers=workers, recorder=rec,
                         policy=FAST, faults=faults)
        rec.emit("run_end", seconds=0.0, counters=dict(rec.counters))
    suite.clear_cache()
    return result


@pytest.fixture(scope="module")
def faulted_grid_report(tmp_path_factory):
    """One faulted full-grid (8x7) observed run, as (events, path)."""
    path = tmp_path_factory.mktemp("ledger") / "faulted_grid.jsonl"
    _write_report(path, ALL_BENCHES, SEVEN_MACHINES, workers=2,
                  faults=FaultPlan.parse("crash@whet#1"))
    return list(read_jsonl(path)), str(path)


def _bench_document(warm_rate: float) -> dict:
    rates = {"interp": 4.0e6, "direct": 3.0e6, "cold": 9.0e6,
             "warm": warm_rate}
    return {
        "grid": {"benchmarks": ["whet"], "machines": ["base"],
                 "cells": 1, "dynamic_instructions": 1_000_000,
                 "grid_instructions": 1_000_000},
        "python": "3.12.0",
        "cpu_count": 8,
        "repeat": 1,
        "modes": {
            mode: {"seconds": round(1_000_000 / rate, 4),
                   "instructions": 1_000_000,
                   "instr_per_sec": rate}
            for mode, rate in rates.items()
        },
        "speedup": {"cold_vs_direct": 3.0, "warm_vs_direct": 8.0},
    }


class TestPayloadFromEvents:
    def test_cells_carry_every_measurement(self, faulted_grid_report):
        events, path = faulted_grid_report
        payload = payload_from_events(events, source=path)
        assert payload["kind"] == "report"
        assert payload["run_id"] == "history-test"
        assert len(payload["cells"]) == \
            len(ALL_BENCHES) * len(SEVEN_MACHINES)
        for cell in payload["cells"]:
            assert isinstance(cell["instructions"], int)
            assert isinstance(cell["minor_cycles"], int)
            assert isinstance(cell["parallelism"], float)
            assert cell["stalls"] is not None
            # Conservation survives the join into the payload.
            stalls = cell["stalls"]
            causes = [v for k, v in stalls.items()
                      if k not in ("issued_cycles", "by_class")]
            assert sum(causes) + stalls["issued_cycles"] == \
                cell["minor_cycles"]
        assert payload["engine"] is not None
        assert payload["engine"]["cells"] == len(payload["cells"])

    def test_fault_history_survives(self, faulted_grid_report):
        events, path = faulted_grid_report
        payload = payload_from_events(events, source=path)
        retried = [c for c in payload["cells"] if c["status"] == "retried"]
        assert retried, "the injected crash must surface as retried cells"
        assert all(c["attempts"] > 1 for c in retried)
        assert all(c["history"] for c in retried)


class TestLedgerRoundTrip:
    def test_lossless_for_every_field(self, faulted_grid_report, tmp_path):
        """ledger.payload() is the exact inverse of ingestion — every
        numeric field of a faulted full-grid report survives."""
        events, path = faulted_grid_report
        expected = payload_from_events(events, source=path)
        with HistoryLedger(str(tmp_path / "ledger.sqlite")) as ledger:
            result = ledger.ingest_report(path)
            assert result.created
            assert ledger.payload(result.run_ref) == expected

    def test_double_ingest_is_idempotent(self, faulted_grid_report,
                                         tmp_path):
        events, path = faulted_grid_report
        with HistoryLedger(str(tmp_path / "ledger.sqlite")) as ledger:
            first = ledger.ingest_report(path)
            second = ledger.ingest_report(path)
            assert first.created and not second.created
            assert first.run_ref == second.run_ref
            assert first.fingerprint == second.fingerprint
            assert len(ledger.runs()) == 1

    def test_identical_faulted_runs_collapse(self, tmp_path):
        """Two identical runs — including under fault injection — ingest
        to identical ledger rows (one content-addressed entry)."""
        paths = [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
        for path in paths:
            _write_report(path, BENCHES, MACHINES, workers=2,
                          faults=FaultPlan.parse("crash@whet#1"))
        with HistoryLedger(str(tmp_path / "ledger.sqlite")) as ledger:
            first = ledger.ingest_report(str(paths[0]))
            second = ledger.ingest_report(str(paths[1]))
            assert first.created and not second.created
            assert first.fingerprint == second.fingerprint
            assert len(ledger.runs()) == 1
            # And the two source files' rows would have been identical.
            rows = ledger.cells(first.run_ref)
            fresh = payload_from_events(
                list(read_jsonl(paths[1])), source=str(paths[1]))
            for stored, cell in zip(rows, fresh["cells"]):
                stored = dict(stored)
                cell = dict(cell)
                # Wall-clock seconds legitimately differ between runs.
                stored.pop("seconds"), cell.pop("seconds")
                stored.pop("history"), cell.pop("history")
                assert stored == cell

    def test_bench_round_trip(self, tmp_path):
        document = _bench_document(20.0e6)
        with HistoryLedger(str(tmp_path / "ledger.sqlite")) as ledger:
            result = ledger.ingest_bench(document, source="BENCH_sim.json")
            stored = ledger.payload(result.run_ref)
            assert stored["kind"] == "bench"
            assert {m["mode"]: m["instr_per_sec"]
                    for m in stored["modes"]} == \
                {m: row["instr_per_sec"]
                 for m, row in document["modes"].items()}

    def test_resource_events_round_trip(self, tmp_path):
        events = [
            {"event": "run_start", "schema": SCHEMA_VERSION,
             "run_id": "res"},
            {"event": "resource", "track": "main", "rss_mb": 41.5,
             "rss_peak_mb": 42.25, "cpu_seconds": 1.125, "samples": 7},
            {"event": "resource", "track": "worker-123", "rss_mb": 39.0,
             "rss_peak_mb": 40.5, "cpu_seconds": 0.5, "samples": 3},
            {"event": "run_end", "seconds": 0.0, "counters": {}},
        ]
        expected = payload_from_events(events)
        assert len(expected["resources"]) == 2
        with HistoryLedger(str(tmp_path / "ledger.sqlite")) as ledger:
            result = ledger.ingest_report(events)
            assert ledger.resources(result.run_ref) == \
                expected["resources"]


class TestFingerprint:
    def test_wall_clock_is_excluded(self, faulted_grid_report):
        events, path = faulted_grid_report
        payload = payload_from_events(events, source=path)
        slowed = copy.deepcopy(payload)
        for cell in slowed["cells"]:
            if cell["seconds"] is not None:
                cell["seconds"] = cell["seconds"] * 100
        slowed["wall_seconds"] = 999.0
        assert fingerprint_payload(slowed) == fingerprint_payload(payload)

    def test_measurements_are_included(self, faulted_grid_report):
        events, path = faulted_grid_report
        payload = payload_from_events(events, source=path)
        drifted = copy.deepcopy(payload)
        drifted["cells"][0]["instructions"] += 1
        assert fingerprint_payload(drifted) != fingerprint_payload(payload)

    def test_status_is_included(self, faulted_grid_report):
        events, path = faulted_grid_report
        payload = payload_from_events(events, source=path)
        worse = copy.deepcopy(payload)
        worse["cells"][0]["status"] = "degraded"
        assert fingerprint_payload(worse) != fingerprint_payload(payload)


class TestResolve:
    @pytest.fixture()
    def ledger(self, tmp_path):
        with HistoryLedger(str(tmp_path / "ledger.sqlite")) as ledger:
            for rate in (20.0e6, 21.0e6, 22.0e6):
                ledger.ingest_bench(_bench_document(rate))
            yield ledger

    def test_numeric_id(self, ledger):
        assert ledger.resolve("2") == 2

    def test_latest_and_back(self, ledger):
        assert ledger.resolve("latest") == 3
        assert ledger.resolve("latest~1") == 2
        assert ledger.resolve("latest~2") == 1

    def test_fingerprint_prefix(self, ledger):
        fingerprint = ledger.runs()[0]["fingerprint"]
        assert ledger.resolve(fingerprint[:12]) == 1

    def test_bad_references(self, ledger):
        for ref in ("99", "latest~9", "latest~x", "nonsense"):
            with pytest.raises(LedgerError):
                ledger.resolve(ref)


class TestDiffPolicy:
    def test_identical_runs_have_no_differences(self, faulted_grid_report):
        events, path = faulted_grid_report
        payload = payload_from_events(events, source=path)
        result = diff_payloads(payload, copy.deepcopy(payload))
        assert result.ok
        assert result.entries == []
        assert result.render() == "no differences"

    def test_deterministic_drift_gates(self, faulted_grid_report):
        events, path = faulted_grid_report
        a = payload_from_events(events, source=path)
        b = copy.deepcopy(a)
        b["cells"][0]["instructions"] += 10
        result = diff_payloads(a, b)
        assert not result.ok
        assert any(e.metric == "instructions" for e in result.regressions)

    def test_status_worsening_gates(self, faulted_grid_report):
        events, path = faulted_grid_report
        a = payload_from_events(events, source=path)
        b = copy.deepcopy(a)
        ok_cell = next(c for c in b["cells"] if c["status"] == "ok")
        ok_cell["status"] = "degraded"
        result = diff_payloads(a, b)
        assert any(e.metric == "status" for e in result.regressions)
        # The reverse direction (recovery) is a finding, not a gate.
        recovered = diff_payloads(b, a)
        assert all(e.metric != "status" for e in recovered.regressions)

    def test_seconds_only_warn(self, faulted_grid_report):
        events, path = faulted_grid_report
        a = payload_from_events(events, source=path)
        b = copy.deepcopy(a)
        for cell in b["cells"]:
            if cell["seconds"]:
                cell["seconds"] *= 3
        result = diff_payloads(a, b)
        assert result.ok
        assert any(e.metric == "seconds" for e in result.entries)

    def test_warm_throughput_regression_gates(self):
        a = payload_from_bench(_bench_document(20.0e6))
        b = payload_from_bench(_bench_document(17.0e6))  # -15%
        result = diff_payloads(a, b)
        assert not result.ok
        assert any(e.scope == "bench" and e.key == "warm"
                   for e in result.regressions)

    def test_warm_regression_within_band_passes(self):
        a = payload_from_bench(_bench_document(20.0e6))
        b = payload_from_bench(_bench_document(19.0e6))  # -5% < 10%
        assert diff_payloads(a, b).ok

    def test_other_modes_never_gate(self):
        a = payload_from_bench(_bench_document(20.0e6))
        b = payload_from_bench(_bench_document(20.0e6))
        b["modes"] = [dict(m) for m in b["modes"]]
        for mode in b["modes"]:
            if mode["mode"] == "cold":
                mode["instr_per_sec"] = 1.0e6  # huge cold regression
        result = diff_payloads(a, b)
        assert result.ok
        assert any(e.key == "cold" for e in result.entries)

    def test_warn_only_downgrades_everything(self):
        a = payload_from_bench(_bench_document(20.0e6))
        b = payload_from_bench(_bench_document(10.0e6))
        result = diff_payloads(a, b, DiffPolicy(warn_only=True))
        assert result.ok and result.entries

    def test_missing_cell_gates(self, faulted_grid_report):
        events, path = faulted_grid_report
        a = payload_from_events(events, source=path)
        b = copy.deepcopy(a)
        b["cells"] = b["cells"][1:]
        result = diff_payloads(a, b)
        assert any(e.metric == "presence" for e in result.regressions)

    def test_as_dict_shape(self):
        a = payload_from_bench(_bench_document(20.0e6))
        b = payload_from_bench(_bench_document(17.0e6))
        doc = diff_payloads(a, b).as_dict()
        assert doc["ok"] is False
        assert doc["regressions"] >= 1
        assert all({"scope", "key", "metric", "a", "b", "regression",
                    "message"} <= set(e) for e in doc["entries"])


class TestDashboard:
    @pytest.fixture()
    def export(self, faulted_grid_report, tmp_path):
        events, path = faulted_grid_report
        with HistoryLedger(str(tmp_path / "ledger.sqlite")) as ledger:
            ledger.ingest_report(path)
            ledger.ingest_bench(_bench_document(20.0e6))
            ledger.ingest_bench(_bench_document(21.0e6))
            yield ledger.export()

    @staticmethod
    def _embedded_blob(html: str) -> dict:
        marker = '<script id="ledger-data" type="application/json">'
        start = html.index(marker) + len(marker)
        end = html.index("</script>", start)
        return json.loads(html[start:end].replace("<\\/", "</"))

    def test_embedded_json_equals_export_exactly(self, export):
        html = render_dashboard(export)
        assert self._embedded_blob(html) == export

    def test_three_run_ledger_renders(self, export):
        assert len(export["runs"]) == 3
        html = render_dashboard(export, title="three runs")
        assert "<title>three runs</title>" in html
        assert "3 ledger entries" in html

    def test_self_contained(self, export):
        html = render_dashboard(export)
        # No external fetches of any kind: no resource tags, no network
        # APIs, no CSS imports.  (The SVG xmlns constant is the one
        # legitimate absolute URL.)
        for needle in ("src=", "href=", "fetch(", "XMLHttpRequest",
                       "@import", "url(", "<link", "import("):
            assert needle not in html, needle
        assert html.count("http://www.w3.org/2000/svg") == 1

    def test_flaky_cells_embedded(self, export):
        assert export["flaky"], "faulted run must contribute flaky cells"
        blob = self._embedded_blob(render_dashboard(export))
        assert blob["flaky"] == export["flaky"]

    def test_write_dashboard_creates_parents(self, export, tmp_path):
        out = tmp_path / "deep" / "dash.html"
        write_dashboard(str(out), export)
        assert self._embedded_blob(
            out.read_text(encoding="utf-8")) == export


class TestCli:
    @pytest.fixture()
    def small_report(self, tmp_path):
        path = tmp_path / "run.jsonl"
        _write_report(path, ["whet"], ["base"])
        return str(path)

    def test_ingest_then_dash(self, small_report, tmp_path, capsys):
        ledger = str(tmp_path / "ledger.sqlite")
        assert cli_main(["ingest", small_report, "--ledger", ledger]) == 0
        out = capsys.readouterr().out
        assert "ingested as run #1" in out
        # Re-ingesting dedups and still exits 0.
        assert cli_main(["ingest", small_report, "--ledger", ledger]) == 0
        assert "already present" in capsys.readouterr().out
        dash = str(tmp_path / "dash.html")
        assert cli_main(["dash", "--ledger", ledger, "--out", dash]) == 0
        with HistoryLedger(ledger) as db:
            export = db.export()
        html = open(dash, encoding="utf-8").read()
        assert TestDashboard._embedded_blob(html) == export

    def test_ingest_missing_file_fails(self, tmp_path, capsys):
        ledger = str(tmp_path / "ledger.sqlite")
        assert cli_main(["ingest", str(tmp_path / "nope.jsonl"),
                         "--ledger", ledger]) == 1
        assert "no such file" in capsys.readouterr().err

    def test_diff_identical_files_exits_zero(self, small_report, capsys):
        assert cli_main(["diff", small_report, small_report]) == 0
        assert "no differences" in capsys.readouterr().out

    def test_diff_bench_regression_exits_nonzero(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        a.write_text(json.dumps(_bench_document(20.0e6)))
        b.write_text(json.dumps(_bench_document(17.0e6)))  # -15% warm
        assert cli_main(["diff", str(a), str(b)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out and "warm" in out

    def test_diff_warn_only_exits_zero(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        a.write_text(json.dumps(_bench_document(20.0e6)))
        b.write_text(json.dumps(_bench_document(17.0e6)))
        assert cli_main(["diff", str(a), str(b), "--warn-only"]) == 0

    def test_diff_json_output(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        a.write_text(json.dumps(_bench_document(20.0e6)))
        b.write_text(json.dumps(_bench_document(17.0e6)))
        assert cli_main(["diff", str(a), str(b), "--json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is False and doc["regressions"] >= 1

    def test_diff_ledger_references(self, small_report, tmp_path, capsys):
        ledger = str(tmp_path / "ledger.sqlite")
        assert cli_main(["ingest", small_report, "--ledger", ledger]) == 0
        capsys.readouterr()
        assert cli_main(["diff", "latest", "latest", "--ledger",
                         ledger]) == 0
        assert "no differences" in capsys.readouterr().out

    def test_diff_unresolvable_reference_exits_two(self, tmp_path, capsys):
        ledger = str(tmp_path / "ledger.sqlite")
        assert cli_main(["diff", "latest", "latest",
                         "--ledger", ledger]) == 2
        assert "diff:" in capsys.readouterr().err

    def test_file_vs_file_diff_creates_no_ledger(self, small_report,
                                                 tmp_path, monkeypatch):
        ledger = tmp_path / "never.sqlite"
        monkeypatch.setenv("REPRO_LEDGER", str(ledger))
        assert cli_main(["diff", small_report, small_report]) == 0
        assert not ledger.exists()


class TestLoadDiffSide:
    def test_rejects_unknown_extension(self, tmp_path):
        path = tmp_path / "report.txt"
        path.write_text("hi")
        with pytest.raises(ValueError):
            load_diff_side(str(path))

    def test_requires_ledger_for_references(self):
        with pytest.raises(ValueError):
            load_diff_side("latest")


class TestConcurrentWriters:
    """Two simultaneous ingest processes must never die 'locked'."""

    HAMMER = """
import json, os, sys, time
sys.path.insert(0, sys.argv[1])
from repro.obs.history import HistoryLedger

ledger_path, report, start_file = sys.argv[2], sys.argv[3], sys.argv[4]
bench_paths = json.loads(sys.argv[5])
while not os.path.exists(start_file):
    time.sleep(0.001)
for i in range(4):
    # A fresh connection per ingest, like repeated `repro ingest`
    # invocations racing from CI shards.
    with HistoryLedger(ledger_path) as ledger:
        ledger.ingest_report(report)
    if i < len(bench_paths):
        with HistoryLedger(ledger_path) as ledger:
            ledger.ingest_bench(bench_paths[i])
print("DONE")
"""

    def test_two_process_ingest_hammer(self, tmp_path):
        import subprocess
        import sys
        from pathlib import Path

        report = tmp_path / "report.jsonl"
        _write_report(report, ["whet"], ["base"])
        ledger_path = tmp_path / "history.sqlite"
        start = tmp_path / "go"

        per_proc = 4
        bench_paths: dict[int, list[str]] = {}
        for who in range(2):
            paths = []
            for i in range(per_proc):
                doc = _bench_document(
                    warm_rate=1.0e7 + who * 100 + i)
                path = tmp_path / f"bench-{who}-{i}.json"
                path.write_text(json.dumps(doc))
                paths.append(str(path))
            bench_paths[who] = paths

        src = str(Path(__file__).resolve().parent.parent / "src")
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", self.HAMMER, src,
                 str(ledger_path), str(report), str(start),
                 json.dumps(bench_paths[who])],
                stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                text=True)
            for who in range(2)
        ]
        start.write_text("go")
        outs = [proc.communicate(timeout=120) for proc in procs]
        for proc, (out, err) in zip(procs, outs):
            assert proc.returncode == 0, (out, err)
            assert "DONE" in out
            assert "locked" not in err.lower()

        with HistoryLedger(str(ledger_path)) as ledger:
            data = ledger.export()
        # The report deduped to one run; every distinct bench document
        # landed exactly once despite the racing writers.
        kinds = [run["kind"] for run in data["runs"]]
        assert kinds.count("report") == 1
        assert kinds.count("bench") == 2 * per_proc

    def test_identical_content_race_dedupes(self, tmp_path):
        """Both writers ingest the SAME content: exactly one run wins."""
        import subprocess
        import sys
        from pathlib import Path

        report = tmp_path / "report.jsonl"
        _write_report(report, ["whet"], ["base"])
        ledger_path = tmp_path / "history.sqlite"
        start = tmp_path / "go"
        src = str(Path(__file__).resolve().parent.parent / "src")
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", self.HAMMER, src,
                 str(ledger_path), str(report), str(start),
                 json.dumps([])],
                stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                text=True)
            for _ in range(2)
        ]
        start.write_text("go")
        for proc in procs:
            out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, (out, err)
            assert "locked" not in err.lower()

        with HistoryLedger(str(ledger_path)) as ledger:
            data = ledger.export()
        assert len(data["runs"]) == 1
        assert data["runs"][0]["kind"] == "report"

"""Tests for the observability layer: stall attribution, recorder, profile.

The stall-attribution cases are hand-built traces where the breakdown is
known exactly, plus a hypothesis property asserting the conservation law
``stalled + issued_cycles == minor_cycles`` on random traces and random
machines.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TraceError
from repro.isa import InstrClass, Opcode, build
from repro.isa.registers import virtual
from repro.machine import (
    MachineConfig,
    base_machine,
    ideal_superscalar,
    superpipelined,
    unit,
)
from repro.obs import (
    NULL_PROFILE,
    NULL_RECORDER,
    STALL_CAUSES,
    CompileProfile,
    Recorder,
    StallBreakdown,
)
from repro.opt.driver import compile_source
from repro.opt.options import CompilerOptions, OptLevel
from repro.sim.timing import simulate
from repro.sim.trace import Trace

from .test_property import random_trace_strategy


def chain(n: int, klass_lat: int = 4) -> tuple[Trace, MachineConfig]:
    """A pure RAW chain on a wide ideal machine with ADDSUB latency."""
    lats = {k: 1 for k in InstrClass}
    lats[InstrClass.ADDSUB] = klass_lat
    cfg = MachineConfig(name="chain", issue_width=8, latencies=lats)
    trace = Trace.from_instructions(
        [build.alui(Opcode.ADDI, virtual(i + 1), virtual(i), 1)
         for i in range(n)]
    )
    return trace, cfg


def assert_conservation(result) -> None:
    s = result.stalls
    assert s is not None
    assert s.stalled + s.issued_cycles == result.minor_cycles
    # the per-class roll-up must sum back to the per-cause totals
    for i, cause in enumerate(STALL_CAUSES):
        assert sum(row[i] for row in s.by_class.values()) == s.get(cause)


class TestStallAttribution:
    def test_pure_raw_chain_is_all_raw_dep(self):
        trace, cfg = chain(6, klass_lat=4)
        result = simulate(trace, cfg, observe=True)
        assert_conservation(result)
        s = result.stalls
        # 5 inter-instruction gaps of (lat-1)=3 wait cycles each, plus a
        # 3-cycle drain counted as issued_cycles (final issue + drain)
        assert s.raw_dep == 5 * 4
        assert s.memory_order == s.unit_conflict == s.issue_width == 0
        assert s.control == 0
        assert s.issued_cycles == 4
        assert set(s.by_class) == {InstrClass.ADDSUB}

    def test_store_load_pair_is_memory_order(self):
        instrs = [
            build.sw(virtual(1), virtual(100), 0),
            build.lw(virtual(2), virtual(101), 0),
        ]
        trace = Trace.from_instructions(instrs, addrs=[64, 64])
        lats = {k: 1 for k in InstrClass}
        lats[InstrClass.STORE] = 4
        cfg = MachineConfig(name="slowstore", issue_width=2, latencies=lats)
        result = simulate(trace, cfg, observe=True)
        assert_conservation(result)
        s = result.stalls
        assert s.memory_order == 4  # load waits minor cycles 0..3
        assert s.raw_dep == s.unit_conflict == s.issue_width == 0
        assert set(s.by_class) == {InstrClass.LOAD}

    def test_disjoint_addresses_do_not_charge_memory_order(self):
        instrs = [
            build.sw(virtual(1), virtual(100), 0),
            build.lw(virtual(2), virtual(101), 0),
        ]
        trace = Trace.from_instructions(instrs, addrs=[64, 65])
        lats = {k: 1 for k in InstrClass}
        lats[InstrClass.STORE] = 4
        cfg = MachineConfig(name="slowstore", issue_width=2, latencies=lats)
        result = simulate(trace, cfg, observe=True)
        assert result.stalls.memory_order == 0
        assert_conservation(result)

    def test_single_unit_machine_is_all_unit_conflict(self):
        instrs = [
            build.alu(Opcode.MUL, virtual(i), virtual(50 + i),
                      virtual(80 + i))
            for i in range(3)
        ]
        cfg = MachineConfig(
            name="slowmul",
            issue_width=2,
            units=(
                unit("mul", [InstrClass.INTMUL], issue_latency=3),
                unit("rest",
                     [k for k in InstrClass if k != InstrClass.INTMUL],
                     multiplicity=2),
            ),
        )
        result = simulate(Trace.from_instructions(instrs), cfg, observe=True)
        assert_conservation(result)
        s = result.stalls
        # issues at 0, 3, 6: two waits of 3 cycles, all on the mul unit
        assert s.unit_conflict == 6
        assert s.raw_dep == s.memory_order == s.issue_width == 0

    def test_wide_ideal_machine_is_issue_width_only(self):
        trace = Trace.from_instructions(
            [build.alui(Opcode.ADDI, virtual(i), virtual(100 + i), 1)
             for i in range(12)]
        )
        result = simulate(trace, ideal_superscalar(4), observe=True)
        assert_conservation(result)
        s = result.stalls
        assert s.issue_width == 2  # the first instr of cycles 1 and 2
        assert s.raw_dep == s.memory_order == s.unit_conflict == 0

    def test_base_machine_full_throughput_is_width_limited(self):
        trace = Trace.from_instructions(
            [build.alui(Opcode.ADDI, virtual(i), virtual(100 + i), 1)
             for i in range(10)]
        )
        result = simulate(trace, base_machine(), observe=True)
        assert_conservation(result)
        assert result.stalls.issue_width == 9
        assert result.stalls.issued_cycles == 1

    def test_branch_stall_policy_charges_control(self):
        instrs = [
            build.bnez(virtual(1), "somewhere"),
            build.alui(Opcode.ADDI, virtual(2), virtual(100), 1),
        ]
        trace = Trace(static=instrs)
        trace.append(0)
        trace.append(1)
        lats = {k: 1 for k in InstrClass}
        lats[InstrClass.BRANCH] = 3
        cfg = MachineConfig(name="br", issue_width=2, latencies=lats,
                            branch_policy="stall")
        result = simulate(trace, cfg, observe=True)
        assert_conservation(result)
        assert result.stalls.control == 3
        # the paper's perfect-prediction model never charges control
        perfect = simulate(trace, cfg.with_branch_policy("perfect"),
                           observe=True)
        assert perfect.stalls.control == 0

    def test_empty_trace(self):
        result = simulate(Trace(static=[]), base_machine(), observe=True)
        assert result.stalls.stalled == 0
        assert result.stalls.issued_cycles == 0
        assert_conservation(result)

    def test_observed_matches_unobserved_cycles(self):
        trace, cfg = chain(12, klass_lat=3)
        fast = simulate(trace, cfg)
        observed = simulate(trace, cfg, observe=True)
        assert fast.minor_cycles == observed.minor_cycles
        assert fast.base_cycles == observed.base_cycles
        assert fast.stalls is None
        assert observed.stalls is not None


@settings(max_examples=80, deadline=None)
@given(
    trace=random_trace_strategy(),
    width=st.integers(1, 8),
    load_lat=st.integers(1, 6),
    store_lat=st.integers(1, 6),
    add_lat=st.integers(1, 5),
    mem_multiplicity=st.integers(0, 2),
)
def test_conservation_on_random_traces(
    trace, width, load_lat, store_lat, add_lat, mem_multiplicity
):
    """sum(stalls) + issued cycles == minor_cycles on random programs."""
    lats = {k: 1 for k in InstrClass}
    lats[InstrClass.LOAD] = load_lat
    lats[InstrClass.STORE] = store_lat
    lats[InstrClass.ADDSUB] = add_lat
    units = ()
    if mem_multiplicity:
        units = (
            unit("mem", [InstrClass.LOAD, InstrClass.STORE],
                 issue_latency=2, multiplicity=mem_multiplicity),
            unit("rest", [k for k in InstrClass
                          if k not in (InstrClass.LOAD, InstrClass.STORE)],
                 multiplicity=width),
        )
    cfg = MachineConfig(name="rand", issue_width=width, latencies=lats,
                        units=units)
    observed = simulate(trace, cfg, observe=True)
    assert_conservation(observed)
    # observing must not perturb the model
    fast = simulate(trace, cfg)
    assert fast.minor_cycles == observed.minor_cycles


@settings(max_examples=40, deadline=None)
@given(trace=random_trace_strategy(), degree=st.integers(1, 4))
def test_conservation_on_superpipelined_machines(trace, degree):
    observed = simulate(trace, superpipelined(degree), observe=True)
    assert_conservation(observed)


class TestStallBreakdown:
    def test_charge_and_rollup(self):
        s = StallBreakdown()
        s.charge(InstrClass.LOAD, 1, 3)
        s.charge(InstrClass.LOAD, 2, 2)
        s.charge(InstrClass.ADDSUB, 1, 1)
        assert s.raw_dep == 4
        assert s.memory_order == 2
        assert s.stalled == 6
        assert s.class_totals() == {InstrClass.LOAD: 5, InstrClass.ADDSUB: 1}

    def test_charge_ignores_non_positive(self):
        s = StallBreakdown()
        s.charge(InstrClass.LOAD, 0, 0)
        s.charge(InstrClass.LOAD, 0, -2)
        assert s.stalled == 0
        assert not s.by_class

    def test_get_rejects_unknown_cause(self):
        with pytest.raises(KeyError):
            StallBreakdown().get("cache_miss")

    def test_as_dict_is_json_shaped(self):
        import json

        s = StallBreakdown(raw_dep=3, issued_cycles=2)
        s.charge(InstrClass.LOAD, 3, 5)
        payload = json.loads(json.dumps(s.as_dict()))
        assert payload["raw_dep"] == 3
        assert payload["by_class"]["load"]["unit_conflict"] == 5

    def test_merged_with(self):
        a = StallBreakdown(raw_dep=1, issued_cycles=2)
        a.charge(InstrClass.LOAD, 1, 1)
        b = StallBreakdown(issue_width=4, issued_cycles=3)
        b.charge(InstrClass.LOAD, 4, 4)
        merged = a.merged_with(b)
        assert merged.raw_dep == 2  # 1 direct + 1 via charge
        assert merged.issue_width == 8
        assert merged.issued_cycles == 5
        assert merged.by_class[InstrClass.LOAD] == [0, 1, 0, 0, 4]


class TestTimingResultSummary:
    def test_summary_without_stalls(self):
        trace, cfg = chain(4)
        text = simulate(trace, cfg).summary()
        assert "chain" in text and "4 instructions" in text
        assert "stall" not in text

    def test_summary_with_stalls(self):
        trace, cfg = chain(4)
        text = simulate(trace, cfg, observe=True).summary()
        assert "raw_dep 12" in text

    def test_empty_run_is_nan_free(self):
        result = simulate(Trace(static=[]), base_machine())
        assert result.parallelism == 0.0
        assert result.cpi == 0.0
        assert result.parallelism == result.parallelism  # not NaN
        assert "parallelism 0.00" in result.summary()

    def test_as_dict(self):
        trace, cfg = chain(3)
        record = simulate(trace, cfg, observe=True).as_dict()
        assert record["machine"] == "chain"
        assert record["stalls"]["raw_dep"] == 8


class TestTraceInvariants:
    def test_memory_instruction_requires_address(self):
        trace = Trace(static=[build.lw(virtual(1), virtual(100), 8)])
        with pytest.raises(TraceError):
            trace.append(0)

    def test_non_memory_instruction_rejects_address(self):
        trace = Trace(
            static=[build.alui(Opcode.ADDI, virtual(1), virtual(2), 1)]
        )
        with pytest.raises(TraceError):
            trace.append(0, 64)

    def test_out_of_range_static_index(self):
        trace = Trace(static=[])
        with pytest.raises(TraceError):
            trace.append(0)

    def test_valid_appends_still_work(self):
        trace = Trace(static=[
            build.lw(virtual(1), virtual(100), 8),
            build.alui(Opcode.ADDI, virtual(2), virtual(1), 1),
        ])
        trace.append(0, 40)
        trace.append(1)
        assert trace.addrs == [40, -1]

    def test_from_instructions_checks_supplied_addrs(self):
        instrs = [build.sw(virtual(1), virtual(100), 0)]
        with pytest.raises(TraceError):
            Trace.from_instructions(instrs, addrs=[-1])


class TestRecorder:
    def test_counters_and_events(self):
        rec = Recorder()
        rec.incr("runs")
        rec.incr("runs", 2)
        rec.emit("timing", benchmark="x", machine="base", instructions=1,
                 minor_cycles=1, base_cycles=1.0, parallelism=1.0, cpi=1.0)
        assert rec.counters["runs"] == 3
        assert rec.events_named("timing")[0]["machine"] == "base"

    def test_timer_accumulates(self):
        rec = Recorder()
        with rec.timer("phase"):
            pass
        with rec.timer("phase"):
            pass
        assert rec.counters["phase.seconds"] >= 0.0

    def test_null_recorder_records_nothing(self):
        with NULL_RECORDER.timer("x"):
            NULL_RECORDER.incr("a")
            NULL_RECORDER.emit("timing", benchmark="x")
        assert NULL_RECORDER.counters == {}
        assert NULL_RECORDER.events == []
        assert not NULL_RECORDER.enabled


class TestCompileProfile:
    def test_profiled_compile_records_passes(self):
        profile = CompileProfile()
        source = (
            "proc main(): int { var i, s: int; s = 0; i = 0;"
            " while (i < 9) { s = s + i; i = i + 1; } return s; }"
        )
        compile_source(source, CompilerOptions(), profile)
        names = [p.name for p in profile.passes]
        assert names[0] == "parse"
        assert "codegen" in names and "schedule" in names
        assert profile.total_seconds() > 0.0
        assert profile.sched is not None
        assert profile.sched.blocks_seen >= profile.sched.blocks_scheduled
        # codegen phases have no sizes; later phases do
        by_name = {p.name: p for p in profile.passes}
        assert by_name["parse"].instrs_before == -1
        assert by_name["local-opt"].instrs_before > 0
        # local optimization never grows the program
        assert by_name["local-opt"].instr_delta <= 0

    def test_opt_level_controls_recorded_passes(self):
        profile = CompileProfile()
        compile_source(
            "proc main(): int { return 3; }",
            CompilerOptions(opt_level=OptLevel.NONE),
            profile,
        )
        names = [p.name for p in profile.passes]
        assert "local-opt" not in names
        assert "schedule" not in names

    def test_as_dict_and_rows(self):
        profile = CompileProfile()
        compile_source("proc main(): int { return 1 + 2; }",
                       CompilerOptions(), profile)
        payload = profile.as_dict()
        assert payload["n_passes"] == len(profile.passes)
        rows = profile.as_rows()
        assert len(rows) == len(profile.passes)

    def test_null_profile_measures_nothing(self):
        with NULL_PROFILE.measure("anything"):
            pass
        assert NULL_PROFILE.passes == []
        assert not NULL_PROFILE.enabled

    def test_default_compile_has_no_profiling_side_effects(self):
        program = compile_source("proc main(): int { return 42; }")
        assert program.functions

"""Unit tests for loop-invariant code motion and loop unrolling."""

import pytest

from repro.isa import Opcode
from repro.lang import parse
from repro.opt.driver import compile_source
from repro.opt.globalopt import loop_invariant_code_motion
from repro.opt.options import AliasLevel, CompilerOptions, OptLevel
from repro.opt.unroll import resolve_partial_decls, unroll_module
from repro.lang.codegen import generate
from repro.lang.semantics import check
from tests.helpers import run_tin_value

LOOP_SRC = """
var total: int;
proc main(): int {
    var i, k: int;
    total = 0;
    k = 21;
    for i = 0 to 9 {
        total = total + k * 2;
    }
    return total;
}
"""


class TestLICM:
    def test_hoists_invariant_multiply(self):
        module = parse(LOOP_SRC)
        program = generate(module, check(module))
        fn = program.functions["main"]
        before = sum(
            1 for b in fn.blocks for i in b.instrs
            if "fbody" in b.label and i.op is Opcode.MUL
        )
        hoisted = loop_invariant_code_motion(fn)
        assert hoisted > 0
        preheaders = [b for b in fn.blocks if b.label.endswith(".pre")]
        assert len(preheaders) == 1
        assert before >= 1

    def test_preserves_semantics(self, opt_level):
        # O3 includes LICM; every level must agree
        opts = CompilerOptions(opt_level=opt_level)
        assert run_tin_value(LOOP_SRC, opts) == 420

    def test_zero_trip_loop_safe(self):
        src = """
        var total: int;
        proc f(n: int): int {
            var i, k: int;
            total = 0;
            k = 5;
            for i = 1 to n {
                total = total + k * 7;
            }
            return total;
        }
        proc main(): int { return f(0) * 1000 + f(3); }
        """
        for level in (OptLevel.NONE, OptLevel.GLOBAL):
            assert run_tin_value(
                src, CompilerOptions(opt_level=level)
            ) == 105

    def test_loads_not_hoisted_past_conflicting_store(self):
        src = """
        var a: int[4];
        proc main(): int {
            var i, s: int;
            a[0] = 1;
            s = 0;
            for i = 1 to 5 {
                s = s + a[0];
                a[0] = s;
            }
            return s;
        }
        """
        expected = run_tin_value(src, CompilerOptions(opt_level=OptLevel.NONE))
        got = run_tin_value(src, CompilerOptions(opt_level=OptLevel.GLOBAL))
        assert got == expected == 16

    def test_call_in_loop_blocks_rv_hoisting(self):
        src = """
        var s: int;
        proc next(): int { s = s + 1; return s; }
        proc main(): int {
            var i, acc: int;
            s = 0;
            acc = 0;
            for i = 1 to 4 {
                acc = acc * 10 + next();
            }
            return acc;
        }
        """
        assert run_tin_value(
            src, CompilerOptions(opt_level=OptLevel.GLOBAL)
        ) == 1234

    def test_nested_loop_hoisting_is_correct(self):
        src = """
        proc main(): int {
            var i, j, s, k: int;
            s = 0;
            k = 3;
            for i = 1 to 4 {
                for j = 1 to i {
                    s = s + k * 100 + i;
                }
            }
            return s;
        }
        """
        o0 = run_tin_value(src, CompilerOptions(opt_level=OptLevel.NONE))
        o3 = run_tin_value(src, CompilerOptions(opt_level=OptLevel.GLOBAL))
        assert o0 == o3


UNROLL_SRC = """
var a: int[40];
var total: int;
proc main(): int {
    var i: int;
    for i = 0 to 39 {
        a[i] = i * 3;
    }
    total = 0;
    for i = 0 to 39 {
        total = total + a[i];
    }
    return total;
}
"""


class TestUnrolling:
    @pytest.mark.parametrize("factor", [2, 3, 4, 7, 10])
    @pytest.mark.parametrize("careful", [False, True])
    def test_semantics_preserved(self, factor, careful):
        opts = CompilerOptions(unroll=factor, careful=careful)
        assert run_tin_value(UNROLL_SRC, opts) == sum(3 * i for i in range(40))

    @pytest.mark.parametrize("trip", [0, 1, 3, 4, 5, 9])
    def test_remainder_loop_handles_any_trip_count(self, trip):
        src = f"""
        proc main(): int {{
            var i, s: int;
            s = 0;
            for i = 1 to {trip} {{
                s = s * 10 + i;
            }}
            return s;
        }}
        """
        expected = 0
        for i in range(1, trip + 1):
            expected = expected * 10 + i
        opts = CompilerOptions(unroll=4)
        assert run_tin_value(src, opts) == expected

    def test_negative_step_unrolls(self):
        src = """
        proc main(): int {
            var i, s: int;
            s = 0;
            for i = 9 to 0 by -1 {
                s = s * 2 + i;
            }
            return s;
        }
        """
        expected = 0
        for i in range(9, -1, -1):
            expected = expected * 2 + i
        assert run_tin_value(src, CompilerOptions(unroll=4)) == expected

    def test_unroller_reports_stats(self):
        module = parse(UNROLL_SRC)
        stats = unroll_module(module, 4, careful=False)
        assert stats.loops_unrolled == 2

    def test_reassociation_detected_for_reduction(self):
        module = parse(UNROLL_SRC)
        stats = unroll_module(module, 4, careful=True)
        resolve_partial_decls(module)
        assert stats.reductions_reassociated == 1
        check(module)  # partial temporaries must type-check

    def test_reassociation_preserves_integer_sums(self):
        opts = CompilerOptions(unroll=4, careful=True)
        assert run_tin_value(UNROLL_SRC, opts) == sum(3 * i for i in range(40))

    def test_float_reassociation_close(self):
        src = """
        var w: float[32];
        proc main(): int {
            var i: int;
            var s: float;
            for i = 0 to 31 { w[i] = float(i) * 0.125; }
            s = 0.0;
            for i = 0 to 31 { s = s + w[i]; }
            return int(s * 100.0 + 0.5);
        }
        """
        plain = run_tin_value(src, CompilerOptions())
        reassoc = run_tin_value(src, CompilerOptions(unroll=4, careful=True))
        assert abs(plain - reassoc) <= 1

    def test_loop_with_call_still_correct(self):
        src = """
        var s: int;
        proc bump(x: int): int { return x + 1; }
        proc main(): int {
            var i: int;
            s = 0;
            for i = 1 to 10 {
                s = s + bump(i);
            }
            return s;
        }
        """
        assert run_tin_value(src, CompilerOptions(unroll=4)) == 65

    def test_loop_containing_return_not_unrolled(self):
        src = """
        var a: int[10];
        proc find(x: int): int {
            var i: int;
            for i = 0 to 9 {
                if (a[i] == x) { return i; }
            }
            return -1;
        }
        proc main(): int {
            var i: int;
            for i = 0 to 9 { a[i] = i * 5; }
            return find(35) * 10 + find(999);
        }
        """
        assert run_tin_value(src, CompilerOptions(unroll=4)) == 69

    def test_loop_assigning_its_variable_not_unrolled(self):
        src = """
        proc main(): int {
            var i, s: int;
            s = 0;
            for i = 0 to 20 {
                s = s + i;
                if (s > 30) { i = 99; }
            }
            return s;
        }
        """
        o1 = run_tin_value(src, CompilerOptions(unroll=1))
        u4 = run_tin_value(src, CompilerOptions(unroll=4))
        assert o1 == u4

    def test_factor_one_is_identity(self):
        module = parse(UNROLL_SRC)
        stats = unroll_module(module, 1)
        assert stats.loops_unrolled == 0


class TestUnrollDeclarationHoisting:
    def test_declaration_inside_conditional_body(self):
        src = """
        var t: int[20];
        proc main(): int {
            var i, s: int;
            s = 0;
            for i = 0 to 19 {
                if (i % 2 == 0) {
                    var half: int;
                    half = i / 2;
                    t[i] = half;
                } else {
                    t[i] = i;
                }
            }
            for i = 0 to 19 { s = s + t[i]; }
            return s;
        }
        """
        expected = sum(i // 2 if i % 2 == 0 else i for i in range(20))
        for factor in (1, 3, 4):
            assert run_tin_value(
                src, CompilerOptions(unroll=factor)
            ) == expected

    def test_declaration_at_loop_top_still_works(self):
        src = """
        proc main(): int {
            var i, s: int;
            s = 0;
            for i = 1 to 9 {
                var sq: int;
                sq = i * i;
                s = s + sq;
            }
            return s;
        }
        """
        assert run_tin_value(
            src, CompilerOptions(unroll=4)
        ) == sum(i * i for i in range(1, 10))

"""Tests for run reports, the recorder JSONL format, the CLI surface,
and the stdlib schema validator in scripts/ (pinned against the package
schema so the two copies cannot drift)."""

from __future__ import annotations

import importlib.util
import json
import sys
import threading
from pathlib import Path

import pytest

from repro.__main__ import main
from repro.machine import base_machine, ideal_superscalar
from repro.obs.recorder import (
    EVENT_SCHEMA,
    SCHEMA_VERSION,
    JsonlRecorder,
    Recorder,
    read_jsonl,
)
from repro.obs.report import (
    build_suite_report,
    default_report_machines,
    render_profile_table,
    render_stall_table,
    stall_row,
)
from repro.obs.stalls import STALL_CAUSES

SCRIPTS_DIR = Path(__file__).resolve().parent.parent / "scripts"

TIN = (
    "proc main(): int { var i, s: int; s = 0; i = 0;"
    " while (i < 20) { s = s + i; i = i + 1; } return s; }"
)


def load_validator():
    spec = importlib.util.spec_from_file_location(
        "check_report_schema", SCRIPTS_DIR / "check_report_schema.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def validator():
    return load_validator()


@pytest.fixture(scope="module")
def whet_report(tmp_path_factory):
    """One observed benchmark run, shared across the module's tests."""
    path = tmp_path_factory.mktemp("report") / "run.jsonl"
    with JsonlRecorder(path) as rec:
        report = build_suite_report(
            benchmarks=["whet"],
            machines=[base_machine(), ideal_superscalar(4)],
            recorder=rec,
            run_id="test-run",
        )
    return report, path


class TestSchemaMirror:
    """scripts/check_report_schema.py must match the package schema."""

    def test_event_schema_pinned(self, validator):
        assert validator.EVENT_SCHEMA == EVENT_SCHEMA

    def test_schema_version_pinned(self, validator):
        assert validator.SCHEMA_VERSION == SCHEMA_VERSION

    def test_stall_causes_pinned(self, validator):
        assert tuple(validator.STALL_CAUSES) == STALL_CAUSES


class TestJsonlRecorder:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlRecorder(path) as rec:
            rec.emit("run_start", schema=SCHEMA_VERSION, run_id="rt")
            rec.incr("things")
            rec.emit("run_end", seconds=0.0, counters=dict(rec.counters))
        events = read_jsonl(path)
        assert [e["event"] for e in events] == ["run_start", "run_end"]
        assert events[0]["run_id"] == "rt"
        assert events[1]["counters"] == {"things": 1}

    def test_lines_are_compact_sorted_json(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlRecorder(path) as rec:
            rec.emit("run_start", schema=1, run_id="z", b=2, a=1)
        line = path.read_text().strip()
        record = json.loads(line)
        assert list(record) == sorted(record)
        assert ": " not in line and ", " not in line


class TestRecorderThreadSafety:
    def test_concurrent_emits_produce_no_torn_lines(self, tmp_path):
        """Hammer one recorder from many threads: every line must parse
        and every event must arrive intact (single write() per line
        under the recorder's lock)."""
        path = tmp_path / "hammer.jsonl"
        n_threads, n_events = 8, 250
        payload = "x" * 256  # long enough that torn writes would show

        with JsonlRecorder(path) as rec:
            def hammer(tid: int) -> None:
                for i in range(n_events):
                    rec.emit("cell", thread=tid, seq=i, payload=payload)
                    rec.incr("events")

            threads = [threading.Thread(target=hammer, args=(t,))
                       for t in range(n_threads)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        events = read_jsonl(path)  # raises on any torn/corrupt line
        assert len(events) == n_threads * n_events
        assert all(e["payload"] == payload for e in events)
        for tid in range(n_threads):
            seqs = [e["seq"] for e in events if e["thread"] == tid]
            assert seqs == list(range(n_events))  # per-thread order kept
        assert rec.counters["events"] == n_threads * n_events


class TestRunReport:
    def test_report_structure(self, whet_report):
        report, _ = whet_report
        assert report.run_id == "test-run"
        assert [br.benchmark for br in report.benchmarks] == ["whet"]
        br = report.benchmarks[0]
        assert br.checksum_ok
        assert br.instructions > 0
        assert [t.config_name for t in br.timings] == ["base",
                                                       "superscalar-4"]
        assert report.conservation_holds()

    def test_render_mentions_everything(self, whet_report):
        report, _ = whet_report
        text = report.render()
        assert "whet" in text
        assert "compile profile" in text
        assert "stall attribution" in text
        for cause in ("raw_dep", "memory_order", "unit_conflict"):
            assert cause in text
        assert "checksum ok" in text

    def test_jsonl_stream_is_complete(self, whet_report):
        report, path = whet_report
        events = read_jsonl(path)
        names = [e["event"] for e in events]
        assert names[0] == "run_start"
        assert names[-1] == "run_end"
        assert names.count("timing") == 2
        assert names.count("compile") == 1
        assert any(n == "compile_pass" for n in names)
        timing = next(e for e in events if e["event"] == "timing")
        stalls = timing["stalls"]
        total = (sum(stalls[c] for c in STALL_CAUSES)
                 + stalls["issued_cycles"])
        assert total == timing["minor_cycles"]

    def test_generated_report_passes_validator(self, whet_report, validator):
        _, path = whet_report
        assert validator.check_file(str(path)) == []

    def test_default_report_machines(self):
        names = [c.name for c in default_report_machines()]
        assert names[0] == "base"
        assert len(names) == len(set(names)) >= 5


class TestRendering:
    def test_stall_row_requires_observation(self):
        from repro.sim.timing import simulate
        from repro.sim.trace import Trace

        timing = simulate(Trace(static=[]), base_machine())
        with pytest.raises(ValueError):
            stall_row(timing)

    def test_stall_table(self, whet_report):
        report, _ = whet_report
        text = render_stall_table(report.benchmarks[0].timings, title="t")
        assert text.splitlines()[0].strip() == "t"
        assert "base" in text and "superscalar-4" in text

    def test_profile_table_includes_scheduler_line(self, whet_report):
        report, _ = whet_report
        text = render_profile_table(report.benchmarks[0].profile)
        assert "scheduler:" in text
        assert "blocks scheduled" in text


class TestValidatorRejections:
    def write(self, tmp_path, lines):
        path = tmp_path / "bad.jsonl"
        path.write_text("\n".join(lines) + "\n")
        return str(path)

    def ok_start(self):
        return json.dumps({"event": "run_start", "schema": SCHEMA_VERSION,
                           "run_id": "x"})

    def ok_end(self):
        return json.dumps({"event": "run_end", "seconds": 0.1,
                           "counters": {}})

    def test_accepts_minimal_valid_file(self, validator, tmp_path):
        path = self.write(tmp_path, [self.ok_start(), self.ok_end()])
        assert validator.check_file(path) == []
        assert validator.main([path]) == 0

    def test_rejects_invalid_json(self, validator, tmp_path):
        path = self.write(tmp_path, [self.ok_start(), "{oops", self.ok_end()])
        assert any("invalid JSON" in e for e in validator.check_file(path))

    def test_rejects_unknown_event(self, validator, tmp_path):
        path = self.write(tmp_path, [
            self.ok_start(), json.dumps({"event": "mystery"}), self.ok_end(),
        ])
        assert any("unknown event" in e for e in validator.check_file(path))

    def test_rejects_missing_field(self, validator, tmp_path):
        path = self.write(tmp_path, [
            self.ok_start(),
            json.dumps({"event": "compile", "benchmark": "x",
                        "seconds": 0.1}),
            self.ok_end(),
        ])
        assert any("n_passes" in e for e in validator.check_file(path))

    def test_rejects_wrong_schema_version(self, validator, tmp_path):
        path = self.write(tmp_path, [
            json.dumps({"event": "run_start", "schema": 99, "run_id": "x"}),
            self.ok_end(),
        ])
        assert any("schema" in e for e in validator.check_file(path))

    def test_rejects_missing_run_end(self, validator, tmp_path):
        path = self.write(tmp_path, [self.ok_start()])
        assert any("run_end" in e for e in validator.check_file(path))

    def test_rejects_conservation_violation(self, validator, tmp_path):
        stalls = {c: 0 for c in STALL_CAUSES}
        stalls["raw_dep"] = 5
        stalls["issued_cycles"] = 1
        stalls["by_class"] = {"load": dict.fromkeys(
            list(STALL_CAUSES), 0) | {"raw_dep": 5}}
        path = self.write(tmp_path, [
            self.ok_start(),
            json.dumps({"event": "timing", "benchmark": "b", "machine": "m",
                        "instructions": 3, "minor_cycles": 99,
                        "base_cycles": 3.0, "parallelism": 1.0, "cpi": 1.0,
                        "stalls": stalls}),
            self.ok_end(),
        ])
        assert any("conservation" in e for e in validator.check_file(path))

    def test_rejects_bad_rollup(self, validator, tmp_path):
        stalls = dict.fromkeys(list(STALL_CAUSES), 0)
        stalls["raw_dep"] = 5
        stalls["issued_cycles"] = 1
        stalls["by_class"] = {}
        path = self.write(tmp_path, [
            self.ok_start(),
            json.dumps({"event": "timing", "benchmark": "b", "machine": "m",
                        "instructions": 3, "minor_cycles": 6,
                        "base_cycles": 3.0, "parallelism": 1.0, "cpi": 1.0,
                        "stalls": stalls}),
            self.ok_end(),
        ])
        assert any("roll-up" in e for e in validator.check_file(path))

    def test_rejects_negative_counts(self, validator, tmp_path):
        path = self.write(tmp_path, [
            self.ok_start(),
            json.dumps({"event": "compile", "benchmark": "x",
                        "seconds": -0.1, "n_passes": 3}),
            self.ok_end(),
        ])
        assert any("negative" in e for e in validator.check_file(path))

    def test_rejects_bad_span(self, validator, tmp_path):
        path = self.write(tmp_path, [
            self.ok_start(),
            json.dumps({"event": "span", "name": "engine.run", "cat": "e",
                        "track": "main", "start_us": 0.0, "dur_us": -3.0,
                        "span_id": 0, "parent_id": None}),
            self.ok_end(),
        ])
        assert any("dur_us" in e for e in validator.check_file(path))

    def test_rejects_histogram_conservation_violation(self, validator,
                                                      tmp_path):
        hist = {"bounds": [1, 10], "counts": [1, 1, 1], "count": 5,
                "sum": 12.0}
        path = self.write(tmp_path, [
            self.ok_start(),
            json.dumps({"event": "metrics", "counters": {}, "gauges": {},
                        "histograms": {"lat": hist}}),
            self.ok_end(),
        ])
        assert any("bucket" in e for e in validator.check_file(path))

    def test_rejects_cache_conservation_violation(self, validator,
                                                  tmp_path):
        counters = {"cache.gets": 5, "cache.hits": 1, "cache.misses": 1,
                    "cache.corrupt": 0}
        path = self.write(tmp_path, [
            self.ok_start(),
            json.dumps({"event": "metrics", "counters": counters,
                        "gauges": {}, "histograms": {}}),
            self.ok_end(),
        ])
        assert any("cache" in e for e in validator.check_file(path))

    def test_accepts_valid_span_and_metrics(self, validator, tmp_path):
        hist = {"bounds": [1, 10], "counts": [2, 1, 1], "count": 4,
                "sum": 20.0}
        counters = {"cache.gets": 2, "cache.hits": 1, "cache.misses": 1,
                    "cache.corrupt": 0}
        path = self.write(tmp_path, [
            self.ok_start(),
            json.dumps({"event": "span", "name": "engine.run", "cat": "e",
                        "track": "main", "start_us": 0.0, "dur_us": 3.0,
                        "span_id": 0, "parent_id": None}),
            json.dumps({"event": "metrics", "counters": counters,
                        "gauges": {"engine.workers": 2},
                        "histograms": {"lat": hist}}),
            self.ok_end(),
        ])
        assert validator.check_file(path) == []

    def test_main_reports_failure(self, validator, tmp_path, capsys):
        path = self.write(tmp_path, ["{oops"])
        assert validator.main([path]) == 1
        assert "invalid JSON" in capsys.readouterr().err

    def test_main_without_args_is_usage_error(self, validator, capsys):
        assert validator.main([]) == 2


class TestCli:
    @pytest.fixture()
    def tin_file(self, tmp_path):
        path = tmp_path / "demo.tin"
        path.write_text(TIN)
        return str(path)

    def test_measure_plain_unchanged(self, tin_file, capsys):
        assert main(["measure", tin_file]) == 0
        out = capsys.readouterr().out
        assert "instr/cycle" in out
        assert "stall" not in out

    def test_measure_profile(self, tin_file, capsys):
        assert main(["measure", tin_file, "--profile"]) == 0
        out = capsys.readouterr().out
        assert "compile profile" in out
        assert "raw_dep" in out

    def test_measure_report_emits_valid_jsonl(self, tin_file, tmp_path,
                                              validator, capsys):
        report = tmp_path / "out" / "measure.jsonl"
        assert main(["measure", tin_file, "--profile",
                     "--report", str(report)]) == 0
        assert report.exists()
        assert validator.check_file(str(report)) == []
        events = [e["event"] for e in read_jsonl(report)]
        assert events[0] == "run_start" and events[-1] == "run_end"
        assert "timing" in events

    def test_report_command(self, tmp_path, validator, capsys):
        out_path = tmp_path / "suite.jsonl"
        assert main(["report", "--benchmarks", "whet",
                     "-o", str(out_path), "--quiet"]) == 0
        captured = capsys.readouterr().out
        assert "conservation law: holds" in captured
        assert validator.check_file(str(out_path)) == []

    def test_report_command_renders(self, tmp_path, capsys):
        out_path = tmp_path / "suite.jsonl"
        assert main(["report", "--benchmarks", "whet",
                     "-o", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "stall attribution" in out
        assert "compile profile" in out


class TestSweepObservability:
    def test_sweep_emits_events_with_stalls(self, tmp_path, validator):
        from repro.analysis.sweep import sweep

        path = tmp_path / "sweep.jsonl"
        with JsonlRecorder(path) as rec:
            rec.emit("run_start", schema=SCHEMA_VERSION, run_id="sweep")
            rows = sweep(["whet"], [base_machine()], observe=True,
                         recorder=rec)
            rec.emit("run_end", seconds=0.0, counters=dict(rec.counters))
        assert rows[0].stalls is not None
        assert validator.check_file(str(path)) == []
        event = next(e for e in read_jsonl(path)
                     if e["event"] == "sweep_row")
        assert "stalls" in event

    def test_sweep_default_has_no_stalls(self):
        from repro.analysis.sweep import sweep

        rows = sweep(["whet"], [base_machine()])
        assert rows[0].stalls is None


class TestReportInputCli:
    """``repro report --input``: summarize an existing JSONL report."""

    def test_summarizes_report(self, whet_report, capsys):
        _, path = whet_report
        assert main(["report", "--input", str(path)]) == 0
        out = capsys.readouterr().out
        assert "run report" in out and "test-run" in out
        assert "run_start" in out and "timing" in out

    def test_missing_file_prints_one_line(self, tmp_path, capsys):
        assert main(["report", "--input", str(tmp_path / "nope.jsonl")]) == 1
        err = capsys.readouterr().err
        assert "cannot read" in err
        assert "Traceback" not in err

    def test_empty_file_prints_one_line(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["report", "--input", str(path)]) == 1
        assert "no valid events" in capsys.readouterr().err

    def test_truncated_report_warns_and_summarizes(self, whet_report,
                                                   tmp_path, capsys):
        _, src = whet_report
        lines = Path(src).read_text().splitlines()
        path = tmp_path / "truncated.jsonl"
        # Drop run_end and tear the last remaining line mid-record.
        path.write_text("\n".join(lines[:-2] + [lines[-2][:10]]) + "\n")
        assert main(["report", "--input", str(path)]) == 0
        captured = capsys.readouterr()
        assert "skipped 1 malformed line(s)" in captured.err
        assert "no run_end event" in captured.out


class TestTraceCli:
    """``repro trace``: self-profile tree from a report's span events."""

    @pytest.fixture(scope="class")
    def traced_report(self, tmp_path_factory):
        from repro.engine.executor import execute
        from repro.engine.plan import plan_sweep

        path = tmp_path_factory.mktemp("trace") / "run.jsonl"
        plan = plan_sweep(["whet"], [base_machine(), ideal_superscalar(4)])
        with JsonlRecorder(path) as rec:
            rec.emit("run_start", schema=SCHEMA_VERSION, run_id="traced")
            execute(plan, recorder=rec)  # recorder auto-enables tracing
            rec.emit("run_end", seconds=0.0, counters=dict(rec.counters))
        return str(path)

    def test_prints_profile_tree_and_metrics(self, traced_report, capsys):
        assert main(["trace", traced_report]) == 0
        out = capsys.readouterr().out
        assert f"self-profile: {traced_report}" in out
        assert "engine.run" in out and "simulate" in out
        assert "replay memo:" in out

    def test_chrome_export(self, traced_report, tmp_path, capsys):
        chrome = tmp_path / "out" / "trace.json"
        assert main(["trace", traced_report, "--chrome", str(chrome)]) == 0
        assert "Chrome trace written" in capsys.readouterr().out
        doc = json.loads(chrome.read_text())
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert any(e["name"] == "engine.run" for e in complete)

    def test_report_without_spans_fails_clearly(self, tmp_path, capsys):
        path = tmp_path / "plain.jsonl"
        path.write_text(json.dumps(
            {"event": "run_start", "schema": SCHEMA_VERSION,
             "run_id": "x"}) + "\n")
        assert main(["trace", str(path)]) == 1
        assert "no span events" in capsys.readouterr().err

    def test_missing_file_fails_clearly(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "gone.jsonl")]) == 1
        assert "cannot read" in capsys.readouterr().err

"""IR-level unit tests for the code generator: frame layout, calling
convention, memory annotations, and control-flow lowering."""

import pytest

from repro.errors import CodegenError
from repro.isa import Opcode
from repro.isa.registers import ARG_REGS, RA, RV, SP, ZERO
from repro.lang import parse
from repro.lang.codegen import DATA_BASE, generate
from repro.lang.semantics import check


def gen(src: str):
    module = parse(src)
    return generate(module, check(module))


class TestProgramShape:
    def test_start_stub(self):
        prog = gen("proc main(): int { return 0; }")
        start = prog.functions["_start"]
        ops = [ins.op for ins in start.instructions()]
        assert ops == [Opcode.CALL, Opcode.HALT]
        assert prog.entry == "_start"

    def test_requires_main(self):
        with pytest.raises(CodegenError):
            gen("proc helper(): int { return 0; }")

    def test_main_must_return_int(self):
        with pytest.raises(CodegenError):
            gen("proc main(): float { return 1.0; }")

    def test_globals_laid_out_from_data_base(self):
        prog = gen(
            "var a: int;\nvar t: float[5];\nvar b: int;\n"
            "proc main(): int { return a + b; }"
        )
        assert prog.globals_["a"].address == DATA_BASE
        assert prog.globals_["t"].address == DATA_BASE + 1
        assert prog.globals_["t"].size == 5
        assert prog.globals_["b"].address == DATA_BASE + 6
        assert prog.data_size == DATA_BASE + 7

    def test_float_array_flagged(self):
        prog = gen("var t: float[2];\nproc main(): int { return 0; }")
        assert prog.globals_["t"].is_float


class TestFramesAndCalls:
    def test_prologue_epilogue_symmetry(self):
        prog = gen(
            "proc f(x: int): int { var y: int; y = x + 1; return y; }\n"
            "proc main(): int { return f(1); }"
        )
        fn = prog.functions["f"]
        first = fn.blocks[0].instrs[0]
        assert first.op is Opcode.ADDI and first.dest == SP
        assert first.imm == -fn.frame_slots
        last_block = fn.blocks[-1]
        assert last_block.terminator.op is Opcode.RET
        epilogue = last_block.instrs[-2]
        assert epilogue.op is Opcode.ADDI and epilogue.imm == fn.frame_slots

    def test_ra_saved_and_restored(self):
        prog = gen("proc main(): int { return 1; }")
        fn = prog.functions["main"]
        entry_ops = [(i.op, i.srcs) for i in fn.blocks[0].instrs]
        assert (Opcode.SW, (RA, SP)) in entry_ops
        exit_ops = [(i.op, i.dest) for i in fn.blocks[-1].instrs]
        assert (Opcode.LW, RA) in exit_ops

    def test_arguments_flow_through_arg_registers(self):
        prog = gen(
            "proc f(a: int, b: int): int { return a + b; }\n"
            "proc main(): int { return f(3, 4); }"
        )
        main = prog.functions["main"]
        movs = [
            ins for ins in main.instructions()
            if ins.op is Opcode.MOV and ins.dest in ARG_REGS
        ]
        assert {m.dest for m in movs} == {ARG_REGS[0], ARG_REGS[1]}

    def test_return_value_through_rv(self):
        prog = gen("proc main(): int { return 9; }")
        main = prog.functions["main"]
        assert any(
            ins.op is Opcode.MOV and ins.dest == RV
            for ins in main.instructions()
        )

    def test_array_argument_moves_annotated(self):
        prog = gen(
            "var t: int[4];\n"
            "proc f(a: int[]): int { return a[0]; }\n"
            "proc main(): int { return f(t); }"
        )
        main = prog.functions["main"]
        annotated = [
            ins for ins in main.instructions()
            if ins.op is Opcode.MOV and ins.mem is not None
        ]
        assert len(annotated) == 1
        assert annotated[0].mem.obj == "g:t"


class TestMemoryAnnotations:
    def test_global_scalar_uses_absolute_addressing(self):
        prog = gen("var g: int;\nproc main(): int { return g; }")
        loads = [
            ins for ins in prog.functions["main"].instructions()
            if ins.op is Opcode.LW and ins.mem and ins.mem.obj == "g:g"
        ]
        assert loads and all(ins.srcs[0] == ZERO for ins in loads)
        assert loads[0].imm == prog.globals_["g"].address

    def test_constant_index_becomes_known_offset(self):
        prog = gen("var t: int[8];\nproc main(): int { return t[3]; }")
        loads = [
            ins for ins in prog.functions["main"].instructions()
            if ins.op is Opcode.LW and ins.mem and ins.mem.is_array
        ]
        assert loads[0].mem.offset == 3
        assert loads[0].imm == prog.globals_["t"].address + 3

    def test_affine_tag_on_variable_index(self):
        prog = gen(
            "var t: int[8];\n"
            "proc main(): int { var i: int; i = 2; return t[i + 3]; }"
        )
        loads = [
            ins for ins in prog.functions["main"].instructions()
            if ins.op is Opcode.LW and ins.mem and ins.mem.is_array
        ]
        mem = loads[0].mem
        assert mem.offset is None
        assert mem.affine is not None and mem.affine[1] == 3
        assert mem.affine_vars == ("s:main:i",)
        assert loads[0].imm == 3  # delta folded into the displacement

    def test_affine_core_canonical_across_orderings(self):
        prog = gen(
            "var t: int[30];\n"
            "proc main(): int {\n"
            "  var i, j: int;\n"
            "  i = 2; j = 3;\n"
            "  return t[i + j + 1] + t[1 + j + i];\n"
            "}"
        )
        loads = [
            ins for ins in prog.functions["main"].instructions()
            if ins.op is Opcode.LW and ins.mem and ins.mem.is_array
        ]
        assert len(loads) == 2
        assert loads[0].mem.affine == loads[1].mem.affine

    def test_param_array_access_may_alias(self):
        prog = gen(
            "var t: int[4];\n"
            "proc f(a: int[], i: int): int { return a[i]; }\n"
            "proc main(): int { return f(t, 1); }"
        )
        loads = [
            ins for ins in prog.functions["f"].instructions()
            if ins.op is Opcode.LW and ins.mem and ins.mem.is_array
        ]
        assert loads[0].mem.may_alias_all
        assert loads[0].mem.obj == "p:f:a"

    def test_local_scalars_are_frame_objects(self):
        prog = gen("proc main(): int { var x: int; x = 1; return x; }")
        stores = [
            ins for ins in prog.functions["main"].instructions()
            if ins.op is Opcode.SW and ins.mem and ins.mem.obj == "s:main:x"
        ]
        assert stores and all(ins.srcs[1] == SP for ins in stores)


class TestControlFlowLowering:
    def test_if_lowering_has_no_unreachable_blocks(self):
        prog = gen(
            "proc main(): int { if (1) { return 1; } else { return 2; } }"
        )
        fn = prog.functions["main"]
        reachable = set(fn.rpo())
        assert {b.label for b in fn.blocks} == reachable

    def test_for_loop_constant_bound_uses_immediate_compare(self):
        prog = gen(
            "proc main(): int { var i, s: int; s = 0;"
            " for i = 0 to 9 { s = s + 1; } return s; }"
        )
        ops = [ins.op for ins in prog.functions["main"].instructions()]
        assert Opcode.SLEI in ops

    def test_validates_on_construction(self):
        prog = gen("proc main(): int { return 0; }")
        prog.validate()  # must not raise

"""Edge-case tests: interprocedural binding chains, reassociation
declaration typing, the package facade, and the CLI suite command."""

import pytest

from repro import compile_and_run, compile_source
from repro.lang import ast, parse
from repro.lang.codegen import generate
from repro.lang.semantics import check
from repro.opt.alias import bind_array_parameters
from repro.opt.options import CompilerOptions, OptLevel
from repro.opt.unroll import resolve_partial_decls, unroll_module
from tests.helpers import run_tin_value


class TestFacade:
    def test_compile_and_run(self):
        result = compile_and_run("proc main(): int { return 6 * 7; }")
        assert result.value == 42

    def test_compile_source_returns_program(self):
        program = compile_source("proc main(): int { return 1; }")
        assert "main" in program.functions
        program.validate()

    def test_facade_accepts_options(self):
        result = compile_and_run(
            "proc main(): int { return 2 + 2; }",
            CompilerOptions(opt_level=OptLevel.NONE),
        )
        assert result.value == 4


class TestInterproceduralChains:
    CHAIN_SRC = """
    var data: float[16];
    proc leaf(a: float[], n: int): float {
        var i: int;
        var s: float;
        s = 0.0;
        for i = 0 to n - 1 { s = s + a[i]; }
        return s;
    }
    proc middle(b: float[], n: int): float {
        return leaf(b, n) * 2.0;
    }
    proc main(): int {
        var i: int;
        for i = 0 to 15 { data[i] = float(i); }
        return int(middle(data, 16));
    }
    """

    def test_pass_through_chain_resolves(self):
        module = parse(self.CHAIN_SRC)
        program = generate(module, check(module))
        bound = bind_array_parameters(program)
        assert bound > 0
        leaf = program.functions["leaf"]
        objs = {
            ins.mem.obj for ins in leaf.instructions()
            if ins.mem is not None and ins.mem.is_array
        }
        assert objs == {"g:data"}

    def test_chain_semantics(self):
        expected = int(sum(range(16)) * 2.0)
        for careful in (False, True):
            value = run_tin_value(
                self.CHAIN_SRC, CompilerOptions(careful=careful)
            )
            assert value == expected

    def test_recursive_array_param_stays_unbound(self):
        src = """
        var t: int[8];
        proc walk(a: int[], i: int): int {
            if (i >= 8) { return 0; }
            return a[i] + walk(a, i + 1);
        }
        proc main(): int {
            var i: int;
            for i = 0 to 7 { t[i] = i + 1; }
            return walk(t, 0);
        }
        """
        module = parse(src)
        program = generate(module, check(module))
        bind_array_parameters(program)
        # call sites pass both g:t (from main) and p:walk:a (recursion):
        # the binding must resolve through the self-recursion to g:t OR
        # stay conservative; either way semantics hold
        assert run_tin_value(src, CompilerOptions(careful=True)) == 36


class TestReassociationTyping:
    def test_partial_temporaries_inherit_float_type(self):
        src = """
        var w: float[12];
        proc main(): int {
            var i: int;
            var acc: float;
            acc = 0.0;
            for i = 0 to 11 { acc = acc + w[i]; }
            return int(acc);
        }
        """
        module = parse(src)
        stats = unroll_module(module, 4, careful=True)
        assert stats.reductions_reassociated == 1
        resolve_partial_decls(module)
        info = check(module)
        partials = [
            name for name in info.procs["main"].locals_
            if name.startswith("__p")
        ]
        assert partials
        assert all(
            info.procs["main"].locals_[name].ty == ast.FLOAT
            for name in partials
        )

    def test_int_accumulator_gets_int_partials(self):
        src = """
        var t: int[12];
        proc main(): int {
            var i, acc: int;
            acc = 0;
            for i = 0 to 11 { acc = acc + t[i]; }
            return acc;
        }
        """
        module = parse(src)
        unroll_module(module, 4, careful=True)
        resolve_partial_decls(module)
        info = check(module)
        partials = [
            name for name in info.procs["main"].locals_
            if name.startswith("__p")
        ]
        assert partials
        assert all(
            info.procs["main"].locals_[name].ty == ast.INT
            for name in partials
        )

    def test_product_reduction_reassociates(self):
        src = """
        var t: float[8];
        proc main(): int {
            var i: int;
            var prod: float;
            for i = 0 to 7 { t[i] = 1.0 + float(i) * 0.125; }
            prod = 1.0;
            for i = 0 to 7 { prod = prod * t[i]; }
            return int(prod * 100.0);
        }
        """
        plain = run_tin_value(src, CompilerOptions())
        reassoc = run_tin_value(src, CompilerOptions(unroll=4, careful=True))
        assert abs(plain - reassoc) <= 1


class TestCLISuite:
    def test_suite_command(self, capsys):
        from repro.__main__ import main as cli_main

        assert cli_main(["suite"]) == 0
        out = capsys.readouterr().out
        for name in ("ccom", "yacc", "linpack"):
            assert name in out
        assert "MISMATCH" not in out


class TestUnderpipelinedSemantics:
    def test_both_underpipelined_presets_equal_half_base(self):
        """Figure 2-2 and 2-3: 'this machine's performance is the same
        as the machine in Figure 2-2, which is half of the performance
        attainable by the base machine'."""
        from repro.analysis.pipeviz import demo_trace
        from repro.machine import (
            base_machine,
            underpipelined_half_issue,
            underpipelined_slow_cycle,
        )
        from repro.sim import simulate

        trace = demo_trace("independent", 16)
        base = simulate(trace, base_machine()).base_cycles
        slow = simulate(trace, underpipelined_slow_cycle()).base_cycles
        half = simulate(trace, underpipelined_half_issue()).base_cycles
        assert slow == pytest.approx(2 * base)
        assert half == pytest.approx(2 * base, rel=0.1)

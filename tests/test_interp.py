"""Unit tests for the functional interpreter."""

import pytest

from repro.errors import SimulationError
from repro.isa import BasicBlock, Function, Opcode, Program, build
from repro.isa.registers import Reg
from repro.opt.options import CompilerOptions, OptLevel
from repro.sim.interp import _int_div, _int_mod, flatten, run
from tests.helpers import run_tin


def tiny_program(body_instrs) -> Program:
    """Wrap instructions in a main() that halts; uses physical regs."""
    start = Function("_start")
    start.blocks = [BasicBlock("_start.entry",
                               [build.call("main"), build.halt()])]
    main = Function("main")
    main.blocks = [BasicBlock("main.entry", list(body_instrs) + [build.ret()])]
    return Program(functions={"_start": start, "main": main}, entry="_start")


class TestArithmeticSemantics:
    @pytest.mark.parametrize("a,b,q,r", [
        (7, 2, 3, 1),
        (-7, 2, -3, -1),
        (7, -2, -3, 1),
        (-7, -2, 3, -1),
        (0, 5, 0, 0),
    ])
    def test_c_style_division(self, a, b, q, r):
        assert _int_div(a, b) == q
        assert _int_mod(a, b) == r

    def test_division_by_zero_raises(self):
        with pytest.raises(SimulationError):
            _int_div(1, 0)

    def test_float_division_by_zero_raises(self):
        src = "proc main(): int { var x: float; x = 0.0;" \
              " return int(1.0 / x); }"
        with pytest.raises(SimulationError):
            run_tin(src)

    def test_runtime_int_division_by_zero(self):
        src = "proc main(): int { var x: int; x = 0; return 1 / x; }"
        with pytest.raises(SimulationError):
            run_tin(src)


class TestMemorySafety:
    def test_load_out_of_bounds(self):
        body = [
            build.li(Reg(20), 10_000_000),
            build.lw(Reg(21), Reg(20), 0),
        ]
        with pytest.raises(SimulationError):
            run(tiny_program(body))

    def test_store_into_guard_page(self):
        body = [build.sw(Reg(20), Reg(0), 2)]
        with pytest.raises(SimulationError):
            run(tiny_program(body))

    def test_writes_to_register_zero_rejected(self):
        body = [build.li(Reg(0), 1)]
        with pytest.raises(SimulationError):
            run(tiny_program(body))

    def test_instruction_budget(self):
        src = """
        proc main(): int {
            var i, s: int;
            s = 0;
            for i = 1 to 100000 { s = s + 1; }
            return s;
        }
        """
        with pytest.raises(SimulationError):
            run_tin(src, max_instructions=1000)


class TestTraces:
    def test_trace_matches_instruction_count(self):
        result = run_tin("proc main(): int { return 1 + 2; }")
        assert len(result.trace) == result.instructions

    def test_trace_records_memory_addresses(self):
        result = run_tin(
            "var g: int;\nproc main(): int { g = 5; return g; }",
            CompilerOptions(opt_level=OptLevel.NONE),
        )
        mem_addrs = [
            addr for si, addr in zip(result.trace.ops, result.trace.addrs)
            if result.trace.static[si].op.info.is_mem
        ]
        assert all(a >= 16 for a in mem_addrs)
        assert any(a >= 16 for a in mem_addrs)

    def test_class_counts(self):
        result = run_tin("proc main(): int { return 2 * 3; }")
        counts = result.trace.class_counts()
        assert sum(counts.values()) == result.instructions


class TestFlatten:
    def test_flatten_is_dense_and_labelled(self):
        program = tiny_program([build.li(Reg(20), 1)])
        flat = flatten(program)
        assert len(flat.instrs) == program.instruction_count()
        assert flat.start == flat.entry_index["_start"]
        assert flat.label_index["main.entry"] == flat.entry_index["main"]


class TestStackDiscipline:
    def test_deep_recursion_uses_stack(self):
        src = """
        proc depth(n: int): int {
            if (n == 0) { return 0; }
            return depth(n - 1) + 1;
        }
        proc main(): int { return depth(200); }
        """
        assert run_tin(src).value == 200

    def test_stack_overflow_detected(self):
        src = """
        proc down(n: int): int { return down(n + 1); }
        proc main(): int { return down(0); }
        """
        with pytest.raises(SimulationError):
            run_tin(src, memory_words=4096)

"""Differential fuzzing of the optimizer.

Hypothesis generates random *structured* Tin programs (bounded loops,
nested conditionals, scalar and array state, a helper procedure) and the
test compiles each at every optimization level plus unrolling
configurations.  The unoptimized build is the reference; every other
configuration must compute the same result.  This catches optimizer and
scheduler miscompilations that the hand-written conformance batteries
don't anticipate.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.opt.options import CompilerOptions, OptLevel
from tests.helpers import run_tin_value

_SCALARS = ("g0", "g1", "t0", "t1", "t2")


# ---------------------------------------------------------------- expressions
def _expr(depth: int):
    leaf = st.one_of(
        st.integers(-9, 9).map(lambda v: f"({v})" if v < 0 else str(v)),
        st.sampled_from(_SCALARS),
        st.builds(lambda e: f"arr[({e}) & 15]", _expr(0))
        if depth > 0 else st.sampled_from(_SCALARS),
    )
    if depth == 0:
        return leaf
    sub = _expr(depth - 1)
    binop = st.builds(
        lambda a, op, b: f"({a} {op} {b})",
        sub, st.sampled_from(["+", "-", "*", "&", "|", "^", "<", "==",
                              "<=", "!="]),
        sub,
    )
    return st.one_of(leaf, binop)


# ----------------------------------------------------------------- statements
def _stmt(depth: int, loop_depth: int):
    assign = st.builds(
        lambda v, e: f"{v} = {e};", st.sampled_from(_SCALARS), _expr(2)
    )
    store = st.builds(
        lambda i, e: f"arr[({i}) & 15] = {e};", _expr(1), _expr(2)
    )
    call = st.builds(
        lambda a, b: f"t2 = mix({a}, {b});", _expr(1), _expr(1)
    )
    options = [assign, store, call]
    if depth > 0:
        block = _block(depth - 1, loop_depth)
        options.append(st.builds(
            lambda c, t, e: f"if ({c}) {{ {t} }} else {{ {e} }}",
            _expr(1), block, block,
        ))
        if loop_depth < 2:
            ivar = f"i{loop_depth}"
            options.append(st.builds(
                lambda lo, n, b: (
                    f"for {ivar} = {lo} to {lo + n} {{ {b} }}"
                ),
                st.integers(0, 3), st.integers(0, 6),
                _block(depth - 1, loop_depth + 1),
            ))
    return st.one_of(options)


def _block(depth: int, loop_depth: int):
    return st.lists(
        _stmt(depth, loop_depth), min_size=1, max_size=4
    ).map(" ".join)


def _program(body: str) -> str:
    return f"""
    var g0, g1: int;
    var arr: int[16];
    proc mix(a: int, b: int): int {{
        if (a < b) {{ return a * 3 + b; }}
        return a - b * 2;
    }}
    proc main(): int {{
        var t0, t1, t2, i0, i1, acc: int;
        g0 = 3; g1 = -5; t0 = 7; t1 = 11; t2 = 13;
        {body}
        acc = g0 + 2 * g1 + 3 * t0 + 5 * t1 + 7 * t2;
        for i0 = 0 to 15 {{ acc = acc * 3 + arr[i0]; }}
        return acc % 1000003;
    }}
    """


_CONFIGS = [
    CompilerOptions(opt_level=OptLevel.SCHEDULE),
    CompilerOptions(opt_level=OptLevel.LOCAL),
    CompilerOptions(opt_level=OptLevel.GLOBAL),
    CompilerOptions(opt_level=OptLevel.REGALLOC),
    CompilerOptions(unroll=3),
    CompilerOptions(unroll=4, careful=True),
]


@settings(
    max_examples=60, deadline=None,
    suppress_health_check=[HealthCheck.too_slow,
                           HealthCheck.data_too_large],
)
@given(body=_block(2, 0))
def test_optimizations_agree_with_unoptimized(body):
    src = _program(body)
    reference = run_tin_value(
        src, CompilerOptions(opt_level=OptLevel.NONE)
    )
    for options in _CONFIGS:
        assert run_tin_value(src, options) == reference, (
            f"mismatch at {options.opt_level.name} "
            f"unroll={options.unroll} careful={options.careful}\n{src}"
        )

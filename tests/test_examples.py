"""Smoke tests: the example scripts must run end to end."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    path = EXAMPLES / name
    module = runpy.run_path(str(path), run_name="not_main")
    module["main"]()
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "superscalar-4" in out
    assert "available ILP" in out


def test_custom_machine(capsys):
    out = run_example("custom_machine.py", capsys)
    assert "budget-superscalar" in out
    assert "harmonic mean" in out


def test_paper_figures_single_exhibit(capsys, monkeypatch):
    path = EXAMPLES / "paper_figures.py"
    module = runpy.run_path(str(path), run_name="not_main")
    assert module["main"](["paper_figures.py", "fig4-7"]) == 0
    out = capsys.readouterr().out
    assert "1.667" in out


def test_paper_figures_rejects_unknown(capsys):
    path = EXAMPLES / "paper_figures.py"
    module = runpy.run_path(str(path), run_name="not_main")
    assert module["main"](["paper_figures.py", "bogus"]) == 1

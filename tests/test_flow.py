"""Tests for the checkpointed workflow DAG engine (repro.flow)."""

from __future__ import annotations

import dataclasses
import json
import os
import signal

import pytest

from repro.flow import (
    FlowContext,
    FlowDag,
    FlowError,
    FlowNode,
    FlowRunner,
    FlowStateStore,
    journal_path,
    read_journal,
    run_flow,
    run_sweep_flow,
    state_dir,
)
from repro.flow.state import JournalError


# ---------------------------------------------------------------------------
# DAG structure and signatures
# ---------------------------------------------------------------------------


def _node(name, fingerprint="fp", deps=(), kind="t"):
    return FlowNode(name=name, kind=kind, fingerprint=fingerprint,
                    deps=tuple(deps))


class TestFlowDag:
    def test_duplicate_node_rejected(self):
        dag = FlowDag()
        dag.add(_node("a"))
        with pytest.raises(FlowError, match="duplicate"):
            dag.add(_node("a"))

    def test_unknown_dependency_rejected(self):
        dag = FlowDag()
        dag.add(_node("a", deps=("ghost",)))
        with pytest.raises(FlowError, match="unknown node 'ghost'"):
            dag.validate()

    def test_cycle_detected(self):
        dag = FlowDag()
        dag.add(_node("a", deps=("b",)))
        dag.add(_node("b", deps=("a",)))
        with pytest.raises(FlowError, match="cycle"):
            dag.validate()

    def test_topological_order_deterministic(self):
        dag = FlowDag()
        dag.add(_node("z"))
        dag.add(_node("a"))
        dag.add(_node("m", deps=("z", "a")))
        assert dag.topological_order() == ["z", "a", "m"]

    def test_signatures_ignore_names(self):
        def build(cell_name):
            dag = FlowDag()
            dag.add(_node("compile", fingerprint="src-hash"))
            dag.add(_node(cell_name, fingerprint="machine-hash",
                          deps=("compile",)))
            return dag

        a = build("cell:000").signatures()
        b = build("cell:renamed").signatures()
        assert a["cell:000"] == b["cell:renamed"]
        assert a["compile"] == b["compile"]

    def test_fingerprint_change_invalidates_downstream_only(self):
        def build(fp):
            dag = FlowDag()
            dag.add(_node("a", fingerprint=fp))
            dag.add(_node("b", fingerprint="b"))
            dag.add(_node("c", fingerprint="c", deps=("a",)))
            dag.add(_node("d", fingerprint="d", deps=("b",)))
            return dag

        s1 = build("v1").signatures()
        s2 = build("v2").signatures()
        assert s1["a"] != s2["a"]
        assert s1["c"] != s2["c"]
        assert s1["b"] == s2["b"]
        assert s1["d"] == s2["d"]

    def test_downstream_closure(self):
        dag = FlowDag()
        dag.add(_node("a"))
        dag.add(_node("b", deps=("a",)))
        dag.add(_node("c", deps=("b",)))
        dag.add(_node("x"))
        assert dag.downstream(["a"]) == {"a", "b", "c"}
        assert dag.downstream(["x"]) == {"x"}
        with pytest.raises(FlowError):
            dag.downstream(["ghost"])


# ---------------------------------------------------------------------------
# The state store
# ---------------------------------------------------------------------------


class TestFlowStateStore:
    def test_roundtrip(self, tmp_path):
        store = FlowStateStore(str(tmp_path))
        sig = "ab" * 32
        store.store(sig, "n", "t", {"x": 1})
        entry = store.load(sig)
        assert entry is not None
        assert entry["value"] == {"x": 1}
        assert entry["node"] == "n"

    def test_missing_is_none(self, tmp_path):
        store = FlowStateStore(str(tmp_path))
        assert store.load("cd" * 32) is None

    def test_torn_checkpoint_dropped(self, tmp_path):
        store = FlowStateStore(str(tmp_path))
        sig = "ef" * 32
        path = store.store(sig, "n", "t", list(range(1000)))
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size // 2)
        assert store.load(sig) is None
        assert store.stats.corrupt == 1
        # ...and the corrupt file is gone, so the next store is clean.
        store.store(sig, "n", "t", [1])
        assert store.load(sig)["value"] == [1]

    def test_reject_removes_entry(self, tmp_path):
        store = FlowStateStore(str(tmp_path))
        sig = "0f" * 32
        store.store(sig, "n", "t", 1)
        store.reject(sig)
        assert store.load(sig) is None


# ---------------------------------------------------------------------------
# The engine, on synthetic DAGs
# ---------------------------------------------------------------------------


class _Kill(Exception):
    """In-process stand-in for the SIGKILL a kill fault delivers."""


def _chain_dag(n=4, fingerprints=None):
    """a0 <- a1 <- ... <- a(n-1), value = dep value + 1."""
    dag = FlowDag()
    for i in range(n):
        fp = (fingerprints or {}).get(i, f"fp{i}")
        deps = (f"a{i - 1}",) if i else ()
        dag.add(FlowNode(name=f"a{i}", kind="t", fingerprint=fp,
                         deps=deps, payload=i))
    return dag


def _runners(trace):
    def func(name, payload, deps):
        trace.append(name)
        return sum(v for v in deps.values() if v is not None) + 1

    return {"t": FlowRunner("t", func, local=True)}


class TestRunFlow:
    def test_executes_and_restores(self, tmp_path):
        root = str(tmp_path)
        trace = []
        r1 = run_flow(_chain_dag(), _runners(trace), root=root)
        assert r1.ok and len(r1.executed) == 4 and not r1.restored
        assert r1.values["a3"] == 4

        trace.clear()
        r2 = run_flow(_chain_dag(), _runners(trace), root=root)
        assert not r2.executed and len(r2.restored) == 4
        assert trace == []
        assert r2.values == r1.values

    def test_fingerprint_change_reexecutes_downstream_slice(self, tmp_path):
        root = str(tmp_path)
        trace = []
        run_flow(_chain_dag(), _runners(trace), root=root)

        trace.clear()
        changed = _chain_dag(fingerprints={2: "fp2-edited"})
        r = run_flow(changed, _runners(trace), root=root)
        assert sorted(r.restored) == ["a0", "a1"]
        assert sorted(r.executed) == ["a2", "a3"]
        assert trace == ["a2", "a3"]

    def test_missing_runner_rejected(self, tmp_path):
        with pytest.raises(FlowError, match="no runner"):
            run_flow(_chain_dag(), {}, root=str(tmp_path))

    def test_failed_node_skips_dependents(self, tmp_path):
        def func(name, payload, deps):
            if name == "a1":
                raise ValueError("boom")
            return 1

        runners = {"t": FlowRunner("t", func, local=True)}
        r = run_flow(_chain_dag(3), runners, root=str(tmp_path))
        assert not r.ok
        assert r.statuses == {"a0": "executed", "a1": "failed",
                              "a2": "skipped"}
        assert "a1" in r.failed and "a2" in r.failed

    def test_validate_rejection_forces_recompute(self, tmp_path):
        root = str(tmp_path)
        trace = []

        def validate(value):
            return None if value >= 0 else "negative"

        def func(name, payload, deps):
            trace.append(name)
            return sum(v for v in deps.values() if v is not None) + 1

        runners = {"t": FlowRunner("t", func, validate=validate,
                                   local=True)}
        run_flow(_chain_dag(2), runners, root=root)

        # Corrupt a2's checkpoint semantically: overwrite with -5.
        sigs = _chain_dag(2).signatures()
        store = FlowStateStore(state_dir(root))
        store.store(sigs["a1"], "a1", "t", -5)

        trace.clear()
        r = run_flow(_chain_dag(2), runners, root=root)
        assert r.restored == ["a0"]
        assert r.executed == ["a1"]
        assert r.values["a1"] == 2

    def test_kill_and_resume(self, tmp_path):
        from repro.engine.faults import FaultPlan

        root = str(tmp_path)
        trace = []

        def kill_action(node, ordinal):
            raise _Kill(f"{node}@{ordinal}")

        with pytest.raises(_Kill):
            run_flow(_chain_dag(), _runners(trace), root=root,
                     run_id="r1", faults=FaultPlan.parse("kill@2"),
                     kill_action=kill_action)

        events = read_journal(journal_path(root, "r1"))
        done = [e["node"] for e in events if e["event"] == "node_done"]
        assert done == ["a0", "a1"]

        trace.clear()
        r = run_flow(_chain_dag(), _runners(trace), root=root,
                     run_id="r1")
        assert sorted(r.restored) == ["a0", "a1"]
        assert sorted(r.executed) == ["a2", "a3"]
        assert r.values["a3"] == 4
        # The journal records the resume boundary.
        events = read_journal(journal_path(root, "r1"))
        kinds = [e["event"] for e in events]
        assert kinds[0] == "flow_start"
        assert "flow_resume" in kinds
        assert kinds[-1] == "flow_end"

    def test_restored_nodes_never_fire_faults(self, tmp_path):
        from repro.engine.faults import FaultPlan

        root = str(tmp_path)

        def kill_action(node, ordinal):
            raise _Kill(node)

        # Warm every checkpoint first, then rerun with a kill@1 plan:
        # all nodes restore, no node *executes*, so the ordinal never
        # reaches 1 and the kill cannot fire.
        run_flow(_chain_dag(), _runners([]), root=root)
        r = run_flow(_chain_dag(), _runners([]), root=root,
                     faults=FaultPlan.parse("kill@1"),
                     kill_action=kill_action)
        assert r.ok and len(r.restored) == 4

    def test_torn_checkpoint_recomputed_on_resume(self, tmp_path):
        from repro.engine.faults import FaultPlan

        root = str(tmp_path)
        trace = []

        def kill_action(node, ordinal):
            raise _Kill(node)

        # Tear a1's checkpoint as written, then die after a2.
        with pytest.raises(_Kill):
            run_flow(_chain_dag(), _runners(trace), root=root,
                     run_id="r1",
                     faults=FaultPlan.parse("torn-write@2,kill@3"),
                     kill_action=kill_action)
        events = read_journal(journal_path(root, "r1"))
        done = [e["node"] for e in events if e["event"] == "node_done"]
        assert done == ["a0", "a1", "a2"]  # journal claims a1 done...

        trace.clear()
        r = run_flow(_chain_dag(), _runners(trace), root=root,
                     run_id="r1")
        # ...but its checkpoint is torn, so it recomputes.
        assert "a1" in r.executed
        assert "a0" in r.restored
        assert r.values["a3"] == 4

    def test_renamed_node_restores_old_checkpoint(self, tmp_path):
        root = str(tmp_path)
        dag = FlowDag()
        dag.add(FlowNode(name="x", kind="t", fingerprint="same"))
        run_flow(dag, _runners([]), root=root)

        # Signatures exclude names: a renamed (or re-indexed) node with
        # identical content restores the old node's checkpoint.
        renamed = FlowDag()
        renamed.add(FlowNode(name="y", kind="t", fingerprint="same"))
        r = run_flow(renamed, _runners([]), root=root)
        assert r.restored == ["y"] and not r.executed


class TestJournalErrors:
    def test_missing_journal(self, tmp_path):
        with pytest.raises(JournalError, match="no journal"):
            read_journal(journal_path(str(tmp_path), "ghost"))

    def test_empty_journal(self, tmp_path):
        path = journal_path(str(tmp_path), "empty")
        os.makedirs(os.path.dirname(path), exist_ok=True)
        open(path, "w").close()
        with pytest.raises(JournalError, match="empty"):
            read_journal(path)

    def test_wrong_first_event(self, tmp_path):
        path = journal_path(str(tmp_path), "bad")
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as handle:
            handle.write(json.dumps({"event": "node_done"}) + "\n")
        with pytest.raises(JournalError, match="flow_start"):
            read_journal(path)

    def test_torn_final_line_tolerated(self, tmp_path):
        path = journal_path(str(tmp_path), "torn")
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as handle:
            handle.write(json.dumps(
                {"event": "flow_start", "version": 1}) + "\n")
            handle.write('{"event": "node_do')  # torn mid-write
        events = read_journal(path)
        assert len(events) == 1

    def test_bad_run_id_rejected(self, tmp_path):
        with pytest.raises(JournalError):
            journal_path(str(tmp_path), "../escape")


# ---------------------------------------------------------------------------
# The sweep flow against the real engine (acceptance: incremental slice)
# ---------------------------------------------------------------------------


def _sweep(plan, cache_dir, **kwargs):
    from repro.engine.cache import TraceCache

    flow = FlowContext(cache=TraceCache(str(cache_dir)), **kwargs)
    result = run_sweep_flow(plan, flow=flow)
    return result, flow.result


class TestSweepFlowIncremental:
    def test_machine_preset_change_reruns_only_its_slice(self, tmp_path):
        from repro.engine.plan import plan_sweep
        from repro.machine.presets import resolve

        s4, s8 = resolve("superscalar:2"), resolve("superscalar:4")
        plan1 = plan_sweep(["whet"], [s4, s8])
        result1, fr1 = _sweep(plan1, tmp_path)
        # 1 compile + 2 cells + rows, all cold.
        assert len(fr1.executed) == 4 and not fr1.restored

        # Same plan again: everything restores.
        _, fr2 = _sweep(plan1, tmp_path)
        assert not fr2.executed and len(fr2.restored) == 4

        # Swap one machine preset: only its cells (and the rows
        # aggregate downstream of them) re-run.
        plan2 = plan_sweep(["whet"], [s4, resolve("superpipelined:2")])
        result3, fr3 = _sweep(plan2, tmp_path)
        assert sorted(n.split(":")[0] for n in fr3.executed) \
            == ["cell", "rows"]
        assert any("superpipelined-2" in n for n in fr3.executed)
        assert len(fr3.restored) == 2  # the compile + the s4 cell
        assert all("superpipelined-2" not in n for n in fr3.restored)
        cells = {c.machine: c for c in result3.cells}
        assert cells[s4.name].parallelism \
            == {c.machine: c for c in result1.cells}[s4.name].parallelism

    def test_options_change_reruns_only_that_benchmark(self, tmp_path):
        from repro.engine.plan import plan_sweep
        from repro.machine.presets import resolve
        from repro.opt.options import OptLevel

        machine = resolve("superscalar:4")
        plan1 = plan_sweep(["linpack", "whet"], [machine])
        _, fr1 = _sweep(plan1, tmp_path)
        assert len(fr1.executed) == 5  # 2 compiles + 2 cells + rows

        # Change one benchmark's compile options (stands in for editing
        # its source: the compile fingerprint is the trace key over
        # source + options).
        cells = [
            dataclasses.replace(
                cell,
                options=dataclasses.replace(cell.options,
                                            opt_level=OptLevel.LOCAL))
            if cell.benchmark == "whet" else cell
            for cell in plan1.cells
        ]
        plan2 = dataclasses.replace(plan1, cells=tuple(cells))
        _, fr2 = _sweep(plan2, tmp_path)
        executed = sorted(fr2.executed)
        assert "rows" in executed
        assert all("whet" in n or n == "rows" for n in executed)
        assert len(executed) == 3  # whet compile + whet cell + rows
        assert sum("linpack" in n for n in fr2.restored) == 2

    def test_flow_rows_match_classic_executor(self, tmp_path):
        from repro.engine.executor import execute
        from repro.engine.plan import plan_sweep
        from repro.machine.presets import resolve

        plan = plan_sweep(["whet"], [resolve("superscalar:4")])
        flow_result, _ = _sweep(plan, tmp_path / "flow")
        classic = execute(plan)
        for a, b in zip(flow_result.cells, classic.cells):
            assert a.benchmark == b.benchmark
            assert a.machine == b.machine
            assert a.instructions == b.instructions
            assert a.minor_cycles == b.minor_cycles
            assert a.base_cycles == b.base_cycles
            assert a.parallelism == b.parallelism
            assert a.checksum_ok and b.checksum_ok


# ---------------------------------------------------------------------------
# CLI error contracts (resume/diff/dash exit 2 on bad stores)
# ---------------------------------------------------------------------------


@pytest.fixture
def cli(capsys):
    """Invoke the CLI in-process, preserving the SIGTERM handler."""
    from repro.__main__ import main

    old = signal.getsignal(signal.SIGTERM)

    def invoke(*argv):
        try:
            code = main(list(argv))
        except SystemExit as exc:  # argparse or _parse_benchmarks
            code = exc.code
        out = capsys.readouterr()
        return code, out.out, out.err

    yield invoke
    signal.signal(signal.SIGTERM, old)


class TestCliErrors:
    def test_resume_missing_journal(self, cli, tmp_path):
        code, _, err = cli("resume", "ghost",
                           "--cache-dir", str(tmp_path))
        assert code == 2
        assert "no journal" in err

    def test_resume_empty_journal(self, cli, tmp_path):
        path = journal_path(str(tmp_path), "empty")
        os.makedirs(os.path.dirname(path), exist_ok=True)
        open(path, "w").close()
        code, _, err = cli("resume", "empty",
                           "--cache-dir", str(tmp_path))
        assert code == 2
        assert "empty" in err

    def test_resume_foreign_journal(self, cli, tmp_path):
        path = journal_path(str(tmp_path), "foreign")
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as handle:
            handle.write(json.dumps({
                "event": "flow_start", "version": 1,
                "flow": {"kind": "prime", "spec": {}},
            }) + "\n")
        code, _, err = cli("resume", "foreign",
                           "--cache-dir", str(tmp_path))
        assert code == 2
        assert "not started by" in err

    def test_diff_missing_ledger(self, cli, tmp_path):
        code, _, err = cli("diff", "latest", "latest~1",
                           "--ledger", str(tmp_path / "none.sqlite"))
        assert code == 2
        assert "no ledger" in err

    def test_dash_missing_ledger(self, cli, tmp_path):
        code, _, err = cli("dash",
                           "--ledger", str(tmp_path / "none.sqlite"),
                           "--out", str(tmp_path / "d.html"))
        assert code == 2
        assert "no ledger" in err

    def test_dash_empty_ledger(self, cli, tmp_path):
        from repro.obs.history import HistoryLedger

        ledger_path = tmp_path / "empty.sqlite"
        HistoryLedger(str(ledger_path)).close()
        code, _, err = cli("dash", "--ledger", str(ledger_path),
                           "--out", str(tmp_path / "d.html"))
        assert code == 2
        assert "no runs" in err
        assert not (tmp_path / "d.html").exists()


class TestFlowEventSchema:
    def test_flow_event_validates(self):
        from repro.flow import flow_event
        from repro.obs.schema import check_event

        class _FR:
            run_id = "r"
            dag_signature = "d" * 64
            statuses = {"a": "executed", "b": "restored"}
            executed = ["a"]
            restored = ["b"]
            failed = {}
            seconds = 0.5

        event = dict(flow_event(_FR()), event="flow")
        assert check_event(event) == []

    def test_flow_event_node_conservation_enforced(self):
        from repro.obs.schema import check_event

        bad = {"event": "flow", "run_id": "r", "nodes": 3,
               "executed": 1, "restored": 1, "failed": 0}
        errors = check_event(bad)
        assert any("conservation" in e or "nodes" in e for e in errors)

    def test_flow_report_passes_full_schema_check(self, tmp_path):
        from repro.engine.cache import TraceCache
        from repro.engine.plan import plan_sweep
        from repro.machine.presets import resolve
        from repro.obs.recorder import JsonlRecorder
        from repro.obs.schema import SCHEMA_VERSION, check_file

        path = tmp_path / "flow-report.jsonl"
        plan = plan_sweep(["whet"], [resolve("superscalar:4")],
                          observe=True)
        with JsonlRecorder(str(path)) as rec:
            rec.emit("run_start", schema=SCHEMA_VERSION, run_id="t",
                     machines=["superscalar-4"])
            flow = FlowContext(cache=TraceCache(str(tmp_path / "c")))
            run_sweep_flow(plan, flow=flow, recorder=rec)
            rec.emit("run_end", seconds=0.0, counters=dict(rec.counters))
        assert check_file(str(path)) == []

"""Tests for the pluggable scheduler-backend subsystem.

Covers the registry (:mod:`repro.sched.registry`), the re-homed
``"list"`` backend's bit-identity against the pre-refactor golden
digests, the ``"swp"`` and ``"exact"`` backends' validity and quality
guarantees (never worse than ``"list"``; provably optimal on blocks
small enough to brute-force), the search budget and its fallback, the
shared :mod:`repro.sched.validate` checker, cache coherence (backend
choice invalidates fingerprints, trace keys and ledger runs), the gap
report, and the ``--scheduler`` / ``repro gap`` CLI surface.
"""

from __future__ import annotations

import itertools
import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import api
from repro.__main__ import main as cli_main
from repro.benchmarks import suite
from repro.engine.cache import trace_key
from repro.engine.executor import execute
from repro.engine.plan import plan_sweep
from repro.errors import ScheduleBudgetError, SchedulingError
from repro.machine.presets import resolve
from repro.obs.history import HistoryLedger
from repro.obs.recorder import SCHEMA_VERSION, JsonlRecorder, read_jsonl
from repro.opt.driver import compile_source
from repro.opt.options import CompilerOptions
from repro.sched import registry
from repro.sched.dag import build_dag
from repro.sched.exact import ExactScheduler, ScheduleBudget, _Search
from repro.sched.listsched import _list_schedule
from repro.sched.validate import check_schedule, evaluate_order
from scripts.gen_golden_schedules import (
    OUTPUT as GOLDEN_PATH,
    golden_machines,
    schedule_digest,
)

BACKENDS = ("exact", "list", "swp")


@pytest.fixture(autouse=True)
def _fresh_suite():
    suite.clear_cache()
    yield
    suite.clear_cache()


def _blocks_with_dags(source: str, machine: str, min_instrs: int = 3):
    """Compile ``source`` scheduled for ``machine`` and yield
    ``(block, dag, config)`` for every schedulable block."""
    config = resolve(machine)
    program = compile_source(
        source, CompilerOptions(schedule_for=config))
    for fn in program.functions.values():
        for block in fn.blocks:
            if len(block.instrs) >= min_instrs:
                yield block, build_dag(block, config,
                                       home_bindings=fn.home_bindings), \
                    config


# Multiplications are by constants only: variable-times-variable
# products inside a loop explode into huge Python ints and stall the
# functional interpreter.
LOOPY = """
proc main(): int {
    var a, b, c, s, i: int;
    a = 3; b = 5; c = 7; s = 0; i = 0;
    while (i < 50) {
        a = b * 3 + c - a;
        b = c * 2 - b + 4;
        c = a + b - c * 2;
        s = s + a - b + c;
        i = i + 1;
    }
    return s;
}
"""


class TestRegistry:
    def test_bundled_backends_registered(self):
        assert tuple(registry.names()) == BACKENDS

    def test_get_returns_named_backend(self):
        for name in BACKENDS:
            assert registry.get(name).name == name

    def test_unknown_name_lists_registered(self):
        with pytest.raises(SchedulingError) as err:
            registry.get("bogus")
        msg = str(err.value)
        assert "bogus" in msg
        for name in BACKENDS:
            assert name in msg

    def test_descriptions_cover_every_backend(self):
        desc = registry.descriptions()
        assert sorted(desc) == sorted(registry.names())
        assert all(desc.values())

    def test_register_rejects_duplicates_and_anonymous(self):
        class Anon(ExactScheduler):
            name = ""

        with pytest.raises(ValueError, match="non-empty"):
            registry.register(Anon())

        class Dup(ExactScheduler):
            name = "list"

        with pytest.raises(ValueError, match="duplicate"):
            registry.register(Dup())

    def test_set_default_roundtrip(self):
        assert registry.get_default() == "list"
        previous = registry.set_default("exact")
        try:
            assert previous == "list"
            assert registry.get_default() == "exact"
            assert CompilerOptions().scheduler == "exact"
        finally:
            registry.set_default(previous)
        assert CompilerOptions().scheduler == "list"

    def test_set_default_validates(self):
        with pytest.raises(SchedulingError, match="bogus"):
            registry.set_default("bogus")
        assert registry.get_default() == "list"

    def test_options_validate_backend_name(self):
        with pytest.raises(ValueError, match="registered"):
            CompilerOptions(scheduler="bogus")

    def test_api_schedulers_lists_registry(self):
        assert api.schedulers() == registry.descriptions()

    def test_deprecated_shim_still_works(self):
        import importlib

        import repro.sched.list_scheduler as shim

        with pytest.warns(DeprecationWarning, match="deprecated"):
            importlib.reload(shim)
        from repro.sched import listsched

        assert shim.schedule_block is listsched.schedule_block


class TestGoldenBitIdentity:
    """The re-homed ``"list"`` backend must reproduce the pre-refactor
    scheduler bit for bit on the full 8-benchmark x 9-machine grid."""

    def test_list_backend_matches_golden_digests(self):
        with open(GOLDEN_PATH, encoding="utf-8") as handle:
            golden = json.load(handle)
        machines = {c.name: c for c in golden_machines()}
        benches = {b.name: b for b in suite.all_benchmarks()}
        assert len(golden) == len(machines) * len(benches) == 72
        mismatches = []
        for key, want in golden.items():
            bench_name, machine_name = key.split("@")
            got = schedule_digest(benches[bench_name],
                                  machines[machine_name],
                                  scheduler="list")
            if got != want:
                mismatches.append(key)
        assert not mismatches, (
            f"'list' diverged from the golden schedules on "
            f"{len(mismatches)} cells: {mismatches[:5]}"
        )


class TestBackendValidity:
    """Every backend's output passes the shared schedule checker."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("machine", ["superscalar:4",
                                         "superpipelined:4", "cray1"])
    def test_scheduled_blocks_check_out(self, backend, machine):
        config = resolve(machine)
        unscheduled = compile_source(
            LOOPY, CompilerOptions(schedule_for=config))
        scheduled = compile_source(
            LOOPY,
            CompilerOptions(schedule_for=config, scheduler=backend))
        for fn_u, fn_s in zip(unscheduled.functions.values(),
                              scheduled.functions.values()):
            for blk_u, blk_s in zip(fn_u.blocks, fn_s.blocks):
                # Recover the permutation the backend applied and
                # re-validate it against the pre-schedule DAG.
                dag = build_dag(blk_u, config,
                                home_bindings=fn_u.home_bindings)
                texts = [repr(i) for i in blk_u.instrs]
                order = []
                used = set()
                for ins in blk_s.instrs:
                    text = repr(ins)
                    for pos, t in enumerate(texts):
                        if t == text and pos not in used:
                            used.add(pos)
                            order.append(pos)
                            break
                check_schedule(blk_u.instrs, order, dag, config,
                               backend=backend)

    @pytest.mark.parametrize("machine", ["superscalar:4",
                                         "superpipelined:4"])
    def test_exact_never_worse_block_locally(self, machine):
        for block, dag, config in _blocks_with_dags(LOOPY, machine):
            incumbent = _list_schedule(block, dag, config,
                                       "critical-path")
            search = _Search(block, dag, config,
                             ScheduleBudget(max_nodes=4000))
            try:
                best = search.run(list(incumbent))
            except ScheduleBudgetError:
                best = search.best_order
            assert evaluate_order(block.instrs, best, dag, config) <= \
                evaluate_order(block.instrs, incumbent, dag, config)

    def test_exact_beats_list_end_to_end_on_superpipelined(self):
        # The grid's known nonzero gap: deep pipelines punish the
        # heuristic's zero-latency-edge padding.  Schedule *for* the
        # measured machine (the paper's methodology) or the backends
        # trivially tie.
        config = resolve("superpipelined:4")
        opts = suite.default_options(suite.get("whet"),
                                     schedule_for=config)
        slow = api.measure("whet", config, options=opts,
                           scheduler="list")
        fast = api.measure("whet", config, options=opts,
                           scheduler="exact")
        assert fast.minor_cycles < slow.minor_cycles

    def test_swp_matches_or_beats_list_on_loops(self):
        for machine in ("superscalar:4", "superpipelined:4"):
            config = resolve(machine)
            opts = suite.default_options(suite.get("linpack"),
                                         schedule_for=config)
            a = api.measure("linpack", config, options=opts,
                            scheduler="swp")
            b = api.measure("linpack", config, options=opts,
                            scheduler="list")
            assert a.minor_cycles <= b.minor_cycles


class TestExactOptimality:
    """Brute force over all topological orders == the search result."""

    @pytest.mark.parametrize("machine", ["superscalar:2",
                                         "superpipelined:4"])
    def test_search_finds_true_optimum_on_small_blocks(self, machine):
        source = """
proc main(): int {
    var a, b, c, d: int;
    a = 2; b = 3;
    c = a * b + a;
    d = c * c - b;
    a = d + c * 2;
    return a + d;
}
"""
        checked = 0
        for block, dag, config in _blocks_with_dags(source, machine):
            if dag.n > 8:
                continue
            best_brute = min(
                evaluate_order(block.instrs, list(order), dag, config)
                for order in itertools.permutations(range(dag.n))
                if all(
                    order.index(i) < order.index(s)
                    for i in range(dag.n) for s in dag.succs[i]
                )
            )
            incumbent = _list_schedule(block, dag, config,
                                       "critical-path")
            search = _Search(block, dag, config,
                             ScheduleBudget(max_nodes=20_000))
            found = search.run(list(incumbent))
            assert evaluate_order(block.instrs, found, dag, config) \
                == best_brute
            checked += 1
        assert checked > 0


class TestBudget:
    def test_search_raises_typed_budget_error(self):
        blocks = [b for b in
                  _blocks_with_dags(LOOPY, "superpipelined:4")
                  if b[1].n >= 8]
        assert blocks
        block, dag, config = blocks[0]
        incumbent = _list_schedule(block, dag, config, "critical-path")
        search = _Search(block, dag, config,
                         ScheduleBudget(max_nodes=2))
        with pytest.raises(ScheduleBudgetError) as err:
            search.run(list(incumbent))
        assert err.value.limit == "nodes"
        assert err.value.block == block.label
        assert "budget exceeded" in str(err.value)

    def test_budget_error_is_picklable(self):
        import pickle

        err = ScheduleBudgetError("main.entry", 42, "nodes")
        clone = pickle.loads(pickle.dumps(err))
        assert (clone.block, clone.nodes, clone.limit) == \
            ("main.entry", 42, "nodes")

    def test_backend_falls_back_on_exhaustion(self):
        config = resolve("superpipelined:4")
        backend = ExactScheduler(budget=ScheduleBudget(max_nodes=2))
        program = compile_source(
            LOOPY, CompilerOptions(schedule_for=config))
        before = backend.fallbacks
        for fn in program.functions.values():
            backend.schedule_function(fn, config)
        assert backend.fallbacks > before  # fell back, didn't crash

    def test_oversized_blocks_skip_search(self):
        config = resolve("superscalar:4")
        backend = ExactScheduler(
            budget=ScheduleBudget(max_block=0))
        program = compile_source(
            LOOPY, CompilerOptions(schedule_for=config))
        for fn in program.functions.values():
            backend.schedule_function(fn, config)
        assert backend.fallbacks > 0


class TestValidateChecker:
    def _one_block(self):
        return next(_blocks_with_dags(LOOPY, "superscalar:4",
                                      min_instrs=5))

    def test_rejects_non_permutation(self):
        block, dag, config = self._one_block()
        order = [0] * dag.n
        with pytest.raises(SchedulingError, match="permutation"):
            check_schedule(block.instrs, order, dag, config)

    def test_rejects_dependence_violation(self):
        block, dag, config = self._one_block()
        order = list(range(dag.n))[::-1]
        with pytest.raises(SchedulingError, match="dependence"):
            check_schedule(block.instrs, order, dag, config)

    def test_accepts_the_list_order(self):
        block, dag, config = self._one_block()
        order = _list_schedule(block, dag, config, "critical-path")
        check_schedule(block.instrs, order, dag, config)


class TestCacheCoherence:
    """Backend choice must flow into every cache and comparison key."""

    def test_fingerprints_differ_only_by_scheduler(self):
        prints = {
            CompilerOptions(scheduler=name).fingerprint()
            for name in BACKENDS
        }
        assert len(prints) == len(BACKENDS)

    def test_trace_keys_differ_by_scheduler(self):
        source = "proc main(): int { return 6 * 7; }"
        keys = {
            trace_key(source, CompilerOptions(scheduler=name))
            for name in BACKENDS
        }
        assert len(keys) == len(BACKENDS)

    def test_plan_cells_carry_scheduler(self):
        plan = plan_sweep(["whet"], [resolve("superscalar:4")],
                          scheduler="exact")
        assert all(c.options.scheduler == "exact" for c in plan.cells)
        groups_exact = plan.compile_groups()
        groups_list = plan_sweep(
            ["whet"], [resolve("superscalar:4")]).compile_groups()
        assert set(groups_exact) != set(groups_list)

    def test_cell_events_and_ledger_distinguish_backends(self, tmp_path):
        reports = {}
        for name in ("list", "exact"):
            path = tmp_path / f"report_{name}.jsonl"
            plan = plan_sweep(["whet"], [resolve("superpipelined:4")],
                              scheduler=name)
            with JsonlRecorder(str(path)) as rec:
                rec.emit("run_start", schema=SCHEMA_VERSION,
                         run_id=f"coherence:{name}")
                execute(plan, recorder=rec)
                rec.emit("run_end", seconds=0.0,
                         counters=dict(rec.counters))
            reports[name] = str(path)
            cells = [e for e in read_jsonl(path)
                     if e.get("event") == "cell"]
            assert cells and all(e["scheduler"] == name for e in cells)
        with HistoryLedger(str(tmp_path / "ledger.sqlite")) as ledger:
            first = ledger.ingest_report(reports["list"],
                                         source="list")
            second = ledger.ingest_report(reports["exact"],
                                          source="exact")
            assert first.created and second.created
            assert first.fingerprint != second.fingerprint

    def test_api_sweep_scheduler_override(self):
        plan = api.plan(["whet"], ["superscalar:4"])
        result = api.sweep(plan, scheduler="exact")
        assert result.ok
        assert all(r.status == "ok" for r in result.rows)


class TestGapReport:
    def test_compute_gap_small_grid(self):
        from repro.analysis.gap import compute_gap

        report = compute_gap(["whet"],
                             [resolve("superscalar:4"),
                              resolve("superpipelined:4")],
                             schedulers=("list", "exact"))
        assert report.ok
        assert len(report.cells) == 2
        by_machine = {c.machine: c for c in report.cells}
        assert by_machine["superpipelined-4"].gap() > 0
        assert by_machine["superscalar-4"].gap() == 0
        rendered = report.render()
        assert "heuristic optimal" in rendered
        payload = report.as_dict()
        assert payload["baseline"] == "list"
        assert len(payload["cells"]) == 2


TIN_OPS = ("+", "-", "*")


@st.composite
def tin_programs(draw):
    """Small random straight-line Tin programs (ints only, no division
    so every run is well-defined)."""
    names = [f"v{i}" for i in range(draw(st.integers(3, 5)))]
    lines = [f"var {', '.join(names)}: int;"]
    for name in names:
        lines.append(f"{name} = {draw(st.integers(1, 9))};")
    for _ in range(draw(st.integers(4, 12))):
        dst = draw(st.sampled_from(names))
        a = draw(st.sampled_from(names))
        b = draw(st.sampled_from(names))
        op = draw(st.sampled_from(TIN_OPS))
        lines.append(f"{dst} = {a} {op} {b};")
    body = "\n    ".join(lines)
    ret = " + ".join(names)
    return (f"proc main(): int {{\n    {body}\n"
            f"    return {ret};\n}}\n")


class TestDifferentialProperty:
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(source=tin_programs(),
           machine=st.sampled_from(["superscalar:2", "superscalar:4",
                                    "superpipelined:4"]))
    def test_backends_agree_on_meaning_and_exact_wins(self, source,
                                                      machine):
        config = resolve(machine)
        values = set()
        horizons = {}
        for name in BACKENDS:
            program = compile_source(
                source,
                CompilerOptions(schedule_for=config, scheduler=name))
            from repro.sim.interp import run

            values.add(run(program).value)
            total = 0
            for fn in program.functions.values():
                for block in fn.blocks:
                    dag = build_dag(block, config,
                                    home_bindings=fn.home_bindings)
                    total += evaluate_order(
                        block.instrs, list(range(dag.n)), dag, config)
            horizons[name] = total
        assert len(values) == 1  # scheduling never changes semantics
        assert horizons["exact"] <= horizons["list"]


class TestCli:
    def test_unknown_scheduler_exits_2(self, tmp_path, capsys):
        tin = tmp_path / "p.tin"
        tin.write_text("proc main(): int { return 1; }\n")
        assert cli_main(["measure", str(tin),
                         "--scheduler", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "bogus" in err and "registered" in err

    def test_measure_with_exact_backend(self, tmp_path):
        tin = tmp_path / "p.tin"
        tin.write_text(LOOPY)
        assert cli_main(["measure", str(tin),
                         "--scheduler", "exact"]) == 0
        assert registry.get_default() == "list"  # restored

    def test_gap_command_small_grid(self, capsys):
        assert cli_main(["gap", "--benchmarks", "whet",
                         "--machines", "superscalar:4",
                         "--schedulers", "list", "exact"]) == 0
        out = capsys.readouterr().out
        assert "heuristic optimal" in out

    def test_gap_unknown_backend_exits_2(self, capsys):
        assert cli_main(["gap", "--benchmarks", "whet",
                         "--machines", "base",
                         "--schedulers", "list", "bogus"]) == 2
        assert "bogus" in capsys.readouterr().err

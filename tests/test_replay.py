"""Tests for the block-memoized replay core (:mod:`repro.sim.replay`).

The central guarantee: memoized replay is *bit-identical* to forced
direct per-instruction replay — minor cycles, parallelism, full stall
breakdowns, and per-event issue schedules — on every machine shape
(ideal wide issue, superpipelined, branch-stall, functional-unit
conflicts).  Hypothesis drives that over random Tin programs; the rest
of the file pins the plan builder's invariants, the memo statistics
conservation law, and the blacklist fall-back.
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import HealthCheck, given, settings

from repro.benchmarks import suite
from repro.machine.presets import (
    ideal_superscalar,
    paper_machines,
    superscalar_with_class_conflicts,
)
from repro.opt.driver import compile_source
from repro.sim import replay as replay_mod
from repro.sim.interp import run as interp_run
from repro.sim.replay import ReplayCore, build_plan, plan_for
from repro.sim.timing import issue_schedule, simulate
from tests.test_fuzz_differential import _block, _program


def _edge_machines():
    """Machine shapes that stress every key component: the paper's
    seven, a branch-stall variant, and a unit-conflict variant."""
    machines = paper_machines()
    machines.append(replace(ideal_superscalar(2),
                            name="superscalar-2/br-stall",
                            branch_policy="stall"))
    machines.append(superscalar_with_class_conflicts(4))
    return machines


def _trace_for(source: str):
    program = compile_source(source, suite.default_options(suite.get("whet")))
    return interp_run(program).trace


def _assert_identical(trace, config):
    memo = simulate(trace, config, observe=True)
    direct = simulate(trace, config, observe=True, memoize=False)
    label = f"{config.name}"
    assert memo.minor_cycles == direct.minor_cycles, label
    assert memo.base_cycles == direct.base_cycles, label
    assert memo.parallelism == direct.parallelism, label
    assert memo.stalls == direct.stalls, label
    assert (issue_schedule(trace, config)
            == issue_schedule(trace, config, memoize=False)), label


class TestMemoizedEqualsDirect:
    """Bit-identity of the memoized path, randomized and pinned."""

    @settings(
        max_examples=25, deadline=None,
        suppress_health_check=[HealthCheck.too_slow,
                               HealthCheck.data_too_large],
    )
    @given(body=_block(2, 0))
    def test_random_programs_all_machines(self, body):
        trace = _trace_for(_program(body))
        for config in _edge_machines():
            _assert_identical(trace, config)

    @pytest.mark.parametrize("bench_name", ["whet", "livermore"])
    def test_real_benchmarks_all_machines(self, bench_name):
        bench = suite.get(bench_name)
        trace = suite.run_benchmark(
            bench, suite.default_options(bench)
        ).trace
        for config in _edge_machines():
            _assert_identical(trace, config)


class TestIssueSchedule:
    """The per-event schedule agrees with the cycle counts."""

    @pytest.mark.parametrize("bench_name", ["whet", "linpack"])
    def test_schedule_reconstructs_minor_cycles(self, bench_name):
        bench = suite.get(bench_name)
        trace = suite.run_benchmark(
            bench, suite.default_options(bench)
        ).trace
        for config in _edge_machines():
            times = issue_schedule(trace, config)
            timing = simulate(trace, config)
            assert len(times) == len(trace)
            assert all(a <= b for a, b in zip(times, times[1:])), \
                "in-order issue must yield non-decreasing issue times"
            completion = max(
                t + config.latencies[ins.op.klass]
                for t, ins in zip(times, trace.instructions())
            )
            assert completion == timing.minor_cycles


class TestPlan:
    def test_plan_is_deterministic(self):
        bench = suite.get("whet")
        trace = suite.run_benchmark(
            bench, suite.default_options(bench)
        ).trace
        a = build_plan(trace)
        b = build_plan(trace)
        assert a.schedule == b.schedule
        assert [blk.segments for blk in a.blocks] \
            == [blk.segments for blk in b.blocks]

    def test_plan_covers_trace_exactly(self):
        bench = suite.get("livermore")
        trace = suite.run_benchmark(
            bench, suite.default_options(bench)
        ).trace
        plan = plan_for(trace)
        blocks = plan.blocks
        assert sum(blocks[bid].n_instrs for bid in plan.schedule) \
            == len(trace)
        assert sum(blocks[bid].n_mem for bid in plan.schedule) \
            == len(trace.mem_addrs)
        # Flattening the scheduled segments reproduces the executed
        # static indices event for event.
        flat: list[int] = []
        for bid in plan.schedule:
            for start, length in blocks[bid].segments:
                flat.extend(range(start, start + length))
        assert flat == trace.ops

    def test_plan_is_cached_on_the_trace(self):
        bench = suite.get("whet")
        trace = suite.run_benchmark(
            bench, suite.default_options(bench)
        ).trace
        assert plan_for(trace) is plan_for(trace)


class TestReplayStats:
    def test_conservation_and_hits(self):
        bench = suite.get("whet")
        trace = suite.run_benchmark(
            bench, suite.default_options(bench)
        ).trace
        for config in _edge_machines():
            stats = simulate(trace, config).replay
            assert stats is not None
            assert stats.memo_instructions + stats.direct_instructions \
                == len(trace)
            assert stats.blocks == len(plan_for(trace).schedule)
            # Loop-dominated benchmark: the memo must carry most of it.
            assert stats.memo_instructions > len(trace) // 2

    def test_direct_mode_reports_no_memo_activity(self):
        bench = suite.get("whet")
        trace = suite.run_benchmark(
            bench, suite.default_options(bench)
        ).trace
        stats = simulate(trace, paper_machines()[0], memoize=False).replay
        assert stats.memo_hits == 0
        assert stats.memo_misses == 0
        assert stats.memo_instructions == 0
        assert stats.direct_instructions == len(trace)


class TestBlacklist:
    def test_blacklisted_blocks_stay_bit_identical(self, monkeypatch):
        """With an immediate blacklist every block falls back to direct
        replay after one miss — results must not change at all."""
        monkeypatch.setattr(replay_mod, "_BLACKLIST_MISSES", 1)
        bench = suite.get("whet")
        trace = suite.run_benchmark(
            bench, suite.default_options(bench)
        ).trace
        config = paper_machines()[2]
        memo = simulate(trace, config, observe=True)
        direct = simulate(trace, config, observe=True, memoize=False)
        assert memo.minor_cycles == direct.minor_cycles
        assert memo.stalls == direct.stalls
        # Every eligible block missed once and was then dropped.
        assert memo.replay.memo_hits == 0
        assert memo.replay.direct_instructions == len(trace)

    def test_blacklist_flag_is_set(self, monkeypatch):
        monkeypatch.setattr(replay_mod, "_BLACKLIST_MISSES", 1)
        bench = suite.get("whet")
        trace = suite.run_benchmark(
            bench, suite.default_options(bench)
        ).trace
        core = ReplayCore(trace, paper_machines()[0])
        core.run()
        assert any(core._blacklisted), \
            "an eligible block should have been blacklisted"

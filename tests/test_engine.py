"""Tests for the execution engine, its trace cache, and the public API.

Covers the guarantees the engine advertises: parallel execution is
bit-identical to serial, the on-disk trace cache hits on a second run
without recompiling and invalidates when the source or options change,
and the :mod:`repro.api` facade keeps a stable keyword-only surface.
"""

from __future__ import annotations

import inspect
import pickle

import pytest

import repro.api as api
from repro.benchmarks import suite
from repro.engine.cache import (
    NULL_TRACE_CACHE,
    TraceCache,
    open_cache,
    trace_key,
)
from repro.engine.executor import execute, prime_runs
from repro.engine.plan import plan_sweep
from repro.machine.presets import (
    ideal_superscalar,
    paper_machines,
    preset_names,
    resolve,
)
from repro.obs.recorder import EVENT_SCHEMA, Recorder
from repro.opt.options import CompilerOptions, OptLevel

#: A small grid that still exercises >1 compile group and >1 machine.
BENCHES = ["whet", "linpack"]
MACHINES = ["base", "superscalar:4"]


@pytest.fixture(autouse=True)
def _fresh_memo():
    """Isolate each test from the process-wide suite run memo."""
    suite.clear_cache()
    yield
    suite.clear_cache()


def _rows(workers, cache=None, observe=True):
    plan = plan_sweep(BENCHES, MACHINES, observe=observe)
    return execute(plan, workers=workers, cache=cache)


class TestMachineResolver:
    def test_fixed_presets(self):
        assert resolve("base").name == "base"
        assert resolve("multititan").name == "multititan-w1"
        assert resolve("cray1").name == "cray1-w1"

    def test_parametric_presets(self):
        assert resolve("superscalar:4").issue_width == 4
        assert resolve("ideal_superscalar:8").issue_width == 8
        assert resolve("superpipelined:4").superpipeline_degree == 4
        config = resolve("superpipelined-superscalar:3x2")
        assert (config.issue_width, config.superpipeline_degree) == (3, 2)

    def test_spelling_variants(self):
        for spec in ("SuperScalar:4", "superscalar-4", "superscalar_4",
                     " superscalar:4 "):
            assert resolve(spec).name == resolve("superscalar:4").name

    def test_config_passthrough(self):
        config = ideal_superscalar(4)
        assert resolve(config) is config

    def test_unknown_and_malformed(self):
        with pytest.raises(ValueError, match="known presets"):
            resolve("vliw")
        with pytest.raises(ValueError, match="needs a degree"):
            resolve("superscalar")
        with pytest.raises(ValueError, match="degrees N x M"):
            resolve("superpipelined-superscalar:3")

    def test_preset_names_resolve(self):
        for name in preset_names():
            spec = (name.replace(":N", ":4").replace("xM", "x2"))
            resolve(spec)

    def test_paper_machines(self):
        names = [c.name for c in paper_machines()]
        assert len(names) == 7
        assert names[0] == "base"


class TestFingerprints:
    def test_suite_memo_key_matches_fingerprint(self):
        # The coherence fix: the in-process memo and the disk cache must
        # key on the same option fields or they disagree about identity.
        options = CompilerOptions(opt_level=OptLevel(2), unroll=4)
        assert suite._options_key(options) == options.fingerprint()

    def test_machine_config_pickles(self):
        config = ideal_superscalar(4)
        clone = pickle.loads(pickle.dumps(config))
        assert clone.fingerprint() == config.fingerprint()
        assert dict(clone.latencies) == dict(config.latencies)

    def test_trace_key_sensitivity(self):
        options = CompilerOptions()
        key = trace_key("proc main(): int { return 1; }", options)
        assert key != trace_key("proc main(): int { return 2; }", options)
        assert key != trace_key(
            "proc main(): int { return 1; }",
            CompilerOptions(opt_level=OptLevel(2)),
        )
        # Scheduling target is part of compilation identity too.
        assert key != trace_key(
            "proc main(): int { return 1; }",
            CompilerOptions(schedule_for=resolve("cray1")),
        )

    def test_trace_key_is_stable(self):
        options = CompilerOptions()
        assert (trace_key("proc main(): int { return 1; }", options)
                == trace_key("proc main(): int { return 1; }", options))


class TestSerialParallelIdentical:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_bit_identical_rows_and_stalls(self, workers):
        serial = _rows(workers=1)
        suite.clear_cache()
        parallel = _rows(workers=workers)
        assert len(serial.cells) == len(parallel.cells) == 4
        for s, p in zip(serial.cells, parallel.cells):
            assert (s.benchmark, s.machine) == (p.benchmark, p.machine)
            assert s.instructions == p.instructions
            assert s.minor_cycles == p.minor_cycles
            assert s.base_cycles == p.base_cycles
            assert s.parallelism == p.parallelism
            assert s.checksum_ok and p.checksum_ok
            assert s.stalls.as_dict() == p.stalls.as_dict()

    def test_api_sweep_matches_engine(self):
        rows = api.sweep(api.plan(BENCHES, MACHINES)).rows
        cells = _rows(workers=1).cells
        assert [(r.benchmark, r.machine, r.parallelism) for r in rows] \
            == [(c.benchmark, c.machine, c.parallelism) for c in cells]

    def test_plan_order_is_preserved(self):
        result = _rows(workers=2, observe=False)
        expected = [(b, resolve(m).name) for b in BENCHES for m in MACHINES]
        assert [(c.benchmark, c.machine) for c in result.cells] == expected

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            _rows(workers=0)


class TestTraceCache:
    def test_round_trip(self, tmp_path):
        cache = TraceCache(str(tmp_path))
        bench = suite.get("whet")
        options = suite.default_options(bench)
        result = suite.run_benchmark(bench, options)
        key = trace_key(bench.source(), options)
        cache.store(key, result)
        loaded = cache.load(key)
        assert loaded is not None
        assert loaded.value == result.value
        assert loaded.instructions == result.instructions
        assert loaded.trace.ops == result.trace.ops
        assert cache.stats.as_dict() == {"gets": 1, "hits": 1,
                                         "misses": 0, "corrupt": 0,
                                         "stores": 1, "debris": 0}

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache = TraceCache(str(tmp_path))
        key = "ab" + "0" * 62
        path = cache.path_for(key)
        import os

        os.makedirs(os.path.dirname(path))
        with open(path, "wb") as handle:
            handle.write(b"not a pickle")
        assert cache.load(key) is None
        assert not os.path.exists(path)

    def test_second_run_hits_with_zero_recompiles(self, tmp_path):
        cache = TraceCache(str(tmp_path))
        first = _rows(workers=1, cache=cache, observe=False)
        assert first.report.cache_hits == 0
        assert first.report.cache_misses == 2  # one per compile group
        assert cache.stats.stores == 2

        # New process simulated: drop the in-process memo, keep the disk.
        suite.clear_cache()
        second_cache = TraceCache(str(tmp_path))
        second = _rows(workers=1, cache=second_cache, observe=False)
        assert second.report.cache_hits == 2
        assert second.report.cache_misses == 0
        assert second_cache.stats.stores == 0  # nothing was recompiled
        for a, b in zip(first.cells, second.cells):
            assert a.parallelism == b.parallelism
            assert a.instructions == b.instructions

    def test_parallel_run_populates_shared_cache(self, tmp_path):
        cache = TraceCache(str(tmp_path))
        _rows(workers=2, cache=cache, observe=False)
        suite.clear_cache()
        second = _rows(workers=2, cache=TraceCache(str(tmp_path)),
                       observe=False)
        assert second.report.cache_hits == 2
        assert second.report.cache_misses == 0

    def test_options_change_invalidates(self, tmp_path):
        cache = TraceCache(str(tmp_path))
        plan_a = plan_sweep(["whet"], ["base"])
        execute(plan_a, cache=cache)
        suite.clear_cache()
        plan_b = plan_sweep(
            ["whet"], ["base"],
            options=CompilerOptions(opt_level=OptLevel(1)),
            options_label="O1",
        )
        result = execute(plan_b, cache=TraceCache(str(tmp_path)))
        assert result.report.cache_hits == 0
        assert result.report.cache_misses == 1

    def test_null_cache(self):
        assert not NULL_TRACE_CACHE.enabled
        assert NULL_TRACE_CACHE.load("00" * 32) is None
        assert open_cache(None).enabled is False
        assert open_cache("somewhere", no_cache=True).enabled is False
        assert open_cache("somewhere").enabled is True


class TestPriming:
    def test_prime_seeds_the_memo(self, tmp_path):
        cache = TraceCache(str(tmp_path))
        options = suite.default_options(suite.get("whet"))
        report = prime_runs([("whet", options), ("whet", options)],
                            workers=1, cache=cache)
        assert report.groups == 1  # duplicates collapse
        assert suite.cached_run(suite.get("whet"), options) is not None

    def test_prime_parallel_ships_runs_back(self, tmp_path):
        options = suite.default_options(suite.get("whet"))
        jobs = [("whet", options),
                ("linpack", suite.default_options(suite.get("linpack")))]
        prime_runs(jobs, workers=2, cache=TraceCache(str(tmp_path)))
        for name, opts in jobs:
            assert suite.cached_run(suite.get(name), opts) is not None


class TestObservability:
    def test_cell_and_engine_events(self):
        rec = Recorder()
        plan = plan_sweep(["whet"], MACHINES, observe=True)
        execute(plan, recorder=rec)
        kinds = [event["event"] for event in rec.events]
        assert kinds.count("cell") == 2
        assert kinds.count("engine") == 1
        engine = [e for e in rec.events if e["event"] == "engine"][0]
        assert engine["cells"] == 2
        assert engine["workers"] == 1
        for field in EVENT_SCHEMA["engine"]:
            assert field in engine
        cell = [e for e in rec.events if e["event"] == "cell"][0]
        for field in EVENT_SCHEMA["cell"]:
            assert field in cell

    def test_parallel_events_match_serial(self):
        serial, parallel = Recorder(), Recorder()
        execute(plan_sweep(BENCHES, MACHINES), recorder=serial)
        suite.clear_cache()
        execute(plan_sweep(BENCHES, MACHINES), workers=2,
                recorder=parallel)

        def strip(events):
            return [
                {k: v for k, v in e.items() if k != "seconds"}
                for e in events if e["event"] == "cell"
            ]

        assert strip(serial.events) == strip(parallel.events)


class TestBenchmarkListParsing:
    def test_forms(self):
        parse = suite.parse_benchmark_list
        assert parse(None) is None
        assert parse([]) is None
        assert parse("whet") == ["whet"]
        assert parse("linpack,whet") == ["linpack", "whet"]
        assert parse(["linpack,whet", "yacc"]) == ["linpack", "whet",
                                                  "yacc"]
        assert parse(["linpack whet"]) == ["linpack", "whet"]

    def test_unknown_names(self):
        with pytest.raises(ValueError, match="dhrystone"):
            suite.parse_benchmark_list("dhrystone")


class TestApiSurface:
    """Snapshot of the facade: signature changes must be deliberate."""

    EXPECTED = {
        "compile": "(source: 'str', *, options: "
                   "'CompilerOptions | None' = None, profile=None, "
                   "scheduler: 'str | None' = None) -> 'Program'",
        "run": "(program: 'Program | str', *, options: "
               "'CompilerOptions | None' = None) -> 'RunResult'",
        "simulate": "(trace: 'Trace', machine: 'MachineConfig | str', "
                    "*, observe: 'bool' = False) -> 'TimingResult'",
        "measure": "(benchmark: 'Benchmark | str', machine: "
                   "'MachineConfig | str', *, options: "
                   "'CompilerOptions | None' = None, observe: 'bool' "
                   "= False, scheduler: 'str | None' = None) "
                   "-> 'TimingResult'",
        "plan": "(benchmarks, machines, *, options: "
                "'CompilerOptions | None' = None, options_label: 'str' "
                "= 'default', schedule_for_target: 'bool' = False, "
                "observe: 'bool' = False, scheduler: 'str | None' "
                "= None) -> 'Plan'",
        "sweep": "(plan: 'Plan', *, workers: 'int' = 1, cache_dir: "
                 "'str | None' = None, no_cache: 'bool' = False, "
                 "recorder: 'Recorder | None' = None, policy: "
                 "'RetryPolicy | None' = None, faults: "
                 "'FaultPlan | None' = None, tracer: "
                 "'Tracer | None' = None, metrics: "
                 "'MetricsRegistry | None' = None, progress=None, "
                 "scheduler: 'str | None' = None) -> 'SweepResult'",
        "schedulers": "() -> 'dict[str, str]'",
    }

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_signature(self, name):
        assert str(inspect.signature(getattr(api, name))) \
            == self.EXPECTED[name]

    def test_all_exports(self):
        for name in api.__all__:
            assert hasattr(api, name)
        # The facade is re-exported from the package root.
        import repro

        assert repro.measure is api.measure
        assert repro.sweep is api.sweep
        assert repro.simulate is api.simulate

    def test_measure_accepts_preset_names(self):
        timing = api.measure("whet", "superscalar:4")
        assert timing.config_name == "superscalar-4"
        assert timing.parallelism > 1.0


class TestApiBehavior:
    def test_run_source_text(self):
        result = api.run("proc main(): int { return 6 * 7; }")
        assert result.value == 42

    def test_simulate_trace(self):
        result = api.run("proc main(): int { return 6 * 7; }")
        timing = api.simulate(result.trace, "base")
        assert timing.instructions == result.instructions

    def test_sweep_result_summary(self):
        result = api.sweep(api.plan(["whet"], MACHINES))
        text = result.summary()
        assert "whet" in text
        assert "harmonic mean" in text
        assert result.engine.cells == 2


class TestCacheFormat:
    """The cache format tag and structural validation guard the v2
    trace layout: stale or corrupt entries are dropped and recompiled,
    never deserialized into garbage."""

    def test_format_tag_participates_in_the_key(self, monkeypatch):
        bench = suite.get("whet")
        options = suite.default_options(bench)
        current = trace_key(bench.source(), options)
        from repro.engine import cache as cache_mod

        monkeypatch.setattr(cache_mod, "_FORMAT", "trace-v1")
        stale = trace_key(bench.source(), options)
        assert stale != current, \
            "bumping the format tag must invalidate every old entry"

    def test_stale_format_entry_is_never_served(self, tmp_path,
                                                monkeypatch):
        """An entry written under an old format tag misses under the
        current one (its key differs), forcing a recompile."""
        from repro.engine import cache as cache_mod

        cache = TraceCache(str(tmp_path))
        bench = suite.get("whet")
        options = suite.default_options(bench)
        result = suite.run_benchmark(bench, options)
        with monkeypatch.context() as patch:
            patch.setattr(cache_mod, "_FORMAT", "trace-v1")
            cache.store(trace_key(bench.source(), options), result)
        assert cache.load(trace_key(bench.source(), options)) is None
        assert cache.stats.misses == 1

    def test_wrong_payload_type_is_dropped(self, tmp_path):
        import os

        cache = TraceCache(str(tmp_path))
        key = "cd" + "1" * 62
        path = cache.path_for(key)
        os.makedirs(os.path.dirname(path))
        with open(path, "wb") as handle:
            pickle.dump({"not": "a run result"}, handle)
        assert cache.load(key) is None
        assert not os.path.exists(path), \
            "a structurally invalid entry must be removed"

    def test_invalid_trace_payload_is_dropped(self, tmp_path):
        """A pickle that *is* a RunResult but whose trace violates the
        v2 invariants (as a stale layout would) is treated as corrupt."""
        import os

        cache = TraceCache(str(tmp_path))
        bench = suite.get("whet")
        options = suite.default_options(bench)
        result = suite.run_benchmark(bench, options)
        # Corrupt the run-length encoding: drop an address so the
        # mem-op count no longer matches the side array.
        result.trace.mem_addrs.pop()
        key = "ef" + "2" * 62
        cache.store(key, result)
        assert os.path.exists(cache.path_for(key))
        loaded = cache.load(key)
        assert loaded is None
        assert not os.path.exists(cache.path_for(key))
        assert cache.stats.misses == 0
        assert cache.stats.corrupt == 1
        assert cache.stats.gets == 1

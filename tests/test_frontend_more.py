"""Additional front-end edge cases and robustness properties."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ReproError, TinSemanticError, TinSyntaxError
from repro.lang import check, parse, tokenize
from repro.opt.options import CompilerOptions
from tests.helpers import run_tin_value


class TestLexerEdges:
    def test_trailing_dot_float(self):
        toks = tokenize("3. 4")
        assert toks[0].value == 3.0
        assert toks[1].value == 4

    def test_leading_dot_float(self):
        toks = tokenize("x .5")
        assert toks[1].value == 0.5

    def test_number_then_e_identifier(self):
        toks = tokenize("1e")  # not an exponent: int then ident
        assert toks[0].value == 1
        assert toks[1].text == "e"

    def test_comment_at_eof_without_newline(self):
        toks = tokenize("7 # trailing")
        assert toks[0].value == 7

    def test_exponent_with_sign(self):
        toks = tokenize("2e+3 2e-3")
        assert toks[0].value == 2000.0
        assert toks[1].value == 0.002


class TestSemanticsEdges:
    def test_initializer_length_mismatch(self):
        with pytest.raises(TinSemanticError):
            check(parse(
                "var t: int[3] = {1, 2};\nproc main(): int { return 0; }"
            ))

    def test_array_argument_must_be_a_name(self):
        with pytest.raises(TinSemanticError):
            check(parse(
                "var t: int[3];\n"
                "proc f(a: int[]): int { return a[0]; }\n"
                "proc main(): int { return f(t[0]); }"
            ))

    def test_local_shadows_global(self):
        src = (
            "var x: int = 5;\n"
            "proc main(): int { var x: int; x = 9; return x; }"
        )
        assert run_tin_value(src) == 9

    def test_local_shadows_const(self):
        src = (
            "const K = 5;\n"
            "proc main(): int { var K: int; K = 9; return K; }"
        )
        assert run_tin_value(src) == 9

    def test_global_initializer_visible(self):
        src = "var x: int = 5;\nproc main(): int { return x; }"
        assert run_tin_value(src) == 5
        # and with register promotion: the home register must be seeded
        assert run_tin_value(src, CompilerOptions()) == 5

    def test_duplicate_global(self):
        with pytest.raises(TinSemanticError):
            check(parse("var x: int;\nvar x: int;\n"
                        "proc main(): int { return 0; }"))

    def test_duplicate_proc(self):
        with pytest.raises(TinSemanticError):
            check(parse("proc f() { }\nproc f() { }\n"
                        "proc main(): int { return 0; }"))

    def test_param_shadowing_rejected_in_same_proc(self):
        with pytest.raises(TinSemanticError):
            check(parse("proc f(a: int, a: int) { }\n"
                        "proc main(): int { return 0; }"))


@settings(max_examples=150, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.text(
    alphabet=st.sampled_from(
        list("abcxyz0123456789 \n(){}[];:,+-*/%<>=!&|^#.\"'proc var int")
    ),
    max_size=80,
))
def test_parser_total_over_garbage(text):
    """The front end never dies with anything but a Tin error."""
    try:
        module = parse(text)
        check(module)
    except ReproError:
        pass  # TinSyntaxError / TinSemanticError are the contract


@settings(max_examples=60, deadline=None)
@given(st.integers(-(10 ** 9), 10 ** 9))
def test_integer_literals_round_trip(value):
    src = f"proc main(): int {{ return ({value}); }}"
    assert run_tin_value(src) == value


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.floats(min_value=-1e6, max_value=1e6,
                 allow_nan=False, allow_infinity=False))
def test_float_literals_round_trip(value):
    src = (
        f"var g: float;\n"
        f"proc main(): int {{ g = {value!r}; "
        f"return int(g * 0.0) + 7; }}"
    )
    assert run_tin_value(src) == 7

"""Unit tests for the Tin lexer, parser and semantic analyzer."""

import pytest

from repro.errors import TinSemanticError, TinSyntaxError
from repro.lang import ast, check, parse, tokenize
from repro.lang.tokens import TokKind


class TestLexer:
    def test_numbers(self):
        toks = tokenize("42 3.5 1e3 2.5e-2 7")
        kinds = [t.kind for t in toks[:-1]]
        assert kinds == [TokKind.INT, TokKind.FLOAT, TokKind.FLOAT,
                         TokKind.FLOAT, TokKind.INT]
        assert toks[0].value == 42
        assert toks[1].value == 3.5
        assert toks[2].value == 1000.0

    def test_keywords_vs_identifiers(self):
        toks = tokenize("var variable if iffy")
        assert toks[0].kind is TokKind.KEYWORD
        assert toks[1].kind is TokKind.IDENT
        assert toks[2].kind is TokKind.KEYWORD
        assert toks[3].kind is TokKind.IDENT

    def test_multichar_symbols(self):
        toks = tokenize("<= >= == != << >> && || < >")
        texts = [t.text for t in toks[:-1]]
        assert texts == ["<=", ">=", "==", "!=", "<<", ">>", "&&", "||",
                         "<", ">"]

    def test_comments_are_skipped(self):
        toks = tokenize("1 # a comment with var if 3.5\n2")
        assert [t.value for t in toks[:-1]] == [1, 2]

    def test_positions(self):
        toks = tokenize("a\n  b")
        assert (toks[0].line, toks[0].column) == (1, 1)
        assert (toks[1].line, toks[1].column) == (2, 3)

    def test_bad_character(self):
        with pytest.raises(TinSyntaxError):
            tokenize("a $ b")

    def test_eof_token(self):
        assert tokenize("")[-1].kind is TokKind.EOF


class TestParser:
    def test_precedence(self):
        mod = parse("proc main(): int { return 1 + 2 * 3; }")
        ret = mod.procs[0].body[0]
        assert isinstance(ret, ast.Return)
        top = ret.value
        assert isinstance(top, ast.BinOp) and top.op == "+"
        assert isinstance(top.right, ast.BinOp) and top.right.op == "*"

    def test_parentheses(self):
        mod = parse("proc main(): int { return (1 + 2) * 3; }")
        top = mod.procs[0].body[0].value
        assert top.op == "*"
        assert top.left.op == "+"

    def test_left_associativity(self):
        mod = parse("proc main(): int { return 10 - 3 - 2; }")
        top = mod.procs[0].body[0].value
        assert top.op == "-"
        assert isinstance(top.left, ast.BinOp) and top.left.op == "-"

    def test_unary_operators(self):
        mod = parse("proc main(): int { return -x + !y; }")
        top = mod.procs[0].body[0].value
        assert isinstance(top.left, ast.UnOp) and top.left.op == "-"
        assert isinstance(top.right, ast.UnOp) and top.right.op == "!"

    def test_for_loop_with_step(self):
        mod = parse(
            "proc main(): int { var i: int;"
            " for i = 10 to 0 by -2 { } return 0; }"
        )
        loop = mod.procs[0].body[1]
        assert isinstance(loop, ast.For)
        assert loop.step == -2

    def test_for_rejects_zero_step(self):
        with pytest.raises(TinSyntaxError):
            parse("proc main(): int { var i: int;"
                  " for i = 0 to 5 by 0 { } return 0; }")

    def test_else_if_chain(self):
        mod = parse(
            "proc f(x: int): int {"
            " if (x > 0) { return 1; } else if (x < 0) { return -1; }"
            " else { return 0; } }"
        )
        node = mod.procs[0].body[0]
        assert isinstance(node, ast.If)
        assert isinstance(node.els[0], ast.If)

    def test_globals_with_initializers(self):
        mod = parse("var a: int = 5;\nvar t: int[3] = {1, 2, 3};\n"
                    "proc main(): int { return a; }")
        assert mod.globals_[0].init == [5]
        assert mod.globals_[1].init == [1, 2, 3]

    def test_const_decl(self):
        mod = parse("const K = -7;\nproc main(): int { return K; }")
        assert mod.consts[0].value == -7

    def test_array_param(self):
        mod = parse("proc f(a: float[], n: int) { }"
                    "proc main(): int { return 0; }")
        param = mod.procs[0].params[0]
        assert param.size == -1 and param.ty == "float"

    def test_cast_syntax(self):
        mod = parse("proc main(): int { return int(1.5) + int(float(2)); }")
        top = mod.procs[0].body[0].value
        assert isinstance(top.left, ast.Cast) and top.left.to == "int"

    def test_syntax_error_has_position(self):
        with pytest.raises(TinSyntaxError) as err:
            parse("proc main(): int { return 1 +; }")
        assert err.value.line >= 1

    def test_missing_semicolon(self):
        with pytest.raises(TinSyntaxError):
            parse("proc main(): int { return 1 }")


def check_src(src: str):
    return check(parse(src))


class TestSemantics:
    def test_types_annotated(self):
        mod = parse("proc main(): int { var x: float; x = 1.5; return 0; }")
        check(mod)
        assign = mod.procs[0].body[1]
        assert assign.value.ty == ast.FLOAT

    def test_implicit_int_to_float_inserts_cast(self):
        mod = parse("proc main(): int { var x: float; x = 1; return 0; }")
        check(mod)
        assign = mod.procs[0].body[1]
        assert isinstance(assign.value, ast.Cast)
        assert assign.value.to == ast.FLOAT

    def test_mixed_arithmetic_promotes(self):
        mod = parse(
            "proc main(): int { var x: float; x = 1 + 2.5; return 0; }"
        )
        check(mod)
        assign = mod.procs[0].body[1]
        assert assign.value.ty == ast.FLOAT

    def test_float_to_int_requires_cast(self):
        with pytest.raises(TinSemanticError):
            check_src("proc main(): int { var x: int; x = 1.5; return 0; }")

    def test_undeclared_variable(self):
        with pytest.raises(TinSemanticError):
            check_src("proc main(): int { return nope; }")

    def test_undeclared_procedure(self):
        with pytest.raises(TinSemanticError):
            check_src("proc main(): int { return ghost(); }")

    def test_const_substitution(self):
        mod = parse("const K = 3;\nproc main(): int { return K; }")
        check(mod)
        value = mod.procs[0].body[0].value
        assert isinstance(value, ast.IntLit) and value.value == 3

    def test_array_used_without_index(self):
        with pytest.raises(TinSemanticError):
            check_src("var a: int[4];\nproc main(): int { return a; }")

    def test_scalar_indexed(self):
        with pytest.raises(TinSemanticError):
            check_src("var a: int;\nproc main(): int { return a[0]; }")

    def test_condition_must_be_int(self):
        with pytest.raises(TinSemanticError):
            check_src("proc main(): int { if (1.5) { } return 0; }")

    def test_int_only_ops_reject_floats(self):
        with pytest.raises(TinSemanticError):
            check_src("proc main(): int { return int(1.5 % 2.0); }")

    def test_missing_return(self):
        with pytest.raises(TinSemanticError):
            check_src("proc main(): int { var x: int; x = 1; }")

    def test_if_else_return_coverage(self):
        check_src(
            "proc main(): int { if (1) { return 1; } else { return 2; } }"
        )

    def test_arg_count_mismatch(self):
        with pytest.raises(TinSemanticError):
            check_src("proc f(a: int): int { return a; }"
                      "proc main(): int { return f(1, 2); }")

    def test_array_argument_type_checked(self):
        with pytest.raises(TinSemanticError):
            check_src(
                "var a: int[4];\n"
                "proc f(x: float[]): int { return 0; }\n"
                "proc main(): int { return f(a); }"
            )

    def test_void_call_as_value(self):
        with pytest.raises(TinSemanticError):
            check_src("proc f() { }\nproc main(): int { return f(); }")

    def test_duplicate_local(self):
        with pytest.raises(TinSemanticError):
            check_src("proc main(): int { var x: int; var x: int;"
                      " return 0; }")

    def test_for_variable_must_be_int_scalar(self):
        with pytest.raises(TinSemanticError):
            check_src("proc main(): int { var f: float;"
                      " for f = 0 to 3 { } return 0; }")

    def test_return_value_from_void(self):
        with pytest.raises(TinSemanticError):
            check_src("proc f() { return 1; }\nproc main(): int { return 0; }")

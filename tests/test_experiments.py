"""Integration tests for the experiment drivers.

Each test asserts the *shape* the paper reports — who wins, rough
factors, where curves flatten — not absolute numbers.
"""

import pytest

from repro.analysis import experiments as E


class TestAnalyticExhibits:
    def test_fig1_1_parallelism(self):
        ex = E.fig1_1()
        assert ex.data["(a) independent"] == pytest.approx(3.0)
        assert ex.data["(b) dependent"] == pytest.approx(1.0)

    def test_fig2_diagrams_ordering(self):
        ex = E.fig2_diagrams()
        cycles = ex.data
        base = cycles["Figure 2-1 base machine"]
        assert cycles["Figure 2-2 underpipelined: cycle > operation"] == 2 * base
        assert cycles["Figure 2-4 superscalar (n=3)"] < base
        assert cycles["Figure 2-6 superpipelined (m=3)"] < base
        # superpipelined trails equal-degree superscalar (startup transient)
        assert (
            cycles["Figure 2-6 superpipelined (m=3)"]
            > cycles["Figure 2-4 superscalar (n=3)"]
        )

    def test_fig4_2_startup_values(self):
        ex = E.fig4_2()
        assert ex.data["superscalar"] == pytest.approx(2.0)
        assert ex.data["superpipelined"] == pytest.approx(8 / 3)

    def test_fig4_3_markers(self):
        ex = E.fig4_3()
        assert ex.data["multititan"] == pytest.approx(1.7)
        assert ex.data["cray1"] == pytest.approx(4.4)

    def test_fig4_7_values(self):
        ex = E.fig4_7()
        values = sorted(ex.data.values())
        assert values == pytest.approx([4 / 3, 1.5, 5 / 3])

    def test_table5_1_values(self):
        ex = E.table5_1()
        assert ex.data["VAX 11/780"] == pytest.approx(0.6)
        assert ex.data["future superscalar"] == pytest.approx(140.0)


class TestMeasuredExhibits:
    def test_table2_1(self):
        ex = E.table2_1()
        assert ex.data[("MultiTitan", "paper static mix")] == pytest.approx(1.7)
        assert ex.data[("CRAY-1", "paper static mix")] == pytest.approx(4.4)
        # the measured mix lands in the same ballpark
        measured = ex.data[("CRAY-1", "measured dynamic mix")]
        assert 2.0 < measured < 7.0

    def test_fig4_1_supersymmetry(self):
        ex = E.fig4_1(degrees=(1, 2, 4))
        ss = dict(ex.data["superscalar"])
        sp = dict(ex.data["superpipelined"])
        assert ss[1] == pytest.approx(1.0, abs=0.01)
        # superpipelined trails superscalar of equal degree, modestly
        for degree in (2, 4):
            assert sp[degree] < ss[degree]
            assert (ss[degree] - sp[degree]) / ss[degree] < 0.25
        # both flatten: degree 2 -> 4 gains less than 1 -> 2
        assert ss[4] - ss[2] < ss[2] - ss[1]

    def test_fig4_4_cray(self):
        ex = E.fig4_4(widths=(1, 2, 4))
        unit = dict(ex.data["unit"])
        real = dict(ex.data["real"])
        # unit latencies suggest big speedups; real latencies almost none
        assert unit[4] > 1.5
        assert real[4] < 1.25
        assert unit[4] > real[4] + 0.3

    def test_fig4_5_bands(self):
        ex = E.fig4_5(widths=(1, 2, 4, 8))
        finals = {name: pts[-1][1] for name, pts in ex.data.items()}
        # linpack/livermore on top, the non-numeric cluster low
        top = max(finals, key=finals.get)
        assert top in ("linpack", "livermore")
        assert finals[top] / min(finals.values()) > 1.3
        assert all(1.3 < v < 4.0 for v in finals.values())

    def test_fig4_6_careful_beats_naive(self):
        ex = E.fig4_6(factors=(1, 4))
        data = ex.data
        for bench in ("linpack", "livermore"):
            careful = dict(data[f"{bench}.careful"])
            naive = dict(data[f"{bench}.naive"])
            assert careful[4] > naive[4]
            assert careful[4] > careful[1] * 1.05

    def test_fig4_8_scheduling_helps_most(self):
        ex = E.fig4_8()
        for name, points in ex.data.items():
            by_level = dict(points)
            # pipeline scheduling (level 1) improves on unscheduled code
            assert by_level[1] >= by_level[0] * 0.99
        # scheduling gain is visible on at least half the suite
        gains = [
            dict(points)[1] / dict(points)[0] for points in ex.data.values()
        ]
        assert sum(1 for g in gains if g > 1.02) >= 4

    def test_sec5_1_misses_dilute_speedup(self):
        ex = E.sec5_1()
        without, with_misses = ex.data["example"]
        assert without == pytest.approx(2.0)
        assert with_misses == pytest.approx(4 / 3)
        measured_nc, measured_c = ex.data["measured"]
        assert measured_c < measured_nc

    def test_run_all_produces_every_exhibit(self):
        # identifiers only; running everything is covered above and in
        # the benchmark harness
        assert len(E.ALL_EXHIBITS) == 13

"""Tests for the CLI (python -m repro) and the compile-pipeline driver."""

import pytest

from repro.__main__ import main as cli_main
from repro.opt.driver import compile_module, compile_source
from repro.opt.options import AliasLevel, CompilerOptions, OptLevel
from repro.lang import parse
from repro.sim.interp import run

SRC = """
var total: int;
proc main(): int {
    var i: int;
    total = 0;
    for i = 1 to 6 { total = total + i * i; }
    return total;
}
"""


@pytest.fixture()
def tin_file(tmp_path):
    path = tmp_path / "demo.tin"
    path.write_text(SRC, encoding="utf-8")
    return str(path)


class TestCLI:
    def test_run_command(self, tin_file, capsys):
        assert cli_main(["run", tin_file]) == 0
        out = capsys.readouterr().out
        assert "result: 91" in out

    def test_run_command_opt_levels(self, tin_file, capsys):
        for level in ("0", "4"):
            assert cli_main(["run", tin_file, "-O", level]) == 0
            assert "result: 91" in capsys.readouterr().out

    def test_measure_command(self, tin_file, capsys):
        assert cli_main(["measure", tin_file, "--unroll", "2"]) == 0
        out = capsys.readouterr().out
        assert "superscalar-4" in out and "base" in out

    def test_exhibit_list(self, capsys):
        assert cli_main(["exhibit", "list"]) == 0
        out = capsys.readouterr().out
        assert "fig4-1" in out and "table5-1" in out

    def test_exhibit_unknown(self, capsys):
        assert cli_main(["exhibit", "nope"]) == 2

    def test_exhibit_runs_analytic_one(self, capsys):
        assert cli_main(["exhibit", "fig4-7"]) == 0
        out = capsys.readouterr().out
        assert "1.667" in out


class TestReportFormats:
    """``repro report --format json|markdown``."""

    def _report(self, tmp_path, fmt):
        return cli_main([
            "report", "--benchmarks", "whet", "--machines", "base",
            "-o", str(tmp_path / "run.jsonl"), "--format", fmt,
        ])

    def test_json_stdout_is_one_parseable_document(self, tmp_path,
                                                   capsys):
        import json

        assert self._report(tmp_path, "json") == 0
        captured = capsys.readouterr()
        doc = json.loads(captured.out)
        assert doc["run_id"] and doc["conservation_holds"] is True
        entry = doc["benchmarks"][0]
        assert entry["benchmark"] == "whet"
        assert any(t["machine"] == "base" for t in entry["timings"])
        # The status line must not corrupt the JSON stream.
        assert "JSONL report written" in captured.err

    def test_markdown_renders_tables(self, tmp_path, capsys):
        assert self._report(tmp_path, "markdown") == 0
        out = capsys.readouterr().out
        assert "| " in out and " --- " in out.replace("|---", "| --- ")
        assert "whet" in out and "base" in out

    def test_text_remains_the_default(self, tmp_path, capsys):
        assert self._report(tmp_path, "text") == 0
        out = capsys.readouterr().out
        assert "| " not in out.splitlines()[0]
        assert "whet" in out


class TestDriver:
    def test_opt_level_ordering_monotone_instruction_count(self):
        counts = []
        for level in OptLevel:
            program = compile_source(
                SRC, CompilerOptions(opt_level=level)
            )
            counts.append(run(program).instructions)
        # optimization levels never increase the dynamic instruction
        # count on this straight-line-ish program
        assert counts[0] >= counts[2] >= counts[4]

    def test_compile_module_consumes_fresh_ast(self):
        module = parse(SRC)
        program = compile_module(module, CompilerOptions(unroll=2))
        assert run(program).value == 91

    def test_default_options_schedule_for_superscalar8(self):
        opts = CompilerOptions()
        assert opts.schedule_for.issue_width == 8
        assert opts.do_schedule and opts.do_regalloc

    def test_alias_level_defaults(self):
        assert CompilerOptions().alias_level is AliasLevel.CONSERVATIVE
        assert CompilerOptions(careful=True).alias_level is AliasLevel.AFFINE
        explicit = CompilerOptions(alias=AliasLevel.OBJECT)
        assert explicit.alias_level is AliasLevel.OBJECT

    def test_rejects_bad_unroll(self):
        with pytest.raises(ValueError):
            CompilerOptions(unroll=0)

    def test_all_levels_produce_valid_programs(self):
        for level in OptLevel:
            program = compile_source(SRC, CompilerOptions(opt_level=level))
            program.validate()

    def test_deterministic_compilation(self):
        from repro.isa import format_program

        a = format_program(compile_source(SRC, CompilerOptions()))
        b = format_program(compile_source(SRC, CompilerOptions()))
        assert a == b

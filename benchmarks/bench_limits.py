"""Extension benches: the model assumptions the paper cites but holds
fixed — branch prediction, run-time reordering, instruction caching."""

from repro.analysis.stats import harmonic_mean
from repro.analysis.tables import format_table
from repro.benchmarks import suite
from repro.isa.registers import RegisterFileSpec
from repro.machine import ideal_superscalar
from repro.opt.options import CompilerOptions
from repro.sim.cache import CacheConfig, simulate_with_icache
from repro.sim.limits import dataflow_limit, simulate_out_of_order
from repro.sim.timing import simulate


def _save(results_dir, name: str, text: str) -> None:
    (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


def test_branch_prediction_assumption(benchmark, results_dir):
    """Perfect prediction (the paper's model) vs stalling on branches
    (Riseman & Foster's inhibition)."""

    def run():
        cfg = ideal_superscalar(8)
        rows = []
        perfect, stalled = [], []
        for bench in suite.all_benchmarks():
            trace = suite.run_benchmark(bench).trace
            p = simulate(trace, cfg).parallelism
            s = simulate(trace, cfg.with_branch_policy("stall")).parallelism
            perfect.append(p)
            stalled.append(s)
            rows.append([bench.name, p, s, (p - s) / p * 100.0])
        rows.append(["harmonic mean", harmonic_mean(perfect),
                     harmonic_mean(stalled), 0.0])
        return (harmonic_mean(perfect), harmonic_mean(stalled)), format_table(
            ["benchmark", "perfect prediction", "branch stall", "loss %"],
            rows,
        )

    (p, s), table = benchmark.pedantic(run, rounds=1, iterations=1)
    _save(results_dir, "limits_branch_prediction", table)
    assert s < p


def test_out_of_order_window(benchmark, results_dir):
    """In-order + compile-time scheduling vs run-time reordering with
    renaming and perfect memory disambiguation (cf. Wall 1991)."""

    def run():
        cfg = ideal_superscalar(8)
        rows = []
        values = {}
        traces = {
            b.name: suite.run_benchmark(b).trace
            for b in suite.all_benchmarks()
        }
        inorder = harmonic_mean(
            simulate(t, cfg).parallelism for t in traces.values()
        )
        rows.append(["in-order + scheduling", inorder])
        values["inorder"] = inorder
        for window in (4, 16, 64):
            mean = harmonic_mean(
                simulate_out_of_order(t, cfg, window).parallelism
                for t in traces.values()
            )
            rows.append([f"out-of-order, window {window}", mean])
            values[window] = mean
        oracle = harmonic_mean(
            dataflow_limit(t).parallelism for t in traces.values()
        )
        rows.append(["dataflow limit (oracle)", oracle])
        values["oracle"] = oracle
        return values, format_table(
            ["issue model", "harmonic-mean ILP (8-wide)"], rows
        )

    values, table = benchmark.pedantic(run, rounds=1, iterations=1)
    _save(results_dir, "limits_out_of_order", table)
    assert values[4] <= values[16] <= values[64]
    assert values[64] > values["inorder"]
    assert values["oracle"] >= values[64]


def test_icache_vs_unrolling(benchmark, results_dir):
    """Section 4.4's caveat: limited instruction caches make large
    unrolling degrees decline."""

    def run():
        cache = CacheConfig(size_words=256, line_words=4, miss_penalty=20)
        cfg = ideal_superscalar(8)
        rows = []
        values = {}
        for factor in (1, 2, 4, 10):
            opts = CompilerOptions(
                unroll=factor, careful=True,
                regfile=RegisterFileSpec(n_temp=40, n_home=26),
            )
            result = suite.run_benchmark(suite.get("linpack"), opts)
            ideal = simulate(result.trace, cfg).parallelism
            cached = simulate_with_icache(result.trace, cfg, cache)
            real = result.instructions / cached.timing.base_cycles
            values[factor] = (ideal, real, cached.miss_rate)
            rows.append([factor, ideal, real, cached.miss_rate * 100.0])
        return values, format_table(
            ["unroll", "ILP (no icache)", "ILP (256w icache)",
             "fetch miss %"], rows,
        )

    values, table = benchmark.pedantic(run, rounds=1, iterations=1)
    _save(results_dir, "limits_icache_unrolling", table)
    # the icache gap widens as the code grows
    gap1 = values[1][0] - values[1][1]
    gap10 = values[10][0] - values[10][1]
    assert gap10 > gap1

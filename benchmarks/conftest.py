"""Benchmark harness configuration.

Each benchmark target regenerates one table or figure of the paper via
``repro.analysis.experiments`` and stores the rendered exhibit under
``results/``.  Exhibits are measured with a single round: the interesting
output is the reproduced data, not the harness's own wall-clock noise.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def run_exhibit(benchmark, results_dir, factory, **kwargs):
    """Run one exhibit under pytest-benchmark and persist its rendering."""
    exhibit = benchmark.pedantic(
        lambda: factory(**kwargs), rounds=1, iterations=1
    )
    path = results_dir / f"{exhibit.ident.replace('.', '_')}.txt"
    path.write_text(str(exhibit) + "\n", encoding="utf-8")
    return exhibit

"""Regenerate Figure 4-3: parallelism required for full utilization."""

import pytest

from repro.analysis import experiments as E

from conftest import run_exhibit


def test_fig4_3(benchmark, results_dir):
    ex = run_exhibit(benchmark, results_dir, E.fig4_3)
    assert ex.data["multititan"] == pytest.approx(1.7)
    assert ex.data["cray1"] == pytest.approx(4.4)

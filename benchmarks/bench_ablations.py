"""Ablation benches for the design choices DESIGN.md calls out.

These go beyond the paper's exhibits: each isolates one mechanism of the
system (temporary-register pressure, class conflicts, alias precision,
latency realism on the MultiTitan) and shows its effect on measured ILP.
"""

import pytest

from repro.analysis.stats import harmonic_mean
from repro.analysis.tables import format_table
from repro.benchmarks import suite
from repro.isa.registers import RegisterFileSpec
from repro.machine import (
    ideal_superscalar,
    multititan,
    superscalar_with_class_conflicts,
)
from repro.opt.options import AliasLevel, CompilerOptions
from repro.sim.timing import simulate


def _save(results_dir, name: str, text: str) -> None:
    (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


def test_temporary_register_pressure(benchmark, results_dir):
    """Paper, Section 4.4: "we have only forty temporary registers
    available, which limits the amount of parallelism we can exploit"."""

    def run():
        rows = []
        values = {}
        for n_temp in (6, 16, 40):
            opts = CompilerOptions(
                unroll=10, careful=True,
                regfile=RegisterFileSpec(n_temp=n_temp, n_home=26),
            )
            res = suite.run_benchmark("linpack", opts)
            ilp = simulate(res.trace, ideal_superscalar(64)).parallelism
            values[n_temp] = ilp
            rows.append([n_temp, ilp])
        return values, format_table(["temporaries", "parallelism"], rows)

    values, table = benchmark.pedantic(run, rounds=1, iterations=1)
    _save(results_dir, "ablation_temp_pressure", table)
    assert values[40] > values[6]


def test_class_conflicts(benchmark, results_dir):
    """Section 2.3.2: not duplicating the memory unit creates class
    conflicts that shrink superscalar gains."""

    def run():
        rows = []
        values = {}
        for n_mem in (1, 2, 4):
            cfg = superscalar_with_class_conflicts(4, n_mem_units=n_mem)
            vals = [
                simulate(suite.run_benchmark(b).trace, cfg).parallelism
                for b in suite.all_benchmarks()
            ]
            values[n_mem] = harmonic_mean(vals)
            rows.append([n_mem, values[n_mem]])
        ideal = harmonic_mean([
            simulate(suite.run_benchmark(b).trace,
                     ideal_superscalar(4)).parallelism
            for b in suite.all_benchmarks()
        ])
        rows.append(["ideal", ideal])
        values["ideal"] = ideal
        return values, format_table(
            ["memory units (of 4-wide)", "harmonic-mean ILP"], rows
        )

    values, table = benchmark.pedantic(run, rounds=1, iterations=1)
    _save(results_dir, "ablation_class_conflicts", table)
    assert values[1] < values[4] <= values["ideal"] + 1e-9


def test_alias_precision(benchmark, results_dir):
    """Scheduler alias analysis: conservative vs object vs affine."""

    def run():
        rows = []
        values = {}
        for level in AliasLevel:
            opts = CompilerOptions(unroll=4, careful=True, alias=level)
            res = suite.run_benchmark("linpack", opts)
            ilp = simulate(res.trace, ideal_superscalar(64)).parallelism
            values[level] = ilp
            rows.append([level.name.lower(), ilp])
        return values, format_table(["alias level", "parallelism"], rows)

    values, table = benchmark.pedantic(run, rounds=1, iterations=1)
    _save(results_dir, "ablation_alias_precision", table)
    assert values[AliasLevel.AFFINE] > values[AliasLevel.CONSERVATIVE]


def test_multititan_latency_realism(benchmark, results_dir):
    """Fig 4-4 generalized: the slightly superpipelined MultiTitan gains
    more from parallel issue than the CRAY-1, but less than the unit-
    latency fiction suggests."""

    def run():
        rows = []
        values = {}
        for label, factory in (
            ("unit", lambda w: multititan(w).with_unit_latencies()),
            ("real", multititan),
        ):
            base = None
            for width in (1, 2, 4):
                cfg = factory(width)
                vals = []
                for b in suite.all_benchmarks():
                    run_ = suite.run_benchmark(
                        b, suite.default_options(b, schedule_for=cfg)
                    )
                    vals.append(simulate(run_.trace, cfg).parallelism)
                mean = harmonic_mean(vals)
                if base is None:
                    base = mean
                values[(label, width)] = mean / base
                rows.append([label, width, mean / base])
        return values, format_table(
            ["latencies", "issue width", "speedup vs single issue"], rows
        )

    values, table = benchmark.pedantic(run, rounds=1, iterations=1)
    _save(results_dir, "ablation_multititan_latency", table)
    assert values[("unit", 4)] > values[("real", 4)]
    # the MultiTitan (degree 1.7) still benefits somewhat, unlike the
    # CRAY-1 (degree 4.4)
    assert values[("real", 4)] > 1.1


def test_scheduler_heuristic(benchmark, results_dir):
    """List-scheduling priority function: critical path vs source order,
    on the latency-heavy CRAY-1 where priorities matter most."""

    def run():
        from repro.machine import cray1

        cfg = cray1()
        rows = []
        values = {}
        for heuristic in ("source-order", "critical-path"):
            vals = []
            for b in suite.all_benchmarks():
                opts = suite.default_options(
                    b, schedule_for=cfg, sched_heuristic=heuristic
                )
                res = suite.run_benchmark(b, opts)
                vals.append(simulate(res.trace, cfg).parallelism)
            values[heuristic] = harmonic_mean(vals)
            rows.append([heuristic, values[heuristic]])
        return values, format_table(
            ["heuristic", "harmonic-mean instr/cycle (CRAY-1)"], rows
        )

    values, table = benchmark.pedantic(run, rounds=1, iterations=1)
    _save(results_dir, "ablation_sched_heuristic", table)
    assert values["critical-path"] >= values["source-order"] - 1e-9


def test_block_length_structure(benchmark, results_dir):
    """Why the ceiling is ~2: dynamic basic blocks are short."""

    def run():
        from repro.analysis.blockstats import block_stats
        from repro.machine import ideal_superscalar

        rows = []
        data = {}
        for b in suite.all_benchmarks():
            res = suite.run_benchmark(b)
            stats = block_stats(res.trace)
            ilp = simulate(res.trace, ideal_superscalar(64)).parallelism
            data[b.name] = (stats.mean_block_length, ilp)
            rows.append([
                b.name, stats.mean_block_length,
                stats.branch_frequency * 100.0, ilp,
            ])
        return data, format_table(
            ["benchmark", "mean dyn. block length", "branch %",
             "available ILP"], rows,
        )

    data, table = benchmark.pedantic(run, rounds=1, iterations=1)
    _save(results_dir, "ablation_block_length", table)
    assert all(2.0 < length < 14.0 for length, _ in data.values())

"""Regenerate Figure 4-8: effect of optimization level on parallelism."""

from repro.analysis import experiments as E

from conftest import run_exhibit


def test_fig4_8(benchmark, results_dir):
    ex = run_exhibit(benchmark, results_dir, E.fig4_8)
    # pipeline scheduling is the one optimization that reliably raises
    # the available parallelism
    gains = [dict(p)[1] / dict(p)[0] for p in ex.data.values()]
    assert sum(1 for g in gains if g > 1.02) >= 4
    assert all(g > 0.95 for g in gains)

"""Regenerate Figure 4-7: optimization vs expression-graph parallelism."""

import pytest

from repro.analysis import experiments as E

from conftest import run_exhibit


def test_fig4_7(benchmark, results_dir):
    ex = run_exhibit(benchmark, results_dir, E.fig4_7)
    assert sorted(ex.data.values()) == pytest.approx([4 / 3, 1.5, 5 / 3])

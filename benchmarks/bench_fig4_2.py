"""Regenerate Figure 4-2: start-up in superscalar vs superpipelined."""

import pytest

from repro.analysis import experiments as E

from conftest import run_exhibit


def test_fig4_2(benchmark, results_dir):
    ex = run_exhibit(benchmark, results_dir, E.fig4_2)
    assert ex.data["superscalar"] == pytest.approx(2.0)
    assert ex.data["superpipelined"] == pytest.approx(8 / 3)

"""Regenerate Figure 4-1: supersymmetry (superscalar vs superpipelined)."""

from repro.analysis import experiments as E

from conftest import run_exhibit


def test_fig4_1(benchmark, results_dir):
    ex = run_exhibit(benchmark, results_dir, E.fig4_1)
    ss = dict(ex.data["superscalar"])
    sp = dict(ex.data["superpipelined"])
    for degree in range(2, 9):
        assert sp[degree] < ss[degree]          # startup transient
        assert (ss[degree] - sp[degree]) / ss[degree] < 0.25

"""Regenerate Table 2-1: average degree of superpipelining."""

import pytest

from repro.analysis import experiments as E

from conftest import run_exhibit


def test_table2_1(benchmark, results_dir):
    ex = run_exhibit(benchmark, results_dir, E.table2_1)
    assert ex.data[("MultiTitan", "paper static mix")] == pytest.approx(1.7)
    assert ex.data[("CRAY-1", "paper static mix")] == pytest.approx(4.4)

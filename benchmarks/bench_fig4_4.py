"""Regenerate Figure 4-4: CRAY-1 issue with unit vs real latencies."""

from repro.analysis import experiments as E

from conftest import run_exhibit


def test_fig4_4(benchmark, results_dir):
    ex = run_exhibit(benchmark, results_dir, E.fig4_4)
    unit = dict(ex.data["unit"])
    real = dict(ex.data["real"])
    # unit latencies mispredict large speedups; real latencies give
    # almost none (the paper's point about ignoring latency)
    assert unit[8] > 1.8
    assert real[8] < 1.3

"""Regenerate Figure 1-1: parallelism of two code fragments."""

from repro.analysis import experiments as E

from conftest import run_exhibit


def test_fig1_1(benchmark, results_dir):
    ex = run_exhibit(benchmark, results_dir, E.fig1_1)
    assert ex.data["(a) independent"] == 3.0
    assert ex.data["(b) dependent"] == 1.0

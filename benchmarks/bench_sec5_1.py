"""Regenerate the Section 5.1 cache-dilution example (plus measured)."""

import pytest

from repro.analysis import experiments as E

from conftest import run_exhibit


def test_sec5_1(benchmark, results_dir):
    ex = run_exhibit(benchmark, results_dir, E.sec5_1)
    without, with_misses = ex.data["example"]
    assert without == pytest.approx(2.0)
    assert with_misses == pytest.approx(4 / 3)
    measured_nc, measured_c = ex.data["measured"]
    assert measured_c < measured_nc

"""Regenerate Figure 4-6: parallelism vs loop unrolling."""

from repro.analysis import experiments as E

from conftest import run_exhibit


def test_fig4_6(benchmark, results_dir):
    ex = run_exhibit(benchmark, results_dir, E.fig4_6)
    for bench in ("linpack", "livermore"):
        careful = dict(ex.data[f"{bench}.careful"])
        naive = dict(ex.data[f"{bench}.naive"])
        # careful unrolling wins; naive flattens
        assert careful[4] > naive[4]
        assert careful[10] > naive[10]
        assert abs(naive[10] - naive[4]) < 0.4

"""Regenerate Table 5-1: the cost of cache misses."""

import pytest

from repro.analysis import experiments as E

from conftest import run_exhibit


def test_table5_1(benchmark, results_dir):
    ex = run_exhibit(benchmark, results_dir, E.table5_1)
    assert ex.data["VAX 11/780"] == pytest.approx(0.6)
    assert ex.data["WRL Titan"] == pytest.approx(8.571, abs=1e-2)
    assert ex.data["future superscalar"] == pytest.approx(140.0)

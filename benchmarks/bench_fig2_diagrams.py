"""Regenerate Figures 2-1..2-7: machine-taxonomy pipeline diagrams."""

from repro.analysis import experiments as E

from conftest import run_exhibit


def test_fig2_diagrams(benchmark, results_dir):
    ex = run_exhibit(benchmark, results_dir, E.fig2_diagrams)
    base = ex.data["Figure 2-1 base machine"]
    assert ex.data["Figure 2-4 superscalar (n=3)"] < base
    assert ex.data["Figure 2-2 underpipelined: cycle > operation"] == 2 * base

"""Regenerate Figure 4-5: instruction-level parallelism by benchmark."""

from repro.analysis import experiments as E

from conftest import run_exhibit


def test_fig4_5(benchmark, results_dir):
    ex = run_exhibit(benchmark, results_dir, E.fig4_5)
    finals = {name: pts[-1][1] for name, pts in ex.data.items()}
    assert max(finals, key=finals.get) in ("linpack", "livermore")
    assert all(1.3 < v < 4.0 for v in finals.values())
    # the paper's factor-of-two spread under a low ceiling
    assert 1.3 < max(finals.values()) / min(finals.values()) < 2.5

"""repro: a reproduction of Jouppi & Wall (ASPLOS 1989),
"Available Instruction-Level Parallelism for Superscalar and
Superpipelined Machines".

The package rebuilds the paper's measurement apparatus end to end:

* :mod:`repro.lang` — the Tin mini-language and its compiler front end;
* :mod:`repro.opt` — classical local/global optimization, loop unrolling,
  and register allocation (temporaries + home registers);
* :mod:`repro.sched` — the pipeline instruction scheduler;
* :mod:`repro.machine` — parameterizable machine descriptions
  (superscalar degree n, superpipelining degree m, functional units);
* :mod:`repro.sim` — functional interpreter and in-order timing model;
* :mod:`repro.benchmarks` — the eight-benchmark suite;
* :mod:`repro.analysis` — drivers that regenerate every table and figure.

Scripts should use the stable facade :mod:`repro.api`
(re-exported here), which covers compile/run/simulate/measure/sweep
without touching internal modules.

Quickstart::

    import repro.api as api

    result = api.run("proc main(): int { return 6 * 7; }")
    assert result.value == 42
    timing = api.measure("linpack", "superscalar:4")
"""

from __future__ import annotations

__version__ = "1.0.0"

from . import errors, isa, lang, machine, sim
from .sim.interp import RunResult

# The facade imports repro.engine, which reads __version__ above, so
# this import must stay below the version definition.
from . import api
from .api import measure, simulate, sweep


def compile_source(source: str, options=None):
    """Compile Tin source text into a :class:`repro.isa.Program`.

    ``options`` is a :class:`repro.opt.CompilerOptions`; ``None`` compiles
    at the default optimization level.  Defined here as the package's
    front door; the heavy lifting lives in :mod:`repro.opt.driver`.
    """
    from .opt.driver import compile_source as _compile

    return _compile(source, options)


def compile_and_run(source: str, options=None, **run_kwargs) -> RunResult:
    """Compile and functionally execute Tin source; returns the run result."""
    from .sim.interp import run

    return run(compile_source(source, options), **run_kwargs)


__all__ = [
    "RunResult",
    "__version__",
    "api",
    "compile_and_run",
    "compile_source",
    "errors",
    "isa",
    "lang",
    "machine",
    "measure",
    "sim",
    "simulate",
    "sweep",
]

"""Standard flow definitions: sweep, suite report, and exhibit priming.

These rebuild the repo's existing drivers as declarative
:class:`~repro.flow.dag.FlowDag`\\ s so they inherit checkpointing and
crash-resume from :func:`~repro.flow.engine.run_flow`:

* **sweep** — one ``sweep.compile`` node per compile group, one
  ``sweep.cell`` node per plan cell (depending on its group's compile),
  and a local ``sweep.rows`` aggregate.  Each cell node produces the
  same :class:`~repro.engine.executor.CellResult` the classic executor
  yields, so sweep rows, events, and reports are bit-identical between
  the flow and non-flow paths (modulo wall-clock fields).
* **report** — one ``report.observe`` node per benchmark, returning the
  picklable :class:`~repro.obs.report.BenchmarkReport` the parent
  re-emits in suite order.
* **prime** — compile nodes only; the parent re-seeds the in-process
  run memo from the now-warm disk cache.

Node fingerprints reuse the repo's existing content identities —
:func:`~repro.engine.cache.trace_key` for compilations,
:meth:`~repro.machine.config.MachineConfig.fingerprint` for machines —
so editing one benchmark's source or one machine preset invalidates
exactly the downstream DAG slice and nothing else.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Any, Callable

from ..benchmarks import suite
from ..engine.cache import TraceCache, trace_key
from ..engine.executor import CellResult, EngineReport, EngineResult, _prime_one
from ..engine.faults import FaultPlan
from ..engine.plan import Plan
from ..engine.resilience import CELL_STATUSES, RetryPolicy
from ..obs.recorder import Recorder, active_recorder
from ..obs.trace import Tracer
from ..sim.memo import open_memo_store
from ..sim.replay import BACKEND
from ..sim.timing import simulate
from .dag import FlowDag, FlowError, FlowNode
from .engine import FlowResult, FlowRunner, run_flow


@dataclass(slots=True)
class FlowContext:
    """Everything a driver needs to route execution through a flow.

    Threaded through ``sweep(..., flow=...)``,
    ``build_suite_report(..., flow=...)`` and friends so flow options
    don't sprawl across every driver signature.  ``kill_action``
    replaces the genuine SIGKILL for in-process tests.
    """

    cache: TraceCache
    run_id: str | None = None
    flow_spec: dict | None = None
    policy: RetryPolicy | None = None
    faults: FaultPlan | None = None
    kill_action: Callable[[str, int], None] | None = None
    #: filled in by the driver after the run (for CLI/journal reporting)
    result: FlowResult | None = None


# ---------------------------------------------------------------------------
# Node runner functions (module-level: they travel in pool payloads)
# ---------------------------------------------------------------------------


def _compile_node(name: str, payload: tuple, deps: dict) -> dict:
    """Compile one group's benchmark into the shared disk cache.

    Returns a small summary; the trace itself stays in the
    :class:`~repro.engine.cache.TraceCache`, content-addressed by the
    same key as this node's fingerprint, so dependent cell nodes load
    it without the checkpoint store ever holding a trace twice.
    """
    benchmark, options, cache_root = payload
    cache = TraceCache(cache_root)
    result, cached = _prime_one(benchmark, options, cache)
    bench = suite.get(benchmark)
    checksum_ok = abs(result.value - bench.reference()) <= bench.fp_tolerance
    return {
        "key": trace_key(bench.source(), options),
        "instructions": result.instructions,
        "checksum_ok": checksum_ok,
        "cached": cached,
    }


def _validate_compile(value: Any) -> str | None:
    if not isinstance(value, dict):
        return "compile checkpoint is not a dict"
    for field_name in ("key", "instructions", "checksum_ok"):
        if field_name not in value:
            return f"compile checkpoint missing {field_name!r}"
    return None


def _cell_node(name: str, payload: tuple, deps: dict) -> CellResult:
    """Measure one (benchmark, options, machine) cell.

    The trace comes from the disk cache the compile dependency warmed;
    the timing simulation consults the persistent replay-memo store
    exactly like :func:`~repro.engine.executor._run_group` does.
    """
    benchmark, options, machine, label, observe, cache_root = payload
    cache = TraceCache(cache_root)
    start = time.perf_counter()
    result, cached = _prime_one(benchmark, options, cache)
    compile_seconds = time.perf_counter() - start
    bench = suite.get(benchmark)
    checksum_ok = abs(result.value - bench.reference()) <= bench.fp_tolerance
    memo = open_memo_store(cache)
    t0 = time.perf_counter()
    timing = simulate(result.trace, machine, observe=observe, memo=memo)
    return CellResult(
        benchmark=benchmark,
        options_label=label,
        machine=machine.name,
        instructions=result.instructions,
        checksum_ok=checksum_ok,
        minor_cycles=timing.minor_cycles,
        base_cycles=timing.base_cycles,
        parallelism=timing.parallelism,
        stalls=timing.stalls,
        seconds=time.perf_counter() - t0,
        compile_seconds=compile_seconds,
        compile_cached=cached,
        replay=(timing.replay.as_dict()
                if timing.replay is not None else None),
    )


def _validate_cell(value: Any) -> str | None:
    if not isinstance(value, CellResult):
        return "cell checkpoint is not a CellResult"
    if value.status not in CELL_STATUSES:
        return f"cell checkpoint has unknown status {value.status!r}"
    if value.instructions < 0 or value.minor_cycles < 0:
        return "cell checkpoint has negative counters"
    return None


def _failed_cell(node_name: str, benchmark: str, machine: str,
                 label: str, message: str) -> CellResult:
    """Placeholder for a cell whose node failed or was skipped —
    mirrors :func:`~repro.engine.executor._failed_group_cells`."""
    return CellResult(
        benchmark=benchmark,
        options_label=label,
        machine=machine,
        instructions=0,
        checksum_ok=False,
        minor_cycles=0,
        base_cycles=0.0,
        parallelism=0.0,
        stalls=None,
        seconds=0.0,
        compile_seconds=0.0,
        compile_cached=False,
        replay=None,
        status="failed",
        attempts=1,
        error={"kind": "flow", "message": message,
               "benchmark": benchmark, "node": node_name},
    )


def _rows_node(name: str, payload: list, deps: dict) -> list[CellResult]:
    """Assemble cell results in plan order, placeholding failed nodes."""
    rows: list[CellResult] = []
    for node_name, benchmark, machine, label in payload:
        cell = deps.get(node_name)
        if isinstance(cell, CellResult):
            rows.append(cell)
        else:
            rows.append(_failed_cell(
                node_name, benchmark, machine, label,
                f"flow node {node_name} did not complete",
            ))
    return rows


def _validate_rows(value: Any) -> str | None:
    if not isinstance(value, list) \
            or not all(isinstance(c, CellResult) for c in value):
        return "rows checkpoint is not a list of CellResults"
    if any(c.status == "failed" for c in value):
        # An aggregate embedding failures must recompute: the failed
        # cells were never checkpointed, so a resume may succeed where
        # the original run did not.
        return "rows checkpoint embeds failed cells"
    return None


def _observe_node(name: str, payload: tuple, deps: dict):
    """Observe one benchmark with full profiling (report flow)."""
    from ..obs.report import observe_benchmark

    bench_name, machines = payload
    return observe_benchmark(bench_name, machines)


def _validate_observe(value: Any) -> str | None:
    from ..obs.report import BenchmarkReport

    if not isinstance(value, BenchmarkReport):
        return "observe checkpoint is not a BenchmarkReport"
    if not value.timings:
        return "observe checkpoint has no timings"
    return None


SWEEP_RUNNERS: dict[str, FlowRunner] = {
    "sweep.compile": FlowRunner("sweep.compile", _compile_node,
                                validate=_validate_compile),
    "sweep.cell": FlowRunner("sweep.cell", _cell_node,
                             validate=_validate_cell),
    "sweep.rows": FlowRunner("sweep.rows", _rows_node,
                             validate=_validate_rows,
                             local=True, allow_failed=True),
}

REPORT_RUNNERS: dict[str, FlowRunner] = {
    "report.observe": FlowRunner("report.observe", _observe_node,
                                 validate=_validate_observe),
}

PRIME_RUNNERS: dict[str, FlowRunner] = {
    "sweep.compile": SWEEP_RUNNERS["sweep.compile"],
}


# ---------------------------------------------------------------------------
# DAG builders
# ---------------------------------------------------------------------------


def sweep_flow(plan: Plan, cache_root: str) -> FlowDag:
    """The DAG equivalent of executing ``plan``: compiles, cells, rows."""
    dag = FlowDag()
    compile_for_index: dict[int, str] = {}
    for gi, indices in enumerate(plan.compile_groups().values()):
        cell0 = plan.cells[indices[0]]
        bench = suite.get(cell0.benchmark)
        node = dag.add(FlowNode(
            name=f"compile:{cell0.benchmark}/g{gi}",
            kind="sweep.compile",
            fingerprint=trace_key(bench.source(), cell0.options),
            payload=(cell0.benchmark, cell0.options, cache_root),
        ))
        for i in indices:
            compile_for_index[i] = node.name
    rows_payload: list[tuple[str, str, str, str]] = []
    for i, cell in enumerate(plan.cells):
        name = f"cell:{i:03d}:{cell.benchmark}@{cell.machine.name}"
        dag.add(FlowNode(
            name=name,
            kind="sweep.cell",
            fingerprint=json.dumps(
                [repr(cell.machine.fingerprint()), plan.observe,
                 cell.options_label],
                separators=(",", ":"),
            ),
            deps=(compile_for_index[i],),
            payload=(cell.benchmark, cell.options, cell.machine,
                     cell.options_label, plan.observe, cache_root),
        ))
        rows_payload.append((name, cell.benchmark, cell.machine.name,
                             cell.options_label))
    dag.add(FlowNode(
        name="rows",
        kind="sweep.rows",
        fingerprint=json.dumps(
            [[b, m, label] for _, b, m, label in rows_payload],
            separators=(",", ":"),
        ),
        deps=tuple(n for n, _, _, _ in rows_payload),
        payload=rows_payload,
    ))
    return dag


def report_flow(benchmarks: list[str], machines: list,
                cache_root: str) -> FlowDag:
    """One ``report.observe`` node per benchmark."""
    dag = FlowDag()
    for name in benchmarks:
        bench = suite.get(name)
        opts = suite.default_options(bench)
        dag.add(FlowNode(
            name=f"observe:{name}",
            kind="report.observe",
            fingerprint=json.dumps(
                [trace_key(bench.source(), opts),
                 [repr(m.fingerprint()) for m in machines]],
                separators=(",", ":"),
            ),
            payload=(name, list(machines)),
        ))
    return dag


def prime_flow(jobs: list[tuple], cache_root: str) -> FlowDag:
    """Compile-only DAG warming the disk cache for a set of jobs."""
    dag = FlowDag()
    seen: set[tuple] = set()
    gi = 0
    for benchmark, options in jobs:
        key = (benchmark, options.fingerprint())
        if key in seen:
            continue
        seen.add(key)
        bench = suite.get(benchmark)
        dag.add(FlowNode(
            name=f"compile:{benchmark}/g{gi}",
            kind="sweep.compile",
            fingerprint=trace_key(bench.source(), options),
            payload=(benchmark, options, cache_root),
        ))
        gi += 1
    return dag


# ---------------------------------------------------------------------------
# Drivers
# ---------------------------------------------------------------------------


def _require_cache(flow: FlowContext) -> TraceCache:
    cache = flow.cache
    if cache is None or not cache.enabled:
        raise FlowError(
            "flow execution requires an enabled trace cache "
            "(pass --cache-dir, or drop --no-cache)"
        )
    return cache


def run_sweep_flow(
    plan: Plan,
    *,
    flow: FlowContext,
    workers: int = 1,
    recorder: Recorder | None = None,
    tracer: Tracer | None = None,
) -> EngineResult:
    """Execute ``plan`` as a checkpointed flow.

    Returns an :class:`~repro.engine.executor.EngineResult` shaped
    exactly like :func:`~repro.engine.executor.execute`'s, with the
    same ``cell``/``engine`` recorder events plus one ``flow`` summary
    event; ``flow.result`` is filled with the run's
    :class:`~repro.flow.engine.FlowResult`.
    """
    cache = _require_cache(flow)
    rec = active_recorder(recorder)
    dag = sweep_flow(plan, cache.root)
    fr = run_flow(
        dag, SWEEP_RUNNERS,
        root=cache.root,
        flow_kind="sweep",
        flow_spec=flow.flow_spec,
        run_id=flow.run_id,
        workers=workers,
        policy=flow.policy,
        faults=flow.faults,
        tracer=tracer,
        kill_action=flow.kill_action,
    )
    flow.result = fr

    rows = fr.values.get("rows")
    if rows is None:
        # The aggregate itself failed: assemble in the parent so the
        # sweep still returns plan-shaped results.
        payload = dag.nodes["rows"].payload
        rows = _rows_node("rows", payload,
                          {n: fr.values.get(n) for n, _, _, _ in payload})

    compile_values = [fr.values[n.name] for n in dag.nodes.values()
                      if n.kind == "sweep.compile"
                      and n.name in fr.values]
    hits = sum(1 for v in compile_values if v.get("cached"))
    groups = sum(1 for n in dag.nodes.values()
                 if n.kind == "sweep.compile")
    report = EngineReport(
        workers=workers,
        cells=len(rows),
        groups=groups,
        cache_hits=hits,
        cache_misses=len(compile_values) - hits,
        seconds=fr.seconds,
        compile_seconds=sum(c.compile_seconds for c in rows),
        sim_seconds=sum(c.seconds for c in rows),
        ok_cells=sum(1 for c in rows if c.status == "ok"),
        retried_cells=sum(1 for c in rows if c.status == "retried"),
        degraded_cells=sum(1 for c in rows if c.status == "degraded"),
        failed_cells=sum(1 for c in rows if c.status == "failed"),
    )
    report.replay_backend = BACKEND
    for c in rows:
        if c.replay:
            report.memo_hits += c.replay.get("memo_hits", 0)
            report.memo_misses += c.replay.get("memo_misses", 0)
            report.memo_fallbacks += c.replay.get("fallbacks", 0)
            report.memo_instructions += c.replay.get(
                "memo_instructions", 0)
            report.direct_instructions += c.replay.get(
                "direct_instructions", 0)
            report.vectorized_blocks += c.replay.get(
                "vectorized_blocks", 0)
            report.scalar_fallback_blocks += c.replay.get(
                "scalar_fallback_blocks", 0)
            report.memo_persisted_hits += c.replay.get(
                "memo_persisted_hits", 0)

    if rec.enabled:
        for plan_cell, c in zip(plan.cells, rows):
            event = {
                "benchmark": c.benchmark,
                "machine": c.machine,
                "options": c.options_label,
                "scheduler": plan_cell.options.scheduler,
                "seconds": c.seconds,
                "cached": c.compile_cached,
                "status": c.status,
                "attempts": c.attempts,
                "instructions": c.instructions,
                "minor_cycles": c.minor_cycles,
                "base_cycles": c.base_cycles,
                "parallelism": c.parallelism,
            }
            if c.stalls is not None:
                event["stalls"] = c.stalls.as_dict()
            if c.replay is not None:
                event["replay"] = c.replay
            if c.error is not None:
                event["error"] = c.error
            if c.history:
                event["history"] = list(c.history)
            rec.emit("cell", **event)
            rec.incr("engine.cells")
        rec.emit("engine", **report.as_dict())
        rec.emit("flow", **flow_event(fr))

    return EngineResult(cells=rows, report=report)


def flow_event(fr: FlowResult) -> dict:
    """The ``flow`` recorder-event payload for one flow result."""
    return {
        "run_id": fr.run_id,
        "dag_signature": fr.dag_signature,
        "nodes": len(fr.statuses),
        "executed": len(fr.executed),
        "restored": len(fr.restored),
        "failed": len(fr.failed),
        "seconds": fr.seconds,
    }

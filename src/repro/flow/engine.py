"""Topological flow execution over the resilient engine substrate.

:func:`run_flow` executes a :class:`~repro.flow.dag.FlowDag` in
deterministic waves: every node whose dependencies have settled is
*restored* from its content-addressed checkpoint when one verifies, and
otherwise dispatched — through the existing supervised pool
(:func:`repro.engine.resilience.run_supervised`) or its serial twin —
so flow nodes inherit the whole retry/backoff/degradation ladder that
PR 5 built for sweep cells.  Aggregation nodes (``FlowRunner.local``)
run inline in the parent, after their inputs settle.

Durability contract, per completed node, in order:

1. the checkpoint is written to the state store (atomic, fsynced);
2. ``node_done`` is appended to the run journal (fsynced);
3. a matching ``kill`` fault (if any) fires — SIGKILL, no unwinding.

A crash between (1) and (2) loses only the journal line; the
checkpoint still restores on resume.  A ``torn-write`` fault truncates
the checkpoint *after* (1), modelling a crash mid-write: the journal
then over-claims, and resume's validation drops the torn entry and
recomputes the node.  Either way a resumed run's values are
bit-identical to an uninterrupted run's.

Node completion **ordinals** (1-based, executed nodes only, in wave
order) are the deterministic sites ``kill@N`` / ``torn-write@N`` fault
specs address; restored nodes never fire faults, so a resumed run
cannot re-kill itself at the boundary that killed its predecessor.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from ..engine.faults import NO_FAULTS, FaultPlan
from ..engine.resilience import (
    RetryPolicy,
    SupervisionStats,
    run_group_serial,
    run_supervised,
)
from ..obs.trace import NULL_TRACER, Tracer
from .dag import FlowDag, FlowError
from .state import (
    JOURNAL_VERSION,
    FlowStateStore,
    Journal,
    JournalError,
    journal_path,
    new_run_id,
    read_journal,
    state_dir,
)

#: Terminal node statuses a run assigns.
NODE_STATUSES = ("executed", "restored", "failed", "skipped")


@dataclass(frozen=True, slots=True)
class FlowRunner:
    """How one node *kind* executes.

    ``func(name, payload, deps) -> value`` does the work; it must be a
    module-level (picklable) callable when the flow may run with
    ``workers > 1``.  ``validate(value) -> str | None`` guards both
    fresh results and restored checkpoints — a message fails/recomputes
    the node.  ``local`` runs the node inline in the parent (aggregates
    over sibling values); ``allow_failed`` passes failed/skipped
    dependencies through as ``None`` instead of skipping the node.
    """

    kind: str
    func: Callable[[str, Any, dict], Any]
    validate: Callable[[Any], str | None] | None = None
    local: bool = False
    allow_failed: bool = False


@dataclass(slots=True)
class FlowResult:
    """Everything one flow run produced."""

    run_id: str
    dag_signature: str
    values: dict[str, Any] = field(default_factory=dict)
    statuses: dict[str, str] = field(default_factory=dict)
    executed: list[str] = field(default_factory=list)
    restored: list[str] = field(default_factory=list)
    failed: dict[str, str] = field(default_factory=dict)
    journal_path: str = ""
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failed

    def summary(self) -> str:
        text = (
            f"flow {self.run_id}: {len(self.executed)} executed / "
            f"{len(self.restored)} restored"
        )
        if self.failed:
            text += f" / {len(self.failed)} FAILED"
        return text + f" of {len(self.statuses)} nodes"


def _flow_node_task(payload: tuple):
    """Pool entry point: run one flow node's function.

    The runner function travels inside the payload (picklable by
    qualified name), so workers need no registry.
    """
    func, name, node_payload, deps, _attempt = payload
    value = func(name, node_payload, deps)
    return ([(0, value)], False)


def _validate_node_payload(payload, expected_indices: set[int]) -> str | None:
    """Structural check for a flow node's group payload.

    Unlike :func:`~repro.engine.resilience.validate_group_payload` this
    accepts arbitrary node values — value-level validation is the
    runner's job, applied in the parent.
    """
    if not (isinstance(payload, tuple) and len(payload) in (2, 3)):
        return "flow payload has wrong shape"
    results = payload[0]
    if not isinstance(results, list):
        return "flow payload results is not a list"
    seen: set[int] = set()
    for item in results:
        if not (isinstance(item, tuple) and len(item) == 2
                and isinstance(item[0], int)):
            return "flow payload result item malformed"
        seen.add(item[0])
    if seen != expected_indices:
        return (f"flow payload produced indices {sorted(seen)}, "
                f"expected {sorted(expected_indices)}")
    return None


def run_flow(
    dag: FlowDag,
    runners: dict[str, FlowRunner],
    *,
    root: str,
    flow_kind: str = "custom",
    flow_spec: dict | None = None,
    run_id: str | None = None,
    workers: int = 1,
    policy: RetryPolicy | None = None,
    faults: FaultPlan | None = None,
    tracer: Tracer | None = None,
    kill_action=None,
) -> FlowResult:
    """Execute ``dag``, journaling to ``<root>/flow/runs/<run_id>``.

    Passing an existing ``run_id`` *is* resuming: completed nodes whose
    checkpoints verify against the current signatures are restored, and
    only the rest execute.  A fresh run against a warm state store gets
    the same treatment — that is the incremental-recompute path (edit
    one benchmark, re-run, only its downstream slice executes).

    ``workers > 1`` dispatches each wave's non-local ready nodes
    through the supervised pool; ``kill_action(node, ordinal)``
    replaces the genuine SIGKILL for in-process tests.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if not root:
        raise FlowError("flow execution requires a state root "
                        "(an enabled cache directory)")
    dag.validate()
    for node in dag.nodes.values():
        if node.kind not in runners:
            raise FlowError(
                f"no runner registered for node kind {node.kind!r} "
                f"(node {node.name!r})"
            )
    tr = tracer if tracer is not None else NULL_TRACER
    retry_policy = policy if policy is not None else RetryPolicy()
    fault_plan = faults if faults is not None else NO_FAULTS
    sigs = dag.signatures()
    order = dag.topological_order()
    store = FlowStateStore(state_dir(root))
    rid = run_id or new_run_id()
    jpath = journal_path(root, rid)
    import os

    resuming = os.path.exists(jpath)
    start = time.perf_counter()
    result = FlowResult(run_id=rid, dag_signature=dag.dag_signature(),
                        journal_path=jpath)

    journal = Journal(jpath)
    try:
        if not resuming:
            journal.append({
                "event": "flow_start",
                "version": JOURNAL_VERSION,
                "run_id": rid,
                "flow": {"kind": flow_kind, "spec": flow_spec},
                "dag_signature": result.dag_signature,
                "nodes": len(dag),
            })
        else:
            journal.append({
                "event": "flow_resume",
                "run_id": rid,
                "dag_signature": result.dag_signature,
            })
        with tr.span("flow.run", cat="flow", run_id=rid,
                     nodes=len(dag), workers=workers):
            _run_nodes(dag, runners, order, sigs, store, journal,
                       result, workers=workers, policy=retry_policy,
                       faults=fault_plan, tracer=tr,
                       kill_action=kill_action)
        journal.append({
            "event": "flow_end",
            "run_id": rid,
            "executed": len(result.executed),
            "restored": len(result.restored),
            "failed": len(result.failed),
        })
    finally:
        journal.close()
    result.seconds = time.perf_counter() - start
    return result


def _run_nodes(dag, runners, order, sigs, store, journal, result, *,
               workers, policy, faults, tracer, kill_action) -> None:
    """The wave loop: restore, dispatch, commit, repeat."""
    ordinal = 0  # executed-node completion count (the fault site index)

    def record(name: str, status: str, error: str | None = None) -> None:
        event = {"event": "node_done", "node": name,
                 "signature": sigs[name], "status": status}
        if error is not None:
            event["error"] = error
        journal.append(event)

    def commit(name: str, value) -> None:
        """Checkpoint -> journal -> (maybe) kill, in that order."""
        nonlocal ordinal
        node = dag.nodes[name]
        path = store.store(sigs[name], name, node.kind, value)
        ordinal += 1
        if faults:
            faults.maybe_tear_checkpoint(path, name, ordinal)
        record(name, "executed")
        result.values[name] = value
        result.statuses[name] = "executed"
        result.executed.append(name)
        if faults:
            faults.fire_kill(name, ordinal, kill_action=kill_action)

    def fail(name: str, message: str, status: str = "failed") -> None:
        result.statuses[name] = status
        result.failed[name] = message
        record(name, status, error=message)

    def deps_for(node) -> dict:
        return {d: result.values.get(d) for d in node.deps}

    while len(result.statuses) < len(dag):
        settled_before = len(result.statuses)
        ready: list[str] = []
        for name in order:
            if name in result.statuses:
                continue
            node = dag.nodes[name]
            if any(d not in result.statuses for d in node.deps):
                continue
            runner = runners[node.kind]
            bad = [d for d in node.deps
                   if result.statuses[d] in ("failed", "skipped")]
            if bad and not runner.allow_failed:
                fail(name, f"dependency {bad[0]} "
                           f"{result.statuses[bad[0]]}",
                     status="skipped")
                continue
            ready.append(name)

        # Restoration pass: a verifying checkpoint short-circuits work.
        to_run: list[str] = []
        for name in ready:
            node = dag.nodes[name]
            runner = runners[node.kind]
            payload = store.load(sigs[name])
            if payload is not None:
                value = payload["value"]
                message = (runner.validate(value)
                           if runner.validate is not None else None)
                if message is None:
                    result.values[name] = value
                    result.statuses[name] = "restored"
                    result.restored.append(name)
                    record(name, "restored")
                    continue
                store.reject(sigs[name])
            to_run.append(name)

        pooled = [n for n in to_run
                  if not runners[dag.nodes[n].kind].local]
        local = [n for n in to_run
                 if runners[dag.nodes[n].kind].local]

        if pooled:
            _dispatch_wave(dag, runners, pooled, deps_for,
                           commit, fail, workers=workers, policy=policy,
                           tracer=tracer)
        for name in local:
            node = dag.nodes[name]
            runner = runners[node.kind]
            with tracer.span("flow.node", cat="flow", node=name,
                             kind=node.kind, where="local"):
                try:
                    value = runner.func(name, node.payload,
                                        deps_for(node))
                except Exception as exc:
                    fail(name, f"{type(exc).__name__}: {exc}")
                    continue
            message = (runner.validate(value)
                       if runner.validate is not None else None)
            if message is not None:
                fail(name, message)
                continue
            commit(name, value)

        if len(result.statuses) == settled_before:
            # Defensive: validate() precludes cycles, so this means a
            # runner mutated the dag mid-run.
            stuck = [n for n in order if n not in result.statuses]
            raise FlowError(f"flow stalled with nodes {stuck!r} unsettled")


def _dispatch_wave(dag, runners, names, deps_for, commit, fail, *,
                   workers, policy, tracer) -> None:
    """Run one wave's pool-eligible nodes through the resilient engine.

    Outcomes are committed in input (wave) order regardless of
    completion order, so checkpoint/journal/kill ordinals stay
    deterministic under any worker interleaving.
    """
    bases = []
    for name in names:
        node = dag.nodes[name]
        runner = runners[node.kind]
        bases.append((runner.func, name, node.payload, deps_for(node)))

    if workers == 1 or len(names) == 1:
        outcomes = []
        for name, base in zip(names, bases):
            with tracer.span("flow.node", cat="flow", node=name,
                             kind=dag.nodes[name].kind, where="serial"):
                outcome = run_group_serial(
                    name,
                    lambda attempt, base=base: _flow_node_task(
                        base + (attempt,)),
                    policy,
                    expected_indices={0},
                    tracer=tracer,
                    validate=_validate_node_payload,
                )
            outcomes.append(outcome)
    else:
        stats = SupervisionStats()
        outcomes = run_supervised(
            [(name, base, {0}) for name, base in zip(names, bases)],
            workers=workers,
            task=_flow_node_task,
            make_payload=lambda base, attempt: base + (attempt,),
            serial_runner=lambda base, attempt: _flow_node_task(
                base + (attempt,)),
            policy=policy,
            stats=stats,
            tracer=tracer,
            validate=_validate_node_payload,
        )

    for name, outcome in zip(names, outcomes):
        if outcome.status == "failed":
            error = outcome.error
            message = (f"{error.kind}: {error.message}"
                       if error is not None else "node failed")
            fail(name, message)
            continue
        assert outcome.results is not None
        value = outcome.results[0][1]
        runner = runners[dag.nodes[name].kind]
        message = (runner.validate(value)
                   if runner.validate is not None else None)
        if message is not None:
            fail(name, message)
            continue
        commit(name, value)


def journal_completed(events: list[dict]) -> dict[str, str]:
    """``node signature -> status`` for every journaled completion.

    The *last* entry per node wins (a resume may re-journal a node it
    recomputed after a torn checkpoint).
    """
    done: dict[str, str] = {}
    for event in events:
        if event.get("event") != "node_done":
            continue
        sig = event.get("signature")
        if isinstance(sig, str):
            done[sig] = str(event.get("status", "?"))
    return done


def verify_journal(events: list[dict], dag: FlowDag,
                   root: str) -> dict[str, str]:
    """Cross-check a journal against the current DAG and state store.

    Returns ``node name -> "restorable" | "stale" | "missing"`` — a
    preview of what resume will restore vs recompute.  ``stale`` means
    the journaled signature no longer matches (inputs changed);
    ``missing`` means the signature matches but no valid checkpoint
    survives (e.g. a torn write).
    """
    done = journal_completed(events)
    store = FlowStateStore(state_dir(root))
    sigs = dag.signatures()
    out: dict[str, str] = {}
    for name, sig in sigs.items():
        status = done.get(sig)
        if status not in ("executed", "restored"):
            out[name] = "stale"
        elif store.load(sig) is not None:
            out[name] = "restorable"
        else:
            out[name] = "missing"
    return out

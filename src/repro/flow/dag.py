"""Typed workflow DAGs: nodes, edges, cycle detection, content signatures.

A :class:`FlowDag` is the declarative shape of one experiment run: each
:class:`FlowNode` names a unit of work (a compilation, a cell
measurement, an aggregation), its *kind* (which runner executes it),
its dependencies, and a **content fingerprint** covering every input
that affects its output — benchmark source hashes,
:meth:`~repro.opt.options.CompilerOptions.fingerprint`, machine
fingerprints.

Node **signatures** are where incremental recomputation comes from: a
node's signature is a SHA-256 over its kind, its own fingerprint, and
the *sorted signatures of its dependencies* — names are deliberately
excluded.  Change one benchmark's source and only its compile node and
the nodes downstream of it get new signatures; everything else keeps
its old signature and is restored from the persisted state store
(:mod:`repro.flow.state`) instead of re-executed.

The DAG itself is pure data — execution lives in
:mod:`repro.flow.engine`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Iterable

from ..errors import ReproError

#: Bump when the signature derivation changes incompatibly.
_SIG_FORMAT = "flow-sig-v1"


class FlowError(ReproError):
    """A malformed flow: duplicate node, unknown dependency, cycle,
    missing runner, or a run that cannot satisfy its contract."""


@dataclass(frozen=True, slots=True)
class FlowNode:
    """One unit of work in a flow.

    ``fingerprint`` must cover every input (beyond the dependency
    values) that affects this node's output; ``payload`` is the
    runner's picklable input and is *not* hashed — anything in it that
    changes the output belongs in the fingerprint too.
    """

    name: str
    kind: str
    fingerprint: str
    deps: tuple[str, ...] = ()
    payload: Any = None


@dataclass(slots=True)
class FlowDag:
    """An insertion-ordered set of :class:`FlowNode`\\ s with edges."""

    nodes: dict[str, FlowNode] = field(default_factory=dict)

    def add(self, node: FlowNode) -> FlowNode:
        if node.name in self.nodes:
            raise FlowError(f"duplicate flow node {node.name!r}")
        self.nodes[node.name] = node
        return node

    def node(self, name: str) -> FlowNode:
        try:
            return self.nodes[name]
        except KeyError:
            raise FlowError(f"unknown flow node {name!r}") from None

    def __len__(self) -> int:
        return len(self.nodes)

    def validate(self) -> None:
        """Raise :class:`FlowError` on unknown deps or cycles."""
        for node in self.nodes.values():
            for dep in node.deps:
                if dep not in self.nodes:
                    raise FlowError(
                        f"node {node.name!r} depends on unknown node "
                        f"{dep!r}"
                    )
        self.topological_order()

    def topological_order(self) -> list[str]:
        """Node names, dependencies always before dependents.

        Deterministic: among simultaneously-ready nodes, insertion
        order wins, so execution waves (and the fault-injection node
        ordinals derived from them) are identical across runs.  Raises
        :class:`FlowError` naming a cycle member when no order exists.
        """
        placed: set[str] = set()
        order: list[str] = []
        remaining = list(self.nodes)
        while remaining:
            ready = [name for name in remaining
                     if all(d in placed for d in self.nodes[name].deps
                            if d in self.nodes)]
            if not ready:
                raise FlowError(
                    "flow contains a dependency cycle through "
                    f"{remaining[0]!r}"
                )
            for name in ready:
                placed.add(name)
                order.append(name)
            remaining = [n for n in remaining if n not in placed]
        return order

    def signatures(self) -> dict[str, str]:
        """Content signature per node (see module docstring).

        Node *names* are excluded on purpose: renaming a node (or
        re-indexing a grid) must not invalidate checkpoints, and two
        nodes with identical content share one checkpoint entry.
        """
        sigs: dict[str, str] = {}
        for name in self.topological_order():
            node = self.nodes[name]
            basis = json.dumps(
                [_SIG_FORMAT, node.kind, node.fingerprint,
                 sorted(sigs[d] for d in node.deps)],
                separators=(",", ":"),
            )
            sigs[name] = hashlib.sha256(
                basis.encode("utf-8")).hexdigest()
        return sigs

    def dag_signature(self) -> str:
        """One signature for the whole flow (journal verification)."""
        sigs = self.signatures()
        basis = json.dumps(sorted(sigs.values()), separators=(",", ":"))
        return hashlib.sha256(basis.encode("utf-8")).hexdigest()

    def downstream(self, names: Iterable[str]) -> set[str]:
        """``names`` plus every node reachable from them via edges."""
        seeds = set(names)
        for name in seeds:
            self.node(name)
        out = set(seeds)
        changed = True
        while changed:
            changed = False
            for node in self.nodes.values():
                if node.name not in out \
                        and any(d in out for d in node.deps):
                    out.add(node.name)
                    changed = True
        return out

"""Declarative, crash-resumable workflow DAGs (``repro.flow``).

The flow layer turns the repo's drivers — sweeps, suite reports,
exhibit priming — into explicit DAGs of content-fingerprinted nodes
(:mod:`~repro.flow.dag`), executes them through the resilient engine
substrate (:mod:`~repro.flow.engine`), and persists every completed
node to a content-addressed state store alongside an append-only,
fsynced run journal (:mod:`~repro.flow.state`).

Kill the process at *any* node boundary — ``kill -9``, a ``kill@N``
fault spec, a power cut — and ``repro resume <run-id>`` replays the
journal, verifies the surviving checkpoints, re-executes only the
nodes that never completed (or whose checkpoints were torn mid-write),
and produces output bit-identical to an uninterrupted run.  The same
machinery gives incremental recomputation for free: change one
benchmark's source or one machine preset and only the downstream DAG
slice re-runs.
"""

from .dag import FlowDag, FlowError, FlowNode
from .engine import (
    NODE_STATUSES,
    FlowResult,
    FlowRunner,
    journal_completed,
    run_flow,
    verify_journal,
)
from .flows import (
    PRIME_RUNNERS,
    REPORT_RUNNERS,
    SWEEP_RUNNERS,
    FlowContext,
    flow_event,
    prime_flow,
    report_flow,
    run_sweep_flow,
    sweep_flow,
)
from .state import (
    JOURNAL_VERSION,
    STATE_FORMAT,
    FlowStateStore,
    Journal,
    JournalError,
    flow_root,
    journal_path,
    list_runs,
    new_run_id,
    read_journal,
    runs_dir,
    state_dir,
)

__all__ = [
    "FlowContext",
    "FlowDag",
    "FlowError",
    "FlowNode",
    "FlowResult",
    "FlowRunner",
    "FlowStateStore",
    "JOURNAL_VERSION",
    "Journal",
    "JournalError",
    "NODE_STATUSES",
    "PRIME_RUNNERS",
    "REPORT_RUNNERS",
    "STATE_FORMAT",
    "SWEEP_RUNNERS",
    "flow_event",
    "flow_root",
    "journal_completed",
    "journal_path",
    "list_runs",
    "new_run_id",
    "prime_flow",
    "read_journal",
    "report_flow",
    "run_flow",
    "run_sweep_flow",
    "runs_dir",
    "state_dir",
    "sweep_flow",
    "verify_journal",
]

"""Persisted flow state: content-addressed checkpoints + run journals.

Two durable artifacts make a flow run crash-resumable:

* the **state store** — one pickle per completed node, addressed by the
  node's content signature (:meth:`repro.flow.dag.FlowDag.signatures`),
  living under ``<cache-root>/flow/state``.  Writes are atomic
  (mkstemp + fsync + ``os.replace``, the trace-cache idiom), so a
  SIGKILL mid-write can only ever leave a temp file, never a torn
  entry behind the final name.  A stale or structurally invalid entry
  — unreadable pickle, wrong format tag, truncated by a torn write —
  is dropped and the node recomputes, exactly mirroring the
  trace-cache recovery path.
* the **run journal** — an append-only JSONL file per run id under
  ``<cache-root>/flow/runs``, fsynced line by line.  It records the
  flow's rebuildable spec (``flow_start``), one ``node_done`` per
  completed node, and a ``flow_end`` summary; ``repro resume`` replays
  it to rebuild the DAG, then trusts only checkpoints that *verify*
  against the current signatures.

Restoration is checkpoint-driven: the journal says what a previous
process *claimed* to finish, the state store proves what actually
survived.  A node journaled complete whose checkpoint fails validation
(the ``torn-write`` fault) is recomputed, so resumed results stay
bit-identical to an uninterrupted run.
"""

from __future__ import annotations

import json
import os
import pickle
import secrets
import tempfile
import time

from ..engine.cache import CacheStats, sweep_debris
from .dag import FlowError

#: Bump when the checkpoint payload layout changes incompatibly.
STATE_FORMAT = "flow-state-v1"

#: Journal schema version (checked on resume).
JOURNAL_VERSION = 1


class JournalError(FlowError):
    """A missing, empty, truncated-at-birth, or incompatible journal."""


def flow_root(root: str) -> str:
    """The flow subtree inside a cache root."""
    return os.path.join(root, "flow")


def state_dir(root: str) -> str:
    return os.path.join(flow_root(root), "state")


def runs_dir(root: str) -> str:
    return os.path.join(flow_root(root), "runs")


def journal_path(root: str, run_id: str) -> str:
    if not run_id or "/" in run_id or run_id != os.path.basename(run_id):
        raise JournalError(f"malformed run id {run_id!r}")
    return os.path.join(runs_dir(root), run_id + ".jsonl")


def new_run_id() -> str:
    """A sortable, collision-resistant run id."""
    stamp = time.strftime("%Y%m%d-%H%M%S")
    return f"{stamp}-{secrets.token_hex(3)}"


def list_runs(root: str) -> list[str]:
    """Known run ids under ``root``, oldest first."""
    try:
        names = sorted(os.listdir(runs_dir(root)))
    except OSError:
        return []
    return [n[:-len(".jsonl")] for n in names if n.endswith(".jsonl")]


class FlowStateStore:
    """Content-addressed node checkpoints rooted at one directory."""

    def __init__(self, root: str) -> None:
        self.root = root
        self.stats = CacheStats()
        self.stats.debris = sweep_debris(root)

    def path_for(self, signature: str) -> str:
        return os.path.join(self.root, signature[:2], signature + ".pkl")

    def load(self, signature: str) -> dict | None:
        """The checkpoint payload for ``signature``, or ``None``.

        Returns the full wrapper dict (``{"format", "node", "kind",
        "value"}``) so the caller can apply its own value-level
        validation; anything unreadable or structurally wrong is
        dropped on the spot and counted as corrupt.
        """
        path = self.path_for(signature)
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, TypeError, ValueError, KeyError):
            self.drop(signature)
            self.stats.corrupt += 1
            return None
        if not isinstance(payload, dict) \
                or payload.get("format") != STATE_FORMAT \
                or "value" not in payload:
            self.drop(signature)
            self.stats.corrupt += 1
            return None
        self.stats.hits += 1
        return payload

    def drop(self, signature: str) -> None:
        """Remove one checkpoint, ignoring races; reclassify later."""
        try:
            os.remove(self.path_for(signature))
        except OSError:
            pass

    def reject(self, signature: str) -> None:
        """A loaded checkpoint failed value-level validation: drop it
        and move the hit to the corrupt column."""
        self.drop(signature)
        self.stats.hits -= 1
        self.stats.corrupt += 1

    def store(self, signature: str, node: str, kind: str,
              value: object) -> str:
        """Write one checkpoint atomically; returns its final path."""
        path = self.path_for(signature)
        parent = os.path.dirname(path)
        os.makedirs(parent, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(
                    {"format": STATE_FORMAT, "node": node, "kind": kind,
                     "value": value},
                    handle, protocol=pickle.HIGHEST_PROTOCOL,
                )
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.remove(tmp_path)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        return path


class Journal:
    """Append-only JSONL run journal, fsynced per line.

    Every append survives a SIGKILL of the writing process: the line is
    flushed and fsynced before :meth:`append` returns, so the journal
    never claims less than what the state store holds (checkpoints are
    written *before* their ``node_done`` line).
    """

    def __init__(self, path: str) -> None:
        self.path = path
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._handle = open(path, "a", encoding="utf-8")

    def append(self, event: dict) -> None:
        self._handle.write(json.dumps(event, separators=(",", ":"),
                                      sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        try:
            self._handle.close()
        except OSError:  # pragma: no cover - defensive
            pass

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_journal(path: str) -> list[dict]:
    """Load and validate a run journal.

    Raises :class:`JournalError` with a one-line message on a missing,
    empty, or incompatible journal; silently drops a trailing torn
    line (the one write a crash can interrupt).
    """
    try:
        with open(path, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except FileNotFoundError:
        raise JournalError(f"no journal at {path}") from None
    except OSError as exc:
        raise JournalError(
            f"cannot read journal {path}: {exc.strerror or exc}"
        ) from None
    events: list[dict] = []
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            event = json.loads(line)
        except ValueError:
            if i == len(lines) - 1:
                break  # torn final line: the crash interrupted one write
            raise JournalError(
                f"journal {path}: malformed line {i + 1}"
            ) from None
        if not isinstance(event, dict):
            raise JournalError(
                f"journal {path}: line {i + 1} is not an event object"
            )
        events.append(event)
    if not events:
        raise JournalError(f"journal {path} is empty")
    head = events[0]
    if head.get("event") != "flow_start":
        raise JournalError(
            f"journal {path}: first event is "
            f"{head.get('event', '?')!r}, expected 'flow_start'"
        )
    version = head.get("version")
    if version != JOURNAL_VERSION:
        raise JournalError(
            f"journal {path}: version {version!r} != {JOURNAL_VERSION} "
            "(written by an incompatible build; start a fresh run)"
        )
    return events

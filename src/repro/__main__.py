"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run <file.tin>``
    Compile and execute a Tin source file; print its result.
``measure <file.tin | benchmarks>``
    Compile, execute and report ILP across standard machines
    (``--profile`` adds pass-level compile stats and stall attribution).
    Given suite benchmark names instead of a file, the grid runs through
    the execution engine (``--workers``, ``--machines``).
``suite``
    Run the eight-benchmark suite and print the ILP summary.  With
    ``--flow`` the run executes as a checkpointed workflow DAG: every
    compile and simulation cell is journaled under a run id (printed at
    the end) so a killed run can be continued with ``resume``.
``resume <run-id>``
    Resume a killed ``suite --flow`` run from its journal: nodes with a
    valid checkpoint are restored, everything else re-executes, and the
    final report is bit-identical to an uninterrupted run.
``report``
    Observe the suite end to end: per-pass compile profile, per-machine
    stall breakdown, and a machine-readable JSONL run report.
``exhibit <ident> [...]``
    Regenerate paper exhibits (``exhibit list`` to enumerate).
``gap``
    Measure the scheduling gap — ``cycles(list) - cycles(exact)`` per
    grid cell — across scheduler backends (``--schedulers``), with the
    fraction of cells where the heuristic is already optimal.
``trace <run.jsonl>``
    Self-profile a JSONL run report's span events: an aggregated
    time-per-phase tree, cache/memo hit rates and retry counts, plus
    optional Chrome trace-event export (``--chrome``) for Perfetto.
``ingest <report.jsonl | BENCH_sim.json> [...]``
    Ingest run reports / bench documents into the run-history ledger
    (``results/history.sqlite`` by default; content-addressed, so
    re-ingesting the same run is a no-op).
``diff <A> <B>``
    Per-cell, per-metric regression diff between two reports, bench
    documents, or ledger entries (``latest``, ``latest~1``, an id, or a
    fingerprint prefix).  Exits nonzero iff a gated metric regressed.
``dash``
    Render the whole ledger as one self-contained static HTML
    dashboard (no network, no external assets).

Engine commands also take ``--trace-out PATH`` (write the run's merged
span timeline straight to a Perfetto-loadable Chrome trace JSON),
``--live`` (a single self-updating progress line on stderr:
cells done, ok/retried/degraded/failed counts, instantaneous instr/s)
and ``--sample-resources`` (per-process RSS/CPU telemetry recorded as
gauges and ``resource`` report events).

The ``measure``/``suite``/``report``/``exhibit``/``gap`` commands
submit their work through :mod:`repro.engine`: ``--workers N`` fans
compilation across a process pool, and a content-addressed trace cache
under ``--cache-dir`` (default ``.repro-cache``; disable with
``--no-cache``) skips recompilation across runs and processes.  They
also take ``--scheduler NAME`` to compile everything through one
scheduler backend (see :mod:`repro.sched.registry`; default ``list``).
Machine sets are preset names resolved by
:func:`repro.machine.presets.resolve`, with ``paper`` expanding to the
paper's seven standard machines.
"""

from __future__ import annotations

import argparse
import os
import sys

from .analysis.tables import format_table
from .engine.cache import DEFAULT_CACHE_DIR, TraceCache, open_cache
from .machine.config import MachineConfig
from .machine.presets import ideal_superscalar, paper_machines, resolve
from .opt.options import CompilerOptions, OptLevel
from .sim.interp import run as interp_run
from .sim.timing import simulate


def _add_engine_flags(parser: argparse.ArgumentParser) -> None:
    """The engine knobs shared by measure/suite/report/exhibit."""
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes for the execution engine (default 1: "
             "serial, bit-identical results either way)",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=DEFAULT_CACHE_DIR,
        help="content-addressed trace cache directory "
             f"(default: {DEFAULT_CACHE_DIR!r}; $REPRO_CACHE_DIR overrides)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk trace cache for this run",
    )
    parser.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="attempts per compile group before degrading to serial "
             "(default 3)",
    )
    parser.add_argument(
        "--group-timeout", type=float, default=None, metavar="SEC",
        help="wall-clock budget per compile group in a worker before it "
             "counts as hung (default 300; 0 disables)",
    )
    parser.add_argument(
        "--faults", metavar="SPEC", default=None,
        help="deterministic fault-injection plan, e.g. "
             "'crash@whet#1,hang@linpack' (default: $REPRO_FAULTS)",
    )
    parser.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="write the run's span timeline as Chrome trace-event JSON "
             "(load at ui.perfetto.dev)",
    )
    parser.add_argument(
        "--live", action="store_true",
        help="show a live progress line (cells done, status counts, "
             "instantaneous instr/s) on stderr",
    )
    parser.add_argument(
        "--sample-resources", action="store_true",
        help="record per-process RSS/CPU telemetry (metrics gauges plus "
             "'resource' report events; off by default because gauge "
             "values are wall-clock-dependent)",
    )
    parser.add_argument(
        "--scheduler", metavar="NAME", default=None,
        help="scheduler backend for every compilation this run "
             "(list, swp, exact, ...; 'repro gap' compares them; "
             "default: list)",
    )


def _add_ledger_flag(parser: argparse.ArgumentParser) -> None:
    from .obs.history import DEFAULT_LEDGER_PATH, LEDGER_ENV

    parser.add_argument(
        "--ledger", metavar="PATH", default=None,
        help="run-history ledger database (default: "
             f"${LEDGER_ENV} or {DEFAULT_LEDGER_PATH!r})",
    )


def _add_machines_flag(parser: argparse.ArgumentParser,
                       default_help: str) -> None:
    parser.add_argument(
        "--machines", nargs="+", metavar="SPEC", default=None,
        help="machine presets to measure on, space- or comma-separated "
             "names like superscalar:4 or multititan "
             f"('paper' = the paper's seven; default: {default_help})",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Jouppi & Wall (ASPLOS 1989) ILP measurement system",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="compile and execute a Tin file")
    p_run.add_argument("file")
    p_run.add_argument(
        "-O", dest="opt", type=int, default=4, choices=range(5),
        help="optimization level (0..4, default 4)",
    )

    p_measure = sub.add_parser(
        "measure",
        help="measure a Tin file's (or suite benchmarks') ILP",
    )
    p_measure.add_argument(
        "target",
        help="a .tin source file, or suite benchmark names "
             "(comma/space separated, e.g. 'linpack,whet')",
    )
    p_measure.add_argument("-O", dest="opt", type=int, default=4,
                           choices=range(5))
    p_measure.add_argument("--unroll", type=int, default=1)
    p_measure.add_argument("--careful", action="store_true")
    p_measure.add_argument(
        "--profile", action="store_true",
        help="collect pass-level compile stats and stall attribution",
    )
    p_measure.add_argument(
        "--report", metavar="PATH", default=None,
        help="also write the observed run as a JSONL report",
    )
    _add_machines_flag(p_measure, "the paper's seven machines")
    _add_engine_flags(p_measure)

    p_suite = sub.add_parser("suite", help="run the eight-benchmark suite")
    p_suite.add_argument(
        "--profile", action="store_true",
        help="add per-benchmark stall attribution on the 64-wide machine",
    )
    p_suite.add_argument(
        "--report", metavar="PATH", default=None,
        help="also write the observed run as a JSONL report",
    )
    p_suite.add_argument(
        "--benchmarks", nargs="+", metavar="NAME", default=None,
        help="subset of benchmarks, space- or comma-separated "
             "(default: the whole suite)",
    )
    p_suite.add_argument(
        "--flow", action="store_true",
        help="run as a checkpointed workflow DAG: every compile and "
             "cell is journaled under a run id and 'repro resume' can "
             "continue a killed run bit-identically (requires the "
             "trace cache)",
    )
    p_suite.add_argument(
        "--run-id", metavar="ID", default=None,
        help="flow run id to journal under (default: generated; "
             "reusing an existing id resumes it)",
    )
    _add_machines_flag(p_suite, "the ideal 64-wide superscalar")
    _add_engine_flags(p_suite)

    p_resume = sub.add_parser(
        "resume",
        help="resume a killed 'suite --flow' run from its journal",
    )
    p_resume.add_argument(
        "run_id",
        help="flow run id to resume (see <cache-dir>/flow/runs/)",
    )
    p_resume.add_argument(
        "--report", metavar="PATH", default=None,
        help="also write the resumed run as a JSONL report",
    )
    p_resume.add_argument(
        "--cache-dir", metavar="DIR", default=DEFAULT_CACHE_DIR,
        help="cache directory holding the flow state and journal "
             f"(default: {DEFAULT_CACHE_DIR!r})",
    )
    p_resume.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes for the re-executed nodes (default 1)",
    )

    p_report = sub.add_parser(
        "report",
        help="observe the suite: compile profiles, stall breakdowns, JSONL",
    )
    p_report.add_argument(
        "-o", "--output", metavar="PATH",
        default="results/run_report.jsonl",
        help="JSONL run-report path (default: results/run_report.jsonl)",
    )
    p_report.add_argument(
        "--benchmarks", nargs="+", metavar="NAME", default=None,
        help="subset of benchmarks, space- or comma-separated "
             "(default: the whole suite)",
    )
    p_report.add_argument(
        "--quiet", action="store_true",
        help="write the JSONL report without rendering tables",
    )
    p_report.add_argument(
        "--format", choices=("text", "json", "markdown"), default="text",
        help="stdout rendering: human tables (text, the default), one "
             "JSON document, or GitHub-flavored markdown",
    )
    _add_machines_flag(p_report, "the paper's seven machines")
    _add_engine_flags(p_report)

    p_report.add_argument(
        "--input", metavar="PATH", default=None,
        help="summarize an existing JSONL run report instead of "
             "running the suite (tolerates truncated reports)",
    )

    p_ex = sub.add_parser("exhibit", help="regenerate paper exhibits")
    p_ex.add_argument("idents", nargs="+",
                      help="exhibit ids, or 'list' / 'all'")
    _add_engine_flags(p_ex)

    p_gap = sub.add_parser(
        "gap",
        help="measure the list-vs-exact scheduling gap over the grid",
    )
    p_gap.add_argument(
        "--benchmarks", nargs="+", metavar="NAME", default=None,
        help="subset of benchmarks, space- or comma-separated "
             "(default: the whole suite)",
    )
    p_gap.add_argument(
        "--schedulers", nargs="+", metavar="NAME",
        default=None,
        help="backends to compare, baseline first "
             "(default: list swp exact)",
    )
    p_gap.add_argument(
        "--json", action="store_true",
        help="emit the gap report as one JSON document",
    )
    _add_machines_flag(p_gap, "the paper's seven machines")
    _add_engine_flags(p_gap)

    p_trace = sub.add_parser(
        "trace",
        help="self-profile a JSONL run report's span events",
    )
    p_trace.add_argument("input", help="run report (JSONL) to profile")
    p_trace.add_argument(
        "--chrome", metavar="PATH", default=None,
        help="also export the spans as Chrome trace-event JSON "
             "(load at ui.perfetto.dev)",
    )

    p_ingest = sub.add_parser(
        "ingest",
        help="ingest run reports / bench documents into the ledger",
    )
    p_ingest.add_argument(
        "inputs", nargs="+", metavar="PATH",
        help="JSONL run reports (.jsonl) and/or BENCH_sim documents "
             "(.json)",
    )
    _add_ledger_flag(p_ingest)

    p_diff = sub.add_parser(
        "diff",
        help="regression-diff two runs (files or ledger references)",
    )
    p_diff.add_argument(
        "a", help="baseline: a .jsonl report, a .json bench document, "
                  "or a ledger reference (id, 'latest', 'latest~N', "
                  "fingerprint prefix)")
    p_diff.add_argument("b", help="candidate (same forms as the baseline)")
    _add_ledger_flag(p_diff)
    p_diff.add_argument(
        "--max-regression", type=float, default=None, metavar="FRAC",
        help="allowed fractional throughput drop for bench modes "
             "(default 0.10)",
    )
    p_diff.add_argument(
        "--seconds-tolerance", type=float, default=None, metavar="FRAC",
        help="relative band inside which wall-clock changes are ignored "
             "(default 0.25)",
    )
    p_diff.add_argument(
        "--warn-only", action="store_true",
        help="report every finding but always exit 0 (CI cold-cache "
             "configurations)",
    )
    p_diff.add_argument(
        "--json", action="store_true",
        help="emit the findings as one JSON document instead of text",
    )

    p_dash = sub.add_parser(
        "dash",
        help="render the ledger as a self-contained HTML dashboard",
    )
    _add_ledger_flag(p_dash)
    p_dash.add_argument(
        "--out", metavar="PATH", default="results/dash.html",
        help="output HTML file (default: results/dash.html)",
    )
    p_dash.add_argument(
        "--title", default="repro run history",
        help="dashboard page title",
    )
    return parser


def _resolve_machines(
    specs: list[str] | None, default: list[MachineConfig]
) -> list[MachineConfig]:
    """Resolve a --machines argument (None = the command's default)."""
    if specs is None:
        return default
    names = [name for spec in specs
             for name in spec.replace(",", " ").split()]
    configs: list[MachineConfig] = []
    for name in names:
        if name.lower() == "paper":
            configs.extend(paper_machines())
        else:
            configs.append(resolve(name))
    return configs or default


def _parse_benchmarks(tokens: list[str] | None) -> list[str] | None:
    """Validate a --benchmarks argument; exits with code 2 when unknown."""
    from .benchmarks.suite import parse_benchmark_list

    try:
        return parse_benchmark_list(tokens)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        raise SystemExit(2)


def _engine_cache(args) -> TraceCache:
    return open_cache(getattr(args, "cache_dir", None),
                      getattr(args, "no_cache", False))


def _engine_policy(args):
    """A RetryPolicy from --retries/--group-timeout (None = defaults)."""
    from .engine.resilience import RetryPolicy

    retries = getattr(args, "retries", None)
    timeout = getattr(args, "group_timeout", None)
    if retries is None and timeout is None:
        return None
    policy = RetryPolicy()
    kwargs = {}
    if retries is not None:
        kwargs["max_attempts"] = retries
    if timeout is not None:
        kwargs["group_timeout"] = timeout if timeout > 0 else None
    import dataclasses

    return dataclasses.replace(policy, **kwargs)


def _engine_faults(args):
    """A FaultPlan from --faults (None = $REPRO_FAULTS via the engine)."""
    from .engine.faults import FaultPlan

    spec = getattr(args, "faults", None)
    if spec is None:
        return None
    try:
        return FaultPlan.parse(spec)
    except ValueError as exc:
        print(f"--faults: {exc}", file=sys.stderr)
        raise SystemExit(2)


def _report_failures(items) -> int:
    """Print the one-line failure manifest; returns the exit code."""
    from .engine.resilience import failure_manifest

    manifest = failure_manifest(items)
    if manifest is None:
        return 0
    print(manifest, file=sys.stderr)
    return 1


def _compile_file(path: str, args, profile=None) -> tuple:
    from .opt.driver import compile_source

    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    options = CompilerOptions(
        opt_level=OptLevel(args.opt),
        unroll=getattr(args, "unroll", 1),
        careful=getattr(args, "careful", False),
    )
    program = compile_source(source, options, profile)
    return program, interp_run(program)


def _open_recorder(path: str | None):
    """A JSONL recorder at ``path``, or the shared no-op sink."""
    from .obs.recorder import NULL_RECORDER, JsonlRecorder

    if path is None:
        return NULL_RECORDER
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    return JsonlRecorder(path)


def _engine_tracer(args):
    """A Tracer when --trace-out asks for one (else None: the engine
    auto-enables its own iff a recorder is active)."""
    if getattr(args, "trace_out", None) is None:
        return None
    from .obs.trace import Tracer

    return Tracer()


def _write_trace(args, tracer) -> None:
    """Write --trace-out's Chrome trace JSON, when requested."""
    path = getattr(args, "trace_out", None)
    if path is None or tracer is None:
        return
    from .obs.trace import write_chrome_trace

    write_chrome_trace(path, tracer.spans)
    print(f"Chrome trace written to {path} (load at ui.perfetto.dev)")


def _nullcontext():
    from contextlib import nullcontext

    return nullcontext()


def _progress_line(args, total_cells: int):
    """(ProgressLine, engine progress callback), or (None, None)."""
    if not getattr(args, "live", False):
        return None, None
    from .obs.live import ProgressLine

    line = ProgressLine(total_cells)

    def callback(key, outcome, n_cells):
        del key
        instructions = 0
        if outcome.results:
            instructions = sum(
                cell.instructions for _, cell in outcome.results
            )
        line.update(n_cells, outcome.status, instructions)

    return line, callback


def _cmd_run(args) -> int:
    _program, result = _compile_file(args.file, args)
    print(f"result: {result.value}")
    print(f"dynamic instructions: {result.instructions}")
    return 0


def _measure_benchmarks(args) -> int:
    """`repro measure linpack,whet`: suite benchmarks through the engine."""
    from .analysis.sweep import summarize, sweep
    from .obs.recorder import SCHEMA_VERSION
    from .obs.report import render_stall_table

    benchmarks = _parse_benchmarks([args.target])
    assert benchmarks is not None
    machines = _resolve_machines(args.machines, paper_machines())
    observe = args.profile
    options = None
    if (args.opt, args.unroll, args.careful) != (4, 1, False):
        options = CompilerOptions(
            opt_level=OptLevel(args.opt),
            unroll=args.unroll,
            careful=args.careful,
        )
    tracer = _engine_tracer(args)
    line, progress = _progress_line(
        args, total_cells=len(benchmarks) * len(machines))
    with _open_recorder(args.report) as recorder:
        if recorder.enabled:
            recorder.emit("run_start", schema=SCHEMA_VERSION,
                          run_id=f"measure:{','.join(benchmarks)}",
                          machines=[c.name for c in machines])
        # The progress line's context manager clears a painted line on
        # exception (so tracebacks don't land mid-line) and paints the
        # final summary on clean exit.
        with line if line is not None else _nullcontext():
            rows = sweep(
                benchmarks, machines, options=options, observe=observe,
                recorder=recorder, workers=args.workers,
                cache=_engine_cache(args),
                policy=_engine_policy(args), faults=_engine_faults(args),
                tracer=tracer, progress=progress,
                sample_resources=args.sample_resources,
            )
        print(summarize(rows))
        if observe:
            by_bench: dict[str, list] = {}
            for row in rows:
                if row.status != "failed":
                    by_bench.setdefault(row.benchmark, []).append(row)
            for bench, bench_rows in by_bench.items():
                print()
                print(render_stall_table(
                    [_row_timing(r) for r in bench_rows],
                    title=f"{bench}: stall attribution (minor cycles)",
                ))
        if recorder.enabled:
            recorder.emit("run_end", seconds=0.0,
                          counters=dict(recorder.counters))
    _write_trace(args, tracer)
    if args.report is not None:
        print(f"\nJSONL report written to {args.report}")
    return _report_failures(rows)


def _row_timing(row):
    """A SweepRow's equivalent TimingResult (for the stall tables)."""
    from .sim.timing import TimingResult

    minor = (row.stalls.minor_cycles if row.stalls is not None
             else round(row.base_cycles))
    return TimingResult(
        config_name=row.machine,
        instructions=row.instructions,
        minor_cycles=minor,
        base_cycles=row.base_cycles,
        stalls=row.stalls,
    )


def _cmd_measure(args) -> int:
    if not os.path.exists(args.target):
        try:
            benchmarks = _parse_benchmarks([args.target])
        except SystemExit:
            print(f"measure: {args.target!r} is neither a file nor a "
                  "benchmark list", file=sys.stderr)
            return 2
        if benchmarks:
            return _measure_benchmarks(args)

    machines = _resolve_machines(args.machines, paper_machines())
    if not args.profile and args.report is None:
        _program, result = _compile_file(args.target, args)
        print(f"result: {result.value}   "
              f"dynamic instructions: {result.instructions}")
        rows = []
        for config in machines:
            timing = simulate(result.trace, config)
            rows.append([timing.config_name, timing.base_cycles,
                         timing.parallelism])
        print(format_table(["machine", "base cycles", "instr/cycle"], rows))
        return 0

    from .obs.profile import CompileProfile
    from .obs.recorder import SCHEMA_VERSION
    from .obs.report import (
        emit_compile_events,
        render_profile_table,
        render_stall_table,
    )

    profile = CompileProfile()
    with _open_recorder(args.report) as recorder:
        recorder.emit("run_start", schema=SCHEMA_VERSION,
                      run_id=args.target)
        _program, result = _compile_file(args.target, args, profile)
        emit_compile_events(recorder, args.target, profile)
        print(f"result: {result.value}   "
              f"dynamic instructions: {result.instructions}")
        print()
        print(render_profile_table(profile, title="compile profile"))
        timings = []
        for config in machines:
            timing = simulate(result.trace, config, observe=True)
            timings.append(timing)
            recorder.emit("timing", benchmark=args.target,
                          **timing.as_dict())
        print()
        print(render_stall_table(
            timings, title="stall attribution (minor cycles)"
        ))
        recorder.emit("run_end", seconds=profile.total_seconds(),
                      counters=dict(recorder.counters))
    if args.report is not None:
        print(f"\nJSONL report written to {args.report}")
    return 0


def _cmd_suite(args) -> int:
    from .benchmarks import suite as bench_suite

    profile = getattr(args, "profile", False)
    benchmarks = _parse_benchmarks(getattr(args, "benchmarks", None))
    bench_names = benchmarks or [
        b.name for b in bench_suite.all_benchmarks()
    ]
    machines = _resolve_machines(
        getattr(args, "machines", None), [ideal_superscalar(64)]
    )
    return _run_suite(args, bench_names, machines, profile=profile,
                      use_flow=getattr(args, "flow", False),
                      run_id=getattr(args, "run_id", None))


def _cmd_resume(args) -> int:
    """Resume a killed ``suite --flow`` run from its journal."""
    from .flow import FlowError, JournalError, journal_path, read_journal

    cache_root = args.cache_dir
    try:
        events = read_journal(journal_path(cache_root, args.run_id))
    except JournalError as exc:
        print(f"resume: {exc}", file=sys.stderr)
        return 2
    start = events[0]
    flow_info = start.get("flow") or {}
    spec = flow_info.get("spec") or {}
    if flow_info.get("kind") != "sweep" or spec.get("driver") != "suite":
        print(f"resume: run {args.run_id!r} was not started by "
              "'repro suite --flow'; only suite runs are resumable",
              file=sys.stderr)
        return 2
    try:
        bench_names = list(spec["benchmarks"])
        machines = [resolve(name) for name in spec["machines"]]
        profile = bool(spec.get("profile", False))
    except (KeyError, TypeError, ValueError) as exc:
        print(f"resume: malformed flow spec in journal: {exc}",
              file=sys.stderr)
        return 2
    scheduler = spec.get("scheduler")
    from .sched import registry as sched_registry

    previous = None
    if scheduler is not None:
        try:
            previous = sched_registry.set_default(scheduler)
        except Exception as exc:
            print(f"resume: {exc}", file=sys.stderr)
            return 2
    try:
        return _run_suite(args, bench_names, machines, profile=profile,
                          use_flow=True, run_id=args.run_id,
                          observe=spec.get("observe"))
    except FlowError as exc:
        print(f"resume: {exc}", file=sys.stderr)
        return 2
    finally:
        if previous is not None:
            sched_registry.set_default(previous)


def _run_suite(args, bench_names, machines, *, profile, use_flow,
               run_id, observe=None) -> int:
    from .engine.executor import execute
    from .engine.plan import plan_sweep
    from .analysis.sweep import summarize
    from .obs.report import render_stall_table

    single_machine = len(machines) == 1

    with _open_recorder(getattr(args, "report", None)) as recorder:
        if recorder.enabled:
            from .obs.recorder import SCHEMA_VERSION

            recorder.emit("run_start", schema=SCHEMA_VERSION,
                          run_id="suite",
                          machines=[c.name for c in machines])
        if observe is None:
            observe = profile or recorder.enabled
        plan = plan_sweep(bench_names, machines, observe=observe)
        tracer = _engine_tracer(args)
        flow_ctx = None
        if use_flow:
            from .flow import FlowContext, FlowError
            from .flow.flows import run_sweep_flow

            cache = _engine_cache(args)
            if not cache.enabled:
                print("suite: --flow requires the trace cache "
                      "(drop --no-cache)", file=sys.stderr)
                return 2
            flow_ctx = FlowContext(
                cache=cache,
                run_id=run_id,
                flow_spec={
                    "driver": "suite",
                    "benchmarks": list(bench_names),
                    "machines": [c.name for c in machines],
                    "observe": bool(observe),
                    "profile": bool(profile),
                    "scheduler": getattr(args, "scheduler", None),
                },
                policy=_engine_policy(args),
                faults=_engine_faults(args),
            )
            try:
                result = run_sweep_flow(
                    plan, flow=flow_ctx,
                    workers=getattr(args, "workers", 1),
                    recorder=recorder, tracer=tracer,
                )
            except FlowError as exc:
                print(f"suite: {exc}", file=sys.stderr)
                return 2
        else:
            line, progress = _progress_line(args,
                                            total_cells=len(plan.cells))
            with line if line is not None else _nullcontext():
                result = execute(
                    plan,
                    workers=getattr(args, "workers", 1),
                    cache=_engine_cache(args),
                    recorder=recorder,
                    policy=_engine_policy(args),
                    faults=_engine_faults(args),
                    tracer=tracer,
                    progress=progress,
                    sample_resources=getattr(args, "sample_resources",
                                             False),
                )
        if recorder.enabled:
            for cell in result.cells:
                if cell.status != "failed":
                    recorder.emit("timing", benchmark=cell.benchmark,
                                  **cell.to_timing().as_dict())

        if single_machine:
            headers = ["benchmark", "dyn. instructions", "checksum",
                       "available ILP"]
            if profile:
                headers += ["raw_dep", "memory_order", "unit_conflict",
                            "issue_width"]
            rows = []
            for cell in result.cells:
                if cell.status == "failed":
                    row = [cell.benchmark, "-", "FAILED", "-"]
                    if profile:
                        row += ["-"] * 4
                    rows.append(row)
                    continue
                row = [cell.benchmark, cell.instructions,
                       "ok" if cell.checksum_ok else "MISMATCH",
                       cell.parallelism]
                if profile:
                    s = cell.stalls
                    row += [s.raw_dep, s.memory_order, s.unit_conflict,
                            s.issue_width]
                rows.append(row)
            print(format_table(headers, rows))
        else:
            from .analysis.sweep import SweepRow

            sweep_rows = [
                SweepRow(
                    benchmark=c.benchmark, options_label=c.options_label,
                    machine=c.machine, instructions=c.instructions,
                    base_cycles=c.base_cycles, parallelism=c.parallelism,
                    stalls=c.stalls,
                )
                for c in result.cells
            ]
            print(summarize(sweep_rows))
            bad = sorted({c.benchmark for c in result.cells
                          if not c.checksum_ok and c.status != "failed"})
            print("checksums:",
                  "all ok" if not bad else f"MISMATCH in {', '.join(bad)}")
            if profile:
                for bench in bench_names:
                    cells = [c for c in result.cells
                             if c.benchmark == bench
                             and c.status != "failed"]
                    if not cells:
                        continue
                    print()
                    print(render_stall_table(
                        [c.to_timing() for c in cells],
                        title=f"{bench}: stall attribution (minor cycles)",
                    ))
        assert result.report is not None
        print(result.report.summary())
        if flow_ctx is not None and flow_ctx.result is not None:
            print(flow_ctx.result.summary())
        if recorder.enabled:
            recorder.emit("run_end", seconds=result.report.seconds,
                          counters=dict(recorder.counters))
    _write_trace(args, tracer)
    return _report_failures(result.cells)


def _cmd_report(args) -> int:
    from .obs.report import build_suite_report, default_report_machines

    if args.input is not None:
        return _summarize_report(args.input)

    benchmarks = _parse_benchmarks(args.benchmarks)
    machines = _resolve_machines(args.machines, default_report_machines())
    tracer = _engine_tracer(args)
    with _open_recorder(args.output) as recorder:
        report = build_suite_report(
            benchmarks=benchmarks,
            machines=machines,
            recorder=recorder,
            workers=args.workers,
            tracer=tracer,
        )
    _write_trace(args, tracer)
    fmt = getattr(args, "format", "text")
    if fmt == "json":
        import json

        print(json.dumps(report.as_dict(), indent=2, sort_keys=True,
                         default=str))
    elif fmt == "markdown":
        print(report.render_markdown())
    elif not args.quiet:
        print(report.render())
        print()
    ok = report.conservation_holds()
    status = (f"JSONL report written to {args.output} "
              f"(conservation law: {'holds' if ok else 'VIOLATED'})")
    # JSON mode keeps stdout machine-parseable; the status goes to stderr.
    print(status, file=sys.stderr if fmt == "json" else sys.stdout)
    return 0 if ok else 1


def _load_report_events(path: str, command: str):
    """Tolerantly load a JSONL report for a read-side CLI command.

    Returns ``(events, skipped)``; on an unreadable or empty report
    prints one clear line instead of a stack trace and returns
    ``(None, 0)``.
    """
    from .obs.recorder import read_jsonl_tolerant

    try:
        events, skipped = read_jsonl_tolerant(path)
    except OSError as exc:
        print(f"{command}: cannot read {path}: {exc.strerror or exc}",
              file=sys.stderr)
        return None, 0
    if skipped:
        print(f"{command}: warning: skipped {skipped} malformed "
              f"line(s) in {path} (truncated report?)", file=sys.stderr)
    if not events:
        print(f"{command}: {path}: no valid events "
              "(empty or fully truncated report)", file=sys.stderr)
        return None, skipped
    return events, skipped


def _summarize_report(path: str) -> int:
    """``repro report --input``: summarize an existing JSONL report."""
    events, _skipped = _load_report_events(path, "report")
    if events is None:
        return 1
    counts: dict[str, int] = {}
    for event in events:
        name = event.get("event", "?")
        counts[name] = counts.get(name, 0) + 1
    run_start = next((e for e in events if e.get("event") == "run_start"),
                     None)
    run_id = run_start.get("run_id", "?") if run_start else "?"
    print(f"run report {path} (run_id: {run_id})")
    rows = [[name, counts[name]] for name in sorted(counts)]
    print(format_table(["event", "count"], rows))
    if "run_end" not in counts:
        print("note: no run_end event — the run did not finish cleanly")
    return 0


def _render_metrics_summary(events: list[dict]) -> str:
    """Cache/memo hit rates and retry counts from a report's events."""
    lines = []

    def rate(hits: float, total: float) -> str:
        return f"{hits / total:.0%}" if total else "n/a"

    metrics = [e for e in events if e.get("event") == "metrics"]
    if metrics:
        counters = metrics[-1].get("counters", {})
        gets = counters.get("cache.gets", 0)
        if gets:
            lines.append(
                f"trace cache: {gets:.0f} gets, "
                f"{counters.get('cache.hits', 0):.0f} hits / "
                f"{counters.get('cache.misses', 0):.0f} misses / "
                f"{counters.get('cache.corrupt', 0):.0f} corrupt-drops "
                f"({rate(counters.get('cache.hits', 0), gets)} hit rate)"
            )
        memo_gets = counters.get("cache.memo_gets", 0)
        if memo_gets:
            lines.append(
                f"memo store: {memo_gets:.0f} gets, "
                f"{counters.get('cache.memo_hits', 0):.0f} hits / "
                f"{counters.get('cache.memo_misses', 0):.0f} misses / "
                f"{counters.get('cache.memo_corrupt', 0):.0f} "
                f"corrupt-drops, "
                f"{counters.get('cache.memo_stores', 0):.0f} stores "
                f"({rate(counters.get('cache.memo_hits', 0), memo_gets)} "
                "hit rate)"
            )
        memo = (counters.get("replay.memo_hits", 0)
                + counters.get("replay.memo_misses", 0))
        if memo:
            lines.append(
                f"replay memo: "
                f"{counters.get('replay.memo_hits', 0):.0f} hits / "
                f"{counters.get('replay.memo_misses', 0):.0f} misses / "
                f"{counters.get('replay.fallbacks', 0):.0f} fallbacks "
                f"({rate(counters.get('replay.memo_hits', 0), memo)} "
                "hit rate)"
            )
            persisted = counters.get("replay.memo_persisted_hits", 0)
            if persisted:
                lines[-1] += f", {persisted:.0f} hits from persisted tables"
        blocks = counters.get("replay.blocks", 0)
        vec = counters.get("replay.vectorized_blocks", 0)
        fallback = counters.get("replay.scalar_fallback_blocks", 0)
        if vec or fallback:
            lines.append(
                f"vectorized replay: {vec:.0f}/{blocks:.0f} blocks "
                f"({rate(vec, blocks)}), "
                f"{fallback:.0f} scalar-fallback blocks"
            )
    engine = next((e for e in reversed(events)
                   if e.get("event") == "engine"), None)
    if engine is not None and engine.get("replay_backend"):
        lines.append(f"replay backend: {engine['replay_backend']}")
        retries = counters.get("engine.group_retries", 0)
        restarts = counters.get("engine.pool_restarts", 0)
        degraded = counters.get("engine.cells.degraded", 0)
        failed = counters.get("engine.cells.failed", 0)
        if retries or restarts or degraded or failed:
            lines.append(
                f"resilience: {retries:.0f} group retries, "
                f"{restarts:.0f} pool restarts, {degraded:.0f} degraded "
                f"/ {failed:.0f} failed cells"
            )
    return "\n".join(lines)


def _cmd_gap(args) -> int:
    """``repro gap``: heuristic-vs-optimal scheduling gap per cell."""
    from .analysis.gap import DEFAULT_SCHEDULERS, compute_gap
    from .sched import registry as sched_registry

    benchmarks = _parse_benchmarks(getattr(args, "benchmarks", None))
    machines = _resolve_machines(args.machines, paper_machines())
    schedulers = [
        name for spec in (args.schedulers or list(DEFAULT_SCHEDULERS))
        for name in spec.replace(",", " ").split()
    ]
    unknown = [s for s in schedulers if s not in sched_registry.names()]
    if unknown:
        print(f"gap: unknown scheduler backend(s) "
              f"{', '.join(unknown)} (registered: "
              f"{', '.join(sched_registry.names())})", file=sys.stderr)
        return 2
    report = compute_gap(
        benchmarks, machines,
        schedulers=schedulers, baseline=schedulers[0],
        workers=args.workers, cache=_engine_cache(args),
        policy=_engine_policy(args),
    )
    if args.json:
        import json

        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    if not report.ok:
        print("gap: FAIL: 'exact' exceeded the baseline on some cell "
              "(should be impossible; scheduling model bug?)",
              file=sys.stderr)
        return 1
    return 0


def _cmd_trace(args) -> int:
    """``repro trace``: self-profile a run report's span timeline."""
    from .obs.trace import profile_tree, spans_from_events

    events, _skipped = _load_report_events(args.input, "trace")
    if events is None:
        return 1
    spans = spans_from_events(events)
    if not spans:
        print(f"trace: {args.input}: no span events (re-run with "
              "--report/--trace-out on a current build)", file=sys.stderr)
        return 1
    print(profile_tree(spans, title=f"self-profile: {args.input}"))
    summary = _render_metrics_summary(events)
    if summary:
        print()
        print(summary)
    if args.chrome is not None:
        from .obs.trace import write_chrome_trace

        write_chrome_trace(args.chrome, spans)
        print(f"\nChrome trace written to {args.chrome} "
              "(load at ui.perfetto.dev)")
    return 0


def _cmd_exhibit(args) -> int:
    from .analysis.experiments import ALL_EXHIBITS, prime_all_exhibits

    idents = args.idents
    if idents == ["list"]:
        for name, factory in ALL_EXHIBITS.items():
            print(f"{name:12s} {factory.__doc__.splitlines()[0]}")
        return 0
    if idents == ["all"]:
        idents = list(ALL_EXHIBITS)
    unknown = [i for i in idents if i not in ALL_EXHIBITS]
    if unknown:
        print(f"unknown exhibits: {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(ALL_EXHIBITS)}", file=sys.stderr)
        return 2
    # Priming compiles every exhibit's units up front, which only pays
    # off when there is a worker pool to fan them across (the warmed
    # disk cache then serves later runs for free).
    if args.workers > 1:
        report = prime_all_exhibits(workers=args.workers,
                                    cache=_engine_cache(args))
        print(report.summary(), file=sys.stderr)
    for ident in idents:
        print(ALL_EXHIBITS[ident]())
        print()
    return 0


def _open_ledger(args, *, create: bool = True):
    """A HistoryLedger at --ledger / $REPRO_LEDGER / the default path.

    ``create=False`` raises :class:`LedgerError` instead of creating an
    empty database — read-only commands (diff, dash) want a missing
    ledger to be a one-line exit-2 error, not a silent empty result.
    """
    from .obs.history import HistoryLedger

    return HistoryLedger(getattr(args, "ledger", None), create=create)


def _cmd_ingest(args) -> int:
    """``repro ingest``: file(s) -> the run-history ledger."""
    from .obs.history import LedgerError

    status = 0
    with _open_ledger(args) as ledger:
        for path in args.inputs:
            if not os.path.exists(path):
                print(f"ingest: {path}: no such file", file=sys.stderr)
                status = 1
                continue
            try:
                if path.endswith(".jsonl"):
                    result = ledger.ingest_report(path)
                elif path.endswith(".json"):
                    result = ledger.ingest_bench(path)
                else:
                    print(f"ingest: {path}: expected a .jsonl run report"
                          " or a .json bench document", file=sys.stderr)
                    status = 1
                    continue
            except (LedgerError, ValueError, OSError) as exc:
                print(f"ingest: {path}: {exc}", file=sys.stderr)
                status = 1
                continue
            print(f"{path}: {result.summary()}")
        print(f"ledger: {ledger.path}")
    return status


def _cmd_diff(args) -> int:
    """``repro diff A B``: per-metric regression verdicts, gated exit."""
    import dataclasses

    from .obs.diff import DiffPolicy, diff_payloads, load_diff_side
    from .obs.history import LedgerError

    policy = DiffPolicy(warn_only=args.warn_only)
    overrides = {}
    if args.max_regression is not None:
        overrides["max_regression"] = args.max_regression
    if args.seconds_tolerance is not None:
        overrides["seconds_tolerance"] = args.seconds_tolerance
    if overrides:
        policy = dataclasses.replace(policy, **overrides)

    needs_ledger = not (os.path.exists(args.a) and os.path.exists(args.b))
    try:
        if needs_ledger:
            with _open_ledger(args, create=False) as ledger:
                a = load_diff_side(args.a, ledger)
                b = load_diff_side(args.b, ledger)
        else:
            a = load_diff_side(args.a)
            b = load_diff_side(args.b)
    except (LedgerError, ValueError, OSError) as exc:
        print(f"diff: {exc}", file=sys.stderr)
        return 2
    result = diff_payloads(a, b, policy)
    if args.json:
        import json

        print(json.dumps(result.as_dict(), indent=2, sort_keys=True))
    else:
        print(f"diff: {args.a} (baseline) vs {args.b} (candidate)")
        print(result.render())
    return 0 if result.ok or args.warn_only else 1


def _cmd_dash(args) -> int:
    """``repro dash``: ledger -> one self-contained HTML file."""
    from .obs.dash import write_dashboard
    from .obs.history import LedgerError

    try:
        with _open_ledger(args, create=False) as ledger:
            data = ledger.export()
    except LedgerError as exc:
        print(f"dash: {exc}", file=sys.stderr)
        return 2
    if not data["runs"]:
        print(f"dash: ledger {ledger.path} has no runs "
              "(ingest a report first)", file=sys.stderr)
        return 2
    write_dashboard(args.out, data, title=args.title)
    n_runs = len(data["runs"])
    print(f"dashboard written to {args.out} "
          f"({n_runs} run{'s' if n_runs != 1 else ''}, "
          f"{len(data['flaky'])} flaky cell(s))")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "measure": _cmd_measure,
        "suite": _cmd_suite,
        "resume": _cmd_resume,
        "report": _cmd_report,
        "exhibit": _cmd_exhibit,
        "gap": _cmd_gap,
        "trace": _cmd_trace,
        "ingest": _cmd_ingest,
        "diff": _cmd_diff,
        "dash": _cmd_dash,
    }
    from .engine.resilience import install_sigterm_handler

    install_sigterm_handler()
    try:
        scheduler = getattr(args, "scheduler", None)
        if scheduler is None:
            return handlers[args.command](args)
        # --scheduler: pin the process-wide default backend so every
        # CompilerOptions built for this run (benchmark defaults included)
        # compiles through it; restored afterwards for in-process callers.
        from .errors import SchedulingError
        from .sched import registry as sched_registry

        try:
            previous = sched_registry.set_default(scheduler)
        except SchedulingError as exc:
            print(f"--scheduler: {exc}", file=sys.stderr)
            return 2
        try:
            return handlers[args.command](args)
        finally:
            sched_registry.set_default(previous)
    except KeyboardInterrupt:
        # Raised by ^C or by the SIGTERM handler installed above; the
        # engine has already unwound (checkpoints/journals are synced
        # line-by-line), so a plain exit is safe and resumable.
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    raise SystemExit(main())

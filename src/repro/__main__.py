"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run <file.tin>``
    Compile and execute a Tin source file; print its result.
``measure <file.tin>``
    Compile, execute and report ILP across standard machines.
``suite``
    Run the eight-benchmark suite and print the ILP summary.
``exhibit <ident> [...]``
    Regenerate paper exhibits (``exhibit list`` to enumerate).
"""

from __future__ import annotations

import argparse
import sys

from .analysis.tables import format_table
from .machine import (
    base_machine,
    cray1,
    ideal_superscalar,
    multititan,
    superpipelined,
)
from .opt.options import CompilerOptions, OptLevel
from .sim.interp import run as interp_run
from .sim.timing import simulate


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Jouppi & Wall (ASPLOS 1989) ILP measurement system",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="compile and execute a Tin file")
    p_run.add_argument("file")
    p_run.add_argument(
        "-O", dest="opt", type=int, default=4, choices=range(5),
        help="optimization level (0..4, default 4)",
    )

    p_measure = sub.add_parser(
        "measure", help="measure a Tin file's ILP on standard machines"
    )
    p_measure.add_argument("file")
    p_measure.add_argument("-O", dest="opt", type=int, default=4,
                           choices=range(5))
    p_measure.add_argument("--unroll", type=int, default=1)
    p_measure.add_argument("--careful", action="store_true")

    sub.add_parser("suite", help="run the eight-benchmark suite")

    p_ex = sub.add_parser("exhibit", help="regenerate paper exhibits")
    p_ex.add_argument("idents", nargs="+",
                      help="exhibit ids, or 'list' / 'all'")
    return parser


def _compile_file(path: str, args) -> tuple:
    from .opt.driver import compile_source

    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    options = CompilerOptions(
        opt_level=OptLevel(args.opt),
        unroll=getattr(args, "unroll", 1),
        careful=getattr(args, "careful", False),
    )
    program = compile_source(source, options)
    return program, interp_run(program)


def _cmd_run(args) -> int:
    _program, result = _compile_file(args.file, args)
    print(f"result: {result.value}")
    print(f"dynamic instructions: {result.instructions}")
    return 0


def _cmd_measure(args) -> int:
    _program, result = _compile_file(args.file, args)
    print(f"result: {result.value}   "
          f"dynamic instructions: {result.instructions}")
    rows = []
    for cfg in (
        base_machine(),
        ideal_superscalar(2),
        ideal_superscalar(4),
        ideal_superscalar(8),
        superpipelined(4),
        multititan(),
        cray1(),
    ):
        timing = simulate(result.trace, cfg)
        rows.append([cfg.name, timing.base_cycles, timing.parallelism])
    print(format_table(["machine", "base cycles", "instr/cycle"], rows))
    return 0


def _cmd_suite(_args) -> int:
    from .benchmarks import suite as bench_suite

    rows = []
    for bench in bench_suite.all_benchmarks():
        result = bench_suite.run_benchmark(bench)
        ok = abs(result.value - bench.reference()) <= bench.fp_tolerance
        ilp = simulate(result.trace, ideal_superscalar(64)).parallelism
        rows.append([
            bench.name, result.instructions,
            "ok" if ok else "MISMATCH", ilp,
        ])
    print(format_table(
        ["benchmark", "dyn. instructions", "checksum", "available ILP"],
        rows,
    ))
    return 0


def _cmd_exhibit(args) -> int:
    from .analysis.experiments import ALL_EXHIBITS

    idents = args.idents
    if idents == ["list"]:
        for name, factory in ALL_EXHIBITS.items():
            print(f"{name:12s} {factory.__doc__.splitlines()[0]}")
        return 0
    if idents == ["all"]:
        idents = list(ALL_EXHIBITS)
    unknown = [i for i in idents if i not in ALL_EXHIBITS]
    if unknown:
        print(f"unknown exhibits: {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(ALL_EXHIBITS)}", file=sys.stderr)
        return 2
    for ident in idents:
        print(ALL_EXHIBITS[ident]())
        print()
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "measure": _cmd_measure,
        "suite": _cmd_suite,
        "exhibit": _cmd_exhibit,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())

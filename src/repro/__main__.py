"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run <file.tin>``
    Compile and execute a Tin source file; print its result.
``measure <file.tin>``
    Compile, execute and report ILP across standard machines
    (``--profile`` adds pass-level compile stats and stall attribution).
``suite``
    Run the eight-benchmark suite and print the ILP summary.
``report``
    Observe the suite end to end: per-pass compile profile, per-machine
    stall breakdown, and a machine-readable JSONL run report.
``exhibit <ident> [...]``
    Regenerate paper exhibits (``exhibit list`` to enumerate).
"""

from __future__ import annotations

import argparse
import sys

from .analysis.tables import format_table
from .machine import (
    base_machine,
    cray1,
    ideal_superscalar,
    multititan,
    superpipelined,
)
from .opt.options import CompilerOptions, OptLevel
from .sim.interp import run as interp_run
from .sim.timing import simulate


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Jouppi & Wall (ASPLOS 1989) ILP measurement system",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="compile and execute a Tin file")
    p_run.add_argument("file")
    p_run.add_argument(
        "-O", dest="opt", type=int, default=4, choices=range(5),
        help="optimization level (0..4, default 4)",
    )

    p_measure = sub.add_parser(
        "measure", help="measure a Tin file's ILP on standard machines"
    )
    p_measure.add_argument("file")
    p_measure.add_argument("-O", dest="opt", type=int, default=4,
                           choices=range(5))
    p_measure.add_argument("--unroll", type=int, default=1)
    p_measure.add_argument("--careful", action="store_true")
    p_measure.add_argument(
        "--profile", action="store_true",
        help="collect pass-level compile stats and stall attribution",
    )
    p_measure.add_argument(
        "--report", metavar="PATH", default=None,
        help="also write the observed run as a JSONL report",
    )

    p_suite = sub.add_parser("suite", help="run the eight-benchmark suite")
    p_suite.add_argument(
        "--profile", action="store_true",
        help="add per-benchmark stall attribution on the 64-wide machine",
    )
    p_suite.add_argument(
        "--report", metavar="PATH", default=None,
        help="also write the observed run as a JSONL report",
    )

    p_report = sub.add_parser(
        "report",
        help="observe the suite: compile profiles, stall breakdowns, JSONL",
    )
    p_report.add_argument(
        "-o", "--output", metavar="PATH",
        default="results/run_report.jsonl",
        help="JSONL run-report path (default: results/run_report.jsonl)",
    )
    p_report.add_argument(
        "--benchmarks", nargs="+", metavar="NAME", default=None,
        help="subset of benchmarks, space- or comma-separated "
             "(default: the whole suite)",
    )
    p_report.add_argument(
        "--quiet", action="store_true",
        help="write the JSONL report without rendering tables",
    )

    p_ex = sub.add_parser("exhibit", help="regenerate paper exhibits")
    p_ex.add_argument("idents", nargs="+",
                      help="exhibit ids, or 'list' / 'all'")
    return parser


_MEASURE_MACHINES = (
    base_machine,
    lambda: ideal_superscalar(2),
    lambda: ideal_superscalar(4),
    lambda: ideal_superscalar(8),
    lambda: superpipelined(4),
    multititan,
    cray1,
)


def _compile_file(path: str, args, profile=None) -> tuple:
    from .opt.driver import compile_source

    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    options = CompilerOptions(
        opt_level=OptLevel(args.opt),
        unroll=getattr(args, "unroll", 1),
        careful=getattr(args, "careful", False),
    )
    program = compile_source(source, options, profile)
    return program, interp_run(program)


def _open_recorder(path: str | None):
    """A JSONL recorder at ``path``, or the shared no-op sink."""
    from .obs.recorder import NULL_RECORDER, JsonlRecorder

    if path is None:
        return NULL_RECORDER
    import os

    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    return JsonlRecorder(path)


def _cmd_run(args) -> int:
    _program, result = _compile_file(args.file, args)
    print(f"result: {result.value}")
    print(f"dynamic instructions: {result.instructions}")
    return 0


def _cmd_measure(args) -> int:
    if not args.profile and args.report is None:
        _program, result = _compile_file(args.file, args)
        print(f"result: {result.value}   "
              f"dynamic instructions: {result.instructions}")
        rows = []
        for factory in _MEASURE_MACHINES:
            timing = simulate(result.trace, factory())
            rows.append([timing.config_name, timing.base_cycles,
                         timing.parallelism])
        print(format_table(["machine", "base cycles", "instr/cycle"], rows))
        return 0

    from .obs.profile import CompileProfile
    from .obs.recorder import SCHEMA_VERSION
    from .obs.report import (
        emit_compile_events,
        render_profile_table,
        render_stall_table,
    )

    profile = CompileProfile()
    with _open_recorder(args.report) as recorder:
        recorder.emit("run_start", schema=SCHEMA_VERSION, run_id=args.file)
        _program, result = _compile_file(args.file, args, profile)
        emit_compile_events(recorder, args.file, profile)
        print(f"result: {result.value}   "
              f"dynamic instructions: {result.instructions}")
        print()
        print(render_profile_table(profile, title="compile profile"))
        timings = []
        for factory in _MEASURE_MACHINES:
            timing = simulate(result.trace, factory(), observe=True)
            timings.append(timing)
            recorder.emit("timing", benchmark=args.file,
                          **timing.as_dict())
        print()
        print(render_stall_table(
            timings, title="stall attribution (minor cycles)"
        ))
        recorder.emit("run_end", seconds=profile.total_seconds(),
                      counters=dict(recorder.counters))
    if args.report is not None:
        print(f"\nJSONL report written to {args.report}")
    return 0


def _cmd_suite(args) -> int:
    from .benchmarks import suite as bench_suite

    profile = getattr(args, "profile", False)
    wide = ideal_superscalar(64)
    with _open_recorder(getattr(args, "report", None)) as recorder:
        if recorder.enabled:
            from .obs.recorder import SCHEMA_VERSION

            recorder.emit("run_start", schema=SCHEMA_VERSION,
                          run_id="suite", machines=[wide.name])
        headers = ["benchmark", "dyn. instructions", "checksum",
                   "available ILP"]
        if profile:
            headers += ["raw_dep", "memory_order", "unit_conflict",
                        "issue_width"]
        rows = []
        for bench in bench_suite.all_benchmarks():
            result = bench_suite.run_benchmark(bench)
            ok = abs(result.value - bench.reference()) <= bench.fp_tolerance
            timing = simulate(result.trace, wide, observe=profile)
            row = [bench.name, result.instructions,
                   "ok" if ok else "MISMATCH", timing.parallelism]
            if profile:
                s = timing.stalls
                row += [s.raw_dep, s.memory_order, s.unit_conflict,
                        s.issue_width]
            if recorder.enabled:
                recorder.emit("timing", benchmark=bench.name,
                              **timing.as_dict())
            rows.append(row)
        print(format_table(headers, rows))
        if recorder.enabled:
            recorder.emit("run_end", seconds=0.0,
                          counters=dict(recorder.counters))
    return 0


def _cmd_report(args) -> int:
    from .benchmarks import suite as bench_suite
    from .obs.report import build_suite_report

    benchmarks = None
    if args.benchmarks is not None:
        benchmarks = [name for tok in args.benchmarks
                      for name in tok.split(",") if name]
        known = {b.name for b in bench_suite.all_benchmarks()}
        unknown = [n for n in benchmarks if n not in known]
        if unknown:
            print(f"unknown benchmark(s): {', '.join(unknown)} "
                  f"(choose from {', '.join(sorted(known))})",
                  file=sys.stderr)
            return 2
    with _open_recorder(args.output) as recorder:
        report = build_suite_report(
            benchmarks=benchmarks, recorder=recorder
        )
    if not args.quiet:
        print(report.render())
        print()
    ok = report.conservation_holds()
    print(f"JSONL report written to {args.output} "
          f"(conservation law: {'holds' if ok else 'VIOLATED'})")
    return 0 if ok else 1


def _cmd_exhibit(args) -> int:
    from .analysis.experiments import ALL_EXHIBITS

    idents = args.idents
    if idents == ["list"]:
        for name, factory in ALL_EXHIBITS.items():
            print(f"{name:12s} {factory.__doc__.splitlines()[0]}")
        return 0
    if idents == ["all"]:
        idents = list(ALL_EXHIBITS)
    unknown = [i for i in idents if i not in ALL_EXHIBITS]
    if unknown:
        print(f"unknown exhibits: {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(ALL_EXHIBITS)}", file=sys.stderr)
        return 2
    for ident in idents:
        print(ALL_EXHIBITS[ident]())
        print()
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "measure": _cmd_measure,
        "suite": _cmd_suite,
        "report": _cmd_report,
        "exhibit": _cmd_exhibit,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())

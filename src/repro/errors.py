"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without catching unrelated Python errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TinSyntaxError(ReproError):
    """Raised by the Tin lexer/parser on malformed source.

    Carries the 1-based source ``line`` and ``column`` of the offending token.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(f"{line}:{column}: {message}" if line else message)
        self.line = line
        self.column = column


class TinSemanticError(ReproError):
    """Raised during semantic analysis (undeclared names, type errors...)."""


class CodegenError(ReproError):
    """Raised when the code generator meets an AST shape it cannot lower."""


class MachineConfigError(ReproError):
    """Raised for inconsistent machine descriptions (e.g. uncovered class)."""


class TraceError(ReproError):
    """Raised for malformed dynamic traces.

    Examples: a memory instruction recorded without an effective address,
    or an address attached to a non-memory instruction — either would
    silently mis-simulate store→load ordering in the timing model.
    """


class SimulationError(ReproError):
    """Raised by the functional interpreter on illegal execution.

    Examples: memory access out of bounds, division by zero, executing past
    the end of a function, or exceeding the instruction budget.
    """


class InterpBudgetError(SimulationError):
    """Raised when a functional execution exceeds its instruction budget.

    Carries the state the execution engine needs to classify the failure
    as a *bounded* cell error (fail fast, no retries) instead of a dead
    worker: ``executed`` dynamic instructions so far, the current ``pc``
    in the flattened program, and the ``budget`` that was exceeded.
    """

    def __init__(self, executed: int, pc: int, budget: int) -> None:
        super().__init__(
            f"instruction budget exceeded ({budget}): "
            f"{executed} instructions executed, pc={pc}"
        )
        self.executed = executed
        self.pc = pc
        self.budget = budget

    def __reduce__(self):  # keep picklable across process boundaries
        return (InterpBudgetError, (self.executed, self.pc, self.budget))


class ResourceLimitError(ReproError):
    """Raised when a cell exceeds a resource ceiling (e.g. peak RSS).

    A typed, picklable signal the engine classifies as a bounded cell
    failure rather than letting the worker die to the OOM killer.
    """

    def __init__(self, resource: str, used: float, limit: float) -> None:
        super().__init__(
            f"{resource} ceiling exceeded: {used:.1f} > {limit:.1f}"
        )
        self.resource = resource
        self.used = used
        self.limit = limit

    def __reduce__(self):
        return (ResourceLimitError, (self.resource, self.used, self.limit))


class RegisterAllocationError(ReproError):
    """Raised when register allocation cannot honour the register budget."""


class SchedulingError(ReproError):
    """Raised when the scheduler produces or detects an invalid ordering."""


class ScheduleBudgetError(SchedulingError):
    """Raised when the exact scheduler's search exceeds its budget.

    Carries what the backend needs for its automatic fallback (and the
    engine's resilience ladder, should it escape): the ``block`` label,
    how many search ``nodes`` were expanded, and which ``limit`` tripped
    (``"nodes"``, ``"seconds"`` or ``"block-size"``).  Picklable across
    process boundaries like every engine-facing typed error.
    """

    def __init__(self, block: str, nodes: int, limit: str) -> None:
        super().__init__(
            f"exact-schedule budget exceeded in block {block!r}: "
            f"{limit} limit hit after {nodes} search nodes"
        )
        self.block = block
        self.nodes = nodes
        self.limit = limit

    def __reduce__(self):  # keep picklable across process boundaries
        return (ScheduleBudgetError, (self.block, self.nodes, self.limit))

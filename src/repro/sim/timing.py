"""In-order issue timing simulation (the paper's machine model).

The model replays a dynamic trace against a :class:`MachineConfig`:

* Instructions issue strictly **in order** (the paper excludes out-of-order
  issue; "techniques to reorder instructions at compile time instead of at
  run time are almost as good").  Several instructions may issue in the
  same (minor) cycle, up to the issue width.
* An instruction cannot issue until every register source is ready; a
  producer of class *c* makes its result available ``latency(c)`` minor
  cycles after it issues.
* A load cannot issue until the last store to the same word has completed.
* Functional units model *class conflicts*: a unit copy that issued an
  instruction is busy for its issue latency.  With no units configured the
  machine is ideal (no structural hazards).
* Branches are perfectly predicted and therefore never stall the front end
  (Section 2.1's assumption of perfect branch-slot filling / prediction).

Time is counted in minor cycles and converted to base-machine cycles for
reporting; the *parallelism* (ILP actually exploited) of a run is
``dynamic instructions / base cycles``, which is exactly 1.0 on the base
machine.

All three entry points — :func:`simulate` (fast and ``observe=True``
stall-attributed) and :func:`issue_schedule` — share the single replay
loop in :mod:`repro.sim.replay`, which memoizes repeated trace blocks;
``memoize=False`` forces the direct per-instruction reference path, which
is bit-identical by construction (and by the property tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.opcodes import InstrClass
from ..machine.config import MachineConfig
from ..obs.stalls import StallBreakdown
from .replay import (  # noqa: F401  (re-exported for sim.cache/sim.limits)
    ReplayCore,
    ReplayStats,
    _static_records,
    _UnitState,
    replay,
)
from .trace import Trace

_CLASS_INDEX = {klass: i for i, klass in enumerate(InstrClass)}


@dataclass(frozen=True, slots=True)
class TimingResult:
    """Outcome of replaying one trace on one machine configuration."""

    config_name: str
    instructions: int
    minor_cycles: int
    base_cycles: float
    #: Per-cause stall attribution; only populated by
    #: ``simulate(..., observe=True)`` (None on the fast path).
    stalls: StallBreakdown | None = None
    #: Replay-memo counters (hits/misses/fallbacks); informational only,
    #: so two results differing just in replay statistics compare equal.
    replay: ReplayStats | None = field(default=None, compare=False)

    @property
    def parallelism(self) -> float:
        """Average instructions completed per base cycle.

        Equals the speedup over the base machine, because the base machine
        executes exactly one instruction per base cycle without stalls.
        Always finite: an empty run reports 0.0 (never NaN/inf).
        """
        if self.instructions == 0 or self.base_cycles <= 0:
            return 0.0
        return self.instructions / self.base_cycles

    @property
    def cpi(self) -> float:
        """Base cycles per instruction (0.0 for an empty run, never NaN)."""
        if self.instructions == 0 or self.base_cycles <= 0:
            return 0.0
        return self.base_cycles / self.instructions

    def summary(self) -> str:
        """One-line human summary, shared by the CLI and run reports."""
        text = (
            f"{self.config_name}: {self.instructions} instructions, "
            f"{self.base_cycles:.2f} base cycles, "
            f"parallelism {self.parallelism:.2f}, cpi {self.cpi:.3f}"
        )
        if self.stalls is not None:
            s = self.stalls
            text += (
                f" | stall cycles: raw_dep {s.raw_dep}, "
                f"memory_order {s.memory_order}, "
                f"unit_conflict {s.unit_conflict}, "
                f"issue_width {s.issue_width}"
            )
            if s.control:
                text += f", control {s.control}"
        return text

    def as_dict(self) -> dict:
        """JSON-serializable form used by the run-report events."""
        record = {
            "machine": self.config_name,
            "instructions": self.instructions,
            "minor_cycles": self.minor_cycles,
            "base_cycles": self.base_cycles,
            "parallelism": self.parallelism,
            "cpi": self.cpi,
        }
        if self.stalls is not None:
            record["stalls"] = self.stalls.as_dict()
        if self.replay is not None:
            record["replay"] = self.replay.as_dict()
        return record


def simulate(
    trace: Trace, config: MachineConfig, *,
    observe: bool = False, memoize: bool = True,
    memo=None,
) -> TimingResult:
    """Replay ``trace`` on ``config`` and return cycle counts.

    The returned ``minor_cycles`` is the completion time of the last
    result; on the base machine this equals the dynamic instruction count.

    With ``observe=True`` the replay additionally attributes every minor
    cycle an instruction waited to a stall cause (see
    :mod:`repro.obs.stalls`) and attaches the resulting
    :class:`~repro.obs.stalls.StallBreakdown` to the result.

    ``memoize=False`` disables block memoization and replays every
    dynamic instruction directly (the reference path; results are
    identical either way).

    ``memo`` optionally names a persistent memo store
    (:class:`repro.sim.memo.MemoStore`): the replay warm-starts from a
    previously persisted payload and shares learned entries back.
    Results are bit-identical with or without it.
    """
    if memo is not None and memoize and memo.enabled:
        from .memo import replay_with_memo

        outcome = replay_with_memo(memo, trace, config, observe=observe)
    else:
        outcome = replay(trace, config, observe=observe, memoize=memoize)
    return TimingResult(
        config_name=config.name,
        instructions=len(trace),
        minor_cycles=outcome.minor_cycles,
        base_cycles=config.minor_to_base(outcome.minor_cycles),
        stalls=outcome.stalls,
        replay=outcome.stats,
    )


def issue_schedule(
    trace: Trace, config: MachineConfig, *, memoize: bool = True
) -> list[int]:
    """Per-event issue times in minor cycles (for pipeline diagrams).

    Runs the same model as :func:`simulate` but records when each dynamic
    instruction issues; used by ``repro.analysis.pipeviz`` to regenerate the
    paper's Figure 2-x execution diagrams.
    """
    outcome = replay(trace, config, want_times=True, memoize=memoize)
    return outcome.times


def parallelism(trace: Trace, config: MachineConfig) -> float:
    """Convenience wrapper: parallelism of ``trace`` on ``config``."""
    return simulate(trace, config).parallelism

"""In-order issue timing simulation (the paper's machine model).

The model replays a dynamic trace against a :class:`MachineConfig`:

* Instructions issue strictly **in order** (the paper excludes out-of-order
  issue; "techniques to reorder instructions at compile time instead of at
  run time are almost as good").  Several instructions may issue in the
  same (minor) cycle, up to the issue width.
* An instruction cannot issue until every register source is ready; a
  producer of class *c* makes its result available ``latency(c)`` minor
  cycles after it issues.
* A load cannot issue until the last store to the same word has completed.
* Functional units model *class conflicts*: a unit copy that issued an
  instruction is busy for its issue latency.  With no units configured the
  machine is ideal (no structural hazards).
* Branches are perfectly predicted and therefore never stall the front end
  (Section 2.1's assumption of perfect branch-slot filling / prediction).

Time is counted in minor cycles and converted to base-machine cycles for
reporting; the *parallelism* (ILP actually exploited) of a run is
``dynamic instructions / base cycles``, which is exactly 1.0 on the base
machine.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.opcodes import InstrClass
from ..isa.registers import flat_index
from ..machine.config import MachineConfig
from ..obs.stalls import StallBreakdown
from .trace import Trace

_CLASS_INDEX = {klass: i for i, klass in enumerate(InstrClass)}


@dataclass(frozen=True, slots=True)
class TimingResult:
    """Outcome of replaying one trace on one machine configuration."""

    config_name: str
    instructions: int
    minor_cycles: int
    base_cycles: float
    #: Per-cause stall attribution; only populated by
    #: ``simulate(..., observe=True)`` (None on the fast path).
    stalls: StallBreakdown | None = None

    @property
    def parallelism(self) -> float:
        """Average instructions completed per base cycle.

        Equals the speedup over the base machine, because the base machine
        executes exactly one instruction per base cycle without stalls.
        Always finite: an empty run reports 0.0 (never NaN/inf).
        """
        if self.instructions == 0 or self.base_cycles <= 0:
            return 0.0
        return self.instructions / self.base_cycles

    @property
    def cpi(self) -> float:
        """Base cycles per instruction (0.0 for an empty run, never NaN)."""
        if self.instructions == 0 or self.base_cycles <= 0:
            return 0.0
        return self.base_cycles / self.instructions

    def summary(self) -> str:
        """One-line human summary, shared by the CLI and run reports."""
        text = (
            f"{self.config_name}: {self.instructions} instructions, "
            f"{self.base_cycles:.2f} base cycles, "
            f"parallelism {self.parallelism:.2f}, cpi {self.cpi:.3f}"
        )
        if self.stalls is not None:
            s = self.stalls
            text += (
                f" | stall cycles: raw_dep {s.raw_dep}, "
                f"memory_order {s.memory_order}, "
                f"unit_conflict {s.unit_conflict}, "
                f"issue_width {s.issue_width}"
            )
            if s.control:
                text += f", control {s.control}"
        return text

    def as_dict(self) -> dict:
        """JSON-serializable form used by the run-report events."""
        record = {
            "machine": self.config_name,
            "instructions": self.instructions,
            "minor_cycles": self.minor_cycles,
            "base_cycles": self.base_cycles,
            "parallelism": self.parallelism,
            "cpi": self.cpi,
        }
        if self.stalls is not None:
            record["stalls"] = self.stalls.as_dict()
        return record


class _UnitState:
    """Run-time state of one functional-unit type (all copies)."""

    __slots__ = ("issue_latency", "free")

    def __init__(self, issue_latency: int, multiplicity: int) -> None:
        self.issue_latency = issue_latency
        self.free = [0] * multiplicity


def _static_records(
    trace: Trace, config: MachineConfig
) -> tuple[list[tuple], int]:
    """Precompute per-static-instruction issue records.

    Each record is ``(src_indices, dest_index, latency, unit, is_load,
    is_store)`` with ``dest_index = -1`` for no destination and ``unit``
    either ``None`` (ideal) or the shared :class:`_UnitState`.
    """
    unit_for_class: dict[InstrClass, _UnitState] = {}
    if config.units:
        for u in config.units:
            state = _UnitState(u.issue_latency, u.multiplicity)
            for klass in u.classes:
                # First unit listed for a class wins; presets do not overlap.
                unit_for_class.setdefault(klass, state)

    records: list[tuple] = []
    max_reg = 0
    for ins in trace.static:
        info = ins.op.info
        klass = ins.op.klass
        srcs = tuple(flat_index(r) for r in ins.srcs)
        dest = flat_index(ins.dest) if ins.dest is not None else -1
        for r in srcs:
            if r > max_reg:
                max_reg = r
        if dest > max_reg:
            max_reg = dest
        records.append(
            (
                srcs,
                dest,
                config.latencies[klass],
                unit_for_class.get(klass),
                info.is_load,
                info.is_store,
                info.is_cond_branch,
            )
        )
    return records, max_reg


def simulate(
    trace: Trace, config: MachineConfig, *, observe: bool = False
) -> TimingResult:
    """Replay ``trace`` on ``config`` and return cycle counts.

    The returned ``minor_cycles`` is the completion time of the last
    result; on the base machine this equals the dynamic instruction count.

    With ``observe=True`` the replay additionally attributes every minor
    cycle an instruction waited to a stall cause (see
    :mod:`repro.obs.stalls`) and attaches the resulting
    :class:`~repro.obs.stalls.StallBreakdown` to the result.  The default
    path is untouched — observability off costs nothing.
    """
    if observe:
        return _simulate_observed(trace, config)
    records, max_reg = _static_records(trace, config)
    width = config.issue_width

    reg_ready = [0] * (max_reg + 1)
    mem_ready: dict[int, int] = {}
    ops = trace.ops
    addrs = trace.addrs

    stall_on_branches = config.branch_policy == "stall"
    branch_floor = 0
    cur_cycle = 0
    cur_count = 0
    last_finish = 0

    for i, si in enumerate(ops):
        srcs, dest, lat, unit, is_load, is_store, is_cbr = records[si]

        t = cur_cycle
        if t < branch_floor:
            t = branch_floor
        for s in srcs:
            r = reg_ready[s]
            if r > t:
                t = r
        if is_load:
            r = mem_ready.get(addrs[i], 0)
            if r > t:
                t = r

        # Find the first cycle >= t with an issue slot and a free unit copy.
        while True:
            if t == cur_cycle and cur_count >= width:
                t += 1
            if unit is not None:
                free = unit.free
                best = 0
                best_time = free[0]
                for k in range(1, len(free)):
                    if free[k] < best_time:
                        best_time = free[k]
                        best = k
                if best_time > t:
                    t = best_time
                    continue  # re-check the issue-width constraint
                free[best] = t + unit.issue_latency
            break

        if t > cur_cycle:
            cur_cycle = t
            cur_count = 1
        else:
            cur_count += 1

        finish = t + lat
        if dest >= 0:
            reg_ready[dest] = finish
        if is_store:
            mem_ready[addrs[i]] = finish
        if stall_on_branches and is_cbr:
            branch_floor = finish
        if finish > last_finish:
            last_finish = finish

    return TimingResult(
        config_name=config.name,
        instructions=len(ops),
        minor_cycles=last_finish,
        base_cycles=config.minor_to_base(last_finish),
    )


def _simulate_observed(trace: Trace, config: MachineConfig) -> TimingResult:
    """The :func:`simulate` loop with exact stall-cycle attribution.

    For instruction *i* issuing at ``t_i``, the minor cycles in
    ``[t_{i-1}, t_i)`` are charged to *i*; the intervals tile the issue
    span ``[0, t_last)`` exactly, so the per-cause totals plus the
    ``issued_cycles`` remainder always reconstruct ``minor_cycles``
    (the conservation law asserted by the tests).  Causes are attributed
    in segment order along the wait: control (branch stall policy), then
    operand readiness (raw_dep), then memory ordering, then functional
    unit availability, with the residual — cycles where only the issue
    width / in-order limit binds — charged to ``issue_width``.
    """
    records, max_reg = _static_records(trace, config)
    klasses = [ins.op.klass for ins in trace.static]
    width = config.issue_width
    breakdown = StallBreakdown()

    reg_ready = [0] * (max_reg + 1)
    mem_ready: dict[int, int] = {}
    ops = trace.ops
    addrs = trace.addrs

    stall_on_branches = config.branch_policy == "stall"
    branch_floor = 0
    cur_cycle = 0
    cur_count = 0
    last_finish = 0
    last_issue = 0

    for i, si in enumerate(ops):
        srcs, dest, lat, unit, is_load, is_store, is_cbr = records[si]

        start = cur_cycle
        t = start
        if t < branch_floor:
            t = branch_floor
        floor_mark = t
        for s in srcs:
            r = reg_ready[s]
            if r > t:
                t = r
        raw_mark = t
        if is_load:
            r = mem_ready.get(addrs[i], 0)
            if r > t:
                t = r
        mem_mark = t
        unit_free_at = -1
        if unit is not None:
            unit_free_at = min(unit.free)

        while True:
            if t == start and cur_count >= width:
                t += 1
            if unit is not None:
                free = unit.free
                best = 0
                best_time = free[0]
                for k in range(1, len(free)):
                    if free[k] < best_time:
                        best_time = free[k]
                        best = k
                if best_time > t:
                    t = best_time
                    continue  # re-check the issue-width constraint
                free[best] = t + unit.issue_latency
            break

        if t > start:
            # Attribute the wait [start, t) segment by segment; the marks
            # are non-decreasing (start <= floor <= raw <= mem <= t).
            klass = klasses[si]
            b = start
            if floor_mark > b:
                breakdown.charge(klass, 0, floor_mark - b)  # control
                b = floor_mark
            if raw_mark > b:
                breakdown.charge(klass, 1, raw_mark - b)    # raw_dep
                b = raw_mark
            if mem_mark > b:
                breakdown.charge(klass, 2, mem_mark - b)    # memory_order
                b = mem_mark
            if unit_free_at > b:
                m = unit_free_at if unit_free_at < t else t
                breakdown.charge(klass, 3, m - b)           # unit_conflict
                b = m
            if t > b:
                breakdown.charge(klass, 4, t - b)           # issue_width
            cur_cycle = t
            cur_count = 1
        else:
            cur_count += 1

        finish = t + lat
        if dest >= 0:
            reg_ready[dest] = finish
        if is_store:
            mem_ready[addrs[i]] = finish
        if stall_on_branches and is_cbr:
            branch_floor = finish
        if finish > last_finish:
            last_finish = finish
        last_issue = t

    # Every cycle up to the final issue is accounted as a stall of some
    # instruction; the remainder is the final issue-to-completion span.
    breakdown.issued_cycles = last_finish - last_issue
    return TimingResult(
        config_name=config.name,
        instructions=len(ops),
        minor_cycles=last_finish,
        base_cycles=config.minor_to_base(last_finish),
        stalls=breakdown,
    )


def issue_schedule(trace: Trace, config: MachineConfig) -> list[int]:
    """Per-event issue times in minor cycles (for pipeline diagrams).

    Runs the same model as :func:`simulate` but records when each dynamic
    instruction issues; used by ``repro.analysis.pipeviz`` to regenerate the
    paper's Figure 2-x execution diagrams.
    """
    records, max_reg = _static_records(trace, config)
    width = config.issue_width
    reg_ready = [0] * (max_reg + 1)
    mem_ready: dict[int, int] = {}
    times: list[int] = []
    stall_on_branches = config.branch_policy == "stall"
    branch_floor = 0
    cur_cycle = 0
    cur_count = 0

    for i, si in enumerate(trace.ops):
        srcs, dest, lat, unit, is_load, is_store, is_cbr = records[si]
        t = cur_cycle
        if t < branch_floor:
            t = branch_floor
        for s in srcs:
            r = reg_ready[s]
            if r > t:
                t = r
        if is_load:
            r = mem_ready.get(trace.addrs[i], 0)
            if r > t:
                t = r
        while True:
            if t == cur_cycle and cur_count >= width:
                t += 1
            if unit is not None:
                free = unit.free
                best = min(range(len(free)), key=free.__getitem__)
                if free[best] > t:
                    t = free[best]
                    continue
                free[best] = t + unit.issue_latency
            break
        if t > cur_cycle:
            cur_cycle, cur_count = t, 1
        else:
            cur_count += 1
        finish = t + lat
        if dest >= 0:
            reg_ready[dest] = finish
        if is_store:
            mem_ready[trace.addrs[i]] = finish
        if stall_on_branches and is_cbr:
            branch_floor = finish
        times.append(t)
    return times


def parallelism(trace: Trace, config: MachineConfig) -> float:
    """Convenience wrapper: parallelism of ``trace`` on ``config``."""
    return simulate(trace, config).parallelism

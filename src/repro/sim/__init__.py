"""Functional and timing simulation."""

from .cache import (
    CacheConfig,
    CacheResult,
    ICacheResult,
    simulate_with_cache,
    simulate_with_icache,
)
from .interp import RunResult, flatten, run
from .limits import branch_inhibition, dataflow_limit, simulate_out_of_order
from .timing import TimingResult, issue_schedule, parallelism, simulate
from .trace import Trace

__all__ = [
    "CacheConfig",
    "CacheResult",
    "ICacheResult",
    "RunResult",
    "TimingResult",
    "Trace",
    "branch_inhibition",
    "dataflow_limit",
    "flatten",
    "issue_schedule",
    "parallelism",
    "run",
    "simulate",
    "simulate_out_of_order",
    "simulate_with_cache",
    "simulate_with_icache",
]

"""Dynamic instruction traces (block-structured, format v2).

The functional interpreter produces a :class:`Trace`: the sequence of
executed instructions plus the effective word address of every memory
operation.  The timing simulator replays a trace under a machine
configuration.

Traces deliberately contain *resolved* control flow — the paper assumes
perfect branch prediction / branch-slot filling, so the timing model never
needs to re-discover branch outcomes.

Storage format (v2)
-------------------
Executed instructions are stored run-length encoded: a *run* is a maximal
stretch of consecutive static indices ``start, start+1, ..., start+len-1``
executed back to back (straight-line code between taken control
transfers).  Effective addresses live in a flat side array ``mem_addrs``
with exactly one entry per dynamic *memory* operation, in execution
order — non-memory instructions carry no ``-1`` padding entry.  Loop
iterations therefore collapse to one ``(start, length)`` pair plus their
address chunk, which is what makes the memoized replay in
:mod:`repro.sim.replay` possible and shrinks pickled traces by an order
of magnitude.

The pre-v2 per-event views are kept as materializing properties
(:attr:`Trace.ops`, :attr:`Trace.addrs`) for code that genuinely wants
one entry per dynamic instruction.
"""

from __future__ import annotations

import hashlib
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from ..errors import TraceError
from ..isa.instruction import Instruction
from ..isa.opcodes import InstrClass
from ..isa.registers import flat_index


@dataclass(slots=True)
class Trace:
    """A dynamic execution trace.

    ``static``: the static instruction table (flattened program).
    ``run_starts`` / ``run_lengths``: run-length encoded execution — run
    *k* executes static indices ``run_starts[k] .. run_starts[k] +
    run_lengths[k] - 1`` in order.
    ``mem_addrs``: effective word addresses, one per dynamic memory
    operation, in execution order.
    ``n``: total dynamic instruction count (sum of ``run_lengths``).
    """

    static: list[Instruction]
    run_starts: list[int] = field(default_factory=list)
    run_lengths: list[int] = field(default_factory=list)
    mem_addrs: list[int] = field(default_factory=list)
    n: int = 0
    #: Lazily built replay plan (see :func:`repro.sim.replay.plan_for`);
    #: derived data — never compared, never pickled.
    _plan: object = field(default=None, repr=False, compare=False)
    #: Lazily decoded static-table skeleton (see
    #: :func:`repro.sim.replay._static_skeleton`); same rules as ``_plan``.
    _skel: object = field(default=None, repr=False, compare=False)
    #: Cached timing-semantics fingerprint (see :meth:`fingerprint`);
    #: derived data — never compared, never pickled.
    _fp: object = field(default=None, repr=False, compare=False)

    def __len__(self) -> int:
        return self.n

    @property
    def n_instructions(self) -> int:
        """Dynamic instruction count."""
        return self.n

    @property
    def n_runs(self) -> int:
        """Number of straight-line runs in the encoding."""
        return len(self.run_starts)

    def runs(self) -> Iterator[tuple[int, int]]:
        """Iterate over ``(start, length)`` runs in execution order."""
        return zip(self.run_starts, self.run_lengths)

    def append(self, static_index: int, addr: int = -1) -> None:
        """Record one executed instruction.

        Enforces the trace invariant the timing model depends on: a
        memory instruction must carry its effective word address (>= 0),
        and a non-memory instruction must not carry one (addr == -1) —
        violating either would silently corrupt store→load ordering.

        Consecutive static indices merge into one run.
        """
        if not 0 <= static_index < len(self.static):
            raise TraceError(
                f"static index {static_index} out of range "
                f"(table has {len(self.static)} instructions)"
            )
        self._fp = None
        if self.static[static_index].op.info.is_mem:
            if addr < 0:
                raise TraceError(
                    f"memory instruction {static_index} "
                    f"({self.static[static_index].op.name}) recorded "
                    "without an effective address"
                )
            self.mem_addrs.append(addr)
        elif addr >= 0:
            raise TraceError(
                f"non-memory instruction {static_index} "
                f"({self.static[static_index].op.name}) recorded with "
                f"address {addr}; expected addr=-1"
            )
        starts, lengths = self.run_starts, self.run_lengths
        if starts and starts[-1] + lengths[-1] == static_index:
            lengths[-1] += 1
        else:
            starts.append(static_index)
            lengths.append(1)
        self.n += 1
        self._plan = None

    @property
    def ops(self) -> list[int]:
        """Per-event static indices (materialized from the runs)."""
        out: list[int] = []
        extend = out.extend
        for start, length in zip(self.run_starts, self.run_lengths):
            extend(range(start, start + length))
        return out

    @property
    def addrs(self) -> list[int]:
        """Per-event effective addresses, ``-1`` for non-memory events
        (materialized from the side array)."""
        is_mem = [ins.op.info.is_mem for ins in self.static]
        mem_addrs = self.mem_addrs
        out: list[int] = []
        append = out.append
        m = 0
        for start, length in zip(self.run_starts, self.run_lengths):
            for si in range(start, start + length):
                if is_mem[si]:
                    append(mem_addrs[m])
                    m += 1
                else:
                    append(-1)
        return out

    def class_counts(self) -> Counter[InstrClass]:
        """Dynamic instruction-class histogram."""
        klass_of = [ins.op.klass for ins in self.static]
        counts: Counter[InstrClass] = Counter()
        for (start, length), times in Counter(
            zip(self.run_starts, self.run_lengths)
        ).items():
            for si in range(start, start + length):
                counts[klass_of[si]] += times
        return counts

    def instructions(self) -> Iterable[Instruction]:
        """Iterate over the executed instructions in order."""
        static = self.static
        for start, length in zip(self.run_starts, self.run_lengths):
            for si in range(start, start + length):
                yield static[si]

    def fingerprint(self) -> str:
        """Content hash of everything the timing model can observe.

        Covers the static skeleton (opcode name and class, flattened
        source/dest registers, load/store/conditional-branch flags), the
        run-length encoded execution, and the effective-address stream —
        and nothing else (immediates, labels, and comments are invisible
        to replay).  Two traces with equal fingerprints are
        timing-identical on every machine, so the hash keys the
        persistent replay-memo store (:mod:`repro.sim.memo`).  Computed
        once and cached; any :meth:`append` invalidates it.
        """
        fp = self._fp
        if fp is None:
            h = hashlib.sha256()
            for ins in self.static:
                info = ins.op.info
                h.update(repr((
                    ins.op.name,
                    ins.op.klass.name,
                    tuple(flat_index(r) for r in ins.srcs),
                    flat_index(ins.dest) if ins.dest is not None else -1,
                    info.is_load, info.is_store, info.is_cond_branch,
                )).encode("utf-8"))
            h.update(b"|runs|")
            h.update(repr(self.run_starts).encode("utf-8"))
            h.update(repr(self.run_lengths).encode("utf-8"))
            h.update(b"|mem|")
            h.update(repr(self.mem_addrs).encode("utf-8"))
            fp = h.hexdigest()
            self._fp = fp
        return fp

    def validate(self) -> None:
        """Check the v2 structural invariants; raise :class:`TraceError`.

        O(runs + static): run bounds, length/total consistency, and the
        memory-address side array matching the dynamic memory-op count.
        Used by the on-disk trace cache to reject stale or corrupt
        entries instead of deserializing them into garbage.
        """
        starts, lengths = self.run_starts, self.run_lengths
        if len(starts) != len(lengths):
            raise TraceError(
                f"run encoding mismatch: {len(starts)} starts vs "
                f"{len(lengths)} lengths"
            )
        n_static = len(self.static)
        mem_prefix = [0] * (n_static + 1)
        acc = 0
        for i, ins in enumerate(self.static):
            if ins.op.info.is_mem:
                acc += 1
            mem_prefix[i + 1] = acc
        total = 0
        n_mem = 0
        for start, length in zip(starts, lengths):
            if length <= 0:
                raise TraceError(f"non-positive run length {length}")
            if start < 0 or start + length > n_static:
                raise TraceError(
                    f"run [{start}, {start + length}) out of range "
                    f"(table has {n_static} instructions)"
                )
            total += length
            n_mem += mem_prefix[start + length] - mem_prefix[start]
        if total != self.n:
            raise TraceError(
                f"declared {self.n} dynamic instructions, runs encode "
                f"{total}"
            )
        if n_mem != len(self.mem_addrs):
            raise TraceError(
                f"{n_mem} dynamic memory operations but "
                f"{len(self.mem_addrs)} recorded addresses"
            )
        for addr in self.mem_addrs:
            if addr < 0:
                raise TraceError(f"negative effective address {addr}")

    @classmethod
    def from_runs(
        cls,
        static: list[Instruction],
        run_starts: list[int],
        run_lengths: list[int],
        mem_addrs: list[int],
    ) -> "Trace":
        """Build (and validate) a trace directly from its v2 encoding."""
        trace = cls(
            static=static,
            run_starts=run_starts,
            run_lengths=run_lengths,
            mem_addrs=mem_addrs,
            n=sum(run_lengths),
        )
        trace.validate()
        return trace

    @staticmethod
    def from_instructions(
        instrs: Sequence[Instruction],
        addrs: Sequence[int] | None = None,
    ) -> "Trace":
        """Build a trace that executes ``instrs`` once, in order.

        Intended for tests and for the pipeline-diagram figures: each
        instruction is its own static entry.  ``addrs`` supplies effective
        addresses for memory operations; by default a memory instruction
        uses its immediate offset as the address (i.e. base register 0).
        """
        trace = Trace(static=list(instrs))
        for i, ins in enumerate(instrs):
            if ins.op.info.is_mem:
                if addrs is not None:
                    addr = addrs[i]
                else:
                    addr = int(ins.imm or 0)
            else:
                addr = -1
            trace.append(i, addr)
        return trace

    # The replay plan is derived data: keep it out of pickles (the
    # on-disk trace cache) so cached entries stay small and the plan
    # implementation can evolve without invalidating them.
    def __getstate__(self):
        return (self.static, self.run_starts, self.run_lengths,
                self.mem_addrs, self.n)

    def __setstate__(self, state):
        (self.static, self.run_starts, self.run_lengths,
         self.mem_addrs, self.n) = state
        self._plan = None
        self._skel = None
        self._fp = None

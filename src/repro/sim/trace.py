"""Dynamic instruction traces.

The functional interpreter produces a :class:`Trace`: the sequence of
executed instructions (as indices into a static instruction table) plus the
effective word address of every memory operation.  The timing simulator
replays a trace under a machine configuration.

Traces deliberately contain *resolved* control flow — the paper assumes
perfect branch prediction / branch-slot filling, so the timing model never
needs to re-discover branch outcomes.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..errors import TraceError
from ..isa.instruction import Instruction
from ..isa.opcodes import InstrClass


@dataclass(slots=True)
class Trace:
    """A dynamic execution trace.

    ``static``: the static instruction table (flattened program).
    ``ops``: for each dynamic event, the index of its static instruction.
    ``addrs``: for each dynamic event, the effective word address of the
    memory access, or -1 for non-memory instructions.
    """

    static: list[Instruction]
    ops: list[int] = field(default_factory=list)
    addrs: list[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.ops)

    @property
    def n_instructions(self) -> int:
        """Dynamic instruction count."""
        return len(self.ops)

    def append(self, static_index: int, addr: int = -1) -> None:
        """Record one executed instruction.

        Enforces the trace invariant the timing model depends on: a
        memory instruction must carry its effective word address (>= 0),
        and a non-memory instruction must not carry one (addr == -1) —
        violating either would silently corrupt store→load ordering.
        """
        if not 0 <= static_index < len(self.static):
            raise TraceError(
                f"static index {static_index} out of range "
                f"(table has {len(self.static)} instructions)"
            )
        if self.static[static_index].op.info.is_mem:
            if addr < 0:
                raise TraceError(
                    f"memory instruction {static_index} "
                    f"({self.static[static_index].op.name}) recorded "
                    "without an effective address"
                )
        elif addr >= 0:
            raise TraceError(
                f"non-memory instruction {static_index} "
                f"({self.static[static_index].op.name}) recorded with "
                f"address {addr}; expected addr=-1"
            )
        self.ops.append(static_index)
        self.addrs.append(addr)

    def class_counts(self) -> Counter[InstrClass]:
        """Dynamic instruction-class histogram."""
        klass_of = [ins.op.klass for ins in self.static]
        counts: Counter[InstrClass] = Counter()
        for si in self.ops:
            counts[klass_of[si]] += 1
        return counts

    def instructions(self) -> Iterable[Instruction]:
        """Iterate over the executed instructions in order."""
        static = self.static
        for si in self.ops:
            yield static[si]

    @staticmethod
    def from_instructions(
        instrs: Sequence[Instruction],
        addrs: Sequence[int] | None = None,
    ) -> "Trace":
        """Build a trace that executes ``instrs`` once, in order.

        Intended for tests and for the pipeline-diagram figures: each
        instruction is its own static entry.  ``addrs`` supplies effective
        addresses for memory operations; by default a memory instruction
        uses its immediate offset as the address (i.e. base register 0).
        """
        trace = Trace(static=list(instrs))
        for i, ins in enumerate(instrs):
            if ins.op.info.is_mem:
                if addrs is not None:
                    addr = addrs[i]
                else:
                    addr = int(ins.imm or 0)
            else:
                addr = -1
            trace.append(i, addr)
        return trace

"""Vectorized (NumPy) replay kernel over the resolved block schedule.

The scalar replay in :mod:`repro.sim.replay` spends its steady-state
time on per-event memo-key construction and dictionary lookups — the
per-instruction loops are already amortized away by block memoization.
This module removes the per-event Python work too, by replaying the
whole schedule with array arithmetic.

The kernel operates on a **structure-of-arrays** view of the replay
plan, materialized once per trace (:func:`build_plan_vec`):

* per-event arrays: block id, instruction/memory-op counts, memory
  chunk offsets, and a precomputed *alias id* — an integer standing in
  for the block's store→load aliasing structure (the scalar path's
  ``mem_key``), computed for every schedule event in one pass over the
  address stream;
* dependence-chain structure: for every (event, live-in register) pair
  the producing event and the slot of its written-register delta; for
  every (event, functional unit, copy) the previous event using that
  unit; for every load the last store to the same word from an earlier
  block (computed with a segmented prefix-maximum over the
  lexicographically sorted address stream);
* cumulative issue-width state: the intra-cycle issue count entering
  and leaving every event.

A first, scalar *resolving* run records per event the memo key it used
and the relative-effect entry it applied (capturing equivalent records
for blocks replayed directly).  :func:`build_core_vec` flattens those
records into per-machine arrays, and :func:`run_vectorized` then
replays the schedule without touching a Python loop:

1. entry cycles ``T`` are the prefix sum of the recorded per-event
   cycle advances;
2. every component of every event's memo key is *recomputed* from the
   chains — ``clamp(T[src] + delta[slot] - T[event])`` per register /
   unit-copy / aliased-load pair, plus the branch-floor and issue-count
   chains — and compared against the recorded key;
3. if every comparison holds, the recorded entries are exactly what the
   scalar replay would have looked up (memo entries are pure functions
   of their key), so the outcome is assembled from the arrays.

Any mismatch — a diverged table, an adopted memo from a stale file, an
inexpressible event — returns ``None`` and the caller falls back to the
scalar path, which re-resolves.  Results are therefore bit-identical by
construction: the vectorized path only ever *returns* an outcome whose
every step it has verified against the scalar model's own records.

This module must only be imported when NumPy is available
(``repro.sim.replay.BACKEND == "numpy"``).
"""

from __future__ import annotations

import numpy as np

#: Sentinel delta for "no recorded value": guaranteed to clamp to zero
#: after any ``T[src] + NEG - T[event]`` (cycle counts are < 2**40).
_NEG = -(1 << 40)


class PlanVec:
    """Machine-independent SoA view of one replay plan (shared per trace)."""

    __slots__ = (
        "n_events", "ev_bid", "ev_ninstr", "ev_nmem", "ev_mem_start",
        "alias_ids", "do_off", "so_off", "uo_blocks",
        "rp_ev", "rp_src", "rp_slot", "n_reg_slots",
        "mp_g", "mp_ev", "mp_src", "mp_srcslot", "n_store_slots",
    )


class CoreVec:
    """Per-(machine, mode) arrays flattened from one resolving run."""

    __slots__ = (
        "d_cyc", "entry_count", "exit_count", "d_floor", "floor_key",
        "d_fin", "regs_exp", "regs_out", "units_exp", "units_out",
        "up_ev", "up_src", "up_slot", "ext_exp", "stores_out",
        "memo_hits", "fallbacks", "memo_instructions",
        "direct_instructions", "persisted_hits", "charges", "times_flat",
    )


def _segmented_prev_store(addr, is_store):
    """For every memory position, the latest *earlier* store position to
    the same word (``-1`` for none): a segmented exclusive running
    maximum over the address-sorted position stream."""
    m = addr.size
    order = np.lexsort((np.arange(m), addr))
    sa = addr[order]
    store_pos = np.where(is_store[order], order, -1)
    grp_start = np.empty(m, dtype=bool)
    grp_start[0] = True
    grp_start[1:] = sa[1:] != sa[:-1]
    prev = np.empty(m, dtype=np.int64)
    prev[0] = -1
    prev[1:] = store_pos[:-1]
    prev[grp_start] = -1
    # Reset-at-group-start running max: offset each group into a
    # disjoint value range so maxima never leak across groups.
    seg = np.cumsum(grp_start) - 1
    big = np.int64(m + 2)
    run = np.maximum.accumulate(prev + seg * big) - seg * big
    out = np.empty(m, dtype=np.int64)
    out[order] = run
    return out


def build_plan_vec(trace, plan, entries, ensure_dataflow):
    """Build the machine-independent SoA arrays for ``plan``.

    ``entries`` is the static skeleton, ``ensure_dataflow`` a callable
    filling in a block's live-in/def/load/store summaries (needed for
    blocks the scalar path replays directly and never summarizes).
    """
    blocks = plan.blocks
    schedule = plan.schedule
    n_events = len(schedule)
    pv = PlanVec()
    pv.n_events = n_events
    if n_events == 0:
        pv.alias_ids = None
        return pv

    for bid in set(schedule):
        ensure_dataflow(blocks[bid])

    ev_bid = np.fromiter(schedule, dtype=np.int32, count=n_events)
    n_instrs = np.fromiter((b.n_instrs for b in blocks), dtype=np.int64)
    n_mems = np.fromiter((b.n_mem for b in blocks), dtype=np.int64)
    pv.ev_bid = ev_bid
    pv.ev_ninstr = n_instrs[ev_bid]
    pv.ev_nmem = n_mems[ev_bid]
    ev_mem_start = np.empty(n_events, dtype=np.int64)
    ev_mem_start[0] = 0
    np.cumsum(pv.ev_nmem[:-1], out=ev_mem_start[1:])
    pv.ev_mem_start = ev_mem_start

    # ---- memory structure: alias ids + cross-block store→load pairs
    addr = np.asarray(trace.mem_addrs, dtype=np.int64)
    m_total = int(addr.size)
    if m_total:
        store_pat = {}
        parts = []
        for bid in schedule:
            pat = store_pat.get(bid)
            if pat is None:
                block = blocks[bid]
                pat = np.zeros(block.n_mem, dtype=bool)
                if block.store_sel:
                    pat[list(block.store_sel)] = True
                store_pat[bid] = pat
            parts.append(pat)
        is_store_g = np.concatenate(parts) if parts else \
            np.zeros(0, dtype=bool)
        prev_store = _segmented_prev_store(addr, is_store_g)
        ev_of = np.searchsorted(ev_mem_start,
                                np.arange(m_total, dtype=np.int64),
                                side="right") - 1
        ev_start_of = ev_mem_start[ev_of]

        # Alias id per event: the store→load matching inside the chunk,
        # interned to one int (first-appearance order — deterministic,
        # so persisted memo keys agree across processes).
        intra = np.where(prev_store >= ev_start_of, prev_store
                         - ev_start_of, -1)
        intern: dict[tuple, int] = {}
        alias_ids = [0] * n_events
        for p, bid in enumerate(schedule):
            block = blocks[bid]
            if not block.needs_mem_key:
                continue
            base = int(ev_mem_start[p])
            key = tuple(int(intra[base + j]) for j in block.load_sel)
            aid = intern.get(key)
            if aid is None:
                aid = len(intern) + 1
                intern[key] = aid
            alias_ids[p] = aid
        pv.alias_ids = alias_ids

        # Per load, the last store to the same word *before its block*:
        # follow the in-block chain out of the block (store finishes are
        # position-monotone, so only the latest pre-block store can ever
        # impose a wait).
        is_load_g = np.zeros(m_total, dtype=bool)
        load_pat = {}
        pos = 0
        for bid in schedule:
            pat = load_pat.get(bid)
            if pat is None:
                block = blocks[bid]
                pat = np.zeros(block.n_mem, dtype=bool)
                if block.load_sel:
                    pat[list(block.load_sel)] = True
                load_pat[bid] = pat
            is_load_g[pos:pos + pat.size] = pat
            pos += pat.size
        ls_pre = prev_store.copy()
        mask = (ls_pre >= 0) & (ls_pre >= ev_start_of)
        while mask.any():
            ls_pre[mask] = prev_store[ls_pre[mask]]
            mask = (ls_pre >= 0) & (ls_pre >= ev_start_of)
        pair_mask = is_load_g & (ls_pre >= 0)
        mp_g = np.nonzero(pair_mask)[0].astype(np.int64)
        src_g = ls_pre[mp_g]
        # store ordinal within its event = stores before it in the event
        s_excl = np.zeros(m_total, dtype=np.int64)
        np.cumsum(is_store_g[:-1], out=s_excl[1:])
        so_counts = np.fromiter(
            (len(blocks[b].store_sel) for b in schedule),
            dtype=np.int64, count=n_events)
        so_off = np.zeros(n_events + 1, dtype=np.int64)
        np.cumsum(so_counts, out=so_off[1:])
        mp_src = ev_of[src_g]
        pv.mp_g = mp_g
        pv.mp_ev = ev_of[mp_g].astype(np.int32)
        pv.mp_src = mp_src.astype(np.int32)
        pv.mp_srcslot = (so_off[mp_src]
                         + (s_excl[src_g] - s_excl[ev_mem_start[mp_src]])
                         ).astype(np.int64)
        pv.so_off = so_off
        pv.n_store_slots = int(so_off[-1])
    else:
        pv.alias_ids = None
        pv.mp_g = np.zeros(0, dtype=np.int64)
        pv.mp_ev = np.zeros(0, dtype=np.int32)
        pv.mp_src = np.zeros(0, dtype=np.int32)
        pv.mp_srcslot = np.zeros(0, dtype=np.int64)
        pv.so_off = np.zeros(n_events + 1, dtype=np.int64)
        pv.n_store_slots = 0

    # ---- register dependence chains (last definition wins)
    do_off = np.zeros(n_events + 1, dtype=np.int64)
    np.cumsum(
        np.fromiter((len(blocks[b].defs) for b in schedule),
                    dtype=np.int64, count=n_events),
        out=do_off[1:])
    pv.do_off = do_off
    n_def_slots = int(do_off[-1])
    max_reg = 0
    for b in set(schedule):
        block = blocks[b]
        for r in block.live_ins:
            if r > max_reg:
                max_reg = r
        for r in block.defs:
            if r > max_reg:
                max_reg = r
    last_def: list = [None] * (max_reg + 1)
    rp_ev: list[int] = []
    rp_src: list[int] = []
    rp_slot: list[int] = []
    for p, bid in enumerate(schedule):
        block = blocks[bid]
        for r in block.live_ins:
            src = last_def[r]
            rp_ev.append(p)
            if src is None:
                rp_src.append(0)
                rp_slot.append(n_def_slots)  # sentinel: clamps to zero
            else:
                rp_src.append(src[0])
                rp_slot.append(src[1])
        base = int(do_off[p])
        for k, r in enumerate(block.defs):
            last_def[r] = (p, base + k)
    pv.rp_ev = np.asarray(rp_ev, dtype=np.int32)
    pv.rp_src = np.asarray(rp_src, dtype=np.int32)
    pv.rp_slot = np.asarray(rp_slot, dtype=np.int64)
    pv.n_reg_slots = n_def_slots
    pv.uo_blocks = None  # functional units are machine-dependent
    return pv


def build_core_vec(core, pv):
    """Flatten one core's resolving-run records into replay arrays.

    Returns a :class:`CoreVec`, or ``None`` when the records cannot be
    expressed (structurally inconsistent — e.g. an adopted memo from a
    stale or corrupt file): the caller then stays on the scalar path.
    """
    records = core._resolved
    n_events = pv.n_events
    if records is None or n_events == 0 or len(records) != n_events:
        return None
    blocks = core.plan.blocks
    schedule = core.plan.schedule
    tables = core._tables
    adopted = core._adopted_keys
    cv = CoreVec()
    try:
        d_cyc = np.empty(n_events, dtype=np.int64)
        entry_count = np.empty(n_events, dtype=np.int64)
        exit_count = np.empty(n_events, dtype=np.int64)
        d_floor = np.empty(n_events, dtype=np.int64)
        floor_key = np.empty(n_events, dtype=np.int64)
        d_fin = np.empty(n_events, dtype=np.int64)
        regs_exp: list[int] = []
        regs_out = np.full(pv.n_reg_slots + 1, _NEG, dtype=np.int64)
        stores_out = np.full(pv.n_store_slots + 1, _NEG, dtype=np.int64)
        ext_sparse: list[tuple[int, int, int]] = []  # (event, loadj, d)
        want_units = core._has_units
        up_ev: list[int] = []
        up_src: list[int] = []
        up_slot: list[int] = []
        units_exp: list[int] = []
        units_out: list[int] = []
        last_use: dict[int, tuple[int, int]] = {}
        unit_ids: dict[int, int] = {}
        memo_hits = fallbacks = 0
        memo_instr = direct_instr = persisted = 0
        merged_charges: dict[tuple, int] = {}
        times_flat: list[int] | None = [] if core.want_times else None

        for p, rec in enumerate(records):
            bid, key, entry, kind = rec
            if bid != schedule[p]:
                return None
            block = blocks[bid]
            (dc, xc, dfl, r_out, s_out, u_out, dfin, charges,
             time_deltas) = entry
            d_cyc[p] = dc
            exit_count[p] = xc
            d_floor[p] = dfl
            d_fin[p] = dfin
            entry_count[p] = key[0]
            floor_key[p] = key[1]
            regs_key = key[2]
            if len(regs_key) != len(block.live_ins):
                return None
            regs_exp.extend(regs_key)
            if len(r_out) != len(block.defs):
                return None
            base = int(pv.do_off[p])
            for k, (_, dv) in enumerate(r_out):
                regs_out[base + k] = dv
            base = int(pv.so_off[p])
            for j, dv in s_out:
                # chunk position -> store ordinal within the block
                stores_out[base + block.store_sel.index(j)] = dv
            for j, dv in key[5]:
                ext_sparse.append((p, j, dv))
            if want_units:
                ustates = core._block_units(bid)
                unit_key = key[3]
                if len(unit_key) != len(ustates) \
                        or len(u_out) != len(ustates):
                    return None
                for s, exp_frees, out_frees in zip(ustates, unit_key,
                                                   u_out):
                    mult = len(s.free)
                    if len(exp_frees) != mult or len(out_frees) != mult:
                        return None
                    gi = unit_ids.setdefault(id(s), len(unit_ids))
                    src = last_use.get(gi)
                    slot = len(units_out)
                    for c in range(mult):
                        up_ev.append(p)
                        if src is None:
                            up_src.append(0)
                            up_slot.append(-1)  # patched to sentinel below
                        else:
                            up_src.append(src[0])
                            up_slot.append(src[1] + c)
                    units_exp.extend(exp_frees)
                    units_out.extend(out_frees)
                    last_use[gi] = (p, slot)
            if charges is not None:
                for kl, ci, cyc in charges:
                    ck = (kl, ci)
                    merged_charges[ck] = merged_charges.get(ck, 0) + cyc
            if times_flat is not None:
                if time_deltas is None \
                        or len(time_deltas) != block.n_instrs:
                    return None
                times_flat.extend(time_deltas)

            n = block.n_instrs
            if tables[bid] is None:
                direct_instr += n
            elif kind:
                fallbacks += 1
                direct_instr += n
            else:
                memo_hits += 1
                memo_instr += n
                if adopted is not None and adopted[bid] is not None \
                        and key in adopted[bid]:
                    persisted += 1

        cv.d_cyc = d_cyc
        cv.entry_count = entry_count
        cv.exit_count = exit_count
        cv.d_floor = d_floor
        cv.floor_key = floor_key
        cv.d_fin = d_fin
        cv.regs_exp = np.asarray(regs_exp, dtype=np.int64)
        if cv.regs_exp.size != pv.rp_ev.size:
            return None
        cv.regs_out = regs_out
        cv.stores_out = stores_out
        ext_exp = np.zeros(pv.mp_g.size, dtype=np.int64)
        for p, j, dv in ext_sparse:
            g = int(pv.ev_mem_start[p]) + j
            idx = int(np.searchsorted(pv.mp_g, g))
            if idx >= pv.mp_g.size or pv.mp_g[idx] != g:
                return None  # external wait with no recorded producer
            ext_exp[idx] = dv
        cv.ext_exp = ext_exp
        if want_units and up_ev:
            n_unit_slots = len(units_out)
            out = np.full(n_unit_slots + 1, _NEG, dtype=np.int64)
            out[:n_unit_slots] = units_out
            slot = np.asarray(up_slot, dtype=np.int64)
            slot[slot < 0] = n_unit_slots
            cv.up_ev = np.asarray(up_ev, dtype=np.int32)
            cv.up_src = np.asarray(up_src, dtype=np.int32)
            cv.up_slot = slot
            cv.units_exp = np.asarray(units_exp, dtype=np.int64)
            cv.units_out = out
        else:
            cv.up_ev = None
            cv.up_src = None
            cv.up_slot = None
            cv.units_exp = None
            cv.units_out = None
        cv.memo_hits = memo_hits
        cv.fallbacks = fallbacks
        cv.memo_instructions = memo_instr
        cv.direct_instructions = direct_instr
        cv.persisted_hits = persisted
        cv.charges = (
            [(kl, ci, cyc) for (kl, ci), cyc in merged_charges.items()]
            if core.observe else None
        )
        cv.times_flat = (
            np.asarray(times_flat, dtype=np.int64)
            if times_flat is not None else None
        )
    except (TypeError, ValueError, IndexError, KeyError, AttributeError):
        # Structurally inconsistent records (stale/corrupt adoption):
        # stay on the scalar path, which re-resolves from scratch.
        return None
    return cv


def run_vectorized(core, pv, cv):
    """One full replay over the resolved schedule, in array arithmetic.

    Recomputes entry cycles and every memo-key component from the
    dependence chains and compares them with the resolving run's
    records; returns the assembled outcome on success, ``None`` on any
    mismatch (the caller falls back to — and re-resolves on — the
    scalar path).
    """
    from ..obs.stalls import StallBreakdown
    from .replay import ReplayOutcome, ReplayStats

    n_events = pv.n_events
    d_cyc = cv.d_cyc
    t = np.empty(n_events, dtype=np.int64)
    t[0] = 0
    np.cumsum(d_cyc[:-1], out=t[1:])

    # Cumulative issue-width counters: each event must start exactly
    # where its predecessor left off.
    if cv.entry_count[0] != 0 \
            or not np.array_equal(cv.entry_count[1:], cv.exit_count[:-1]):
        return None
    # Branch-floor chain.
    if cv.floor_key[0] != 0:
        return None
    if n_events > 1:
        comp = t[:-1] + cv.d_floor[:-1]
        comp -= t[1:]
        np.maximum(comp, 0, out=comp)
        if not np.array_equal(comp, cv.floor_key[1:]):
            return None
    # Register dependence chains (prefix-max over producers is encoded
    # in the last-definition structure: only the latest producer can
    # still gate a live-in).
    if pv.rp_ev.size:
        comp = t[pv.rp_src] + cv.regs_out[pv.rp_slot]
        comp -= t[pv.rp_ev]
        np.maximum(comp, 0, out=comp)
        if not np.array_equal(comp, cv.regs_exp):
            return None
    # Functional-unit occupancy chains (per copy, multisets sorted).
    if cv.up_ev is not None:
        comp = t[cv.up_src] + cv.units_out[cv.up_slot]
        comp -= t[cv.up_ev]
        np.maximum(comp, 0, out=comp)
        if not np.array_equal(comp, cv.units_exp):
            return None
    # Cross-block store→load waits.
    if pv.mp_g.size:
        comp = t[pv.mp_src] + cv.stores_out[pv.mp_srcslot]
        comp -= t[pv.mp_ev]
        np.maximum(comp, 0, out=comp)
        if not np.array_equal(comp, cv.ext_exp):
            return None

    final_issue = int(t[n_events - 1] + d_cyc[n_events - 1])
    minor = int((t + cv.d_fin).max()) if n_events else 0
    if minor < 0:
        minor = 0
    stats = ReplayStats(
        blocks=n_events,
        memo_hits=cv.memo_hits,
        memo_misses=0,
        fallbacks=cv.fallbacks,
        memo_instructions=cv.memo_instructions,
        direct_instructions=cv.direct_instructions,
        vectorized_blocks=n_events,
        memo_persisted_hits=cv.persisted_hits,
    )
    breakdown = None
    if core.observe:
        breakdown = StallBreakdown()
        charge = breakdown.charge
        for kl, ci, cyc in cv.charges:
            charge(kl, ci, cyc)
        breakdown.issued_cycles = minor - final_issue
    times = None
    if cv.times_flat is not None:
        times = (np.repeat(t, pv.ev_ninstr) + cv.times_flat).tolist()
    return ReplayOutcome(
        minor_cycles=minor, final_issue=final_issue,
        stalls=breakdown, times=times, stats=stats,
    )

"""Functional instruction-level interpreter.

Plays the role of the paper's "fast instruction-level simulator": it
executes a compiled :class:`~repro.isa.program.Program` with real data,
producing the program's result plus a dynamic :class:`~repro.sim.trace.Trace`
that the timing model replays under different machine configurations.

The machine state is a flat word-addressed memory (each word holds a Python
int or float), a register file, and a program counter over the *flattened*
program (all functions' blocks laid out consecutively).

Trace recording is run-structured (format v2): executor closures append
only the effective addresses of memory operations; the outer fetch loop
detects maximal straight-line runs (``next pc == pc + 1``) and records
one ``(start, length)`` pair per run instead of two list entries per
dynamic instruction.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import InterpBudgetError, SimulationError
from ..isa.instruction import Instruction
from ..isa.opcodes import Opcode
from ..isa.program import Program
from ..isa.registers import RA_INDEX, RV_INDEX, SP_INDEX, flat_index
from .trace import Trace

#: Word addresses below this are unmapped; catches null-ish pointers.
_GUARD_WORDS = 16


@dataclass(slots=True)
class RunResult:
    """Outcome of one functional execution."""

    value: int | float          # the entry function's return value
    trace: Trace
    instructions: int
    memory_words: int


@dataclass(slots=True)
class Flattened:
    """A program flattened to a single instruction array."""

    instrs: list[Instruction]
    label_index: dict[str, int]
    entry_index: dict[str, int]   # function name -> first instruction
    start: int


def flatten(program: Program) -> Flattened:
    """Flatten a program's functions into one instruction array."""
    instrs: list[Instruction] = []
    label_index: dict[str, int] = {}
    entry_index: dict[str, int] = {}
    for fn in program.functions.values():
        entry_index[fn.name] = len(instrs)
        for block in fn.blocks:
            label_index[block.label] = len(instrs)
            instrs.extend(block.instrs)
    return Flattened(
        instrs=instrs,
        label_index=label_index,
        entry_index=entry_index,
        start=entry_index[program.entry],
    )


def _int_div(a: int, b: int) -> int:
    """C-style truncating integer division."""
    if b == 0:
        raise SimulationError("integer division by zero")
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _int_mod(a: int, b: int) -> int:
    """C-style remainder: ``a - trunc(a/b) * b``."""
    return a - _int_div(a, b) * b


def run(
    program: Program,
    memory_words: int = 1 << 16,
    max_instructions: int = 200_000_000,
) -> RunResult:
    """Execute ``program`` from its entry stub until ``HALT``.

    Raises :class:`SimulationError` on illegal memory accesses, division by
    zero, or when ``max_instructions`` is exceeded (runaway loop guard; the
    guard is checked at run boundaries, so a handful of straight-line
    instructions may execute past the limit before the error is raised).
    """
    flat = flatten(program)
    instrs = flat.instrs
    label_index = flat.label_index
    entry_index = flat.entry_index
    n_static = len(instrs)

    max_reg = 0
    for ins in instrs:
        if ins.dest is not None and flat_index(ins.dest) > max_reg:
            max_reg = flat_index(ins.dest)
        for r in ins.srcs:
            if flat_index(r) > max_reg:
                max_reg = flat_index(r)
    regs: list = [0] * (max_reg + 1)
    regs[SP_INDEX] = memory_words

    mem: list = [0] * memory_words
    for g in program.globals_.values():
        if g.initial is not None:
            for i, value in enumerate(g.initial):
                mem[g.address + i] = value

    #: One entry per dynamic memory operation, in execution order.
    mem_addrs: list[int] = []

    # Pre-decode every static instruction into an executor closure.
    # Each executor mutates state and returns the next pc.
    executors: list = [None] * n_static

    for idx, ins in enumerate(instrs):
        op = ins.op
        dest = flat_index(ins.dest) if ins.dest is not None else -1
        if dest == 0:
            raise SimulationError(f"instruction {idx} writes register zero")
        srcs = tuple(flat_index(r) for r in ins.srcs)
        imm = ins.imm
        ex = None

        if op is Opcode.LW:
            base = srcs[0]
            off = imm

            def ex(pc, d=dest, b=base, o=off):
                a = regs[b] + o
                if a < _GUARD_WORDS or a >= memory_words:
                    raise SimulationError(f"load out of bounds: {a}")
                regs[d] = mem[a]
                mem_addrs.append(a)
                return pc + 1

        elif op is Opcode.SW:
            val, base = srcs
            off = imm

            def ex(pc, v=val, b=base, o=off):
                a = regs[b] + o
                if a < _GUARD_WORDS or a >= memory_words:
                    raise SimulationError(f"store out of bounds: {a}")
                mem[a] = regs[v]
                mem_addrs.append(a)
                return pc + 1

        elif op in (Opcode.LI, Opcode.LIF):

            def ex(pc, d=dest, v=imm):
                regs[d] = v
                return pc + 1

        elif op is Opcode.MOV:

            def ex(pc, d=dest, s=srcs[0]):
                regs[d] = regs[s]
                return pc + 1

        elif op is Opcode.BEQZ:
            target = label_index[ins.target]

            def ex(pc, s=srcs[0], t=target):
                return t if regs[s] == 0 else pc + 1

        elif op is Opcode.BNEZ:
            target = label_index[ins.target]

            def ex(pc, s=srcs[0], t=target):
                return t if regs[s] != 0 else pc + 1

        elif op is Opcode.J:
            target = label_index[ins.target]

            def ex(pc, t=target):
                return t

        elif op is Opcode.CALL:
            target = entry_index[ins.target]

            def ex(pc, t=target):
                regs[RA_INDEX] = pc + 1
                return t

        elif op is Opcode.RET:

            def ex(pc, s=srcs[0]):
                return regs[s]

        elif op is Opcode.HALT:

            def ex(pc):
                return -1

        elif op is Opcode.NOP:

            def ex(pc):
                return pc + 1

        else:
            fn = _ALU_FUNCS.get(op)
            if fn is None:  # pragma: no cover - all opcodes are covered
                raise SimulationError(f"no executor for opcode {op.value}")
            if ins.op.info.n_srcs == 2:
                a_i, b_i = srcs

                def ex(pc, d=dest, a=a_i, b=b_i, f=fn):
                    regs[d] = f(regs[a], regs[b])
                    return pc + 1

            elif ins.op.info.has_imm:
                a_i = srcs[0]

                def ex(pc, d=dest, a=a_i, v=imm, f=fn):
                    regs[d] = f(regs[a], v)
                    return pc + 1

            else:
                a_i = srcs[0]

                def ex(pc, d=dest, a=a_i, f=fn):
                    regs[d] = f(regs[a])
                    return pc + 1

        executors[idx] = ex

    pc = flat.start
    executed = 0
    budget = max_instructions
    run_starts: list[int] = []
    run_lengths: list[int] = []
    run_start = pc
    run_len = 0
    while pc >= 0:
        if pc >= n_static:
            raise SimulationError(f"pc ran off the end: {pc}")
        nxt = executors[pc](pc)
        run_len += 1
        if nxt != pc + 1:
            # A taken control transfer (or HALT) closes the current
            # straight-line run.  A run's length is bounded by the static
            # table, so checking the budget here keeps the guard sound.
            run_starts.append(run_start)
            run_lengths.append(run_len)
            executed += run_len
            run_start = nxt
            run_len = 0
            if executed > budget:
                raise InterpBudgetError(executed, pc, max_instructions)
        pc = nxt

    trace = Trace(
        static=instrs,
        run_starts=run_starts,
        run_lengths=run_lengths,
        mem_addrs=mem_addrs,
        n=executed,
    )
    return RunResult(
        value=regs[RV_INDEX],
        trace=trace,
        instructions=executed,
        memory_words=memory_words,
    )


_ALU_FUNCS = {
    Opcode.ADD: lambda a, b: a + b,
    Opcode.SUB: lambda a, b: a - b,
    Opcode.ADDI: lambda a, b: a + b,
    Opcode.MUL: lambda a, b: a * b,
    Opcode.DIV: _int_div,
    Opcode.MOD: _int_mod,
    Opcode.SEQ: lambda a, b: 1 if a == b else 0,
    Opcode.SNE: lambda a, b: 1 if a != b else 0,
    Opcode.SLT: lambda a, b: 1 if a < b else 0,
    Opcode.SLE: lambda a, b: 1 if a <= b else 0,
    Opcode.SGT: lambda a, b: 1 if a > b else 0,
    Opcode.SGE: lambda a, b: 1 if a >= b else 0,
    Opcode.SEQI: lambda a, b: 1 if a == b else 0,
    Opcode.SNEI: lambda a, b: 1 if a != b else 0,
    Opcode.SLTI: lambda a, b: 1 if a < b else 0,
    Opcode.SLEI: lambda a, b: 1 if a <= b else 0,
    Opcode.SGTI: lambda a, b: 1 if a > b else 0,
    Opcode.SGEI: lambda a, b: 1 if a >= b else 0,
    Opcode.AND: lambda a, b: a & b,
    Opcode.OR: lambda a, b: a | b,
    Opcode.XOR: lambda a, b: a ^ b,
    Opcode.ANDI: lambda a, b: a & b,
    Opcode.ORI: lambda a, b: a | b,
    Opcode.XORI: lambda a, b: a ^ b,
    Opcode.SLL: lambda a, b: a << b,
    Opcode.SRL: lambda a, b: (a & 0xFFFFFFFFFFFFFFFF) >> b,
    Opcode.SRA: lambda a, b: a >> b,
    Opcode.SLLI: lambda a, b: a << b,
    Opcode.SRLI: lambda a, b: (a & 0xFFFFFFFFFFFFFFFF) >> b,
    Opcode.SRAI: lambda a, b: a >> b,
    Opcode.FADD: lambda a, b: a + b,
    Opcode.FSUB: lambda a, b: a - b,
    Opcode.FMUL: lambda a, b: a * b,
    Opcode.FDIV: lambda a, b: _float_div(a, b),
    Opcode.FNEG: lambda a: -a,
    Opcode.FEQ: lambda a, b: 1 if a == b else 0,
    Opcode.FNE: lambda a, b: 1 if a != b else 0,
    Opcode.FLT: lambda a, b: 1 if a < b else 0,
    Opcode.FLE: lambda a, b: 1 if a <= b else 0,
    Opcode.CVTIF: lambda a: float(a),
    Opcode.CVTFI: lambda a: int(a),
}


def _float_div(a: float, b: float) -> float:
    if b == 0:
        raise SimulationError("floating-point division by zero")
    return a / b

"""Shared trace-replay core with block-structured memoization.

One replay loop serves all three timing entry points (fast cycle counts,
stall-attributed replay, per-event issue schedules), replacing the three
hand-copied loops that used to live in :mod:`repro.sim.timing`.

The speed comes from two layers on top of the v2 trace encoding:

**Replay plan** (:func:`build_plan`, cached per trace): the trace's run
sequence is compressed bottom-up, byte-pair-encoding style — unique
``(start, length)`` runs become *blocks*, and adjacent block pairs that
repeat at least ``min_repeat`` times merge into larger blocks (so a hot
loop body, conditional arms included, collapses into one block per
iteration shape).  The plan is machine-independent and deterministic: the
same trace always yields the same plan, so parallel engine workers stay
bit-identical to the serial path.

**Block memoization**: replaying a block is a pure function of a small
*relative entry state*, measured against the entry cycle ``T0``:

* the intra-cycle issue count,
* the branch-stall floor, as ``max(0, floor - T0)``,
* for each register the block reads before writing (its live-ins),
  ``max(0, ready[r] - T0)``,
* for each functional unit the block uses, the multiset of
  ``max(0, free_time - T0)`` over the unit's copies (sorted — copies are
  interchangeable),
* the *aliasing structure* of the block's memory-address chunk: for each
  load, the position of the latest preceding in-block store to the same
  word (or none).  Absolute addresses are irrelevant to timing — a load
  waits only on a pending store to *its* word, so two instances whose
  addresses all shift (even unevenly) behave identically as long as the
  store→load matching is the same.

A pending store from *outside* the block that aliases one of the
block's words is folded into the key too, as the clamped extra wait it
imposes on each load (``max(0, mem_ready[addr] - T0)`` per load
position); only a pathologically wide external-wait pattern forces the
fall-through.  The aliasing structure itself is machine-independent, so
it is cached per chunk on the (shared) plan and computed once for the
whole machine grid.

Clamping at ``T0`` is sound because issue times never precede the entry
cycle: any state value at or before ``T0`` behaves exactly like ``T0``.
The memo entry stores the block's effect in the same relative terms —
exit cycle/count, written registers, pending stores (only those that
can still matter, i.e. finishing after the exit cycle — store finishes
are monotone under in-order issue with a single store latency, so the
kept set is a suffix and dropped finishes can never stall a later
load), unit free times, the block-local completion horizon, plus
(mode-dependent) the stall charges and per-event issue-time deltas — so
a hit advances the simulation in time proportional to the block's *live
state*, not its instruction count.  Whenever the entry state is not
reusable, the block falls through to direct per-instruction replay, so
results are bit-identical by construction; a block whose keys never
repeat is blacklisted and replayed directly from then on.
"""

from __future__ import annotations

import os
from collections import Counter
from dataclasses import dataclass, field
from operator import itemgetter

from ..isa.opcodes import InstrClass
from ..isa.registers import flat_index
from ..machine.config import MachineConfig
from ..obs.stalls import StallBreakdown
from .trace import Trace

# Optional NumPy backend: the vectorized kernel in
# :mod:`repro.sim.replay_vec` replays a resolved block schedule with
# array arithmetic.  The pure-stdlib scalar path below is always
# present, produces bit-identical results, and is auto-selected when
# NumPy is absent (or explicitly disabled via ``REPRO_NO_NUMPY=1`` —
# used by CI to exercise the fallback).
try:
    if os.environ.get("REPRO_NO_NUMPY"):
        raise ImportError("NumPy disabled via REPRO_NO_NUMPY")
    import numpy as _np  # noqa: F401  (presence check)
    from . import replay_vec as _replay_vec
except ImportError:  # pragma: no cover - depends on environment
    _np = None
    _replay_vec = None

#: Active replay backend: ``"numpy"`` (vectorized kernel available) or
#: ``"scalar"`` (pure stdlib).  Surfaced in engine report events and
#: ``repro trace`` output.  Also tags persisted memo payloads: the two
#: backends intern the store→load aliasing key differently, so memo
#: files never cross backends.
BACKEND = "numpy" if _np is not None else "scalar"

#: Format tag of persisted replay-memo payloads (see
#: :meth:`ReplayCore.export_memo` and :mod:`repro.sim.memo`).
MEMO_PAYLOAD_FORMAT = "replay-memo-v1"


class _UnitState:
    """Run-time state of one functional-unit type (all copies)."""

    __slots__ = ("issue_latency", "free")

    def __init__(self, issue_latency: int, multiplicity: int) -> None:
        self.issue_latency = issue_latency
        self.free = [0] * multiplicity


#: Instruction classes in a fixed order so per-config latency/unit
#: lookups reduce to a C-level list index (enum hashing happens once
#: per class, not once per static instruction per machine).
_CLASSES = list(InstrClass)
_CLASS_POS = {klass: i for i, klass in enumerate(_CLASSES)}


def _static_skeleton(trace: Trace) -> tuple[list[tuple], int]:
    """The config-independent half of :func:`_static_records`.

    One entry per static instruction: ``(src_indices, dest_index,
    class_position, is_load, is_store, is_cond_branch)``.  Cached on the
    trace — the static table never changes after construction — so a
    machine grid decodes it once, not once per machine.
    """
    skel = trace._skel
    if skel is None:
        entries: list[tuple] = []
        max_reg = 0
        for ins in trace.static:
            info = ins.op.info
            srcs = tuple(flat_index(r) for r in ins.srcs)
            dest = flat_index(ins.dest) if ins.dest is not None else -1
            for r in srcs:
                if r > max_reg:
                    max_reg = r
            if dest > max_reg:
                max_reg = dest
            entries.append(
                (srcs, dest, _CLASS_POS[ins.op.klass],
                 info.is_load, info.is_store, info.is_cond_branch)
            )
        skel = (entries, max_reg)
        trace._skel = skel
    return skel


def _static_records(
    trace: Trace, config: MachineConfig
) -> tuple[list[tuple], int]:
    """Precompute per-static-instruction issue records.

    Each record is ``(src_indices, dest_index, latency, unit, is_load,
    is_store, is_cond_branch)`` with ``dest_index = -1`` for no
    destination and ``unit`` either ``None`` (ideal) or the shared
    :class:`_UnitState`.
    """
    unit_for_class: dict[InstrClass, _UnitState] = {}
    if config.units:
        for u in config.units:
            state = _UnitState(u.issue_latency, u.multiplicity)
            for klass in u.classes:
                # First unit listed for a class wins; presets do not overlap.
                unit_for_class.setdefault(klass, state)

    entries, max_reg = _static_skeleton(trace)
    latency_of = [config.latencies[k] for k in _CLASSES]
    unit_of = [unit_for_class.get(k) for k in _CLASSES]
    records: list[tuple] = [
        (srcs, dest, latency_of[ki], unit_of[ki], il, ist, icb)
        for srcs, dest, ki, il, ist, icb in entries
    ]
    return records, max_reg


# --------------------------------------------------------------------------
# Replay plan: run deduplication + pair merging
# --------------------------------------------------------------------------

#: Merge phases: ``(min_repeat, max_block)`` — a merged pair must repeat
#: at least ``min_repeat`` times and stay within ``max_block``
#: instructions.  A high repeat threshold keeps merging focused on hot
#: pairs whose repetition amortizes the extra key diversity a bigger
#: block brings; sweeps showed one aggressive phase beats multi-phase
#: schedules and larger caps on the paper grid.
_MERGE_PHASES = ((20, 512),)
#: Back-compat aliases for the first phase's knobs.
_MIN_REPEAT = _MERGE_PHASES[0][0]
_MAX_BLOCK_INSTRS = _MERGE_PHASES[0][1]
#: Upper bound on merge passes (each pass at least halves hot sequences).
_MAX_PASSES = 24
#: A block is abandoned for memoization once it misses this often
#: without ever hitting, or once its table grows past ``_MAX_KEYS``.
_BLACKLIST_MISSES = 24
_MAX_KEYS = 2048


class _Block:
    """One replay unit: static segments replayed (or memoized) as a whole."""

    __slots__ = ("segments", "n_instrs", "n_mem", "count", "eligible",
                 "has_dataflow", "live_ins", "defs", "load_sel",
                 "store_sel", "is_load_pos", "needs_mem_key", "load_get",
                 "store_get", "mem_key_cache")

    def __init__(self, segments: tuple[tuple[int, int], ...],
                 n_instrs: int, n_mem: int) -> None:
        self.segments = segments
        self.n_instrs = n_instrs
        self.n_mem = n_mem
        self.count = 0          # occurrences in the schedule
        self.eligible = False   # worth memoizing (repeats)
        self.has_dataflow = False  # live-in/def/memory summaries built
        self.live_ins: tuple[int, ...] = ()
        self.defs: tuple[int, ...] = ()
        self.load_sel: tuple[int, ...] = ()    # chunk positions of loads
        self.store_sel: tuple[int, ...] = ()   # chunk positions of stores
        #: chunk position -> True for loads (False for stores)
        self.is_load_pos: tuple[bool, ...] = ()
        #: True when the block has both loads and stores, i.e. when the
        #: store→load aliasing structure can vary between instances.
        self.needs_mem_key = False
        #: C-speed selectors: address chunk -> tuple of load/store addrs.
        self.load_get = None
        self.store_get = None
        #: Address chunk -> mem_key.  The aliasing structure depends only
        #: on the chunk, not the machine, so this lives on the (shared)
        #: plan and warms across the whole machine grid.
        self.mem_key_cache: dict | None = None


@dataclass(slots=True)
class _Plan:
    """A compressed, machine-independent replay schedule for one trace."""

    blocks: list[_Block]
    schedule: list[int]
    #: Lazily built SoA view (:class:`repro.sim.replay_vec.PlanVec`);
    #: machine-independent, shared by every core replaying this trace.
    vec: object = None


def _selector(positions):
    """A callable mapping an address chunk to a tuple of its entries at
    ``positions`` (``operator.itemgetter``, normalized to always return a
    tuple even for a single position)."""
    if len(positions) == 1:
        j = positions[0]
        return lambda chunk, _j=j: (chunk[_j],)
    return itemgetter(*positions)


def _merge_segments(
    a: tuple[tuple[int, int], ...], b: tuple[tuple[int, int], ...]
) -> tuple[tuple[int, int], ...]:
    """Concatenate two segment lists, fusing at a contiguous seam."""
    last_start, last_len = a[-1]
    first_start, first_len = b[0]
    if last_start + last_len == first_start:
        return (a[:-1]
                + ((last_start, last_len + first_len),)
                + b[1:])
    return a + b


def build_plan(
    trace: Trace,
    *,
    phases: tuple[tuple[int, int], ...] = _MERGE_PHASES,
    max_passes: int = _MAX_PASSES,
) -> _Plan:
    """Compress ``trace``'s run sequence into a block schedule.

    Pure function of the trace (and the tuning knobs): no randomness, no
    machine state — required so serial and parallel engine runs produce
    identical replay statistics.
    """
    entries, _ = _static_skeleton(trace)
    mem_prefix = [0] * (len(entries) + 1)
    acc = 0
    for i, (_, _, _, il, ist, _) in enumerate(entries):
        if il or ist:
            acc += 1
        mem_prefix[i + 1] = acc

    blocks: list[_Block] = []
    block_of_run: dict[tuple[int, int], int] = {}
    seq: list[int] = []
    for start, length in zip(trace.run_starts, trace.run_lengths):
        bid = block_of_run.get((start, length))
        if bid is None:
            bid = len(blocks)
            block_of_run[(start, length)] = bid
            blocks.append(_Block(
                ((start, length),), length,
                mem_prefix[start + length] - mem_prefix[start],
            ))
        seq.append(bid)

    block_of_pair: dict[tuple[int, int], int] = {}
    for min_repeat, max_block in phases:
        for _ in range(max_passes):
            if len(seq) < 2 * min_repeat:
                break
            pair_counts = Counter(zip(seq, seq[1:]))
            good = {
                pair for pair, c in pair_counts.items()
                if c >= min_repeat
                and blocks[pair[0]].n_instrs + blocks[pair[1]].n_instrs
                <= max_block
            }
            if not good:
                break
            out: list[int] = []
            append = out.append
            i = 0
            n = len(seq)
            while i < n - 1:
                pair = (seq[i], seq[i + 1])
                if pair in good:
                    bid = block_of_pair.get(pair)
                    if bid is None:
                        bid = len(blocks)
                        block_of_pair[pair] = bid
                        a, b = blocks[pair[0]], blocks[pair[1]]
                        blocks.append(_Block(
                            _merge_segments(a.segments, b.segments),
                            a.n_instrs + b.n_instrs,
                            a.n_mem + b.n_mem,
                        ))
                    append(bid)
                    i += 2
                else:
                    append(seq[i])
                    i += 1
            if i == n - 1:
                append(seq[i])
            if len(out) == len(seq):
                break
            seq = out

    for bid, count in Counter(seq).items():
        block = blocks[bid]
        block.count = count
        block.eligible = count >= 2

    # Dataflow summaries, needed eagerly only for memoizable blocks; the
    # vectorized kernel fills them in lazily for the rest (see
    # :func:`_block_dataflow`).
    for block in blocks:
        if block.eligible:
            _block_dataflow(block, entries)

    return _Plan(blocks=blocks, schedule=seq)


def _block_dataflow(block: _Block, entries: list) -> None:
    """Compute a block's live-in/def/memory summaries (idempotent).

    ``entries`` is the static skeleton from :func:`_static_skeleton`.
    Eager for memoizable blocks (the scalar key path needs them on every
    event); lazy for direct-replay blocks, which only the vectorized
    kernel and the resolve capture ever summarize.
    """
    if block.has_dataflow:
        return
    live: list[int] = []
    live_set: set[int] = set()
    defs: list[int] = []
    defs_set: set[int] = set()
    load_sel: list[int] = []
    store_sel: list[int] = []
    pos = 0
    for start, length in block.segments:
        for si in range(start, start + length):
            srcs, dest, _, il, ist, _ = entries[si]
            for fr in srcs:
                if fr not in defs_set and fr not in live_set:
                    live_set.add(fr)
                    live.append(fr)
            if dest >= 0 and dest not in defs_set:
                defs_set.add(dest)
                defs.append(dest)
            if il:
                load_sel.append(pos)
                pos += 1
            elif ist:
                store_sel.append(pos)
                pos += 1
    block.live_ins = tuple(live)
    block.defs = tuple(defs)
    block.load_sel = tuple(load_sel)
    block.store_sel = tuple(store_sel)
    is_load_pos = [False] * pos
    for j in load_sel:
        is_load_pos[j] = True
    block.is_load_pos = tuple(is_load_pos)
    block.needs_mem_key = bool(load_sel and store_sel)
    if block.needs_mem_key:
        block.load_get = _selector(load_sel)
        block.store_get = _selector(store_sel)
        block.mem_key_cache = {}
    block.has_dataflow = True


def plan_for(trace: Trace) -> _Plan:
    """The (lazily built, cached) replay plan of ``trace``."""
    plan = trace._plan
    if plan is None:
        plan = build_plan(trace)
        trace._plan = plan
    return plan


# --------------------------------------------------------------------------
# Replay execution
# --------------------------------------------------------------------------

@dataclass(slots=True)
class ReplayStats:
    """Counters from one replay (attached to timing results)."""

    blocks: int = 0              # block events in the replay schedule
    memo_hits: int = 0
    memo_misses: int = 0
    fallbacks: int = 0           # blocks forced direct by a pending store
    memo_instructions: int = 0   # instructions advanced via memo hits
    direct_instructions: int = 0  # instructions replayed one at a time
    #: Block events replayed by the vectorized kernel (0 on scalar runs;
    #: equals ``blocks`` when a vectorized replay verified end to end).
    vectorized_blocks: int = 0
    #: Block events replayed by the scalar engine after a vectorized
    #: verification failed mid-grid (the whole run falls back).
    scalar_fallback_blocks: int = 0
    #: Memo hits served from entries adopted out of a persisted memo
    #: payload (disk or in-process registry) rather than learned live.
    memo_persisted_hits: int = 0

    def as_dict(self) -> dict:
        return {
            "blocks": self.blocks,
            "memo_hits": self.memo_hits,
            "memo_misses": self.memo_misses,
            "fallbacks": self.fallbacks,
            "memo_instructions": self.memo_instructions,
            "direct_instructions": self.direct_instructions,
            "vectorized_blocks": self.vectorized_blocks,
            "scalar_fallback_blocks": self.scalar_fallback_blocks,
            "memo_persisted_hits": self.memo_persisted_hits,
        }

    def record_to(self, metrics) -> None:
        """Fold these counters into a metrics registry
        (:class:`repro.obs.metrics.MetricsRegistry`) under the
        ``replay.*`` namespace — the bridge between per-replay memo
        statistics and run-level metrics/reports."""
        if not metrics.enabled:
            return
        metrics.incr("replay.blocks", self.blocks)
        metrics.incr("replay.memo_hits", self.memo_hits)
        metrics.incr("replay.memo_misses", self.memo_misses)
        metrics.incr("replay.fallbacks", self.fallbacks)
        metrics.incr("replay.memo_instructions", self.memo_instructions)
        metrics.incr("replay.direct_instructions",
                     self.direct_instructions)
        metrics.incr("replay.vectorized_blocks", self.vectorized_blocks)
        metrics.incr("replay.scalar_fallback_blocks",
                     self.scalar_fallback_blocks)
        metrics.incr("replay.memo_persisted_hits",
                     self.memo_persisted_hits)


@dataclass(slots=True)
class ReplayOutcome:
    """Raw result of one replay, before timing bookkeeping."""

    minor_cycles: int            # completion time of the last result
    final_issue: int             # issue time of the last instruction
    stalls: StallBreakdown | None
    times: list[int] | None      # per-event issue times (want_times mode)
    stats: ReplayStats


class ReplayCore:
    """Replays one trace on one machine, memoizing repeated blocks.

    A core is single-mode (``observe`` / ``want_times`` fixed at
    construction) because memo entries store mode-dependent payloads.
    Memo tables persist across :meth:`run` calls, so replaying the same
    core twice is memo-warm.
    """

    __slots__ = ("trace", "config", "records", "max_reg", "plan",
                 "observe", "want_times", "_klasses", "_width",
                 "_stall_on_branches", "_has_units", "_tables",
                 "_block_unit_cache", "_hit_counts", "_miss_counts",
                 "_blacklisted", "_resolved", "_vec", "_adopted_keys",
                 "_unit_states")

    def __init__(self, trace: Trace, config: MachineConfig, *,
                 observe: bool = False, want_times: bool = False) -> None:
        self.trace = trace
        self.config = config
        self.records, self.max_reg = _static_records(trace, config)
        self.plan = plan_for(trace)
        self.observe = observe
        self.want_times = want_times
        self._klasses = (
            [ins.op.klass for ins in trace.static] if observe else None
        )
        self._width = config.issue_width
        self._stall_on_branches = config.branch_policy == "stall"
        self._has_units = bool(config.units)
        #: Distinct shared :class:`_UnitState` objects from ``records``;
        #: their ``free`` times are absolute minor cycles within one
        #: run, so every scalar run starts by zeroing them (rerunning a
        #: core must be a fresh replay, not a continuation).
        seen_units: dict[int, _UnitState] = {}
        for rec in self.records:
            unit = rec[3]
            if unit is not None:
                seen_units[id(unit)] = unit
        self._unit_states = list(seen_units.values())
        n_blocks = len(self.plan.blocks)
        #: Per-block memo table; ``None`` marks a block that is replayed
        #: directly (ineligible from the start, or blacklisted later), so
        #: the hot loop needs a single list index to dispatch.
        self._tables: list[dict | None] = [
            {} if b.eligible else None for b in self.plan.blocks
        ]
        self._block_unit_cache: list[tuple | None] = [None] * n_blocks
        self._hit_counts = [0] * n_blocks
        self._miss_counts = [0] * n_blocks
        self._blacklisted = bytearray(n_blocks)
        #: Per-event records from the last scalar *resolving* run —
        #: ``(bid, key, entry, kind)`` with ``kind`` 0 for table-backed
        #: events and 1 for direct/fallback replays; the input to the
        #: vectorized kernel and the persisted memo payload.
        self._resolved: list | None = None
        #: ``None`` (not built), ``False`` (records inexpressible — stay
        #: scalar), or the per-core arrays for the vectorized kernel.
        self._vec: object = None
        #: Per-block frozensets of memo keys adopted from a persisted
        #: payload (``None`` until :meth:`adopt_memo`), for the
        #: ``memo_persisted_hits`` counter.
        self._adopted_keys: list | None = None

    def _plan_vec(self):
        """The (lazily built) SoA view of the plan, shared per trace."""
        pv = self.plan.vec
        if pv is None:
            entries, _ = _static_skeleton(self.trace)
            pv = _replay_vec.build_plan_vec(
                self.trace, self.plan, entries,
                lambda block: _block_dataflow(block, entries),
            )
            self.plan.vec = pv
        return pv

    def export_memo(self) -> dict:
        """Snapshot the learned memo state as a persistable payload.

        The payload shares the live table/record object graphs (cheap;
        pickling deduplicates shared tuples).  Adopted by a later core
        via :meth:`adopt_memo`; stored on disk by
        :mod:`repro.sim.memo`.
        """
        return {
            "format": MEMO_PAYLOAD_FORMAT,
            "key_format": BACKEND,
            "mode": (self.observe, self.want_times),
            "tables": self._tables,
            "blacklisted": bytes(self._blacklisted),
            "resolved": self._resolved,
        }

    def adopt_memo(self, payload) -> bool:
        """Adopt a persisted memo payload; ``False`` leaves state untouched.

        Structural validation mirrors the trace cache: a payload with
        the wrong format tag, backend key format, replay mode, or block
        shape is reported stale/corrupt rather than trusted — the
        caller drops the cache entry and the core starts cold.  Value
        errors a structural walk cannot see are caught later by the
        vectorized kernel's per-run verification (and can only ever
        cost a scalar re-resolve, never a wrong result).
        """
        blocks = self.plan.blocks
        n_blocks = len(blocks)
        try:
            if payload.get("format") != MEMO_PAYLOAD_FORMAT:
                return False
            if payload.get("key_format") != BACKEND:
                return False
            if payload.get("mode") != (self.observe, self.want_times):
                return False
            tables = payload["tables"]
            black = payload["blacklisted"]
            resolved = payload["resolved"]
            if not isinstance(tables, list) or len(tables) != n_blocks:
                return False
            if not isinstance(black, (bytes, bytearray)) \
                    or len(black) != n_blocks:
                return False
            for bid, table in enumerate(tables):
                if table is None:
                    continue
                if not isinstance(table, dict) \
                        or not blocks[bid].eligible:
                    return False
                for key, entry in table.items():
                    if not isinstance(key, tuple) or len(key) != 6:
                        return False
                    if not isinstance(entry, tuple) or len(entry) != 9:
                        return False
            if resolved is not None:
                if not isinstance(resolved, list) \
                        or len(resolved) != len(self.plan.schedule):
                    return False
                for rec in resolved:
                    if not isinstance(rec, tuple) or len(rec) != 4:
                        return False
        except (AttributeError, TypeError, KeyError):
            return False
        self._tables = tables
        self._blacklisted = bytearray(black)
        self._resolved = resolved
        self._vec = None
        self._adopted_keys = [
            frozenset(table) if table else None for table in tables
        ]
        return True

    def _block_units(self, bid: int) -> tuple:
        """Distinct functional units a block uses, in first-use order."""
        units = self._block_unit_cache[bid]
        if units is None:
            seen: list = []
            records = self.records
            for start, length in self.plan.blocks[bid].segments:
                for si in range(start, start + length):
                    unit = records[si][3]
                    if unit is not None and unit not in seen:
                        seen.append(unit)
            units = tuple(seen)
            self._block_unit_cache[bid] = units
        return units

    def _replay_segments(self, segments, m, reg_ready, mem_ready,
                         cur_cycle, cur_count, branch_floor,
                         charge, times, store_log=None):
        """Direct per-instruction replay of ``segments``.

        The one and only copy of the paper's in-order issue model;
        ``charge`` is ``None`` or a ``(klass, cause_index, cycles)``
        sink, ``times`` is ``None`` or a list collecting issue times,
        ``store_log`` is ``None`` or a list collecting a
        ``(finish, addr)`` pair per store, in order (used by the memo
        capture and the pending-store fallback check).
        Returns ``(m, cur_cycle, cur_count, branch_floor, local_finish)``
        where ``local_finish`` is the completion horizon of *these*
        instructions only.
        """
        records = self.records
        mem_addrs = self.trace.mem_addrs
        width = self._width
        stall_on_branches = self._stall_on_branches
        klasses = self._klasses
        mem_get = mem_ready.get
        tappend = times.append if times is not None else None
        sfappend = store_log.append if store_log is not None else None
        local_finish = 0
        addr = -1

        for start, length in segments:
            for si in range(start, start + length):
                srcs, dest, lat, unit, is_load, is_store, is_cbr = \
                    records[si]

                t = cur_cycle
                if t < branch_floor:
                    t = branch_floor
                floor_mark = t
                for s in srcs:
                    r = reg_ready[s]
                    if r > t:
                        t = r
                raw_mark = t
                if is_load:
                    addr = mem_addrs[m]
                    m += 1
                    r = mem_get(addr, 0)
                    if r > t:
                        t = r
                elif is_store:
                    addr = mem_addrs[m]
                    m += 1
                mem_mark = t

                # Find the first cycle >= t with an issue slot and a free
                # unit copy.
                if unit is None:
                    unit_free_at = -1
                    if t == cur_cycle and cur_count >= width:
                        t += 1
                else:
                    unit_free_at = min(unit.free) if charge is not None \
                        else -1
                    while True:
                        if t == cur_cycle and cur_count >= width:
                            t += 1
                        free = unit.free
                        best = 0
                        best_time = free[0]
                        for k in range(1, len(free)):
                            if free[k] < best_time:
                                best_time = free[k]
                                best = k
                        if best_time > t:
                            t = best_time
                            continue  # re-check the issue-width constraint
                        free[best] = t + unit.issue_latency
                        break

                if t > cur_cycle:
                    if charge is not None:
                        # Attribute the wait [cur_cycle, t) segment by
                        # segment; the marks are non-decreasing.
                        klass = klasses[si]
                        b = cur_cycle
                        if floor_mark > b:
                            charge(klass, 0, floor_mark - b)  # control
                            b = floor_mark
                        if raw_mark > b:
                            charge(klass, 1, raw_mark - b)    # raw_dep
                            b = raw_mark
                        if mem_mark > b:
                            charge(klass, 2, mem_mark - b)    # memory_order
                            b = mem_mark
                        if unit_free_at > b:
                            mk = unit_free_at if unit_free_at < t else t
                            charge(klass, 3, mk - b)          # unit_conflict
                            b = mk
                        if t > b:
                            charge(klass, 4, t - b)           # issue_width
                    cur_cycle = t
                    cur_count = 1
                else:
                    cur_count += 1

                finish = t + lat
                if dest >= 0:
                    reg_ready[dest] = finish
                if is_store:
                    mem_ready[addr] = finish
                    if sfappend is not None:
                        sfappend((finish, addr))
                if is_cbr and stall_on_branches:
                    branch_floor = finish
                if finish > local_finish:
                    local_finish = finish
                if tappend is not None:
                    tappend(t)

        return m, cur_cycle, cur_count, branch_floor, local_finish

    def run(self, *, memoize: bool = True) -> ReplayOutcome:
        """Replay the whole trace; ``memoize=False`` forces the direct
        per-instruction path for every block (the reference behavior the
        property tests compare against).

        Under the NumPy backend the first memoized run *resolves*
        (scalar replay capturing per-event records); later runs go
        through the vectorized kernel, which verifies every recorded
        memo key against the dependence chains and falls back to a
        scalar re-resolve on any mismatch — results are bit-identical
        to the scalar path by construction.
        """
        if not memoize:
            return self._run_plain()
        if _np is not None:
            pv = self._plan_vec()
            vec = self._vec
            if vec is None and self._resolved is not None:
                vec = _replay_vec.build_core_vec(self, pv)
                if vec is None:
                    vec = False
                self._vec = vec
            if vec is not None and vec is not False:
                out = _replay_vec.run_vectorized(self, pv, vec)
                if out is not None:
                    return out
                # A recorded key no longer matches its chain (e.g. a
                # stale adopted memo): re-resolve on the scalar path.
                self._vec = None
                self._resolved = None
                out = self._run_memoized(pv, resolve=True)
                out.stats.scalar_fallback_blocks = out.stats.blocks
                return out
            return self._run_memoized(pv, resolve=vec is not False)
        return self._run_memoized(None, resolve=False)

    def _reset_units(self) -> None:
        """Zero every functional unit's copy free-times (run start)."""
        for unit in self._unit_states:
            free = unit.free
            for i in range(len(free)):
                free[i] = 0

    def _run_plain(self) -> ReplayOutcome:
        """The pure per-instruction reference path (no memoization)."""
        self._reset_units()
        trace = self.trace
        observe = self.observe
        breakdown = StallBreakdown() if observe else None
        charge = breakdown.charge if observe else None
        times: list[int] | None = [] if self.want_times else None
        stats = ReplayStats(blocks=len(self.plan.schedule))
        reg_ready = [0] * (self.max_reg + 1)
        mem_ready: dict[int, int] = {}
        m, cur_cycle, cur_count, branch_floor, last_finish = \
            self._replay_segments(
                trace.runs(), 0, reg_ready, mem_ready, 0, 0, 0,
                charge, times,
            )
        stats.direct_instructions = trace.n
        if breakdown is not None:
            breakdown.issued_cycles = last_finish - cur_cycle
        return ReplayOutcome(
            minor_cycles=last_finish, final_issue=cur_cycle,
            stalls=breakdown, times=times, stats=stats,
        )

    def _run_memoized(self, pv, *, resolve: bool) -> ReplayOutcome:
        """The scalar memoizing replay loop.

        ``pv`` is the plan's SoA view (NumPy backend) or ``None``; with
        it, the store→load aliasing key is a precomputed plan-level
        alias id instead of a per-chunk tuple.  With ``resolve=True``
        every event additionally records ``(bid, key, entry, kind)`` —
        direct and fallback replays synthesize an equivalent key/entry
        pair from their observed entry state and effects — feeding the
        vectorized kernel and the persisted memo payload.
        """
        self._reset_units()
        trace = self.trace
        plan = self.plan
        blocks = plan.blocks
        mem_addrs = trace.mem_addrs
        observe = self.observe
        breakdown = StallBreakdown() if observe else None
        charge = breakdown.charge if observe else None
        times: list[int] | None = [] if self.want_times else None
        stats = ReplayStats(blocks=len(plan.schedule))

        reg_ready = [0] * (self.max_reg + 1)
        mem_ready: dict[int, int] = {}
        cur_cycle = 0
        cur_count = 0
        branch_floor = 0
        last_finish = 0
        m = 0

        alias_ids = pv.alias_ids if pv is not None else None
        resolved: list | None = [] if resolve else None
        rec_append = resolved.append if resolved is not None else None
        skel_entries = _static_skeleton(trace)[0] if resolve else None
        adopted = self._adopted_keys
        persisted = 0
        tables = self._tables
        hit_counts = self._hit_counts
        miss_counts = self._miss_counts
        has_units = self._has_units
        stall = self._stall_on_branches
        # Hit/miss totals are recovered from the per-block counters
        # afterwards instead of bumping stats attributes on every event.
        hits_before = list(hit_counts)
        misses_before = list(miss_counts)
        #: Stores whose completion may still be in the future:
        #: ``(finish, addr)`` pairs, pruned lazily against the entry
        #: cycle.  In-order issue bounds the live tail by
        #: ``issue_width * max_latency``, so this stays tiny; it lets the
        #: fallback check test "any pending store aliases this chunk?"
        #: with one C-level set disjointness instead of a per-load walk
        #: of ``mem_ready``.
        pending: list[tuple[int, int]] = []

        for p, bid in enumerate(plan.schedule):
            block = blocks[bid]
            table = tables[bid]
            if table is not None:
                T0 = cur_cycle
                n_mem = block.n_mem
                reusable = True
                mem_key = ()
                ext_key = ()
                chunk = None
                if n_mem:
                    if pending:
                        pending = [e for e in pending if e[0] > T0]
                        if pending:
                            chunk = mem_addrs[m:m + n_mem]
                            if not {
                                a for _, a in pending
                            }.isdisjoint(chunk):
                                # A store from outside the block is still
                                # pending on one of this chunk's words.
                                # The wait it can impose on our loads is
                                # just a clamped ready delta, so fold it
                                # into the key instead of giving up —
                                # unless it blows the key up (then fall
                                # back to direct replay).  (The set test
                                # may match on a store position: that
                                # only adds a harmless key refinement,
                                # never a wrong hit.)
                                mem_get = mem_ready.get
                                ext = [
                                    (j, d) for j in block.load_sel
                                    if (d := mem_get(chunk[j], 0) - T0)
                                    > 0
                                ]
                                if len(ext) <= 8:
                                    ext_key = tuple(ext)
                                else:
                                    reusable = False
                    if reusable and block.needs_mem_key:
                        # Per load: latest preceding in-block store to
                        # the same word (-1 for none) — the only thing
                        # timing can see of the addresses.  Under the
                        # NumPy backend the whole address stream was
                        # analyzed up front and the structure interned
                        # to a plan-level alias id per event; otherwise
                        # the structure depends only on the chunk, so
                        # repeated chunks (and the whole machine grid
                        # after the first machine) hit the plan-level
                        # cache; on a miss the common no-alias case is
                        # decided by one C-level disjointness test.
                        if alias_ids is not None:
                            mem_key = alias_ids[p]
                        else:
                            if chunk is None:
                                chunk = mem_addrs[m:m + n_mem]
                            ckey = tuple(chunk)
                            mkc = block.mem_key_cache
                            mem_key = mkc.get(ckey)
                            if mem_key is None:
                                if set(block.store_get(ckey)).isdisjoint(
                                        block.load_get(ckey)):
                                    mem_key = ()
                                else:
                                    last_store: dict[int, int] = {}
                                    ls_get = last_store.get
                                    is_load_pos = block.is_load_pos
                                    mk = []
                                    mk_append = mk.append
                                    for j, a in enumerate(ckey):
                                        if is_load_pos[j]:
                                            mk_append(ls_get(a, -1))
                                        else:
                                            last_store[a] = j
                                    mem_key = tuple(mk)
                                if len(mkc) < _MAX_KEYS:
                                    mkc[ckey] = mem_key
                if reusable:
                    regs_key = tuple([
                        d if (d := reg_ready[r] - T0) > 0 else 0
                        for r in block.live_ins
                    ])
                    if has_units:
                        ustates = self._block_units(bid)
                        unit_key = tuple([
                            tuple(sorted([
                                d if (d := f - T0) > 0 else 0
                                for f in s.free
                            ]))
                            for s in ustates
                        ])
                    else:
                        ustates = ()
                        unit_key = ()
                    if stall:
                        d = branch_floor - T0
                        floor_key = d if d > 0 else 0
                    else:
                        floor_key = 0
                    key = (cur_count, floor_key, regs_key, unit_key,
                           mem_key, ext_key)
                    entry = table.get(key)
                    if entry is not None:
                        (d_cyc, exit_count, d_floor, regs_out, stores_out,
                         units_out, d_fin, charges, time_deltas) = entry
                        for r, dv in regs_out:
                            reg_ready[r] = T0 + dv
                        # Only stores still in flight at the exit cycle:
                        # every later load issues at or after the exit
                        # cycle, so a store finished by then can never
                        # stall anything and needs no bookkeeping at all.
                        # Applied in chunk order (finishes are monotone
                        # in position), so repeated stores to one word
                        # end on the latest finish, whatever this
                        # instance's store→store aliasing looks like.
                        for j, dv in stores_out:
                            a = mem_addrs[m + j]
                            fin = T0 + dv
                            mem_ready[a] = fin
                            pending.append((fin, a))
                        if units_out:
                            for s, deltas in zip(ustates, units_out):
                                free = s.free
                                for k, dv in enumerate(deltas):
                                    free[k] = T0 + dv
                        cur_cycle = T0 + d_cyc
                        cur_count = exit_count
                        branch_floor = T0 + d_floor
                        fin = T0 + d_fin
                        if fin > last_finish:
                            last_finish = fin
                        if charges is not None:
                            for kl, ci, cyc in charges:
                                charge(kl, ci, cyc)
                        if time_deltas is not None:
                            times.extend([T0 + dv for dv in time_deltas])
                        m += n_mem
                        hit_counts[bid] += 1
                        if adopted is not None:
                            akeys = adopted[bid]
                            if akeys is not None and key in akeys:
                                persisted += 1
                        if rec_append is not None:
                            rec_append((bid, key, entry, 0))
                        continue
                    # Miss: replay directly, capturing the block's effect.
                    if observe:
                        cap: list | None = []
                        cap_charge = (
                            lambda kl, ci, cyc, _c=cap:
                            _c.append((kl, ci, cyc))
                        )
                    else:
                        cap = None
                        cap_charge = None
                    tcap: list[int] | None = [] if times is not None \
                        else None
                    log_start = len(pending)
                    m, cur_cycle, cur_count, branch_floor, local_fin = \
                        self._replay_segments(
                            block.segments, m, reg_ready, mem_ready,
                            cur_cycle, cur_count, branch_floor,
                            cap_charge, tcap, pending,
                        )
                    if local_fin > last_finish:
                        last_finish = local_fin
                    regs_out = tuple([
                        (r, reg_ready[r] - T0) for r in block.defs
                    ])
                    if block.store_sel:
                        # One entry per store *position* still in flight
                        # at the exit cycle (store finishes are monotone
                        # in position — same class, in-order issue — so
                        # this is a positional suffix); finishes are
                        # key-determined even when this instance's later
                        # store to the same word overwrote mem_ready.
                        # Stores finished by the exit cycle can never
                        # stall any later load and are dropped.
                        stores_out = tuple([
                            (j, se[0] - T0)
                            for j, se in zip(block.store_sel,
                                             pending[log_start:])
                            if se[0] > cur_cycle
                        ])
                        # Compact the log: only in-flight stores stay
                        # pending.
                        pending[log_start:] = [
                            e for e in pending[log_start:]
                            if e[0] > cur_cycle
                        ]
                    else:
                        stores_out = ()
                    if ustates:
                        units_out = tuple([
                            tuple(sorted([
                                d if (d := f - T0) > 0 else 0
                                for f in s.free
                            ]))
                            for s in ustates
                        ])
                    else:
                        units_out = ()
                    d = branch_floor - T0
                    entry = (
                        cur_cycle - T0,
                        cur_count,
                        d if d > 0 else 0,
                        regs_out,
                        stores_out,
                        units_out,
                        local_fin - T0,
                        tuple(cap) if cap is not None else None,
                        tuple([t - T0 for t in tcap])
                        if tcap is not None else None,
                    )
                    table[key] = entry
                    if rec_append is not None:
                        rec_append((bid, key, entry, 0))
                    if cap is not None:
                        for kl, ci, cyc in cap:
                            charge(kl, ci, cyc)
                    if tcap is not None:
                        times.extend(tcap)
                    miss_counts[bid] += 1
                    if ((miss_counts[bid] >= _BLACKLIST_MISSES
                         and hit_counts[bid] == 0)
                            or len(table) > _MAX_KEYS):
                        # Keys never repeat (or explode): stop paying for
                        # key construction and drop the table.
                        self._blacklisted[bid] = 1
                        tables[bid] = None
                    continue
                stats.fallbacks += 1
            # Direct replay: ineligible, blacklisted, or fallback.
            if rec_append is None:
                m, cur_cycle, cur_count, branch_floor, local_fin = \
                    self._replay_segments(
                        block.segments, m, reg_ready, mem_ready,
                        cur_cycle, cur_count, branch_floor, charge,
                        times, pending,
                    )
                if local_fin > last_finish:
                    last_finish = local_fin
                continue
            # Resolving: synthesize the equivalent key/entry pair for
            # this direct replay so the vectorized kernel can verify
            # and advance over it like any memo hit.  The key mirrors
            # the memoized path exactly, except the external-wait
            # component is uncapped (nothing is being interned here).
            T0 = cur_cycle
            _block_dataflow(block, skel_entries)
            ext_rec = ()
            if block.load_sel and pending:
                live = [e for e in pending if e[0] > T0]
                if live:
                    chunkd = mem_addrs[m:m + block.n_mem]
                    mem_get = mem_ready.get
                    ext_rec = tuple([
                        (j, d) for j in block.load_sel
                        if (d := mem_get(chunkd[j], 0) - T0) > 0
                    ])
            regs_key = tuple([
                d if (d := reg_ready[r] - T0) > 0 else 0
                for r in block.live_ins
            ])
            if has_units:
                ustates_d = self._block_units(bid)
                unit_key = tuple([
                    tuple(sorted([
                        d if (d := f - T0) > 0 else 0
                        for f in s.free
                    ]))
                    for s in ustates_d
                ])
            else:
                ustates_d = ()
                unit_key = ()
            d = branch_floor - T0
            key = (cur_count, d if d > 0 else 0, regs_key, unit_key,
                   alias_ids[p] if block.needs_mem_key else (), ext_rec)
            if observe:
                cap = []
                cap_charge = (
                    lambda kl, ci, cyc, _c=cap:
                    _c.append((kl, ci, cyc))
                )
            else:
                cap = None
                cap_charge = None
            tcap = [] if times is not None else None
            log_start = len(pending)
            m, cur_cycle, cur_count, branch_floor, local_fin = \
                self._replay_segments(
                    block.segments, m, reg_ready, mem_ready,
                    cur_cycle, cur_count, branch_floor, cap_charge,
                    tcap, pending,
                )
            if local_fin > last_finish:
                last_finish = local_fin
            d = branch_floor - T0
            entry = (
                cur_cycle - T0,
                cur_count,
                d if d > 0 else 0,
                tuple([(r, reg_ready[r] - T0) for r in block.defs]),
                tuple([
                    (j, se[0] - T0)
                    for j, se in zip(block.store_sel,
                                     pending[log_start:])
                ]),
                tuple([
                    tuple(sorted([
                        d if (d := f - T0) > 0 else 0
                        for f in s.free
                    ]))
                    for s in ustates_d
                ]) if ustates_d else (),
                local_fin - T0,
                tuple(cap) if cap is not None else None,
                tuple([t - T0 for t in tcap])
                if tcap is not None else None,
            )
            if cap is not None:
                for kl, ci, cyc in cap:
                    charge(kl, ci, cyc)
            if tcap is not None:
                times.extend(tcap)
            rec_append((bid, key, entry, 1))

        for bid, before in enumerate(hits_before):
            dh = hit_counts[bid] - before
            if dh:
                stats.memo_hits += dh
                stats.memo_instructions += dh * blocks[bid].n_instrs
        for bid, before in enumerate(misses_before):
            dm = miss_counts[bid] - before
            if dm:
                stats.memo_misses += dm
        stats.direct_instructions = trace.n - stats.memo_instructions
        stats.memo_persisted_hits = persisted
        if resolved is not None:
            self._resolved = resolved
            self._vec = None

        if breakdown is not None:
            breakdown.issued_cycles = last_finish - cur_cycle
        return ReplayOutcome(
            minor_cycles=last_finish, final_issue=cur_cycle,
            stalls=breakdown, times=times, stats=stats,
        )


def replay(trace: Trace, config: MachineConfig, *,
           observe: bool = False, want_times: bool = False,
           memoize: bool = True) -> ReplayOutcome:
    """Replay ``trace`` on ``config`` with a fresh :class:`ReplayCore`."""
    core = ReplayCore(trace, config, observe=observe,
                      want_times=want_times)
    return core.run(memoize=memoize)

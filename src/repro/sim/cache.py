"""Cache modelling (Section 5.1, Table 5-1).

Two layers:

* the paper's *arithmetic* miss-cost model — cycles per instruction,
  cycle time and memory time give the miss cost in cycles and in average
  instruction times (Table 5-1), and the worked example showing how cache
  misses dilute the speedup of parallel instruction issue;
* an actual direct-mapped cache simulator that replays a trace and
  charges loads a miss penalty, so the dilution can be *measured* on the
  benchmark suite rather than assumed.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.config import MachineConfig
from .timing import TimingResult, _static_records
from .trace import Trace


@dataclass(frozen=True, slots=True)
class MissCostRow:
    """One machine of Table 5-1."""

    machine: str
    cycles_per_instr: float
    cycle_ns: float
    memory_ns: float

    @property
    def miss_cost_cycles(self) -> float:
        """Cache miss cost in machine cycles."""
        return self.memory_ns / self.cycle_ns

    @property
    def miss_cost_instructions(self) -> float:
        """Cache miss cost in average instruction times."""
        return self.miss_cost_cycles / self.cycles_per_instr


#: The three machines of Table 5-1: a CISC (VAX 11/780), a RISC
#: (WRL Titan) and the projected future superscalar.
TABLE_5_1 = (
    MissCostRow("VAX 11/780", 10.0, 200.0, 1200.0),
    MissCostRow("WRL Titan", 1.4, 45.0, 540.0),
    MissCostRow("future superscalar", 0.5, 5.0, 350.0),
)


def parallel_issue_speedup_with_misses(
    issue_cpi_before: float = 1.0,
    issue_cpi_after: float = 0.5,
    miss_cpi: float = 1.0,
) -> tuple[float, float]:
    """The Section 5.1 worked example.

    Returns ``(speedup_with_misses, speedup_without_misses)``: for the
    paper's numbers (1.0 cpi -> 0.5 cpi issue, plus 1.0 cpi of misses)
    that is (1.33, 2.0) — "much less than the improvement ... when cache
    misses are ignored".
    """
    with_misses = (issue_cpi_before + miss_cpi) / (issue_cpi_after + miss_cpi)
    without = issue_cpi_before / issue_cpi_after
    return with_misses, without


@dataclass(frozen=True, slots=True)
class CacheConfig:
    """A direct-mapped data cache (word-addressed, like the simulator)."""

    size_words: int = 1024
    line_words: int = 4
    miss_penalty: int = 10    # minor cycles added to a missing load

    def __post_init__(self) -> None:
        if self.size_words % self.line_words != 0:
            raise ValueError("cache size must be a multiple of the line size")
        if self.line_words & (self.line_words - 1):
            raise ValueError("line size must be a power of two")

    @property
    def n_lines(self) -> int:
        return self.size_words // self.line_words


@dataclass(frozen=True, slots=True)
class CacheResult:
    """Timing result plus cache statistics."""

    timing: TimingResult
    loads: int
    load_misses: int

    @property
    def miss_rate(self) -> float:
        if self.loads == 0:
            return 0.0
        return self.load_misses / self.loads


def simulate_with_cache(
    trace: Trace, config: MachineConfig, cache: CacheConfig
) -> CacheResult:
    """Replay ``trace`` on ``config`` with a direct-mapped data cache.

    Same in-order issue model as :func:`repro.sim.timing.simulate`;
    a load that misses completes ``miss_penalty`` minor cycles later.
    Stores are write-through/no-allocate and never stall (the paper's
    cost model concerns read misses).
    """
    records, max_reg = _static_records(trace, config)
    width = config.issue_width
    reg_ready = [0] * (max_reg + 1)
    mem_ready: dict[int, int] = {}
    ops = trace.ops
    addrs = trace.addrs

    n_lines = cache.n_lines
    line_words = cache.line_words
    tags = [-1] * n_lines
    loads = 0
    misses = 0

    cur_cycle = 0
    cur_count = 0
    last_finish = 0

    for i, si in enumerate(ops):
        srcs, dest, lat, unit, is_load, is_store, _is_cbr = records[si]
        t = cur_cycle
        for s in srcs:
            r = reg_ready[s]
            if r > t:
                t = r
        if is_load:
            r = mem_ready.get(addrs[i], 0)
            if r > t:
                t = r
        while True:
            if t == cur_cycle and cur_count >= width:
                t += 1
            if unit is not None:
                free = unit.free
                best = min(range(len(free)), key=free.__getitem__)
                if free[best] > t:
                    t = free[best]
                    continue
                free[best] = t + unit.issue_latency
            break
        if t > cur_cycle:
            cur_cycle, cur_count = t, 1
        else:
            cur_count += 1

        if is_load:
            loads += 1
            line = addrs[i] // line_words
            idx = line % n_lines
            if tags[idx] != line:
                tags[idx] = line
                misses += 1
                lat = lat + cache.miss_penalty
        # stores are write-through / no-allocate: no tag state change

        finish = t + lat
        if dest >= 0:
            reg_ready[dest] = finish
        if is_store:
            mem_ready[addrs[i]] = finish
        if finish > last_finish:
            last_finish = finish

    timing = TimingResult(
        config_name=f"{config.name}+cache",
        instructions=len(ops),
        minor_cycles=last_finish,
        base_cycles=config.minor_to_base(last_finish),
    )
    return CacheResult(timing=timing, loads=loads, load_misses=misses)


@dataclass(frozen=True, slots=True)
class ICacheResult:
    """Timing result plus instruction-cache statistics."""

    timing: TimingResult
    fetches: int
    fetch_misses: int

    @property
    def miss_rate(self) -> float:
        if self.fetches == 0:
            return 0.0
        return self.fetch_misses / self.fetches


def simulate_with_icache(
    trace: Trace, config: MachineConfig, icache: CacheConfig
) -> ICacheResult:
    """Replay ``trace`` with a direct-mapped *instruction* cache.

    The paper's unrolling caveat: "If limited instruction caches were
    present, the actual performance would decline for large degrees of
    unrolling" (Section 4.4).  Each static instruction occupies one word
    of instruction memory (its flattened index); a fetch miss stalls the
    in-order issue frontier for ``miss_penalty`` minor cycles, so large
    unrolled bodies that overflow the cache pay on every trip.
    """
    records, max_reg = _static_records(trace, config)
    width = config.issue_width
    reg_ready = [0] * (max_reg + 1)
    mem_ready: dict[int, int] = {}
    ops = trace.ops
    addrs = trace.addrs

    n_lines = icache.n_lines
    line_words = icache.line_words
    tags = [-1] * n_lines
    misses = 0
    fetch_floor = 0

    cur_cycle = 0
    cur_count = 0
    last_finish = 0

    for i, si in enumerate(ops):
        srcs, dest, lat, unit, is_load, is_store, _is_cbr = records[si]
        line = si // line_words
        idx = line % n_lines
        if tags[idx] != line:
            tags[idx] = line
            misses += 1
            stall_from = cur_cycle if cur_cycle > fetch_floor else fetch_floor
            fetch_floor = stall_from + icache.miss_penalty

        t = cur_cycle
        if t < fetch_floor:
            t = fetch_floor
        for s in srcs:
            r = reg_ready[s]
            if r > t:
                t = r
        if is_load:
            r = mem_ready.get(addrs[i], 0)
            if r > t:
                t = r
        while True:
            if t == cur_cycle and cur_count >= width:
                t += 1
            if unit is not None:
                free = unit.free
                best = min(range(len(free)), key=free.__getitem__)
                if free[best] > t:
                    t = free[best]
                    continue
                free[best] = t + unit.issue_latency
            break
        if t > cur_cycle:
            cur_cycle, cur_count = t, 1
        else:
            cur_count += 1
        finish = t + lat
        if dest >= 0:
            reg_ready[dest] = finish
        if is_store:
            mem_ready[addrs[i]] = finish
        if finish > last_finish:
            last_finish = finish

    timing = TimingResult(
        config_name=f"{config.name}+icache",
        instructions=len(ops),
        minor_cycles=last_finish,
        base_cycles=config.minor_to_base(last_finish),
    )
    return ICacheResult(
        timing=timing, fetches=len(ops), fetch_misses=misses
    )

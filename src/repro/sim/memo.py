"""Persistent replay-memo store: warm-start block memo tables.

A :class:`repro.sim.replay.ReplayCore` learns its per-block memo tables
from scratch in every process — today that means every engine worker
and every fresh run re-pays the resolve cost for traces it has replayed
many times before.  This module persists the learned state
(:meth:`~repro.sim.replay.ReplayCore.export_memo` payloads) into the
content-addressed cache directory alongside the trace-v2 entries, so
cold processes start warm.

Keying
------
A payload is valid only for one exact replay context, so the key is a
SHA-256 over the memo format tag, the package version, the replay
backend (``repro.sim.replay.BACKEND`` — the two backends intern the
aliasing key differently), the trace's timing-semantics fingerprint
(:meth:`repro.sim.trace.Trace.fingerprint`), the machine's
:meth:`~repro.machine.config.MachineConfig.fingerprint`, and the replay
mode (``observe``/``want_times`` — memo entries store mode-dependent
payloads).

Hygiene
-------
Entries live under ``<cache-root>/memo/<key[:2]>/<key>.pkl``, written
atomically (temp file + fsync + ``os.replace``) so concurrent workers
can share a directory.  Each payload carries its own format tag; a
stale or corrupt entry — unreadable pickle, wrong tag/backend/mode, or
a structure the core's :meth:`~repro.sim.replay.ReplayCore.adopt_memo`
validation rejects — is *dropped* and the replay starts cold, exactly
mirroring the trace-cache recovery path.  Value-level corruption that
a structural walk cannot see is caught by the vectorized kernel's
per-run verification, which can only ever cost a scalar re-resolve,
never a wrong result.

Counters flow to :mod:`repro.obs.metrics` under ``cache.memo_*`` with
the same conservation law as the trace cache
(``gets == hits + misses + corrupt``), enforced by the report-schema
validator.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from collections import OrderedDict
from dataclasses import dataclass

from .. import __version__
from ..machine.config import MachineConfig
from .replay import BACKEND, MEMO_PAYLOAD_FORMAT, ReplayCore, ReplayOutcome
from .trace import Trace


@dataclass(slots=True)
class MemoStats:
    """Hit/miss/corrupt-drop/store counts for one memo-store handle.

    Same conservation law as the trace cache: every ``load()`` (plus
    every adopted-then-rejected payload, which moves from ``hits`` to
    ``corrupt``) ends as exactly one of hit / miss / corrupt-drop, so
    ``gets == hits + misses + corrupt`` holds exactly.
    """

    hits: int = 0
    misses: int = 0
    corrupt: int = 0
    stores: int = 0
    #: Orphaned temp files removed by the startup janitor — outside
    #: the ``gets == hits + misses + corrupt`` conservation law.
    debris: int = 0

    @property
    def gets(self) -> int:
        return self.hits + self.misses + self.corrupt

    def as_dict(self) -> dict:
        return {"gets": self.gets, "hits": self.hits,
                "misses": self.misses, "corrupt": self.corrupt,
                "stores": self.stores, "debris": self.debris}

    def record_to(self, metrics) -> None:
        """Fold into a metrics registry under ``cache.memo_*``."""
        if not metrics.enabled:
            return
        metrics.incr("cache.memo_gets", self.gets)
        metrics.incr("cache.memo_hits", self.hits)
        metrics.incr("cache.memo_misses", self.misses)
        metrics.incr("cache.memo_corrupt", self.corrupt)
        metrics.incr("cache.memo_stores", self.stores)
        if self.debris:
            metrics.incr("cache.memo_debris", self.debris)
            self.debris = 0


def memo_key(trace: Trace, config: MachineConfig, *,
             observe: bool = False, want_times: bool = False) -> str:
    """Content hash identifying one (trace, machine, mode) replay."""
    payload = json.dumps(
        [
            MEMO_PAYLOAD_FORMAT,
            __version__,
            BACKEND,
            trace.fingerprint(),
            repr(config.fingerprint()),
            bool(observe),
            bool(want_times),
        ],
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class MemoStore:
    """A persistent replay-memo store rooted at one directory."""

    enabled = True

    def __init__(self, root: str) -> None:
        self.root = root
        self.stats = MemoStats()
        if root:
            # Startup janitor: clear crash debris left by killed
            # writers (once per process per root; the import is
            # deferred because engine.cache imports this package).
            from ..engine.cache import sweep_debris
            self.stats.debris = sweep_debris(root)

    def path_for(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + ".pkl")

    def load(self, key: str) -> dict | None:
        """The persisted payload for ``key``, or ``None`` (a miss)."""
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, TypeError, ValueError, KeyError):
            self.drop(path)
            self.stats.corrupt += 1
            return None
        if not isinstance(payload, dict) \
                or payload.get("format") != MEMO_PAYLOAD_FORMAT:
            self.drop(path)
            self.stats.corrupt += 1
            return None
        self.stats.hits += 1
        return payload

    def drop(self, path: str) -> None:
        """Remove one entry file, ignoring races."""
        try:
            os.remove(path)
        except OSError:
            pass

    def reject(self, key: str) -> None:
        """A loaded payload failed deep validation: reclassify the hit
        as a corrupt drop and remove the entry."""
        self.drop(self.path_for(key))
        self.stats.hits -= 1
        self.stats.corrupt += 1

    def store(self, key: str, payload: dict) -> None:
        """Write one entry atomically (safe under concurrent writers)."""
        path = self.path_for(key)
        parent = os.path.dirname(path)
        os.makedirs(parent, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(payload, handle,
                            protocol=pickle.HIGHEST_PROTOCOL)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.remove(tmp_path)
            except OSError:
                pass
            raise
        self.stats.stores += 1


class NullMemoStore(MemoStore):
    """Disabled store: every lookup misses, nothing is written."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(root="")

    def load(self, key: str) -> dict | None:
        return None

    def reject(self, key: str) -> None:
        pass

    def store(self, key: str, payload: dict) -> None:
        pass


#: Shared disabled store; safe to pass anywhere a store is expected.
NULL_MEMO_STORE = NullMemoStore()


def open_memo_store(cache) -> MemoStore:
    """The memo store living inside a trace cache's directory.

    Disabled caches (``--no-cache`` runs) yield the shared disabled
    store, keeping cacheless runs byte-for-byte deterministic.
    """
    if cache is None or not getattr(cache, "enabled", False):
        return NULL_MEMO_STORE
    return MemoStore(os.path.join(cache.root, "memo"))


#: Process-wide payload registry: engine groups replay the same trace
#: on many machines back to back, so freshly exported payloads are kept
#: in memory (bounded LRU) and shared without a disk round trip.
_REGISTRY: OrderedDict[str, dict] = OrderedDict()
_REGISTRY_MAX = 64


def _registry_get(key: str) -> dict | None:
    payload = _REGISTRY.get(key)
    if payload is not None:
        _REGISTRY.move_to_end(key)
    return payload


def _registry_put(key: str, payload: dict) -> None:
    _REGISTRY[key] = payload
    _REGISTRY.move_to_end(key)
    while len(_REGISTRY) > _REGISTRY_MAX:
        _REGISTRY.popitem(last=False)


def clear_registry() -> None:
    """Drop the in-process payload registry (tests)."""
    _REGISTRY.clear()


def replay_with_memo(
    store: MemoStore, trace: Trace, config: MachineConfig, *,
    observe: bool = False, want_times: bool = False,
) -> ReplayOutcome:
    """Replay ``trace`` on ``config``, warm-started from ``store``.

    Looks the payload up in the in-process registry, then on disk;
    adopts it into a fresh core (dropping it if stale/corrupt), runs,
    and shares the learned state back — to the registry always, to disk
    only when this run actually learned something new (fresh payload or
    new memo misses), so steady-state replays never rewrite the file.
    """
    if not store.enabled:
        # Cacheless runs stay byte-for-byte deterministic across
        # serial/parallel topologies: no registry, no adoption.
        return ReplayCore(trace, config, observe=observe,
                          want_times=want_times).run()
    key = memo_key(trace, config, observe=observe,
                   want_times=want_times)
    payload = _registry_get(key)
    from_disk = False
    if payload is None:
        payload = store.load(key)
        from_disk = True
    core = ReplayCore(trace, config, observe=observe,
                      want_times=want_times)
    adopted = payload is not None and core.adopt_memo(payload)
    if payload is not None and not adopted:
        if from_disk:
            store.reject(key)
        else:
            _REGISTRY.pop(key, None)
        payload = None
    outcome = core.run()
    dirty = (
        payload is None
        or outcome.stats.memo_misses > 0
        or core._resolved is not payload.get("resolved")
    )
    if dirty:
        payload = core.export_memo()
        store.store(key, payload)
    _registry_put(key, payload)
    return outcome

"""ILP-limit studies beyond the paper's baseline model.

The paper's machine model makes two deliberate simplifications and cites
the literature for both:

* branches are perfectly predicted ("assuming perfect branch slot
  filling and/or branch prediction", Section 2.1) — Riseman & Foster
  [14] measured how conditional jumps inhibit parallelism without that
  assumption;
* instructions issue in order ("techniques to reorder instructions at
  compile time instead of at run time are almost as good [6, 7, 17], and
  are dramatically simpler than doing it in hardware", Section 2.3.2).

This module makes both claims *testable* on our traces:

* :func:`repro.machine.MachineConfig` already accepts
  ``branch_policy="stall"`` to remove the prediction assumption;
* :func:`simulate_out_of_order` is a run-time reordering (restricted
  dataflow) issue model with a finite instruction window, the hardware
  alternative the paper argues against building.

An instruction may issue out of order as soon as its register sources
and memory predecessors are complete, subject to the issue width and a
sliding window of ``window`` instructions (instruction *i* cannot issue
before instruction *i - window* has issued).  With ``window=1`` the
model degenerates to something slightly stricter than the paper's
in-order machine; with a large window it approaches the dataflow limit.
"""

from __future__ import annotations

from ..machine.config import MachineConfig
from .timing import TimingResult, _static_records
from .trace import Trace


def simulate_out_of_order(
    trace: Trace,
    config: MachineConfig,
    window: int = 32,
) -> TimingResult:
    """Replay ``trace`` with run-time (out-of-order) issue.

    Register dependences are true dependences only — hardware renaming
    is assumed, so WAR/WAW never stall (compile-time scheduling cannot
    assume that, which is exactly the paper's "almost as good" caveat).
    Memory operations to the same word stay ordered.  Branches follow
    ``config.branch_policy`` ("perfect" or "stall").
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    records, max_reg = _static_records(trace, config)
    width = config.issue_width

    reg_ready = [0] * (max_reg + 1)
    mem_ready: dict[int, int] = {}
    issue_count: dict[int, int] = {}
    issue_times: list[int] = []
    stall_on_branches = config.branch_policy == "stall"
    branch_floor = 0
    last_finish = 0
    ops = trace.ops
    addrs = trace.addrs

    for i, si in enumerate(ops):
        srcs, dest, lat, unit, is_load, is_store, is_cbr = records[si]

        t = branch_floor
        if i >= window:
            w = issue_times[i - window]
            if w > t:
                t = w
        for s in srcs:
            r = reg_ready[s]
            if r > t:
                t = r
        if is_load:
            r = mem_ready.get(addrs[i], 0)
            if r > t:
                t = r

        while True:
            if issue_count.get(t, 0) >= width:
                t += 1
                continue
            if unit is not None:
                free = unit.free
                best = min(range(len(free)), key=free.__getitem__)
                if free[best] > t:
                    t = free[best]
                    continue
                free[best] = t + unit.issue_latency
            break
        issue_count[t] = issue_count.get(t, 0) + 1
        issue_times.append(t)

        finish = t + lat
        if dest >= 0:
            reg_ready[dest] = finish
        if is_store:
            mem_ready[addrs[i]] = finish
        if stall_on_branches and is_cbr and finish > branch_floor:
            branch_floor = finish
        if finish > last_finish:
            last_finish = finish

    return TimingResult(
        config_name=f"{config.name}/ooo-w{window}",
        instructions=len(ops),
        minor_cycles=last_finish,
        base_cycles=config.minor_to_base(last_finish),
    )


def dataflow_limit(trace: Trace, config: MachineConfig | None = None) -> TimingResult:
    """The oracle ILP of a trace: unbounded width and window.

    Every instruction issues the moment its true dependences allow —
    infinite issue width, full-trace window, register renaming, perfect
    branch prediction and memory disambiguation.  This is the
    "unlimited machine" upper bound of the post-1989 limit studies
    (Wall 1991); the gap between it and the paper's in-order model is
    the price of issuing in order from basic-block-scheduled code.

    ``config`` supplies operation latencies only (default: base machine,
    all-ones).
    """
    from ..machine.presets import base_machine

    cfg = config or base_machine()
    wide = MachineConfig(
        name=f"{cfg.name}/dataflow",
        issue_width=1 << 20,
        superpipeline_degree=cfg.superpipeline_degree,
        latencies=dict(cfg.latencies),
        cycle_scale=cfg.cycle_scale,
    )
    return simulate_out_of_order(
        trace, wide, window=max(len(trace), 1)
    )


def branch_inhibition(
    trace: Trace, config: MachineConfig
) -> tuple[TimingResult, TimingResult]:
    """Replay under perfect prediction and under branch stalls.

    Returns ``(perfect, stalled)`` timing results; the ratio of their
    parallelisms is the control-flow inhibition Riseman & Foster
    measured (and the paper's model assumes away).
    """
    from .timing import simulate

    perfect = simulate(trace, config.with_branch_policy("perfect"))
    stalled = simulate(trace, config.with_branch_policy("stall"))
    return perfect, stalled

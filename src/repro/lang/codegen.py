"""Code generation: checked Tin AST -> RISC IR with virtual registers.

The generated code is deliberately *naive* — every variable access is a
memory load or store, exactly like the unoptimized code the paper starts
from ("A basic block in which all variables reside in memory must load
those variables into registers before it can operate on them", Section 4.4).
Optimization passes (``repro.opt``) then remove redundancy, promote
variables into home registers, and schedule.

Calling convention
------------------
* word-addressed memory; a word holds one int or one float;
* arguments in ``a0..a5`` (scalars by value, arrays by base address);
* scalar result in ``rv``; return address in ``ra``;
* the frame is addressed upward from the adjusted ``sp``: slot 0 saves
  ``ra``, then parameter homes, locals, local arrays, then (added later by
  the register allocator) spill slots.  The prologue/epilogue stack-pointer
  adjustments carry ``frame_slot`` markers -1/-2 and are patched once the
  final frame size is known (:func:`finalize_frames`).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CodegenError
from ..isa import build
from ..isa.instruction import Instruction, MemRef
from ..isa.opcodes import COMPARE_IMM_FORM, Opcode
from ..isa.program import BasicBlock, Function, GlobalVar, Program, remove_unreachable_blocks
from ..isa.registers import ARG_REGS, RA, RV, SP, ZERO, Reg, VirtualRegAllocator
from . import ast
from .semantics import ModuleInfo, ProcInfo, VarInfo, check

#: First word address of global data (low words are reserved/unmapped).
DATA_BASE = 16

#: Marker values of ``frame_slot`` on the prologue / epilogue SP adjusts.
PROLOGUE_MARK = -1
EPILOGUE_MARK = -2

_INT_BINOPS = {
    "+": Opcode.ADD,
    "-": Opcode.SUB,
    "*": Opcode.MUL,
    "/": Opcode.DIV,
    "%": Opcode.MOD,
    "&": Opcode.AND,
    "|": Opcode.OR,
    "^": Opcode.XOR,
    "<<": Opcode.SLL,
    ">>": Opcode.SRA,
    "==": Opcode.SEQ,
    "!=": Opcode.SNE,
    "<": Opcode.SLT,
    "<=": Opcode.SLE,
    ">": Opcode.SGT,
    ">=": Opcode.SGE,
}

_INT_IMM_BINOPS = {
    "+": Opcode.ADDI,
    "&": Opcode.ANDI,
    "|": Opcode.ORI,
    "^": Opcode.XORI,
    "<<": Opcode.SLLI,
    ">>": Opcode.SRAI,
}

_FLOAT_BINOPS = {
    "+": Opcode.FADD,
    "-": Opcode.FSUB,
    "*": Opcode.FMUL,
    "/": Opcode.FDIV,
}

#: float comparison -> (opcode, swap operands?)
_FLOAT_COMPARES = {
    "==": (Opcode.FEQ, False),
    "!=": (Opcode.FNE, False),
    "<": (Opcode.FLT, False),
    "<=": (Opcode.FLE, False),
    ">": (Opcode.FLT, True),
    ">=": (Opcode.FLE, True),
}


@dataclass(slots=True)
class _Storage:
    """Where a variable lives before register promotion."""

    var: VarInfo
    global_addr: int | None = None   # word address (globals)
    frame_slot: int | None = None    # slot index (params/locals)


def generate(module: ast.Module, info: ModuleInfo | None = None) -> Program:
    """Lower a checked module to a :class:`Program`.

    If ``info`` is None the module is checked first.  Adds a ``_start``
    stub that calls ``main`` and halts; ``main`` must return ``int``.
    """
    if info is None:
        info = check(module)
    main = info.procs.get("main")
    if main is None or main.ret != ast.INT or main.params:
        raise CodegenError("program needs a 'proc main(): int'")
    program = Program(entry="_start")

    address = DATA_BASE
    for g in info.globals_.values():
        size = g.size if g.is_array else 1
        initial: list[int | float] | None = None
        if g.init is not None:
            fill = g.init
            if len(fill) == 1 and size > 1:
                initial = list(fill) * size
            else:
                initial = list(fill)
        program.globals_[g.name] = GlobalVar(
            g.name, address, size, g.ty == ast.FLOAT, initial
        )
        address += size
    program.data_size = address

    start = Function("_start")
    start.blocks.append(
        BasicBlock("_start.entry", [build.call("main"), build.halt()])
    )
    program.functions["_start"] = start

    for proc in module.procs:
        gen = _FuncGen(proc, info, program)
        program.functions[proc.name] = gen.run()
    program.validate()
    return program


class _FuncGen:
    """Generates one function."""

    def __init__(self, proc: ast.Proc, info: ModuleInfo, program: Program):
        self.proc = proc
        self.info = info
        self.pinfo: ProcInfo = info.procs[proc.name]
        self.program = program
        self.vregs = VirtualRegAllocator()
        self.blocks: list[BasicBlock] = []
        self.cur: BasicBlock | None = None
        self._labels = 0
        self._slots = 1  # slot 0 saves ra
        self.storage: dict[str, _Storage] = {}
        self.exit_label = f"{proc.name}.exit"

    # -------------------------------------------------------------- plumbing
    def fresh(self) -> Reg:
        return self.vregs.fresh()

    def label(self, hint: str) -> str:
        self._labels += 1
        return f"{self.proc.name}.{hint}{self._labels}"

    def emit(self, ins: Instruction) -> None:
        assert self.cur is not None
        self.cur.instrs.append(ins)

    def start_block(self, label: str) -> None:
        block = BasicBlock(label)
        self.blocks.append(block)
        self.cur = block

    # --------------------------------------------------------------- storage
    def _bind_storage(self) -> None:
        for p in self.pinfo.params:
            self.storage[p.name] = _Storage(p, frame_slot=self._slots)
            self._slots += 1
        for v in self.pinfo.locals_.values():
            size = v.size if v.is_array else 1
            self.storage[v.name] = _Storage(v, frame_slot=self._slots)
            self._slots += size

    def _lookup(self, name: str) -> _Storage:
        st = self.storage.get(name)
        if st is not None:
            return st
        g = self.program.globals_.get(name)
        if g is None:
            raise CodegenError(f"{self.proc.name}: unbound variable {name!r}")
        var = self.info.globals_[name]
        return _Storage(var, global_addr=g.address)

    def _scalar_memref(self, st: _Storage) -> MemRef:
        if st.global_addr is not None:
            return MemRef(obj=f"g:{st.var.name}", offset=0)
        return MemRef(obj=f"s:{self.proc.name}:{st.var.name}", offset=0)

    def _load_scalar(self, st: _Storage) -> Reg:
        v = self.fresh()
        if st.global_addr is not None:
            self.emit(build.lw(v, ZERO, st.global_addr, mem=self._scalar_memref(st)))
        else:
            assert st.frame_slot is not None
            self.emit(
                build.lw(
                    v, SP, st.frame_slot,
                    mem=self._scalar_memref(st), frame_slot=st.frame_slot,
                )
            )
        return v

    def _store_scalar(self, st: _Storage, value: Reg) -> None:
        if st.global_addr is not None:
            self.emit(
                build.sw(value, ZERO, st.global_addr, mem=self._scalar_memref(st))
            )
        else:
            assert st.frame_slot is not None
            self.emit(
                build.sw(
                    value, SP, st.frame_slot,
                    mem=self._scalar_memref(st), frame_slot=st.frame_slot,
                )
            )

    def _array_base(self, st: _Storage) -> Reg:
        """Base address of an array (global, local, or by-ref parameter)."""
        v = self.fresh()
        if st.var.by_ref:
            assert st.frame_slot is not None
            self.emit(
                build.lw(
                    v, SP, st.frame_slot,
                    mem=self._scalar_memref(st), frame_slot=st.frame_slot,
                )
            )
        elif st.global_addr is not None:
            self.emit(build.li(v, st.global_addr))
        else:
            assert st.frame_slot is not None
            self.emit(build.alui(Opcode.ADDI, v, SP, st.frame_slot))
        return v

    def _array_memref(
        self,
        st: _Storage,
        offset: int | None,
        affine: tuple[str, int] | None,
        affine_vars: tuple[str, ...] = (),
    ) -> MemRef:
        if st.var.by_ref:
            obj = f"p:{self.proc.name}:{st.var.name}"
            may_alias = True
        elif st.global_addr is not None:
            obj = f"g:{st.var.name}"
            may_alias = False
        else:
            obj = f"s:{self.proc.name}:{st.var.name}"
            may_alias = False
        return MemRef(
            obj=obj, offset=offset, affine=affine, affine_vars=affine_vars,
            may_alias_all=may_alias, is_array=True,
        )

    def _canonical_core(
        self, expr: ast.ExprT, vars_out: set[str]
    ) -> str | None:
        """Canonical key of a pure integer index expression.

        Returns ``None`` when the expression is not a pure function of
        scalar variables and constants (calls, array loads, ...), in which
        case no affine disambiguation is possible.  Collects the storage
        objects of the variables involved into ``vars_out``.
        """
        if isinstance(expr, ast.IntLit):
            return f"c{expr.value}"
        if isinstance(expr, ast.VarRef):
            obj = self._scalar_memref(self._lookup(expr.name)).obj
            vars_out.add(obj)
            return f"({obj})"
        if isinstance(expr, ast.BinOp) and expr.op in ("+", "-", "*", "<<"):
            left = self._canonical_core(expr.left, vars_out)
            right = self._canonical_core(expr.right, vars_out)
            if left is None or right is None:
                return None
            return f"({expr.op} {left} {right})"
        if isinstance(expr, ast.UnOp) and expr.op == "-":
            inner = self._canonical_core(expr.operand, vars_out)
            return None if inner is None else f"(neg {inner})"
        return None

    def _flatten_sum(
        self, expr: ast.ExprT, sign: int,
        terms: list[tuple[int, ast.ExprT]], const: list[int],
    ) -> None:
        """Flatten an additive index expression into signed terms + const."""
        if isinstance(expr, ast.IntLit):
            const[0] += sign * expr.value
        elif isinstance(expr, ast.BinOp) and expr.op == "+":
            self._flatten_sum(expr.left, sign, terms, const)
            self._flatten_sum(expr.right, sign, terms, const)
        elif isinstance(expr, ast.BinOp) and expr.op == "-":
            self._flatten_sum(expr.left, sign, terms, const)
            self._flatten_sum(expr.right, -sign, terms, const)
        elif isinstance(expr, ast.UnOp) and expr.op == "-":
            self._flatten_sum(expr.operand, -sign, terms, const)
        else:
            terms.append((sign, expr))

    def _split_index(
        self, index: ast.ExprT
    ) -> tuple[ast.ExprT | None, int, tuple[str, int] | None, tuple[str, ...]]:
        """Split an index expression into (core, delta, affine tag, vars).

        The additive tree is flattened so ``A[off + (i + 3)]`` becomes
        core ``off + i``, delta 3; the delta lands in the load/store
        displacement and the rebuilt core is *canonically ordered*, so all
        unrolled copies share one address computation after CSE.  The
        affine tag ``(core-key, delta)`` feeds the scheduler's memory
        disambiguation: same object + same core key + different deltas
        cannot collide, provided none of the core's variables is redefined
        in between.
        """
        terms: list[tuple[int, ast.ExprT]] = []
        const = [0]
        self._flatten_sum(index, 1, terms, const)
        delta = const[0]
        if not terms:
            return None, delta, None, ()

        # Canonically order the terms so syntactically different copies
        # rebuild the identical core expression (and CSE shares it).
        vars_out: set[str] = set()
        keyed: list[tuple[str | None, int, ast.ExprT]] = []
        all_pure = True
        for sign, term in terms:
            key = self._canonical_core(term, vars_out)
            if key is None:
                all_pure = False
            keyed.append((key, sign, term))
        if all_pure:
            keyed.sort(key=lambda item: (item[1], item[0]), reverse=True)

        core: ast.ExprT | None = None
        for key, sign, term in keyed:
            piece = term if sign > 0 else ast.UnOp("-", term)
            if sign < 0:
                piece.ty = term.ty
            if core is None:
                core = piece
            else:
                merged = ast.BinOp("+", core, piece)
                merged.ty = ast.INT
                core = merged
        assert core is not None

        affine: tuple[str, int] | None = None
        affine_vars: tuple[str, ...] = ()
        if all_pure:
            core_key = "+".join(
                f"{'-' if sign < 0 else ''}{key}" for key, sign, _ in keyed
            )
            affine = (core_key, delta)
            affine_vars = tuple(sorted(vars_out))
        return core, delta, affine, affine_vars

    def _element_address(
        self, name: str, index: ast.ExprT
    ) -> tuple[Reg, int, MemRef]:
        """Compute (base register, displacement, memref) for ``name[index]``."""
        st = self._lookup(name)
        core, delta, affine, affine_vars = self._split_index(index)
        if core is None:
            # constant index: absolute or frame-relative displacement
            if st.var.by_ref:
                base = self._array_base(st)
                return base, delta, self._array_memref(st, delta, None)
            if st.global_addr is not None:
                return (
                    ZERO,
                    st.global_addr + delta,
                    self._array_memref(st, delta, None),
                )
            assert st.frame_slot is not None
            return SP, st.frame_slot + delta, self._array_memref(st, delta, None)
        vi = self.gen_expr(core)
        base = self._array_base(st)
        addr = self.fresh()
        self.emit(build.alu(Opcode.ADD, addr, base, vi))
        return addr, delta, self._array_memref(st, None, affine, affine_vars)

    # ------------------------------------------------------------ entry point
    def run(self) -> Function:
        self._bind_storage()
        self.start_block(f"{self.proc.name}.entry")
        prologue = build.alui(Opcode.ADDI, SP, SP, 0)
        prologue.frame_slot = PROLOGUE_MARK
        prologue.comment = "prologue"
        self.emit(prologue)
        ra_mem = MemRef(obj=f"s:{self.proc.name}:__ra", offset=0)
        self.emit(build.sw(RA, SP, 0, mem=ra_mem, frame_slot=0))
        for i, p in enumerate(self.pinfo.params):
            if i >= len(ARG_REGS):
                raise CodegenError(
                    f"{self.proc.name}: more than {len(ARG_REGS)} parameters"
                )
            self._store_scalar(self.storage[p.name], ARG_REGS[i])

        self.gen_stmts(self.proc.body)

        # Fall off the end of a void procedure -> return.
        self.start_block(self.exit_label)
        self.emit(build.lw(RA, SP, 0, mem=ra_mem, frame_slot=0))
        epilogue = build.alui(Opcode.ADDI, SP, SP, 0)
        epilogue.frame_slot = EPILOGUE_MARK
        epilogue.comment = "epilogue"
        self.emit(epilogue)
        self.emit(build.ret())

        fn = Function(
            self.proc.name,
            self.blocks,
            frame_slots=self._slots,
            params=tuple(p.name for p in self.pinfo.params),
        )
        remove_unreachable_blocks(fn)
        finalize_frames(fn)
        return fn

    # -------------------------------------------------------------- statements
    def gen_stmts(self, stmts: list[ast.StmtT]) -> None:
        for stmt in stmts:
            self.gen_stmt(stmt)

    def gen_stmt(self, stmt: ast.StmtT) -> None:
        if isinstance(stmt, ast.LocalDecl):
            return
        if isinstance(stmt, ast.Assign):
            self._gen_assign(stmt)
        elif isinstance(stmt, ast.If):
            self._gen_if(stmt)
        elif isinstance(stmt, ast.While):
            self._gen_while(stmt)
        elif isinstance(stmt, ast.For):
            self._gen_for(stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                v = self.gen_expr(stmt.value)
                self.emit(build.mov(RV, v))
            self.emit(build.jump(self.exit_label))
            self.start_block(self.label("dead"))
        elif isinstance(stmt, ast.CallStmt):
            self._gen_call(stmt.call)
        else:  # pragma: no cover
            raise CodegenError(f"unhandled statement {stmt!r}")

    def _gen_assign(self, stmt: ast.Assign) -> None:
        value = self.gen_expr(stmt.value)
        if isinstance(stmt.target, ast.Index):
            base, disp, mem = self._element_address(
                stmt.target.name, stmt.target.index
            )
            frame = disp if base is SP else None
            self.emit(build.sw(value, base, disp, mem=mem, frame_slot=frame))
        else:
            self._store_scalar(self._lookup(stmt.target.name), value)

    def _gen_if(self, stmt: ast.If) -> None:
        end = self.label("endif")
        els = self.label("else") if stmt.els else end
        self.gen_cond_false(stmt.cond, els)
        self.start_block(self.label("then"))
        self.gen_stmts(stmt.then)
        if stmt.els:
            self.emit(build.jump(end))
            self.start_block(els)
            self.gen_stmts(stmt.els)
        self.start_block(end)

    def _gen_while(self, stmt: ast.While) -> None:
        head = self.label("while")
        exit_ = self.label("wend")
        self.start_block(head)
        self.gen_cond_false(stmt.cond, exit_)
        self.start_block(self.label("wbody"))
        self.gen_stmts(stmt.body)
        self.emit(build.jump(head))
        self.start_block(exit_)

    def _gen_for(self, stmt: ast.For) -> None:
        st = self._lookup(stmt.var)
        start = self.gen_expr(stmt.start)
        self._store_scalar(st, start)
        limit_imm: int | None = None
        limit_reg: Reg | None = None
        if isinstance(stmt.stop, ast.IntLit):
            limit_imm = stmt.stop.value
        else:
            limit_reg = self.gen_expr(stmt.stop)
        head = self.label("for")
        exit_ = self.label("fend")
        self.start_block(head)
        i = self._load_scalar(st)
        cond = self.fresh()
        cmp_op = Opcode.SLE if stmt.step > 0 else Opcode.SGE
        if limit_imm is not None:
            self.emit(
                build.alui(COMPARE_IMM_FORM[cmp_op], cond, i, limit_imm)
            )
        else:
            assert limit_reg is not None
            self.emit(build.alu(cmp_op, cond, i, limit_reg))
        self.emit(build.beqz(cond, exit_))
        self.start_block(self.label("fbody"))
        self.gen_stmts(stmt.body)
        i2 = self._load_scalar(st)
        inc = self.fresh()
        self.emit(build.alui(Opcode.ADDI, inc, i2, stmt.step))
        self._store_scalar(st, inc)
        self.emit(build.jump(head))
        self.start_block(exit_)

    # ------------------------------------------------------------- conditions
    def gen_cond_false(self, cond: ast.ExprT, false_label: str) -> None:
        """Emit code that branches to ``false_label`` when ``cond`` is false
        and falls through otherwise."""
        if isinstance(cond, ast.BinOp) and cond.op == "&&":
            self.gen_cond_false(cond.left, false_label)
            self.start_block(self.label("and"))
            self.gen_cond_false(cond.right, false_label)
            return
        if isinstance(cond, ast.BinOp) and cond.op == "||":
            true_label = self.label("or")
            self.gen_cond_true(cond.left, true_label)
            self.start_block(self.label("orr"))
            self.gen_cond_false(cond.right, false_label)
            self.start_block(true_label)
            return
        if isinstance(cond, ast.UnOp) and cond.op == "!":
            self.gen_cond_true(cond.operand, false_label)
            self.start_block(self.label("not"))
            return
        v = self.gen_expr(cond)
        self.emit(build.beqz(v, false_label))

    def gen_cond_true(self, cond: ast.ExprT, true_label: str) -> None:
        """Emit code that branches to ``true_label`` when ``cond`` is true."""
        if isinstance(cond, ast.BinOp) and cond.op == "||":
            self.gen_cond_true(cond.left, true_label)
            self.start_block(self.label("or"))
            self.gen_cond_true(cond.right, true_label)
            return
        if isinstance(cond, ast.BinOp) and cond.op == "&&":
            false_label = self.label("nand")
            self.gen_cond_false(cond.left, false_label)
            self.start_block(self.label("andt"))
            self.gen_cond_true(cond.right, true_label)
            self.start_block(false_label)
            return
        if isinstance(cond, ast.UnOp) and cond.op == "!":
            self.gen_cond_false(cond.operand, true_label)
            self.start_block(self.label("nott"))
            return
        v = self.gen_expr(cond)
        self.emit(build.bnez(v, true_label))

    # ------------------------------------------------------------ expressions
    def gen_expr(self, expr: ast.ExprT) -> Reg:
        if isinstance(expr, ast.IntLit):
            v = self.fresh()
            self.emit(build.li(v, expr.value))
            return v
        if isinstance(expr, ast.FloatLit):
            v = self.fresh()
            self.emit(build.lif(v, expr.value))
            return v
        if isinstance(expr, ast.VarRef):
            return self._load_scalar(self._lookup(expr.name))
        if isinstance(expr, ast.Index):
            base, disp, mem = self._element_address(expr.name, expr.index)
            v = self.fresh()
            frame = disp if base is SP else None
            self.emit(build.lw(v, base, disp, mem=mem, frame_slot=frame))
            return v
        if isinstance(expr, ast.Call):
            result = self._gen_call(expr)
            if result is None:
                raise CodegenError(
                    f"void call to {expr.name!r} used as a value"
                )
            return result
        if isinstance(expr, ast.Cast):
            inner = self.gen_expr(expr.operand)
            if expr.operand.ty == expr.to:
                return inner
            v = self.fresh()
            op = Opcode.CVTIF if expr.to == ast.FLOAT else Opcode.CVTFI
            self.emit(build.unary(op, v, inner))
            return v
        if isinstance(expr, ast.UnOp):
            return self._gen_unop(expr)
        if isinstance(expr, ast.BinOp):
            return self._gen_binop(expr)
        raise CodegenError(f"unhandled expression {expr!r}")

    def _gen_unop(self, expr: ast.UnOp) -> Reg:
        if expr.op == "-" and isinstance(expr.operand, ast.IntLit):
            v = self.fresh()
            self.emit(build.li(v, -expr.operand.value))
            return v
        if expr.op == "-" and isinstance(expr.operand, ast.FloatLit):
            v = self.fresh()
            self.emit(build.lif(v, -expr.operand.value))
            return v
        inner = self.gen_expr(expr.operand)
        v = self.fresh()
        if expr.op == "!":
            self.emit(build.alui(Opcode.SEQI, v, inner, 0))
        elif expr.ty == ast.FLOAT:
            self.emit(build.unary(Opcode.FNEG, v, inner))
        else:
            self.emit(build.alu(Opcode.SUB, v, ZERO, inner))
        return v

    def _gen_binop(self, expr: ast.BinOp) -> Reg:
        if expr.op in ("&&", "||"):
            return self._gen_shortcircuit(expr)
        left_ty = expr.left.ty
        if left_ty == ast.FLOAT:
            if expr.op in _FLOAT_BINOPS:
                a = self.gen_expr(expr.left)
                b = self.gen_expr(expr.right)
                v = self.fresh()
                self.emit(build.alu(_FLOAT_BINOPS[expr.op], v, a, b))
                return v
            op, swap = _FLOAT_COMPARES[expr.op]
            a = self.gen_expr(expr.left)
            b = self.gen_expr(expr.right)
            if swap:
                a, b = b, a
            v = self.fresh()
            self.emit(build.alu(op, v, a, b))
            return v
        # integer operations, with immediate forms where profitable
        if isinstance(expr.right, ast.IntLit):
            imm = expr.right.value
            if expr.op in _INT_IMM_BINOPS:
                a = self.gen_expr(expr.left)
                v = self.fresh()
                self.emit(build.alui(_INT_IMM_BINOPS[expr.op], v, a, imm))
                return v
            if expr.op == "-":
                a = self.gen_expr(expr.left)
                v = self.fresh()
                self.emit(build.alui(Opcode.ADDI, v, a, -imm))
                return v
            if expr.op in ("==", "!=", "<", "<=", ">", ">="):
                a = self.gen_expr(expr.left)
                v = self.fresh()
                base_op = _INT_BINOPS[expr.op]
                self.emit(build.alui(COMPARE_IMM_FORM[base_op], v, a, imm))
                return v
        if (
            isinstance(expr.left, ast.IntLit)
            and expr.op in ("+", "&", "|", "^")
        ):
            b = self.gen_expr(expr.right)
            v = self.fresh()
            self.emit(
                build.alui(_INT_IMM_BINOPS[expr.op], v, b, expr.left.value)
            )
            return v
        a = self.gen_expr(expr.left)
        b = self.gen_expr(expr.right)
        v = self.fresh()
        self.emit(build.alu(_INT_BINOPS[expr.op], v, a, b))
        return v

    def _gen_shortcircuit(self, expr: ast.BinOp) -> Reg:
        """Short-circuit ``&&`` / ``||`` producing a 0/1 value."""
        result = self.fresh()
        done = self.label("scend")
        if expr.op == "&&":
            fail = self.label("scf")
            self.gen_cond_false(expr.left, fail)
            self.start_block(self.label("sc"))
            self.gen_cond_false(expr.right, fail)
            self.start_block(self.label("sct"))
            self.emit(build.li(result, 1))
            self.emit(build.jump(done))
            self.start_block(fail)
            self.emit(build.li(result, 0))
        else:
            ok = self.label("sct")
            self.gen_cond_true(expr.left, ok)
            self.start_block(self.label("sc"))
            self.gen_cond_true(expr.right, ok)
            self.start_block(self.label("scf"))
            self.emit(build.li(result, 0))
            self.emit(build.jump(done))
            self.start_block(ok)
            self.emit(build.li(result, 1))
        self.start_block(done)
        return result

    def _gen_call(self, call: ast.Call) -> Reg | None:
        proc = self.info.procs[call.name]
        if len(call.args) > len(ARG_REGS):
            raise CodegenError(
                f"{self.proc.name}: call to {call.name!r} passes too many args"
            )
        values: list[tuple[Reg, MemRef | None]] = []
        for arg, param in zip(call.args, proc.params):
            if param.is_array:
                assert isinstance(arg, ast.VarRef)
                st = self._lookup(arg.name)
                # Annotate the argument move with the array object so the
                # interprocedural alias pass can bind the callee's
                # parameter accesses to it.
                values.append((self._array_base(st), self._array_memref(st, None, None)))
            else:
                values.append((self.gen_expr(arg), None))
        for i, (v, annotation) in enumerate(values):
            ins = build.mov(ARG_REGS[i], v)
            ins.mem = annotation
            self.emit(ins)
        self.emit(build.call(call.name))
        if proc.ret is None:
            return None
        out = self.fresh()
        self.emit(build.mov(out, RV))
        return out


def finalize_frames(fn: Function) -> None:
    """Patch the prologue/epilogue SP adjustments to the final frame size.

    Must be re-run whenever a pass (register allocation) grows
    ``fn.frame_slots``.
    """
    size = fn.frame_slots
    for block in fn.blocks:
        for ins in block.instrs:
            if ins.op is Opcode.ADDI and ins.frame_slot == PROLOGUE_MARK:
                ins.imm = -size
            elif ins.op is Opcode.ADDI and ins.frame_slot == EPILOGUE_MARK:
                ins.imm = size

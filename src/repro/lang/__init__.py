"""The Tin mini-language front end (stands in for Modula-2 / C)."""

from . import ast
from .codegen import finalize_frames, generate
from .lexer import tokenize
from .parser import parse
from .semantics import ModuleInfo, ProcInfo, VarInfo, check

__all__ = [
    "ModuleInfo",
    "ProcInfo",
    "VarInfo",
    "ast",
    "check",
    "finalize_frames",
    "generate",
    "parse",
    "tokenize",
]

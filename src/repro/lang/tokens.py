"""Token definitions for the Tin language."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokKind(enum.Enum):
    """Lexical token kinds."""

    INT = "int-literal"
    FLOAT = "float-literal"
    IDENT = "identifier"
    KEYWORD = "keyword"
    SYMBOL = "symbol"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "const", "var", "proc", "int", "float",
        "if", "else", "while", "for", "to", "by", "return",
    }
)

#: Multi-character symbols, longest first so the lexer can match greedily.
SYMBOLS = (
    "==", "!=", "<=", ">=", "<<", ">>", "&&", "||",
    "(", ")", "{", "}", "[", "]", ",", ";", ":",
    "+", "-", "*", "/", "%", "&", "|", "^", "!", "<", ">", "=",
)


@dataclass(frozen=True, slots=True)
class Token:
    """One lexical token with its source position (1-based)."""

    kind: TokKind
    text: str
    value: int | float | None = None
    line: int = 0
    column: int = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.value}, {self.text!r})"

"""Abstract syntax tree for the Tin language.

Expression nodes carry a ``ty`` slot ("int" or "float") filled in by the
semantic analyzer, which also inserts explicit :class:`Cast` nodes for the
implicit int-to-float conversions of mixed arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

INT = "int"
FLOAT = "float"


# ---------------------------------------------------------------- expressions
@dataclass(slots=True)
class Expr:
    """Base class for expressions."""

    ty: str | None = field(default=None, init=False)
    line: int = field(default=0, init=False)


@dataclass(slots=True)
class IntLit(Expr):
    value: int


@dataclass(slots=True)
class FloatLit(Expr):
    value: float


@dataclass(slots=True)
class VarRef(Expr):
    name: str


@dataclass(slots=True)
class Index(Expr):
    """Array element reference ``name[index]``."""

    name: str
    index: "ExprT"


@dataclass(slots=True)
class Call(Expr):
    """Procedure call ``name(args...)``; array arguments pass by reference."""

    name: str
    args: list["ExprT"]


@dataclass(slots=True)
class BinOp(Expr):
    """Binary operation; ``op`` is the surface operator text (e.g. ``+``)."""

    op: str
    left: "ExprT"
    right: "ExprT"


@dataclass(slots=True)
class UnOp(Expr):
    """Unary operation: ``-`` (negate) or ``!`` (logical not)."""

    op: str
    operand: "ExprT"


@dataclass(slots=True)
class Cast(Expr):
    """Explicit or compiler-inserted conversion ``int(e)`` / ``float(e)``."""

    to: str
    operand: "ExprT"


ExprT = Union[
    IntLit, FloatLit, VarRef, Index, Call, BinOp, UnOp, Cast
]


# ----------------------------------------------------------------- statements
@dataclass(slots=True)
class Stmt:
    """Base class for statements."""

    line: int = field(default=0, init=False)


@dataclass(slots=True)
class LocalDecl(Stmt):
    """``var name, ... : type;`` inside a procedure body."""

    names: list[str]
    ty: str
    size: int | None = None  # array length, or None for a scalar


@dataclass(slots=True)
class Assign(Stmt):
    """``lvalue = expr;`` — lvalue is a VarRef or Index node."""

    target: VarRef | Index
    value: ExprT


@dataclass(slots=True)
class If(Stmt):
    cond: ExprT
    then: list["StmtT"]
    els: list["StmtT"] = field(default_factory=list)


@dataclass(slots=True)
class While(Stmt):
    cond: ExprT
    body: list["StmtT"]


@dataclass(slots=True)
class For(Stmt):
    """``for var = start to stop [by step] { body }`` — inclusive bounds,
    constant non-zero step.  The loop-unrolling transformation targets
    these nodes.
    """

    var: str
    start: ExprT
    stop: ExprT
    step: int
    body: list["StmtT"]


@dataclass(slots=True)
class Return(Stmt):
    value: ExprT | None = None


@dataclass(slots=True)
class CallStmt(Stmt):
    """An expression statement; only calls are allowed."""

    call: Call


StmtT = Union[LocalDecl, Assign, If, While, For, Return, CallStmt]


# --------------------------------------------------------------- declarations
@dataclass(slots=True)
class Param:
    """Procedure parameter.  ``size`` of -1 marks an unsized array
    parameter (``int[]`` / ``float[]``), which passes by reference."""

    name: str
    ty: str
    size: int | None = None


@dataclass(slots=True)
class Proc:
    name: str
    params: list[Param]
    ret: str | None
    body: list[StmtT]
    line: int = 0


@dataclass(slots=True)
class GlobalDecl:
    """``var name, ... : type;`` at module scope, optionally initialized."""

    names: list[str]
    ty: str
    size: int | None = None
    init: list[int | float] | None = None
    line: int = 0


@dataclass(slots=True)
class ConstDecl:
    name: str
    value: int | float
    line: int = 0


@dataclass(slots=True)
class Module:
    """A parsed Tin compilation unit."""

    consts: list[ConstDecl] = field(default_factory=list)
    globals_: list[GlobalDecl] = field(default_factory=list)
    procs: list[Proc] = field(default_factory=list)

"""Lexer for the Tin language.

Tin is the small imperative language the benchmark suite is written in; it
stands in for the Modula-2 / C sources of the paper's benchmarks.  Comments
run from ``#`` to end of line.
"""

from __future__ import annotations

from ..errors import TinSyntaxError
from .tokens import KEYWORDS, SYMBOLS, Token, TokKind


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source``; raises :class:`TinSyntaxError` on bad input."""
    tokens: list[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def error(msg: str) -> TinSyntaxError:
        return TinSyntaxError(msg, line, col)

    while i < n:
        ch = source[i]
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if ch == "#":
            while i < n and source[i] != "\n":
                i += 1
            continue
        start_col = col
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            j = i
            is_float = False
            while j < n and source[j].isdigit():
                j += 1
            if j < n and source[j] == ".":
                is_float = True
                j += 1
                while j < n and source[j].isdigit():
                    j += 1
            if j < n and source[j] in "eE":
                k = j + 1
                if k < n and source[k] in "+-":
                    k += 1
                if k < n and source[k].isdigit():
                    is_float = True
                    j = k
                    while j < n and source[j].isdigit():
                        j += 1
            text = source[i:j]
            try:
                value: int | float = float(text) if is_float else int(text)
            except ValueError:
                raise error(f"bad numeric literal {text!r}") from None
            kind = TokKind.FLOAT if is_float else TokKind.INT
            tokens.append(Token(kind, text, value, line, start_col))
            col += j - i
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = TokKind.KEYWORD if text in KEYWORDS else TokKind.IDENT
            tokens.append(Token(kind, text, None, line, start_col))
            col += j - i
            i = j
            continue
        for sym in SYMBOLS:
            if source.startswith(sym, i):
                tokens.append(Token(TokKind.SYMBOL, sym, None, line, start_col))
                i += len(sym)
                col += len(sym)
                break
        else:
            raise error(f"unexpected character {ch!r}")
    tokens.append(Token(TokKind.EOF, "", None, line, col))
    return tokens

"""Semantic analysis for Tin.

The checker decorates the AST in place:

* every expression node gets its ``ty`` ("int" or "float");
* implicit int-to-float conversions become explicit :class:`~repro.lang.ast.Cast`
  nodes, so code generation never converts silently;
* references to ``const`` names are replaced by literals.

It also builds the symbol tables code generation consumes: one
:class:`VarInfo` per global / parameter / local, and a :class:`ProcInfo`
per procedure.  Locals are function-scoped.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import TinSemanticError
from . import ast

_INT_ONLY_OPS = {"%", "<<", ">>", "&", "|", "^", "&&", "||"}
_COMPARISONS = {"==", "!=", "<", "<=", ">", ">="}


@dataclass(slots=True)
class VarInfo:
    """One variable: global, parameter, or local."""

    name: str
    ty: str                      # element type: "int" or "float"
    kind: str                    # "global" | "param" | "local"
    size: int | None = None     # array length; None for scalars; -1 for
                                 # unsized (by-reference) array parameters
    init: list[int | float] | None = None

    @property
    def is_array(self) -> bool:
        return self.size is not None

    @property
    def by_ref(self) -> bool:
        """Array parameters pass as a base address."""
        return self.kind == "param" and self.is_array


@dataclass(slots=True)
class ProcInfo:
    """Signature and symbol table of one procedure."""

    name: str
    params: list[VarInfo] = field(default_factory=list)
    ret: str | None = None
    locals_: dict[str, VarInfo] = field(default_factory=dict)

    def lookup(self, name: str) -> VarInfo | None:
        """Look a name up in param/local scope (not globals)."""
        if name in self.locals_:
            return self.locals_[name]
        for p in self.params:
            if p.name == name:
                return p
        return None


@dataclass(slots=True)
class ModuleInfo:
    """Symbol tables for a whole checked module."""

    consts: dict[str, int | float] = field(default_factory=dict)
    globals_: dict[str, VarInfo] = field(default_factory=dict)
    procs: dict[str, ProcInfo] = field(default_factory=dict)


def check(module: ast.Module) -> ModuleInfo:
    """Type-check ``module`` in place and return its symbol tables."""
    return _Checker(module).run()


class _Checker:
    def __init__(self, module: ast.Module):
        self.module = module
        self.info = ModuleInfo()
        self._proc: ProcInfo | None = None

    def _error(self, node, msg: str) -> TinSemanticError:
        line = getattr(node, "line", 0)
        return TinSemanticError(f"line {line}: {msg}")

    # -------------------------------------------------------------- top level
    def run(self) -> ModuleInfo:
        for const in self.module.consts:
            if const.name in self.info.consts:
                raise self._error(const, f"duplicate const {const.name!r}")
            self.info.consts[const.name] = const.value
        for decl in self.module.globals_:
            for name in decl.names:
                if name in self.info.globals_ or name in self.info.consts:
                    raise self._error(decl, f"duplicate global {name!r}")
                init = decl.init
                if init is not None and decl.size is not None:
                    if len(init) not in (1, decl.size):
                        raise self._error(
                            decl, f"initializer length mismatch for {name!r}"
                        )
                self.info.globals_[name] = VarInfo(
                    name, decl.ty, "global", decl.size, init
                )
        for proc in self.module.procs:
            if proc.name in self.info.procs:
                raise self._error(proc, f"duplicate procedure {proc.name!r}")
            pinfo = ProcInfo(proc.name, ret=proc.ret)
            seen: set[str] = set()
            for p in proc.params:
                if p.name in seen:
                    raise self._error(proc, f"duplicate parameter {p.name!r}")
                seen.add(p.name)
                pinfo.params.append(VarInfo(p.name, p.ty, "param", p.size))
            self.info.procs[proc.name] = pinfo
        for proc in self.module.procs:
            self._check_proc(proc)
        return self.info

    # ------------------------------------------------------------- procedures
    def _check_proc(self, proc: ast.Proc) -> None:
        pinfo = self.info.procs[proc.name]
        self._proc = pinfo
        self._collect_locals(proc.body, pinfo)
        self._check_stmts(proc.body)
        if pinfo.ret is not None:
            if not proc.body or not self._always_returns(proc.body):
                raise self._error(
                    proc, f"procedure {proc.name!r} must end with a return"
                )
        self._proc = None

    def _always_returns(self, stmts: list[ast.StmtT]) -> bool:
        if not stmts:
            return False
        last = stmts[-1]
        if isinstance(last, ast.Return):
            return True
        if isinstance(last, ast.If) and last.els:
            return self._always_returns(last.then) and self._always_returns(
                last.els
            )
        return False

    def _collect_locals(self, stmts: list[ast.StmtT], pinfo: ProcInfo) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.LocalDecl):
                for name in stmt.names:
                    if pinfo.lookup(name) is not None:
                        raise self._error(stmt, f"duplicate local {name!r}")
                    pinfo.locals_[name] = VarInfo(name, stmt.ty, "local", stmt.size)
            elif isinstance(stmt, ast.If):
                self._collect_locals(stmt.then, pinfo)
                self._collect_locals(stmt.els, pinfo)
            elif isinstance(stmt, ast.While):
                self._collect_locals(stmt.body, pinfo)
            elif isinstance(stmt, ast.For):
                self._collect_locals(stmt.body, pinfo)

    # ------------------------------------------------------------- statements
    def _check_stmts(self, stmts: list[ast.StmtT]) -> None:
        for i, stmt in enumerate(stmts):
            if isinstance(stmt, ast.LocalDecl):
                continue
            if isinstance(stmt, ast.Assign):
                stmts[i] = self._check_assign(stmt)
            elif isinstance(stmt, ast.If):
                stmt.cond = self._check_cond(stmt.cond)
                self._check_stmts(stmt.then)
                self._check_stmts(stmt.els)
            elif isinstance(stmt, ast.While):
                stmt.cond = self._check_cond(stmt.cond)
                self._check_stmts(stmt.body)
            elif isinstance(stmt, ast.For):
                self._check_for(stmt)
            elif isinstance(stmt, ast.Return):
                self._check_return(stmt)
            elif isinstance(stmt, ast.CallStmt):
                call = self._check_expr(stmt.call)
                assert isinstance(call, ast.Call)
                stmt.call = call
            else:  # pragma: no cover - parser produces no other nodes
                raise self._error(stmt, f"unknown statement {stmt!r}")

    def _var(self, node, name: str) -> VarInfo:
        assert self._proc is not None
        var = self._proc.lookup(name)
        if var is None:
            var = self.info.globals_.get(name)
        if var is None:
            raise self._error(node, f"undeclared variable {name!r}")
        return var

    def _check_assign(self, stmt: ast.Assign) -> ast.Assign:
        target = stmt.target
        if isinstance(target, ast.Index):
            var = self._var(target, target.name)
            if not var.is_array:
                raise self._error(target, f"{target.name!r} is not an array")
            target.index = self._coerce(self._check_expr(target.index), ast.INT)
            target.ty = var.ty
        else:
            var = self._var(target, target.name)
            if var.is_array:
                raise self._error(
                    target, f"cannot assign whole array {target.name!r}"
                )
            target.ty = var.ty
        stmt.value = self._coerce(self._check_expr(stmt.value), var.ty)
        return stmt

    def _check_cond(self, cond: ast.ExprT) -> ast.ExprT:
        cond = self._check_expr(cond)
        if cond.ty != ast.INT:
            raise self._error(cond, "condition must be an int expression")
        return cond

    def _check_for(self, stmt: ast.For) -> None:
        var = self._var(stmt, stmt.var)
        if var.ty != ast.INT or var.is_array:
            raise self._error(stmt, "for-variable must be an int scalar")
        stmt.start = self._coerce(self._check_expr(stmt.start), ast.INT)
        stmt.stop = self._coerce(self._check_expr(stmt.stop), ast.INT)
        self._check_stmts(stmt.body)

    def _check_return(self, stmt: ast.Return) -> None:
        assert self._proc is not None
        ret = self._proc.ret
        if stmt.value is None:
            if ret is not None:
                raise self._error(stmt, "missing return value")
            return
        if ret is None:
            raise self._error(stmt, "returning a value from a void procedure")
        stmt.value = self._coerce(self._check_expr(stmt.value), ret)

    # ------------------------------------------------------------ expressions
    def _coerce(self, expr: ast.ExprT, want: str) -> ast.ExprT:
        if expr.ty == want:
            return expr
        if expr.ty == ast.INT and want == ast.FLOAT:
            cast = ast.Cast(ast.FLOAT, expr)
            cast.ty = ast.FLOAT
            return cast
        raise self._error(
            expr, f"cannot implicitly convert {expr.ty} to {want}"
        )

    def _check_expr(self, expr: ast.ExprT) -> ast.ExprT:
        if isinstance(expr, ast.IntLit):
            expr.ty = ast.INT
            return expr
        if isinstance(expr, ast.FloatLit):
            expr.ty = ast.FLOAT
            return expr
        if isinstance(expr, ast.VarRef):
            assert self._proc is not None
            if self._proc.lookup(expr.name) is None and (
                expr.name in self.info.consts
            ):
                value = self.info.consts[expr.name]
                lit: ast.ExprT
                if isinstance(value, int):
                    lit = ast.IntLit(value)
                    lit.ty = ast.INT
                else:
                    lit = ast.FloatLit(value)
                    lit.ty = ast.FLOAT
                lit.line = expr.line
                return lit
            var = self._var(expr, expr.name)
            if var.is_array:
                raise self._error(
                    expr, f"array {expr.name!r} used without an index"
                )
            expr.ty = var.ty
            return expr
        if isinstance(expr, ast.Index):
            var = self._var(expr, expr.name)
            if not var.is_array:
                raise self._error(expr, f"{expr.name!r} is not an array")
            expr.index = self._coerce(self._check_expr(expr.index), ast.INT)
            expr.ty = var.ty
            return expr
        if isinstance(expr, ast.Call):
            return self._check_call(expr)
        if isinstance(expr, ast.Cast):
            expr.operand = self._check_expr(expr.operand)
            if expr.operand.ty not in (ast.INT, ast.FLOAT):
                raise self._error(expr, "bad cast operand")
            expr.ty = expr.to
            return expr
        if isinstance(expr, ast.UnOp):
            expr.operand = self._check_expr(expr.operand)
            if expr.op == "!":
                if expr.operand.ty != ast.INT:
                    raise self._error(expr, "'!' needs an int operand")
                expr.ty = ast.INT
            else:
                expr.ty = expr.operand.ty
            return expr
        if isinstance(expr, ast.BinOp):
            return self._check_binop(expr)
        raise self._error(expr, f"unknown expression {expr!r}")

    def _check_binop(self, expr: ast.BinOp) -> ast.ExprT:
        expr.left = self._check_expr(expr.left)
        expr.right = self._check_expr(expr.right)
        lt, rt = expr.left.ty, expr.right.ty
        if expr.op in _INT_ONLY_OPS:
            if lt != ast.INT or rt != ast.INT:
                raise self._error(expr, f"{expr.op!r} needs int operands")
            expr.ty = ast.INT
            return expr
        if expr.op in _COMPARISONS:
            if lt != rt:
                expr.left = self._coerce(expr.left, ast.FLOAT)
                expr.right = self._coerce(expr.right, ast.FLOAT)
            expr.ty = ast.INT
            return expr
        # arithmetic: + - * /
        if lt != rt:
            expr.left = self._coerce(expr.left, ast.FLOAT)
            expr.right = self._coerce(expr.right, ast.FLOAT)
            expr.ty = ast.FLOAT
        else:
            expr.ty = lt
        return expr

    def _check_call(self, expr: ast.Call) -> ast.Call:
        proc = self.info.procs.get(expr.name)
        if proc is None:
            raise self._error(expr, f"call to undeclared procedure {expr.name!r}")
        if len(expr.args) != len(proc.params):
            raise self._error(
                expr,
                f"{expr.name!r} expects {len(proc.params)} arguments, "
                f"got {len(expr.args)}",
            )
        for i, (arg, param) in enumerate(zip(expr.args, proc.params)):
            if param.is_array:
                if not isinstance(arg, (ast.VarRef,)):
                    raise self._error(
                        expr, f"argument {i + 1} of {expr.name!r} must be an array name"
                    )
                var = self._var(arg, arg.name)
                if not var.is_array or var.ty != param.ty:
                    raise self._error(
                        expr,
                        f"argument {i + 1} of {expr.name!r} must be a "
                        f"{param.ty} array",
                    )
                arg.ty = param.ty  # marks an array reference argument
            else:
                expr.args[i] = self._coerce(self._check_expr(arg), param.ty)
        expr.ty = proc.ret
        return expr

"""Recursive-descent parser for the Tin language.

Grammar sketch (C-flavoured surface syntax, Modula-2-sized semantics)::

    module    := { constdecl | globaldecl | procdecl }
    constdecl := "const" IDENT "=" ["-"] literal ";"
    globaldecl:= "var" IDENT {"," IDENT} ":" type ["=" init] ";"
    type      := ("int" | "float") [ "[" INT "]" ]
    procdecl  := "proc" IDENT "(" [param {"," param}] ")" [":" scalартype] block
    param     := IDENT ":" ("int" | "float") [ "[" "]" ]
    block     := "{" { stmt } "}"
    stmt      := localdecl | assign | if | while | for | return | callstmt
    for       := "for" IDENT "=" expr "to" expr ["by" ["-"] INT] block

Expression precedence (loosest to tightest): ``||``, ``&&``,
``| ^ &``, ``== !=``, ``< <= > >=``, ``<< >>``, ``+ -``, ``* / %``,
unary ``- !``, primary.  ``int(e)`` and ``float(e)`` are conversion
intrinsics.
"""

from __future__ import annotations

from ..errors import TinSyntaxError
from . import ast
from .lexer import tokenize
from .tokens import Token, TokKind


class Parser:
    """Single-use recursive-descent parser over a token list."""

    def __init__(self, tokens: list[Token]):
        self._toks = tokens
        self._pos = 0

    # ------------------------------------------------------------- utilities
    @property
    def _cur(self) -> Token:
        return self._toks[self._pos]

    def _error(self, msg: str) -> TinSyntaxError:
        tok = self._cur
        return TinSyntaxError(
            f"{msg} (found {tok.text or tok.kind.value!r})", tok.line, tok.column
        )

    def _advance(self) -> Token:
        tok = self._cur
        if tok.kind is not TokKind.EOF:
            self._pos += 1
        return tok

    def _check(self, text: str) -> bool:
        tok = self._cur
        return tok.kind in (TokKind.SYMBOL, TokKind.KEYWORD) and tok.text == text

    def _accept(self, text: str) -> bool:
        if self._check(text):
            self._advance()
            return True
        return False

    def _expect(self, text: str) -> Token:
        if not self._check(text):
            raise self._error(f"expected {text!r}")
        return self._advance()

    def _ident(self) -> str:
        if self._cur.kind is not TokKind.IDENT:
            raise self._error("expected identifier")
        return self._advance().text

    # ------------------------------------------------------------ top level
    def parse_module(self) -> ast.Module:
        """Parse a whole compilation unit."""
        module = ast.Module()
        while self._cur.kind is not TokKind.EOF:
            if self._check("const"):
                module.consts.append(self._const_decl())
            elif self._check("var"):
                module.globals_.append(self._global_decl())
            elif self._check("proc"):
                module.procs.append(self._proc_decl())
            else:
                raise self._error("expected 'const', 'var' or 'proc'")
        return module

    def _literal(self) -> int | float:
        neg = self._accept("-")
        tok = self._cur
        if tok.kind not in (TokKind.INT, TokKind.FLOAT):
            raise self._error("expected numeric literal")
        self._advance()
        value = tok.value
        assert value is not None
        return -value if neg else value

    def _const_decl(self) -> ast.ConstDecl:
        line = self._cur.line
        self._expect("const")
        name = self._ident()
        self._expect("=")
        value = self._literal()
        self._expect(";")
        return ast.ConstDecl(name, value, line=line)

    def _type(self) -> tuple[str, int | None]:
        if self._accept("int"):
            ty = ast.INT
        elif self._accept("float"):
            ty = ast.FLOAT
        else:
            raise self._error("expected type")
        size: int | None = None
        if self._accept("["):
            tok = self._cur
            if tok.kind is not TokKind.INT:
                raise self._error("expected array size")
            self._advance()
            size = int(tok.value)  # type: ignore[arg-type]
            if size <= 0:
                raise self._error("array size must be positive")
            self._expect("]")
        return ty, size

    def _global_decl(self) -> ast.GlobalDecl:
        line = self._cur.line
        self._expect("var")
        names = [self._ident()]
        while self._accept(","):
            names.append(self._ident())
        self._expect(":")
        ty, size = self._type()
        init: list[int | float] | None = None
        if self._accept("="):
            if self._accept("{"):
                init = [self._literal()]
                while self._accept(","):
                    init.append(self._literal())
                self._expect("}")
            else:
                init = [self._literal()]
        self._expect(";")
        return ast.GlobalDecl(names, ty, size, init, line=line)

    def _proc_decl(self) -> ast.Proc:
        line = self._cur.line
        self._expect("proc")
        name = self._ident()
        self._expect("(")
        params: list[ast.Param] = []
        if not self._check(")"):
            params.append(self._param())
            while self._accept(","):
                params.append(self._param())
        self._expect(")")
        ret: str | None = None
        if self._accept(":"):
            if self._accept("int"):
                ret = ast.INT
            elif self._accept("float"):
                ret = ast.FLOAT
            else:
                raise self._error("expected return type")
        body = self._block()
        return ast.Proc(name, params, ret, body, line=line)

    def _param(self) -> ast.Param:
        name = self._ident()
        self._expect(":")
        if self._accept("int"):
            ty = ast.INT
        elif self._accept("float"):
            ty = ast.FLOAT
        else:
            raise self._error("expected parameter type")
        size: int | None = None
        if self._accept("["):
            self._expect("]")
            size = -1  # unsized array parameter, passed by reference
        return ast.Param(name, ty, size)

    # ------------------------------------------------------------ statements
    def _block(self) -> list[ast.StmtT]:
        self._expect("{")
        stmts: list[ast.StmtT] = []
        while not self._check("}"):
            stmts.append(self._stmt())
        self._expect("}")
        return stmts

    def _stmt(self) -> ast.StmtT:
        line = self._cur.line
        if self._check("var"):
            return self._local_decl()
        if self._check("if"):
            return self._if_stmt()
        if self._check("while"):
            self._advance()
            self._expect("(")
            cond = self._expr()
            self._expect(")")
            body = self._block()
            node = ast.While(cond, body)
            node.line = line
            return node
        if self._check("for"):
            return self._for_stmt()
        if self._check("return"):
            self._advance()
            value = None if self._check(";") else self._expr()
            self._expect(";")
            node = ast.Return(value)
            node.line = line
            return node
        # assignment or call statement
        if self._cur.kind is not TokKind.IDENT:
            raise self._error("expected statement")
        name = self._ident()
        if self._check("("):
            call = self._call_tail(name, line)
            self._expect(";")
            stmt = ast.CallStmt(call)
            stmt.line = line
            return stmt
        target: ast.VarRef | ast.Index
        if self._accept("["):
            index = self._expr()
            self._expect("]")
            target = ast.Index(name, index)
        else:
            target = ast.VarRef(name)
        target.line = line
        self._expect("=")
        value = self._expr()
        self._expect(";")
        node = ast.Assign(target, value)
        node.line = line
        return node

    def _local_decl(self) -> ast.LocalDecl:
        line = self._cur.line
        self._expect("var")
        names = [self._ident()]
        while self._accept(","):
            names.append(self._ident())
        self._expect(":")
        ty, size = self._type()
        self._expect(";")
        node = ast.LocalDecl(names, ty, size)
        node.line = line
        return node

    def _if_stmt(self) -> ast.If:
        line = self._cur.line
        self._expect("if")
        self._expect("(")
        cond = self._expr()
        self._expect(")")
        then = self._block()
        els: list[ast.StmtT] = []
        if self._accept("else"):
            if self._check("if"):
                els = [self._if_stmt()]
            else:
                els = self._block()
        node = ast.If(cond, then, els)
        node.line = line
        return node

    def _for_stmt(self) -> ast.For:
        line = self._cur.line
        self._expect("for")
        var = self._ident()
        self._expect("=")
        start = self._expr()
        self._expect("to")
        stop = self._expr()
        step = 1
        if self._accept("by"):
            neg = self._accept("-")
            tok = self._cur
            if tok.kind is not TokKind.INT:
                raise self._error("for-step must be an integer literal")
            self._advance()
            step = int(tok.value)  # type: ignore[arg-type]
            if neg:
                step = -step
            if step == 0:
                raise self._error("for-step must be non-zero")
        body = self._block()
        node = ast.For(var, start, stop, step, body)
        node.line = line
        return node

    # ----------------------------------------------------------- expressions
    _BIN_LEVELS = (
        ("||",),
        ("&&",),
        ("|", "^", "&"),
        ("==", "!="),
        ("<", "<=", ">", ">="),
        ("<<", ">>"),
        ("+", "-"),
        ("*", "/", "%"),
    )

    def _expr(self) -> ast.ExprT:
        return self._binary(0)

    def _binary(self, level: int) -> ast.ExprT:
        if level == len(self._BIN_LEVELS):
            return self._unary()
        ops = self._BIN_LEVELS[level]
        left = self._binary(level + 1)
        while any(self._check(op) for op in ops):
            line = self._cur.line
            op = self._advance().text
            right = self._binary(level + 1)
            node = ast.BinOp(op, left, right)
            node.line = line
            left = node
        return left

    def _unary(self) -> ast.ExprT:
        line = self._cur.line
        if self._accept("-"):
            node = ast.UnOp("-", self._unary())
            node.line = line
            return node
        if self._accept("!"):
            node = ast.UnOp("!", self._unary())
            node.line = line
            return node
        return self._primary()

    def _call_tail(self, name: str, line: int) -> ast.Call:
        self._expect("(")
        args: list[ast.ExprT] = []
        if not self._check(")"):
            args.append(self._expr())
            while self._accept(","):
                args.append(self._expr())
        self._expect(")")
        node = ast.Call(name, args)
        node.line = line
        return node

    def _primary(self) -> ast.ExprT:
        tok = self._cur
        line = tok.line
        if tok.kind is TokKind.INT:
            self._advance()
            node: ast.ExprT = ast.IntLit(int(tok.value))  # type: ignore[arg-type]
            node.line = line
            return node
        if tok.kind is TokKind.FLOAT:
            self._advance()
            node = ast.FloatLit(float(tok.value))  # type: ignore[arg-type]
            node.line = line
            return node
        if self._check("(" ):
            self._advance()
            inner = self._expr()
            self._expect(")")
            return inner
        if self._check("int") or self._check("float"):
            to = self._advance().text
            self._expect("(")
            operand = self._expr()
            self._expect(")")
            node = ast.Cast(to, operand)
            node.line = line
            return node
        if tok.kind is TokKind.IDENT:
            name = self._ident()
            if self._check("("):
                return self._call_tail(name, line)
            if self._accept("["):
                index = self._expr()
                self._expect("]")
                node = ast.Index(name, index)
                node.line = line
                return node
            node = ast.VarRef(name)
            node.line = line
            return node
        raise self._error("expected expression")


def parse(source: str) -> ast.Module:
    """Parse Tin source text into a :class:`repro.lang.ast.Module`."""
    return Parser(tokenize(source)).parse_module()

"""Cross-run regression diffing: per-cell, per-metric deltas + verdicts.

``diff_payloads`` compares two uniform run payloads (see
:func:`repro.obs.history.payload_from_events`) metric by metric and
classifies every change:

* **deterministic simulation metrics** (instructions, minor cycles,
  base cycles, parallelism, per-cause stalls, replay-memo counters) are
  expected to be bit-identical between runs of the same configuration —
  any worsening is a gated regression, any improvement or neutral
  change is reported but not gated;
* **supervision status** worsening (``ok`` → ``retried`` → ``degraded``
  → ``failed``) is a gated regression;
* **wall-clock metrics** (cell/sim seconds) are noisy, so they only
  warn, and only past a generous relative threshold;
* **bench throughput** gates the ``warm`` mode (the steady-state replay
  cost) with a configurable ``max_regression`` fraction; other modes
  warn at the same threshold.

The CLI (``repro diff A B``) prints one verdict line per finding and
exits nonzero iff a *gated* regression survived — this subsumes the old
``validate_bench.py --throughput`` gate (whose knowledge now lives in
:func:`repro.obs.schema.check_throughput` semantics) while extending it
to every per-cell metric of a run report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .schema import DEFAULT_MAX_REGRESSION, GATED_MODE, STALL_CAUSES

#: Supervision statuses, best first (index = badness).
_STATUS_ORDER = ("ok", "retried", "degraded", "failed")

#: Deterministic per-cell metrics: name -> direction
#: (+1: higher is better, -1: lower is better, 0: any change is a
#: finding but never gated on direction alone).
_CELL_METRICS: dict[str, int] = {
    "instructions": 0,
    "minor_cycles": -1,
    "base_cycles": -1,
    "parallelism": +1,
    "cpi": -1,
}

#: Per-cause stall metrics (lower is better).
_STALL_METRICS = STALL_CAUSES

#: Replay-memo counters worth surfacing (never gated: they track an
#: optimization, not a measurement).
_REPLAY_METRICS: dict[str, int] = {
    "memo_hits": +1,
    "memo_misses": -1,
    "fallbacks": -1,
    "memo_instructions": +1,
}


@dataclass(frozen=True, slots=True)
class DiffPolicy:
    """Thresholds and gating for one diff.

    ``tolerance`` is the allowed relative change for deterministic
    metrics (default 0: bit-identical or it's a finding);
    ``max_regression`` the allowed fractional throughput drop for bench
    modes; ``seconds_tolerance`` the relative band inside which
    wall-clock changes are ignored entirely.  ``warn_only`` downgrades
    every gated finding to a warning (CI uses this for cold-cache
    configurations whose measurements legitimately drift across
    environments).
    """

    tolerance: float = 0.0
    max_regression: float = DEFAULT_MAX_REGRESSION
    seconds_tolerance: float = 0.25
    warn_only: bool = False
    gate_status: bool = True


@dataclass(frozen=True, slots=True)
class DiffEntry:
    """One finding: a single metric that changed between A and B."""

    scope: str          # 'run' | 'cell' | 'bench'
    key: str            # e.g. 'whet@superscalar-4' or mode name
    metric: str
    a: object
    b: object
    regression: bool    # True when gated (counts toward the exit code)
    message: str


@dataclass(slots=True)
class DiffResult:
    """Everything one diff produced."""

    entries: list[DiffEntry] = field(default_factory=list)

    @property
    def regressions(self) -> list[DiffEntry]:
        return [e for e in self.entries if e.regression]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        """Human-readable verdict block, one line per finding."""
        if not self.entries:
            return "no differences"
        lines = []
        for entry in self.entries:
            tag = "REGRESSED" if entry.regression else "changed"
            lines.append(f"{tag:9s} {entry.message}")
        lines.append(
            f"{len(self.entries)} difference(s), "
            f"{len(self.regressions)} regression(s)"
        )
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "ok": self.ok,
            "differences": len(self.entries),
            "regressions": len(self.regressions),
            "entries": [
                {"scope": e.scope, "key": e.key, "metric": e.metric,
                 "a": e.a, "b": e.b, "regression": e.regression,
                 "message": e.message}
                for e in self.entries
            ],
        }


def _rel_change(a: float, b: float) -> float | None:
    """(b - a) / |a|, or None when a is zero."""
    if a == 0:
        return None
    return (b - a) / abs(a)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _fmt_delta(a: object, b: object) -> str:
    text = f"{_fmt(a)} -> {_fmt(b)}"
    if isinstance(a, (int, float)) and isinstance(b, (int, float)) \
            and not isinstance(a, bool) and not isinstance(b, bool):
        rel = _rel_change(float(a), float(b))
        if rel is not None:
            text += f" ({rel:+.1%})"
    return text


def _numeric(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


class _Differ:
    def __init__(self, policy: DiffPolicy) -> None:
        self.policy = policy
        self.result = DiffResult()

    def add(self, scope: str, key: str, metric: str, a, b,
            gated: bool, note: str = "") -> None:
        if self.policy.warn_only:
            gated = False
        message = f"{key}: {metric} {_fmt_delta(a, b)}"
        if note:
            message += f" ({note})"
        self.result.entries.append(
            DiffEntry(scope, key, metric, a, b, gated, message))

    def compare_metric(self, scope: str, key: str, metric: str,
                       a, b, direction: int, gated: bool) -> None:
        """Compare one numeric metric under the deterministic policy."""
        if a is None and b is None:
            return
        if a is None or b is None:
            self.add(scope, key, metric, a, b, gated=False,
                     note="present in only one run")
            return
        if not _numeric(a) or not _numeric(b):
            if a != b:
                self.add(scope, key, metric, a, b, gated=False)
            return
        if a == b:
            return
        rel = _rel_change(float(a), float(b))
        within = (rel is not None
                  and abs(rel) <= self.policy.tolerance)
        if within:
            return
        worse = (direction == -1 and b > a) or (direction == +1 and b < a)
        if direction == 0:
            # Any drift in a direction-free deterministic metric is a
            # determinism break — gate it.
            self.add(scope, key, metric, a, b, gated=gated,
                     note="deterministic metric drifted")
        elif worse:
            note = ""
            if self.policy.tolerance:
                note = f"allowed {self.policy.tolerance:.1%}"
            self.add(scope, key, metric, a, b, gated=gated, note=note)
        else:
            self.add(scope, key, metric, a, b, gated=False,
                     note="improved")


def _cell_key(cell: dict) -> tuple:
    return (cell.get("benchmark"), cell.get("machine"),
            cell.get("options"))


def _cell_label(key: tuple) -> str:
    benchmark, machine, options = key
    label = f"{benchmark}@{machine}"
    if options and options != "default":
        label += f"[{options}]"
    return label


def diff_payloads(a: dict, b: dict,
                  policy: DiffPolicy | None = None) -> DiffResult:
    """Diff two uniform run payloads (A = baseline, B = candidate)."""
    policy = policy or DiffPolicy()
    differ = _Differ(policy)

    a_cells = {_cell_key(c): c for c in a.get("cells", [])}
    b_cells = {_cell_key(c): c for c in b.get("cells", [])}
    for key in a_cells:
        if key not in b_cells:
            differ.add("cell", _cell_label(key), "presence",
                       "present", "missing", gated=True,
                       note="cell disappeared from candidate")
    for key in b_cells:
        if key not in a_cells:
            differ.add("cell", _cell_label(key), "presence",
                       "missing", "present", gated=False,
                       note="new cell in candidate")

    for key in a_cells:
        if key not in b_cells:
            continue
        ca, cb = a_cells[key], b_cells[key]
        label = _cell_label(key)
        _diff_cell(differ, label, ca, cb, policy)

    _diff_bench(differ, a, b, policy)
    _diff_run(differ, a, b, policy)
    return differ.result


def _diff_cell(differ: _Differ, label: str, ca: dict, cb: dict,
               policy: DiffPolicy) -> None:
    # The scheduler backend is deliberately NOT part of the cell key:
    # comparing the same grid under two backends (the `repro gap` CI
    # check) must line cells up.  A change is surfaced informationally
    # so per-backend diffs are self-describing, never gated — the cycle
    # metrics below carry the actual verdict.
    scheduler_a, scheduler_b = ca.get("scheduler"), cb.get("scheduler")
    if (scheduler_a != scheduler_b
            and scheduler_a is not None and scheduler_b is not None):
        differ.add("cell", label, "scheduler", scheduler_a, scheduler_b,
                   gated=False, note="scheduler backend changed")
    sa, sb = ca.get("status", "ok"), cb.get("status", "ok")
    if sa != sb:
        worse = (_STATUS_ORDER.index(sb) > _STATUS_ORDER.index(sa)
                 if sa in _STATUS_ORDER and sb in _STATUS_ORDER else True)
        differ.add("cell", label, "status", sa, sb,
                   gated=worse and policy.gate_status,
                   note="status worsened" if worse else "status improved")
    if (sa == "failed") or (sb == "failed"):
        # A failed cell carries placeholder zeros; numeric comparison
        # would drown the status finding in noise.
        return
    for metric, direction in _CELL_METRICS.items():
        differ.compare_metric("cell", label, metric,
                              ca.get(metric), cb.get(metric),
                              direction, gated=True)
    stalls_a = ca.get("stalls") or {}
    stalls_b = cb.get("stalls") or {}
    if stalls_a or stalls_b:
        for cause in _STALL_METRICS:
            differ.compare_metric("cell", label, f"stalls.{cause}",
                                  stalls_a.get(cause),
                                  stalls_b.get(cause),
                                  direction=-1, gated=True)
        differ.compare_metric("cell", label, "stalls.issued_cycles",
                              stalls_a.get("issued_cycles"),
                              stalls_b.get("issued_cycles"),
                              direction=0, gated=True)
    replay_a = ca.get("replay") or {}
    replay_b = cb.get("replay") or {}
    if replay_a or replay_b:
        for metric, direction in _REPLAY_METRICS.items():
            differ.compare_metric("cell", label, f"replay.{metric}",
                                  replay_a.get(metric),
                                  replay_b.get(metric),
                                  direction, gated=False)
    seconds_a, seconds_b = ca.get("seconds"), cb.get("seconds")
    if _numeric(seconds_a) and _numeric(seconds_b) and seconds_a:
        rel = _rel_change(float(seconds_a), float(seconds_b))
        if rel is not None and rel > policy.seconds_tolerance:
            differ.add("cell", label, "seconds", seconds_a, seconds_b,
                       gated=False,
                       note=f"slower than the {policy.seconds_tolerance:.0%}"
                            " noise band")


def _diff_bench(differ: _Differ, a: dict, b: dict,
                policy: DiffPolicy) -> None:
    modes_a = {m.get("mode"): m for m in a.get("modes", [])}
    modes_b = {m.get("mode"): m for m in b.get("modes", [])}
    if not modes_a and not modes_b:
        return
    for mode in modes_a:
        va = modes_a[mode].get("instr_per_sec")
        vb = (modes_b.get(mode) or {}).get("instr_per_sec")
        gated = mode == GATED_MODE
        if not _numeric(va) or va <= 0:
            continue
        if not _numeric(vb) or vb <= 0:
            differ.add("bench", mode, "instr_per_sec", va, vb,
                       gated=gated, note="missing or non-positive in "
                                         "candidate")
            continue
        ratio = vb / va
        if ratio < 1.0 - policy.max_regression:
            differ.add(
                "bench", mode, "instr_per_sec", va, vb, gated=gated,
                note=f"{1.0 - ratio:.1%} below baseline, allowed "
                     f"{policy.max_regression:.0%}"
                     + ("" if gated else "; not gated"),
            )
        elif ratio > 1.0 + policy.max_regression:
            differ.add("bench", mode, "instr_per_sec", va, vb,
                       gated=False, note="improved")
    if GATED_MODE in modes_a and GATED_MODE not in modes_b:
        differ.add("bench", GATED_MODE, "presence", "present", "missing",
                   gated=True, note="gated mode absent from candidate")


def _diff_run(differ: _Differ, a: dict, b: dict,
              policy: DiffPolicy) -> None:
    ea = a.get("engine") or {}
    eb = b.get("engine") or {}
    if ea or eb:
        for metric in ("failed_cells", "degraded_cells"):
            va, vb = ea.get(metric, 0) or 0, eb.get(metric, 0) or 0
            if _numeric(va) and _numeric(vb) and vb > va:
                differ.add("run", "engine", metric, va, vb,
                           gated=policy.gate_status,
                           note="more cells lost to faults")
        for metric in ("cells", "groups"):
            va, vb = ea.get(metric), eb.get(metric)
            if _numeric(va) and _numeric(vb) and va != vb:
                differ.add("run", "engine", metric, va, vb, gated=False,
                           note="grid shape changed")
    ma, mb = a.get("machines") or [], b.get("machines") or []
    if ma and mb and list(ma) != list(mb):
        differ.add("run", "run", "machines", ",".join(ma), ",".join(mb),
                   gated=False, note="machine set changed")


def load_diff_side(path_or_ref: str, ledger=None) -> dict:
    """Resolve one CLI diff operand to a uniform payload.

    A path ending in ``.jsonl`` loads as a run report, ``.json`` as a
    BENCH document; anything else resolves through the ledger
    (``latest``, ``latest~N``, a numeric id, or a fingerprint prefix).
    """
    import os

    from .history import payload_from_bench, payload_from_events
    from .recorder import read_jsonl_tolerant

    if os.path.exists(path_or_ref):
        if path_or_ref.endswith(".jsonl"):
            events, _skipped = read_jsonl_tolerant(path_or_ref)
            return payload_from_events(events, source=path_or_ref)
        if path_or_ref.endswith(".json"):
            import json as _json

            with open(path_or_ref, encoding="utf-8") as handle:
                return payload_from_bench(_json.load(handle),
                                          source=path_or_ref)
        raise ValueError(
            f"{path_or_ref}: expected a .jsonl run report or a .json "
            "bench document")
    if ledger is None:
        raise ValueError(
            f"{path_or_ref}: not a file, and no ledger given to resolve "
            "it as a run reference")
    return ledger.payload(ledger.resolve(path_or_ref))

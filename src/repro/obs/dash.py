"""Self-contained HTML dashboard over the run-history ledger.

``render_dashboard`` turns one :meth:`HistoryLedger.export` dict into a
single static HTML file: inline CSS, inline JS, hand-rolled SVG charts,
zero network requests, zero dependencies.  The ledger data is embedded
verbatim in a ``<script type="application/json" id="ledger-data">``
block — the page is a pure function of that blob, and tests compare the
blob against a fresh export to prove the dashboard shows the ledger and
nothing else.

Panels: headline stat tiles, bench throughput trends across ledger
history, ILP per machine for the latest report run, per-cause stall
stacked bars, cache/replay-memo hit-rate trends, a flaky-cell table
(every cell ever retried/degraded/failed, with attempt histories), and
per-track resource telemetry when runs carried it.

Colors follow the repo's chart conventions: categorical hues assigned
in fixed slot order, light and dark palettes as CSS custom properties
switched by ``prefers-color-scheme``, series identity carried by the
legend and marks (text stays in ink tokens).
"""

from __future__ import annotations

import json

#: Fixed categorical slot order (light, dark) — assigned to series in
#: this order, never cycled past the end (the JS folds the rest).
_PALETTE = [
    ("#2a78d6", "#3987e5"),   # 1 blue
    ("#eb6834", "#d95926"),   # 2 orange
    ("#1baf7a", "#199e70"),   # 3 aqua
    ("#eda100", "#c98500"),   # 4 yellow
    ("#e87ba4", "#d55181"),   # 5 magenta
    ("#008300", "#008300"),   # 6 green
    ("#4a3aa7", "#9085e9"),   # 7 violet
    ("#e34948", "#e66767"),   # 8 red
]

_CSS = """
:root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --page: #f9f9f7;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --text-muted: #898781;
  --grid: #e1e0d9;
  --axis: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --status-critical: #d03b3b;
  --status-warning: #fab219;
%(light_slots)s
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --page: #0d0d0d;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --text-muted: #898781;
    --grid: #2c2c2a;
    --axis: #383835;
    --border: rgba(255,255,255,0.10);
%(dark_slots)s
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 24px;
  background: var(--page); color: var(--text-primary);
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  font-size: 14px; line-height: 1.45;
}
h1 { font-size: 20px; margin: 0 0 4px; }
.subtitle { color: var(--text-secondary); margin: 0 0 20px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin-bottom: 20px; }
.tile {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px 16px; min-width: 150px;
}
.tile .value { font-size: 24px; font-weight: 600; }
.tile .label { color: var(--text-secondary); font-size: 12px; }
.panel {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 16px; margin-bottom: 20px;
}
.panel h2 { font-size: 15px; margin: 0 0 2px; }
.panel .note { color: var(--text-secondary); font-size: 12px;
               margin: 0 0 10px; }
.legend { display: flex; flex-wrap: wrap; gap: 14px; margin: 6px 0 8px;
          font-size: 12px; color: var(--text-secondary); }
.legend .swatch {
  display: inline-block; width: 10px; height: 10px;
  border-radius: 2px; margin-right: 5px; vertical-align: -1px;
}
svg text { fill: var(--text-muted); font-size: 11px;
           font-family: inherit; }
svg .tick { font-variant-numeric: tabular-nums; }
table { border-collapse: collapse; width: 100%%; font-size: 13px; }
th { text-align: left; color: var(--text-secondary); font-weight: 600;
     border-bottom: 1px solid var(--axis); padding: 6px 10px 6px 0; }
td { border-bottom: 1px solid var(--grid); padding: 6px 10px 6px 0;
     font-variant-numeric: tabular-nums; }
td.status-failed { color: var(--status-critical); font-weight: 600; }
td.status-degraded, td.status-retried { color: var(--text-primary); }
.empty { color: var(--text-muted); font-style: italic; }
#tooltip {
  position: fixed; pointer-events: none; display: none; z-index: 10;
  background: var(--surface-1); color: var(--text-primary);
  border: 1px solid var(--border); border-radius: 6px;
  padding: 6px 10px; font-size: 12px;
  box-shadow: 0 2px 8px rgba(0,0,0,0.25);
}
"""

_JS = r"""
'use strict';
const DATA = JSON.parse(
  document.getElementById('ledger-data').textContent);
const PALETTE = document.body.dataset.palette.split(',');
const color = i => `var(--series-${Math.min(i, PALETTE.length - 1) + 1})`;

const tooltip = document.getElementById('tooltip');
function hover(el, html) {
  el.addEventListener('mousemove', ev => {
    tooltip.innerHTML = html;
    tooltip.style.display = 'block';
    tooltip.style.left = (ev.clientX + 14) + 'px';
    tooltip.style.top = (ev.clientY + 14) + 'px';
  });
  el.addEventListener('mouseleave', () => {
    tooltip.style.display = 'none';
  });
}

const NS = 'http://www.w3.org/2000/svg';
function svgEl(tag, attrs) {
  const el = document.createElementNS(NS, tag);
  for (const [k, v] of Object.entries(attrs || {})) {
    el.setAttribute(k, v);
  }
  return el;
}

function fmt(v) {
  if (v == null || Number.isNaN(v)) return '–';
  if (Math.abs(v) >= 1e6) return (v / 1e6).toFixed(2) + 'M';
  if (Math.abs(v) >= 1e3) return (v / 1e3).toFixed(1) + 'k';
  if (Number.isInteger(v)) return String(v);
  return v.toPrecision(4);
}

function legend(container, names) {
  if (names.length < 2) return;
  const box = document.createElement('div');
  box.className = 'legend';
  names.forEach((name, i) => {
    const item = document.createElement('span');
    const sw = document.createElement('span');
    sw.className = 'swatch';
    sw.style.background = color(i);
    item.appendChild(sw);
    item.appendChild(document.createTextNode(name));
    box.appendChild(item);
  });
  container.appendChild(box);
}

function chartFrame(container, w, h, pad) {
  const svg = svgEl('svg', {
    viewBox: `0 0 ${w} ${h}`, width: '100%',
    preserveAspectRatio: 'xMidYMid meet',
  });
  container.appendChild(svg);
  return svg;
}

function yTicks(svg, pad, w, h, yMax, unit) {
  const n = 4;
  for (let i = 0; i <= n; i++) {
    const value = yMax * i / n;
    const y = h - pad.b - (h - pad.t - pad.b) * i / n;
    svg.appendChild(svgEl('line', {
      x1: pad.l, x2: w - pad.r, y1: y, y2: y,
      stroke: i === 0 ? 'var(--axis)' : 'var(--grid)',
      'stroke-width': 1,
    }));
    const label = svgEl('text', {
      x: pad.l - 6, y: y + 3.5, 'text-anchor': 'end', class: 'tick',
    });
    label.textContent = fmt(value) + (unit || '');
    svg.appendChild(label);
  }
}

// series: [{name, points: [{x label, y}]}] — shared x categories.
function lineChart(container, series, xLabels, unit) {
  legend(container, series.map(s => s.name));
  const w = 640, h = 220, pad = {l: 52, r: 12, t: 10, b: 26};
  const svg = chartFrame(container, w, h, pad);
  const yMax = Math.max(1e-12, ...series.flatMap(
    s => s.points.map(p => p.y ?? 0))) * 1.08;
  yTicks(svg, pad, w, h, yMax, unit);
  const n = xLabels.length;
  const x = i => n === 1 ? (pad.l + w - pad.r) / 2
    : pad.l + (w - pad.l - pad.r) * i / (n - 1);
  const y = v => h - pad.b - (h - pad.t - pad.b) * v / yMax;
  xLabels.forEach((lab, i) => {
    if (n > 12 && i % Math.ceil(n / 12) !== 0) return;
    const t = svgEl('text', {
      x: x(i), y: h - pad.b + 16, 'text-anchor': 'middle', class: 'tick',
    });
    t.textContent = lab;
    svg.appendChild(t);
  });
  series.forEach((s, si) => {
    const pts = s.points
      .map((p, i) => p.y == null ? null : `${x(i)},${y(p.y)}`)
      .filter(Boolean);
    if (pts.length > 1) {
      svg.appendChild(svgEl('polyline', {
        points: pts.join(' '), fill: 'none', stroke: color(si),
        'stroke-width': 2, 'stroke-linejoin': 'round',
      }));
    }
    s.points.forEach((p, i) => {
      if (p.y == null) return;
      const dot = svgEl('circle', {
        cx: x(i), cy: y(p.y), r: 4, fill: color(si),
        stroke: 'var(--surface-1)', 'stroke-width': 2,
      });
      hover(dot, `<b>${s.name}</b><br>${xLabels[i]}: ${fmt(p.y)}` +
            (unit || ''));
      svg.appendChild(dot);
    });
  });
}

// items: [{label, value}] — one series of vertical bars.
function barChart(container, items, unit) {
  const w = 640, h = 220, pad = {l: 52, r: 12, t: 10, b: 40};
  const svg = chartFrame(container, w, h, pad);
  const yMax = Math.max(1e-12, ...items.map(d => d.value ?? 0)) * 1.08;
  yTicks(svg, pad, w, h, yMax, unit);
  const n = items.length;
  const band = (w - pad.l - pad.r) / Math.max(1, n);
  const bw = Math.min(42, band - 2);
  items.forEach((d, i) => {
    const cx = pad.l + band * i + band / 2;
    const y0 = h - pad.b;
    const y1 = y0 - (h - pad.t - pad.b) * (d.value ?? 0) / yMax;
    const bar = svgEl('path', {
      d: `M${cx - bw / 2},${y0} L${cx - bw / 2},${y1 + 4}
          Q${cx - bw / 2},${y1} ${cx - bw / 2 + 4},${y1}
          L${cx + bw / 2 - 4},${y1}
          Q${cx + bw / 2},${y1} ${cx + bw / 2},${y1 + 4}
          L${cx + bw / 2},${y0} Z`,
      fill: color(0),
    });
    hover(bar, `<b>${d.label}</b><br>${fmt(d.value)}` + (unit || ''));
    svg.appendChild(bar);
    const t = svgEl('text', {
      x: cx, y: h - pad.b + 16, 'text-anchor': 'middle', class: 'tick',
    });
    t.textContent = d.label;
    svg.appendChild(t);
  });
}

// rows: [{label, parts: [v1..vk]}], stacked with 2px surface gaps.
function stackedBars(container, rows, partNames, unit) {
  legend(container, partNames);
  const w = 640, h = 240, pad = {l: 60, r: 12, t: 10, b: 40};
  const svg = chartFrame(container, w, h, pad);
  const yMax = Math.max(
    1e-12, ...rows.map(r => r.parts.reduce((a, b) => a + (b || 0), 0)),
  ) * 1.08;
  yTicks(svg, pad, w, h, yMax, unit);
  const n = rows.length;
  const band = (w - pad.l - pad.r) / Math.max(1, n);
  const bw = Math.min(46, band - 2);
  rows.forEach((r, i) => {
    const cx = pad.l + band * i + band / 2;
    let y0 = h - pad.b;
    r.parts.forEach((v, pi) => {
      if (!v) return;
      const hh = (h - pad.t - pad.b) * v / yMax;
      const rect = svgEl('rect', {
        x: cx - bw / 2, y: y0 - hh + 1, width: bw,
        height: Math.max(0, hh - 2), fill: color(pi),
      });
      hover(rect,
            `<b>${r.label}</b><br>${partNames[pi]}: ${fmt(v)}` +
            (unit || ''));
      svg.appendChild(rect);
      y0 -= hh;
    });
    const t = svgEl('text', {
      x: cx, y: h - pad.b + 16, 'text-anchor': 'middle', class: 'tick',
    });
    t.textContent = r.label;
    svg.appendChild(t);
  });
}

function harmonicMean(values) {
  const xs = values.filter(v => typeof v === 'number' && v > 0);
  if (!xs.length) return null;
  return xs.length / xs.reduce((a, v) => a + 1 / v, 0);
}

function panel(id) { return document.getElementById(id); }
function setEmpty(id, text) {
  const p = document.createElement('p');
  p.className = 'empty';
  p.textContent = text;
  panel(id).appendChild(p);
}

const reportRuns = DATA.runs.filter(r => r.kind === 'report');
const benchRuns = DATA.runs.filter(r => r.kind === 'bench');

// -- stat tiles --------------------------------------------------------
(function tiles() {
  const latest = reportRuns[reportRuns.length - 1];
  const latestBench = benchRuns[benchRuns.length - 1];
  const warm = latestBench &&
    latestBench.modes.find(m => m.mode === 'warm');
  const items = [
    ['ledger entries', DATA.runs.length],
    ['report runs', reportRuns.length],
    ['latest cells', latest ? latest.cells.length : null],
    ['latest ILP (hmean)', latest ? harmonicMean(
      latest.cells.map(c => c.parallelism)) : null],
    ['warm throughput', warm ? warm.instr_per_sec : null,
     ' instr/s'],
    ['flaky cells (ever)', DATA.flaky.length],
  ];
  const box = panel('tiles');
  for (const [label, value, unit] of items) {
    const tile = document.createElement('div');
    tile.className = 'tile';
    const v = document.createElement('div');
    v.className = 'value';
    v.textContent = fmt(typeof value === 'number' ? value : NaN) +
      (value != null && unit ? unit : '');
    const l = document.createElement('div');
    l.className = 'label';
    l.textContent = label;
    tile.appendChild(v);
    tile.appendChild(l);
    box.appendChild(tile);
  }
})();

// -- bench throughput trend -------------------------------------------
(function throughput() {
  if (!benchRuns.length) {
    setEmpty('bench-panel',
             'No bench entries yet — ingest a BENCH_sim.json with ' +
             '`repro ingest --bench`.');
    return;
  }
  const modeNames = [];
  benchRuns.forEach(r => r.modes.forEach(m => {
    if (!modeNames.includes(m.mode)) modeNames.push(m.mode);
  }));
  const xLabels = benchRuns.map(r => '#' + r.id);
  const series = modeNames.map(mode => ({
    name: mode,
    points: benchRuns.map(r => {
      const row = r.modes.find(m => m.mode === mode);
      return {y: row ? row.instr_per_sec : null};
    }),
  }));
  lineChart(panel('bench-panel'), series, xLabels, ' i/s');
})();

// -- ILP per machine (latest report run) ------------------------------
(function ilp() {
  const latest = reportRuns[reportRuns.length - 1];
  if (!latest || !latest.cells.length) {
    setEmpty('ilp-panel', 'No report entries yet — ingest a JSONL run ' +
             'report with `repro ingest`.');
    return;
  }
  const byMachine = new Map();
  latest.cells.forEach(c => {
    if (c.status === 'failed') return;
    if (!byMachine.has(c.machine)) byMachine.set(c.machine, []);
    byMachine.get(c.machine).push(c.parallelism);
  });
  const items = [...byMachine.entries()].map(([label, vals]) => (
    {label, value: harmonicMean(vals)}));
  barChart(panel('ilp-panel'), items, '');
})();

// -- stall-cause stacked breakdown ------------------------------------
(function stalls() {
  const causes = ['control', 'raw_dep', 'memory_order',
                  'unit_conflict', 'issue_width'];
  const latest = [...reportRuns].reverse().find(
    r => r.cells.some(c => c.stalls));
  if (!latest) {
    setEmpty('stall-panel', 'No run with stall attribution yet — ' +
             'sweep with --profile / observe=True.');
    return;
  }
  const byMachine = new Map();
  latest.cells.forEach(c => {
    if (!c.stalls) return;
    if (!byMachine.has(c.machine)) {
      byMachine.set(c.machine, causes.map(() => 0));
    }
    const acc = byMachine.get(c.machine);
    causes.forEach((cause, i) => {
      acc[i] += c.stalls[cause] || 0;
    });
  });
  const rows = [...byMachine.entries()].map(([label, parts]) => (
    {label, parts}));
  stackedBars(panel('stall-panel'), rows, causes, ' cycles');
})();

// -- cache / memo hit-rate trends -------------------------------------
(function rates() {
  const runs = reportRuns.filter(r => r.counters &&
    (r.counters['cache.gets'] || r.counters['replay.memo_hits'] ||
     (r.engine && r.engine.cache_hits != null)));
  if (!runs.length) {
    setEmpty('rates-panel', 'No cache/memo counters in the ledger yet.');
    return;
  }
  const xLabels = runs.map(r => '#' + r.id);
  const cacheRate = r => {
    const c = r.counters || {};
    if (c['cache.gets']) {
      return 100 * (c['cache.hits'] || 0) / c['cache.gets'];
    }
    const e = r.engine;
    if (e && (e.cache_hits || e.cache_misses)) {
      return 100 * e.cache_hits / (e.cache_hits + e.cache_misses);
    }
    return null;
  };
  const memoRate = r => {
    const e = r.engine || {};
    const total = (e.memo_hits || 0) + (e.memo_misses || 0);
    return total ? 100 * e.memo_hits / total : null;
  };
  lineChart(panel('rates-panel'), [
    {name: 'trace-cache hit %', points: runs.map(r => ({y: cacheRate(r)}))},
    {name: 'replay-memo hit %', points: runs.map(r => ({y: memoRate(r)}))},
  ], xLabels, '%');
})();

// -- flaky-cell table --------------------------------------------------
(function flaky() {
  const body = panel('flaky-body');
  if (!DATA.flaky.length) {
    panel('flaky-table').style.display = 'none';
    setEmpty('flaky-panel', 'No cell has ever needed the resilience ' +
             'ladder — every ingested run was clean.');
    return;
  }
  DATA.flaky.forEach(cell => {
    const tr = document.createElement('tr');
    const history = (cell.history || []).map(h =>
      `#${h.attempt} ${h.kind}@${h.where}`).join(', ');
    const cols = [
      ['#' + cell.run_ref + ' ' + (cell.run_label || ''), ''],
      [cell.benchmark + '@' + cell.machine, ''],
      [cell.status, 'status-' + cell.status],
      [String(cell.attempts), ''],
      [history || (cell.error ? cell.error.kind : '–'), ''],
    ];
    cols.forEach(([text, cls]) => {
      const td = document.createElement('td');
      td.textContent = text;
      if (cls) td.className = cls;
      tr.appendChild(td);
    });
    body.appendChild(tr);
  });
})();

// -- resource telemetry ------------------------------------------------
(function resources() {
  const rows = [];
  DATA.runs.forEach(r => (r.resources || []).forEach(res => {
    rows.push({run: r.id, ...res});
  }));
  const body = panel('resource-body');
  if (!rows.length) {
    panel('resource-table').style.display = 'none';
    setEmpty('resource-panel', 'No resource telemetry ingested — run ' +
             'with --sample-resources to record per-worker RSS/CPU.');
    return;
  }
  rows.forEach(res => {
    const tr = document.createElement('tr');
    [['#' + res.run], [res.track],
     [fmt(res.rss_peak_mb) + ' MiB'],
     [fmt(res.cpu_seconds) + ' s'],
     [String(res.samples)]].forEach(([text]) => {
      const td = document.createElement('td');
      td.textContent = text;
      tr.appendChild(td);
    });
    body.appendChild(tr);
  });
})();
"""

_PAGE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>%(title)s</title>
<style>%(css)s</style>
</head>
<body data-palette="%(palette)s">
<h1>%(title)s</h1>
<p class="subtitle">%(subtitle)s</p>
<div class="tiles" id="tiles"></div>
<div class="panel" id="bench-panel">
  <h2>Bench throughput</h2>
  <p class="note">instr/s per mode across ingested BENCH_sim runs
  (warm replay is the gated steady state)</p>
</div>
<div class="panel" id="ilp-panel">
  <h2>ILP per machine</h2>
  <p class="note">harmonic-mean parallelism across benchmarks,
  latest report run</p>
</div>
<div class="panel" id="stall-panel">
  <h2>Stall attribution</h2>
  <p class="note">minor cycles lost per cause, summed over benchmarks,
  latest observed run</p>
</div>
<div class="panel" id="rates-panel">
  <h2>Cache &amp; replay-memo hit rates</h2>
  <p class="note">per ingested report run</p>
</div>
<div class="panel" id="flaky-panel">
  <h2>Flaky cells</h2>
  <p class="note">every cell that was ever retried, degraded, or failed
  — with its attempt history</p>
  <table id="flaky-table">
    <thead><tr><th>run</th><th>cell</th><th>status</th>
    <th>attempts</th><th>history</th></tr></thead>
    <tbody id="flaky-body"></tbody>
  </table>
</div>
<div class="panel" id="resource-panel">
  <h2>Resource telemetry</h2>
  <p class="note">per-track peak RSS and CPU time
  (--sample-resources runs)</p>
  <table id="resource-table">
    <thead><tr><th>run</th><th>track</th><th>peak RSS</th>
    <th>CPU time</th><th>samples</th></tr></thead>
    <tbody id="resource-body"></tbody>
  </table>
</div>
<div id="tooltip"></div>
<script id="ledger-data" type="application/json">%(data)s</script>
<script>%(js)s</script>
</body>
</html>
"""


def _slot_css(indent: str, dark: bool) -> str:
    lines = []
    for i, (light, dark_hex) in enumerate(_PALETTE, start=1):
        value = dark_hex if dark else light
        lines.append(f"{indent}--series-{i}: {value};")
    return "\n".join(lines)


def render_dashboard(data: dict, title: str = "repro run history") -> str:
    """Render one ledger export as a complete standalone HTML page."""
    runs = data.get("runs", [])
    subtitle = (
        f"{len(runs)} ledger entr{'y' if len(runs) == 1 else 'ies'}"
        f" · ledger {data.get('path', '?')}"
    )
    blob = json.dumps(data, sort_keys=True, separators=(",", ":"),
                      default=str)
    # A literal "</script>" inside the JSON would end the data block
    # early; escaping the slash is invisible to JSON.parse.
    blob = blob.replace("</", "<\\/")
    css = _CSS % {
        "light_slots": _slot_css("  ", dark=False),
        "dark_slots": _slot_css("    ", dark=True),
    }
    palette = ",".join(light for light, _ in _PALETTE)
    return _PAGE % {
        "title": title,
        "subtitle": subtitle,
        "css": css,
        "palette": palette,
        "data": blob,
        "js": _JS,
    }


def write_dashboard(path: str, data: dict,
                    title: str = "repro run history") -> None:
    """Render and write the dashboard HTML to ``path``."""
    import os

    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_dashboard(data, title=title))

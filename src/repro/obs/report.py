"""Structured run reports: suite-wide stall attribution + compile profiles.

``build_suite_report`` compiles and runs benchmarks with pass-level
profiling, replays every trace with stall attribution on a set of
machines, and emits the whole run as JSONL events through a recorder —
the machine-readable report archived by CI (``results/run_report.jsonl``)
and validated by ``scripts/check_report_schema.py``.  The same data
renders as ASCII tables for the ``repro report`` / ``measure --profile``
CLI paths.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..analysis.tables import format_table
from ..machine.config import MachineConfig
from ..machine.presets import paper_machines
from ..opt.options import CompilerOptions
from ..sim.timing import TimingResult, simulate
from .profile import CompileProfile
from .recorder import SCHEMA_VERSION, Recorder, active_recorder
from .stalls import STALL_CAUSES
from .trace import Tracer, active_tracer, emit_span_events

#: Table headers shared by every stall-breakdown rendering.
_STALL_HEADERS = ["machine", "base cycles", "instr/cycle", "raw_dep",
                  "memory_order", "unit_conflict", "issue_width",
                  "control", "issued", "minor cycles"]

_PROFILE_HEADERS = ["pass", "ms", "instrs in", "instrs out", "delta",
                    "blocks"]


def default_report_machines() -> list[MachineConfig]:
    """The standard machine set a run report measures against (the
    paper's seven machines, shared with :mod:`repro.machine.presets`)."""
    return paper_machines()


def stall_row(timing: TimingResult) -> list[object]:
    """One stall-table row for an observed :class:`TimingResult`."""
    s = timing.stalls
    if s is None:
        raise ValueError(
            f"{timing.config_name}: no stall breakdown; run "
            "simulate(..., observe=True)"
        )
    return [
        timing.config_name, timing.base_cycles, timing.parallelism,
        s.raw_dep, s.memory_order, s.unit_conflict, s.issue_width,
        s.control, s.issued_cycles, timing.minor_cycles,
    ]


def render_stall_table(
    timings: list[TimingResult], title: str | None = None
) -> str:
    """Render observed timings as a stall-attribution table."""
    return format_table(
        _STALL_HEADERS, [stall_row(t) for t in timings], title=title
    )


def render_profile_table(
    profile: CompileProfile, title: str | None = None
) -> str:
    """Render a compile profile as a per-pass table."""
    text = format_table(_PROFILE_HEADERS, profile.as_rows(), title=title)
    if profile.sched is not None:
        sched = profile.sched
        text += (
            f"\nscheduler: {sched.blocks_scheduled}/{sched.blocks_seen} "
            f"blocks scheduled, {sched.instructions} instructions, "
            f"{sched.seconds * 1e3:.1f} ms"
        )
    return text


@dataclass(slots=True)
class BenchmarkReport:
    """Everything observed about one benchmark in one run."""

    benchmark: str
    checksum_ok: bool
    instructions: int
    profile: CompileProfile
    timings: list[TimingResult]

    def render(self) -> str:
        parts = [
            f"== {self.benchmark} — {self.instructions} dynamic "
            f"instructions, checksum "
            f"{'ok' if self.checksum_ok else 'MISMATCH'} =="
        ]
        parts.append(render_profile_table(
            self.profile, title="compile profile"
        ))
        parts.append(render_stall_table(
            self.timings, title="stall attribution (minor cycles)"
        ))
        memo_line = self.replay_summary()
        if memo_line:
            parts.append(memo_line)
        return "\n\n".join(parts)

    def replay_summary(self) -> str:
        """One-line replay-memo roll-up over this benchmark's timings
        (empty when no timing carried replay statistics)."""
        hits = misses = fallbacks = memoized = total = 0
        seen = False
        for t in self.timings:
            s = t.replay
            if s is None:
                continue
            seen = True
            hits += s.memo_hits
            misses += s.memo_misses
            fallbacks += s.fallbacks
            memoized += s.memo_instructions
            total += s.memo_instructions + s.direct_instructions
        if not seen:
            return ""
        frac = memoized / total if total else 0.0
        return (
            f"replay memo ({len(self.timings)} machines): "
            f"{hits} hits / {misses} misses / {fallbacks} fallbacks, "
            f"{frac:.0%} of instructions memoized"
        )


def _markdown_table(headers: list[str], rows: list[list]) -> str:
    """Render a GitHub-flavored markdown table."""
    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join(" --- " for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(fmt(v) for v in row) + " |")
    return "\n".join(lines)


@dataclass(slots=True)
class RunReport:
    """A full observed run over the benchmark suite."""

    run_id: str
    seconds: float
    benchmarks: list[BenchmarkReport]

    def render(self) -> str:
        parts = [br.render() for br in self.benchmarks]
        parts.append(
            f"run '{self.run_id}': {len(self.benchmarks)} benchmarks in "
            f"{self.seconds:.2f}s"
        )
        return "\n\n".join(parts)

    def as_dict(self) -> dict:
        """The whole report as one JSON-serializable dict
        (``repro report --format json``)."""
        return {
            "run_id": self.run_id,
            "seconds": self.seconds,
            "conservation_holds": self.conservation_holds(),
            "benchmarks": [
                {
                    "benchmark": br.benchmark,
                    "checksum_ok": br.checksum_ok,
                    "instructions": br.instructions,
                    "compile_seconds": br.profile.total_seconds(),
                    "passes": [s.as_dict() for s in br.profile.passes],
                    "timings": [t.as_dict() for t in br.timings],
                }
                for br in self.benchmarks
            ],
        }

    def render_markdown(self) -> str:
        """The report as GitHub-flavored markdown — pasteable into a PR
        (``repro report --format markdown``)."""
        parts = [f"## run `{self.run_id}` — "
                 f"{len(self.benchmarks)} benchmarks, "
                 f"{self.seconds:.2f}s"]
        for br in self.benchmarks:
            checksum = "ok" if br.checksum_ok else "**MISMATCH**"
            parts.append(
                f"### {br.benchmark}\n\n"
                f"{br.instructions} dynamic instructions, "
                f"checksum {checksum}, compiled in "
                f"{br.profile.total_seconds() * 1e3:.1f} ms"
            )
            parts.append(_markdown_table(
                _STALL_HEADERS, [stall_row(t) for t in br.timings]
            ))
            memo_line = br.replay_summary()
            if memo_line:
                parts.append(memo_line)
        return "\n\n".join(parts)

    def conservation_holds(self) -> bool:
        """True iff every breakdown satisfies issued+stalled==minor."""
        return all(
            t.stalls is not None
            and t.stalls.stalled + t.stalls.issued_cycles == t.minor_cycles
            for br in self.benchmarks
            for t in br.timings
        )


def emit_compile_events(
    recorder: Recorder, benchmark: str, profile: CompileProfile
) -> None:
    """Emit one ``compile_pass`` event per pass plus a ``compile`` roll-up."""
    for stat in profile.passes:
        recorder.emit("compile_pass", benchmark=benchmark,
                      **stat.as_dict())
    recorder.emit(
        "compile",
        benchmark=benchmark,
        seconds=profile.total_seconds(),
        n_passes=len(profile.passes),
        sched=profile.sched.as_dict() if profile.sched else None,
    )


def observe_benchmark(
    bench,
    machines: list[MachineConfig],
    options: CompilerOptions | None = None,
    recorder: Recorder | None = None,
    tracer: Tracer | None = None,
) -> BenchmarkReport:
    """Compile, run, and measure one benchmark with full observability.

    ``tracer`` (optional) receives one ``observe`` span per benchmark
    with nested ``compile.run``/``simulate`` children.
    """
    from ..benchmarks import suite
    from ..sim.interp import run as interp_run
    from ..opt.driver import compile_source

    rec = active_recorder(recorder)
    tr = active_tracer(tracer)
    if isinstance(bench, str):
        bench = suite.get(bench)
    opts = options or suite.default_options(bench)
    profile = CompileProfile()
    with tr.span("observe", cat="report", benchmark=bench.name):
        with tr.span("compile.run", cat="compile", benchmark=bench.name):
            program = compile_source(bench.source(), opts, profile)
        emit_compile_events(rec, bench.name, profile)

        result = interp_run(program)
        ok = abs(result.value - bench.reference()) <= bench.fp_tolerance
        timings = []
        for config in machines:
            with tr.span("simulate", cat="sim", benchmark=bench.name,
                         machine=config.name):
                timing = simulate(result.trace, config, observe=True)
            timings.append(timing)
            rec.emit("timing", benchmark=bench.name, **timing.as_dict())
            rec.incr("timings")
        rec.incr("benchmarks")
    return BenchmarkReport(
        benchmark=bench.name,
        checksum_ok=ok,
        instructions=result.instructions,
        profile=profile,
        timings=timings,
    )


def _observe_task(payload: tuple) -> "BenchmarkReport":
    """Pool entry point: observe one benchmark without a recorder.

    Compile profiling measures real wall time, so reports always compile
    fresh (no trace cache); the worker returns the picklable
    :class:`BenchmarkReport` and the parent re-emits its events.
    """
    bench_name, machines = payload
    return observe_benchmark(bench_name, machines)


def _emit_benchmark_events(rec: Recorder, report: "BenchmarkReport") -> None:
    """Re-emit one worker-produced benchmark report as recorder events,
    mirroring what :func:`observe_benchmark` emits when run inline."""
    emit_compile_events(rec, report.benchmark, report.profile)
    for timing in report.timings:
        rec.emit("timing", benchmark=report.benchmark, **timing.as_dict())
        rec.incr("timings")
    rec.incr("benchmarks")


def build_suite_report(
    benchmarks: list | None = None,
    machines: list[MachineConfig] | None = None,
    recorder: Recorder | None = None,
    run_id: str = "suite",
    workers: int = 1,
    tracer: Tracer | None = None,
    flow=None,
) -> RunReport:
    """Observe the whole suite (or a subset) and return the run report.

    All events stream through ``recorder`` as the run progresses, so a
    :class:`~repro.obs.recorder.JsonlRecorder` yields a complete JSONL
    report even if rendering is never requested.  With ``workers>1``
    benchmarks are observed in parallel processes; workers return
    picklable :class:`BenchmarkReport` payloads and the parent emits
    their events in suite order, so the JSONL content matches the serial
    run.  A worker failure (crashed process, broken pool) degrades that
    benchmark to an in-process rerun instead of aborting the report.

    ``tracer`` collects the run's span timeline; when ``None`` one is
    created automatically iff a recorder is active, and its spans are
    emitted as ``span`` events just before ``run_end``.

    ``flow`` (a :class:`~repro.flow.flows.FlowContext`) routes the run
    through the checkpointed workflow DAG: each benchmark's observation
    becomes a journaled, resumable node and the parent re-emits events
    in suite order, so a resumed report is bit-identical to an
    uninterrupted one.  Requires an enabled cache.
    """
    from ..benchmarks import suite

    rec = active_recorder(recorder)
    # Like the engine: tracing is on whenever a recorder is (the JSONL
    # report then carries the span timeline), opt-out via NULL_TRACER.
    tr = tracer if tracer is not None else (
        Tracer() if rec.enabled else active_tracer(None))
    configs = (list(machines) if machines is not None
               else default_report_machines())
    benchs = benchmarks if benchmarks is not None else suite.all_benchmarks()
    rec.emit("run_start", schema=SCHEMA_VERSION, run_id=run_id,
             machines=[c.name for c in configs],
             stall_causes=list(STALL_CAUSES))
    start = time.perf_counter()
    with tr.span("report.run", cat="report", run_id=run_id,
                 benchmarks=len(benchs)):
        if flow is not None:
            reports = _observe_flow(benchs, configs, rec, tr,
                                    workers=workers, flow=flow)
        elif workers <= 1 or len(benchs) <= 1:
            reports = [
                observe_benchmark(bench, configs, recorder=rec, tracer=tr)
                for bench in benchs
            ]
        else:
            names = [b if isinstance(b, str) else b.name for b in benchs]
            with tr.span("observe.parallel", cat="report",
                         workers=workers):
                worker_reports = _observe_parallel(names, configs, workers)
            reports = []
            for name, report in zip(names, worker_reports):
                if report is None:
                    # Worker lost to a crash or broken pool: degrade to
                    # an in-process rerun so the report still covers the
                    # suite.
                    report = observe_benchmark(name, configs, tracer=tr)
                _emit_benchmark_events(rec, report)
                reports.append(report)
    seconds = time.perf_counter() - start
    emit_span_events(rec, tr)
    rec.emit("run_end", seconds=seconds, counters=dict(rec.counters))
    return RunReport(run_id=run_id, seconds=seconds, benchmarks=reports)


def _observe_parallel(
    names: list[str], configs: list[MachineConfig], workers: int
) -> list["BenchmarkReport | None"]:
    """Observe benchmarks across a pool; ``None`` marks lost workers.

    One crashed worker breaks a whole :class:`ProcessPoolExecutor`, so
    each benchmark gets its own future and failures are recorded per
    benchmark rather than letting ``pool.map`` raise away every result.
    """
    from concurrent.futures import BrokenExecutor, ProcessPoolExecutor

    results: list["BenchmarkReport | None"] = [None] * len(names)
    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(_observe_task, (name, configs))
                for name in names
            ]
            for i, future in enumerate(futures):
                try:
                    results[i] = future.result()
                except (BrokenExecutor, OSError):
                    continue  # degraded serially by the caller
    except BrokenExecutor:
        pass
    return results


def _observe_flow(
    benchs, configs: list[MachineConfig], rec: Recorder, tr: Tracer,
    *, workers: int, flow,
) -> list["BenchmarkReport"]:
    """Observe benchmarks as checkpointed flow nodes (see
    :mod:`repro.flow`); events re-emit in suite order like the
    parallel path, so the JSONL report matches the serial run."""
    from ..flow.engine import run_flow
    from ..flow.flows import REPORT_RUNNERS, _require_cache, report_flow

    cache = _require_cache(flow)
    names = [b if isinstance(b, str) else b.name for b in benchs]
    dag = report_flow(names, configs, cache.root)
    fr = run_flow(
        dag, REPORT_RUNNERS,
        root=cache.root,
        flow_kind="report",
        flow_spec=flow.flow_spec,
        run_id=flow.run_id,
        workers=workers,
        policy=flow.policy,
        faults=flow.faults,
        tracer=tr,
        kill_action=flow.kill_action,
    )
    flow.result = fr
    reports = []
    for name in names:
        report = fr.values.get(f"observe:{name}")
        if report is None:
            # Node failed every rung of the ladder: degrade to an
            # in-process rerun so the report still covers the suite.
            report = observe_benchmark(name, configs, tracer=tr)
        _emit_benchmark_events(rec, report)
        reports.append(report)
    return reports

"""Observability: stall attribution, compile profiling, run reports.

The instrumentation layer threaded through the compile→schedule→simulate
pipeline:

* :mod:`repro.obs.stalls` — :class:`StallBreakdown`, the exact per-cause
  stall-cycle accounting produced by ``simulate(..., observe=True)``;
* :mod:`repro.obs.profile` — :class:`CompileProfile` /
  :class:`SchedStats`, pass-level wall-time and size deltas collected by
  the compile driver;
* :mod:`repro.obs.recorder` — counters and structured JSONL event
  emission (:class:`Recorder`, :class:`JsonlRecorder`,
  :data:`NULL_RECORDER`);
* :mod:`repro.obs.report` — machine-readable run reports over the
  benchmark suite and their ASCII rendering.

Everything here is opt-in: with no recorder/profile passed, the hot
paths run the exact same code as before this layer existed.
"""

from .profile import (
    NULL_PROFILE,
    CompileProfile,
    PassStat,
    SchedStats,
    program_size,
)
from .recorder import (
    EVENT_SCHEMA,
    NULL_RECORDER,
    SCHEMA_VERSION,
    JsonlRecorder,
    NullRecorder,
    Recorder,
    active_recorder,
    read_jsonl,
)
from .stalls import STALL_CAUSES, StallBreakdown

__all__ = [
    "EVENT_SCHEMA",
    "NULL_PROFILE",
    "NULL_RECORDER",
    "SCHEMA_VERSION",
    "STALL_CAUSES",
    "CompileProfile",
    "JsonlRecorder",
    "NullRecorder",
    "PassStat",
    "Recorder",
    "SchedStats",
    "StallBreakdown",
    "active_recorder",
    "program_size",
    "read_jsonl",
]

"""Observability: stall attribution, compile profiling, run reports.

The instrumentation layer threaded through the compile→schedule→simulate
pipeline:

* :mod:`repro.obs.stalls` — :class:`StallBreakdown`, the exact per-cause
  stall-cycle accounting produced by ``simulate(..., observe=True)``;
* :mod:`repro.obs.profile` — :class:`CompileProfile` /
  :class:`SchedStats`, pass-level wall-time and size deltas collected by
  the compile driver;
* :mod:`repro.obs.recorder` — counters and structured JSONL event
  emission (:class:`Recorder`, :class:`JsonlRecorder`,
  :data:`NULL_RECORDER`);
* :mod:`repro.obs.trace` — hierarchical span tracing with
  cross-process merge and Chrome trace-event (Perfetto) export
  (:class:`Tracer`, :data:`NULL_TRACER`, :func:`chrome_trace`);
* :mod:`repro.obs.metrics` — counters/gauges/fixed-bucket histograms
  with deterministic cross-process merge (:class:`MetricsRegistry`,
  :data:`NULL_METRICS`);
* :mod:`repro.obs.live` — the ``--live`` terminal progress line
  (:class:`ProgressLine`);
* :mod:`repro.obs.report` — machine-readable run reports over the
  benchmark suite and their ASCII rendering;
* :mod:`repro.obs.schema` — the one shared home of the run-report
  event schema and its validators (also loaded standalone by the CI
  scripts);
* :mod:`repro.obs.resource` — per-process RSS/CPU telemetry
  (:class:`ResourceSampler`);
* :mod:`repro.obs.history` — the content-addressed run-history ledger
  (:class:`HistoryLedger`);
* :mod:`repro.obs.diff` — cross-run regression diffing
  (:func:`diff_payloads`, :class:`DiffPolicy`);
* :mod:`repro.obs.dash` — the self-contained static HTML dashboard
  (:func:`write_dashboard`).

Everything here is opt-in: with no recorder/profile passed, the hot
paths run the exact same code as before this layer existed.
"""

from .dash import render_dashboard, write_dashboard
from .diff import DiffEntry, DiffPolicy, DiffResult, diff_payloads
from .history import (
    DEFAULT_LEDGER_PATH,
    HistoryLedger,
    IngestResult,
    LedgerError,
    default_ledger_path,
    fingerprint_payload,
    payload_from_bench,
    payload_from_events,
)
from .live import ProgressLine
from .metrics import (
    NULL_METRICS,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    active_metrics,
)
from .profile import (
    NULL_PROFILE,
    CompileProfile,
    PassStat,
    SchedStats,
    program_size,
)
from .recorder import (
    EVENT_SCHEMA,
    NULL_RECORDER,
    SCHEMA_VERSION,
    JsonlRecorder,
    NullRecorder,
    Recorder,
    active_recorder,
    read_jsonl,
    read_jsonl_tolerant,
)
from .resource import ResourceSampler, cpu_seconds, max_rss_mb, rss_mb
from .stalls import STALL_CAUSES, StallBreakdown
from .trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    active_tracer,
    chrome_trace,
    emit_span_events,
    profile_tree,
    spans_from_events,
    write_chrome_trace,
)

__all__ = [
    "DEFAULT_LEDGER_PATH",
    "EVENT_SCHEMA",
    "NULL_METRICS",
    "NULL_PROFILE",
    "NULL_RECORDER",
    "NULL_TRACER",
    "SCHEMA_VERSION",
    "STALL_CAUSES",
    "CompileProfile",
    "DiffEntry",
    "DiffPolicy",
    "DiffResult",
    "Histogram",
    "HistoryLedger",
    "IngestResult",
    "JsonlRecorder",
    "LedgerError",
    "MetricsRegistry",
    "NullMetrics",
    "NullRecorder",
    "NullTracer",
    "PassStat",
    "ProgressLine",
    "Recorder",
    "ResourceSampler",
    "SchedStats",
    "Span",
    "StallBreakdown",
    "Tracer",
    "active_metrics",
    "active_recorder",
    "active_tracer",
    "chrome_trace",
    "cpu_seconds",
    "default_ledger_path",
    "diff_payloads",
    "emit_span_events",
    "fingerprint_payload",
    "max_rss_mb",
    "payload_from_bench",
    "payload_from_events",
    "profile_tree",
    "program_size",
    "read_jsonl",
    "read_jsonl_tolerant",
    "render_dashboard",
    "rss_mb",
    "spans_from_events",
    "write_chrome_trace",
]

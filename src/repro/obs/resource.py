"""Per-process resource telemetry: RSS and CPU-time gauges.

A :class:`ResourceSampler` is a daemon thread that periodically samples
the current process's resident-set size and cumulative CPU time and
records them as gauges in a :class:`~repro.obs.metrics.MetricsRegistry`
under the process's trace track (``main`` for the parent,
``worker-<pid>`` for pool workers).  The engine starts one in the parent
and one inside each worker when ``sample_resources`` is requested; the
worker's gauges ride home on the existing span/metrics side-channel, so
no new IPC is introduced.

Sampling is strictly opt-in: gauge values (and worker PIDs embedded in
track names) are nondeterministic, and the default engine path promises
bit-identical metrics across identical runs.

Everything here is stdlib-only.  RSS comes from ``/proc/self/status``
(``VmRSS``) where available, falling back to
``resource.getrusage().ru_maxrss`` (which is a peak, not a current
value — good enough for a ceiling check, and the only portable option).
"""

from __future__ import annotations

import os
import threading
from typing import Optional

try:  # pragma: no cover - always present on POSIX
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX fallback
    _resource = None

__all__ = [
    "rss_mb",
    "max_rss_mb",
    "cpu_seconds",
    "ResourceSampler",
]

_PROC_STATUS = "/proc/self/status"


def rss_mb() -> float:
    """Current resident-set size in MiB (best effort, 0.0 if unknown)."""
    try:
        with open(_PROC_STATUS, encoding="ascii", errors="replace") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    parts = line.split()
                    if len(parts) >= 2 and parts[1].isdigit():
                        return int(parts[1]) / 1024.0
    except OSError:
        pass
    return max_rss_mb()


def max_rss_mb() -> float:
    """Peak resident-set size in MiB (0.0 if the platform can't say)."""
    if _resource is None:
        return 0.0
    peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB; macOS reports bytes.
    if os.uname().sysname == "Darwin":  # pragma: no cover
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


def cpu_seconds() -> float:
    """Cumulative user+system CPU seconds for this process."""
    times = os.times()
    return times.user + times.system


class ResourceSampler:
    """Background thread sampling RSS / CPU-time into a metrics registry.

    Gauges recorded (``track`` interpolated, e.g. ``worker-1234``):

    * ``resource.<track>.rss_mb`` — last sampled resident set (MiB)
    * ``resource.<track>.rss_peak_mb`` — maximum sampled resident set
    * ``resource.<track>.cpu_seconds`` — cumulative CPU time at the last
      sample
    * ``resource.<track>.samples`` — number of samples taken

    Use as a context manager, or call :meth:`start` / :meth:`stop`.
    :meth:`stop` takes one final sample so short-lived processes still
    report, then returns a plain-dict summary suitable for a
    ``resource`` report event.
    """

    def __init__(self, metrics, track: str, interval: float = 0.05) -> None:
        self._metrics = metrics
        self.track = track
        self.interval = max(float(interval), 0.001)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._samples = 0
        self._rss = 0.0
        self._peak = 0.0
        self._cpu = 0.0
        self._lock = threading.Lock()

    def _sample(self) -> None:
        rss = rss_mb()
        cpu = cpu_seconds()
        with self._lock:
            self._samples += 1
            self._rss = rss
            self._peak = max(self._peak, rss)
            self._cpu = cpu
            prefix = f"resource.{self.track}."
            self._metrics.gauge(prefix + "rss_mb", rss)
            self._metrics.gauge(prefix + "rss_peak_mb", self._peak)
            self._metrics.gauge(prefix + "cpu_seconds", cpu)
            self._metrics.gauge(prefix + "samples", self._samples)

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self._sample()

    def start(self) -> "ResourceSampler":
        if self._thread is None:
            self._sample()
            self._thread = threading.Thread(
                target=self._run, name=f"resource-sampler-{self.track}",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> dict:
        """Stop sampling, take a final sample, return the summary dict."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None
        self._sample()
        return self.summary()

    def summary(self) -> dict:
        """Snapshot summary shaped like a ``resource`` report event body."""
        with self._lock:
            return {
                "track": self.track,
                "rss_mb": round(self._rss, 3),
                "rss_peak_mb": round(self._peak, 3),
                "cpu_seconds": round(self._cpu, 6),
                "samples": self._samples,
            }

    def __enter__(self) -> "ResourceSampler":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

"""Counters and structured-event recording.

One tiny abstraction serves every layer of the pipeline: a
:class:`Recorder` accumulates named counters and emits structured events;
:class:`JsonlRecorder` additionally streams each event as one JSON line,
which is the machine-readable "run report" format consumed by
``scripts/check_report_schema.py`` and archived by CI.

The :data:`NULL_RECORDER` singleton is a no-op sink: code takes a
recorder parameter defaulting to ``None`` and calls
:func:`active_recorder` (or checks ``recorder.enabled``) so the disabled
path costs one attribute test, nothing more.

Event schema (version :data:`SCHEMA_VERSION`) — every event is a flat
JSON object with a required string field ``"event"``; the known event
types and their required fields are listed in
:data:`~repro.obs.recorder.EVENT_SCHEMA` and documented in
``docs/observability.md``.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from typing import IO, Iterator

# The event schema lives in repro.obs.schema (one shared module for the
# emitters here and the standalone validators in scripts/); re-exported
# so existing imports keep working.
from .schema import EVENT_SCHEMA, SCHEMA_VERSION

__all__ = [
    "EVENT_SCHEMA",
    "SCHEMA_VERSION",
    "Recorder",
    "NullRecorder",
    "NULL_RECORDER",
    "JsonlRecorder",
    "active_recorder",
    "read_jsonl",
    "read_jsonl_tolerant",
]


class Recorder:
    """In-memory counters plus an ordered event log."""

    __slots__ = ("counters", "events")

    enabled = True

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.events: list[dict] = []

    def incr(self, name: str, value: float = 1) -> None:
        """Add ``value`` to counter ``name`` (creating it at zero)."""
        self.counters[name] = self.counters.get(name, 0) + value

    def emit(self, event: str, /, **fields) -> None:
        """Record one structured event."""
        record = {"event": event, **fields}
        self.events.append(record)
        self._write(record)

    def _write(self, record: dict) -> None:  # overridden by JsonlRecorder
        pass

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Time a block; accumulates into counter ``<name>.seconds``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.incr(f"{name}.seconds", time.perf_counter() - start)

    def events_named(self, event: str) -> list[dict]:
        """All recorded events of one type, in order."""
        return [e for e in self.events if e["event"] == event]

    # Recorders are usable as context managers; only JsonlRecorder has
    # anything to release on exit.
    def close(self) -> None:
        pass

    def __enter__(self) -> "Recorder":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class NullRecorder(Recorder):
    """A recorder that records nothing (the zero-overhead default)."""

    __slots__ = ()

    enabled = False

    def incr(self, name: str, value: float = 1) -> None:
        pass

    def emit(self, event: str, /, **fields) -> None:
        pass

    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        yield


#: Shared no-op sink; safe to pass anywhere a recorder is expected.
NULL_RECORDER = NullRecorder()


def active_recorder(recorder: Recorder | None) -> Recorder:
    """Normalize an optional recorder argument to a usable sink."""
    return recorder if recorder is not None else NULL_RECORDER


class JsonlRecorder(Recorder):
    """A recorder that also streams every event as one JSON line.

    Safe under concurrent writers: each event is serialized to one
    complete line first and handed to the file object in a *single*
    ``write()`` call under a lock, so threads can never interleave or
    tear lines (``flush()``/``close()`` take the same lock).

    Usable as a context manager::

        with JsonlRecorder("results/run_report.jsonl") as rec:
            rec.emit("run_start", schema=SCHEMA_VERSION, run_id="suite")
    """

    __slots__ = ("path", "_handle", "_lock")

    def __init__(self, path: str) -> None:
        super().__init__()
        self.path = path
        self._handle: IO[str] | None = open(path, "w", encoding="utf-8")
        self._lock = threading.Lock()

    def _write(self, record: dict) -> None:
        # Serialize outside the lock; emit as one atomic write() so a
        # concurrent writer can never interleave inside a line.
        line = json.dumps(record, separators=(",", ":"),
                          sort_keys=True, default=str) + "\n"
        with self._lock:
            if self._handle is None:
                raise ValueError(f"recorder for {self.path!r} is closed")
            self._handle.write(line)

    def flush(self) -> None:
        """Flush buffered lines to the OS (no-op when closed)."""
        with self._lock:
            if self._handle is not None:
                self._handle.flush()

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


def read_jsonl(path: str) -> list[dict]:
    """Load a JSONL run report back into a list of event dicts."""
    events = []
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: invalid JSON: {exc}")
            if not isinstance(record, dict) or "event" not in record:
                raise ValueError(
                    f"{path}:{lineno}: every line must be an object "
                    "with an 'event' field"
                )
            events.append(record)
    return events


def read_jsonl_tolerant(path: str) -> tuple[list[dict], int]:
    """Load a JSONL report, skipping malformed lines instead of raising.

    A report written by an interrupted run typically ends in one torn
    (half-written) line; CLI readers (``repro trace``,
    ``repro report --input``) must degrade gracefully rather than
    stack-trace.  Returns ``(events, skipped)`` where ``skipped`` counts
    the undecodable or structurally invalid lines that were dropped.
    """
    events: list[dict] = []
    skipped = 0
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                skipped += 1
                continue
            if not isinstance(record, dict) or "event" not in record:
                skipped += 1
                continue
            events.append(record)
    return events, skipped

"""Live run progress: a single self-updating terminal status line.

The engine invokes a progress callback as each compile group finishes;
:class:`ProgressLine` renders those callbacks as one ``\\r``-rewritten
line on stderr::

    cells 12/56 | 10 ok 1 retried 0 degraded 1 failed | 4.1M instr/s

Throughput is *instantaneous*: dynamic instructions completed since the
previous repaint divided by the time since it, so a stall (a hung group,
a backoff storm) is visible as the rate collapsing rather than being
averaged away.  Updates are throttled to one repaint per
``min_interval`` seconds; :meth:`finish` always paints the final state
and terminates the line.

Carriage-return animation only makes sense on a terminal: when the
stream is **not a TTY** (CI logs, ``2>file`` redirection) the line is
not animated at all — nothing is written until :meth:`finish`, which
emits one plain newline-terminated summary, so logs stay greppable and
free of control characters.

On the error path the line must get out of the way: :meth:`clear`
erases a painted line so a traceback is not spliced into it, and using
the instance as a context manager does that automatically (clears on
exception or :class:`KeyboardInterrupt`, finishes on clean exit).
"""

from __future__ import annotations

import sys
import time

__all__ = ["ProgressLine"]


class ProgressLine:
    """Terminal progress reporting for an engine run.

    Usable directly as the engine's ``progress`` callback: it is called
    with ``(cells_done, status_counts, instructions_done)`` deltas via
    :meth:`update` each time a compile group completes.  ``force_tty``
    overrides stream detection (tests, or piping to something that
    renders control characters).
    """

    #: Width every repaint pads to, so shorter lines fully overwrite
    #: longer earlier ones.
    WIDTH = 79

    def __init__(self, total_cells: int, stream=None,
                 min_interval: float = 0.1,
                 force_tty: bool | None = None) -> None:
        self.total = total_cells
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        if force_tty is not None:
            self.animate = force_tty
        else:
            isatty = getattr(self.stream, "isatty", None)
            try:
                self.animate = bool(isatty()) if callable(isatty) else False
            except (OSError, ValueError):
                self.animate = False
        self.done = 0
        self.instructions = 0
        self.counts = {"ok": 0, "retried": 0, "degraded": 0, "failed": 0}
        self._start = time.monotonic()
        self._last_paint = 0.0
        self._last_instr = 0
        self._rate = 0.0
        self._painted = False
        self._finished = False

    def update(self, cells: int, status: str, instructions: int) -> None:
        """Record one finished compile group (``cells`` cells, all with
        the same supervision ``status``) and maybe repaint."""
        self.done += cells
        self.instructions += instructions
        if status in self.counts:
            self.counts[status] += cells
        self._paint()

    def _render(self) -> str:
        c = self.counts
        return (
            f"cells {self.done}/{self.total} | "
            f"{c['ok']} ok {c['retried']} retried "
            f"{c['degraded']} degraded {c['failed']} failed | "
            f"{self._format_rate(self._rate)} instr/s"
        )

    def _update_rate(self) -> None:
        now = time.monotonic()
        window = now - (self._last_paint or self._start)
        if window > 0:
            self._rate = (self.instructions - self._last_instr) / window
        self._last_paint = now
        self._last_instr = self.instructions

    def _paint(self, force: bool = False) -> None:
        if not self.animate:
            # Non-TTY: stay silent; finish() emits the one summary line.
            self._update_rate()
            return
        now = time.monotonic()
        if not force and now - self._last_paint < self.min_interval:
            return
        self._update_rate()
        self.stream.write(f"\r{self._render():<{self.WIDTH}s}")
        self.stream.flush()
        self._painted = True

    @staticmethod
    def _format_rate(rate: float) -> str:
        if rate >= 1e6:
            return f"{rate / 1e6:.1f}M"
        if rate >= 1e3:
            return f"{rate / 1e3:.1f}k"
        return f"{rate:.0f}"

    def clear(self) -> None:
        """Erase a painted line so following output starts on a clean
        column (no-op when nothing was painted — non-TTY included)."""
        if self._painted:
            self.stream.write(f"\r{'':<{self.WIDTH}s}\r")
            self.stream.flush()
            self._painted = False

    def finish(self) -> None:
        """Paint the final state and terminate the line (idempotent).

        On a TTY this repaints in place and appends the newline; on a
        non-TTY stream it writes the summary once, as one plain line.
        """
        if self._finished:
            return
        self._finished = True
        if self.animate:
            self._paint(force=True)
            if self._painted:
                self.stream.write("\n")
                self.stream.flush()
            return
        self._update_rate()
        self.stream.write(self._render() + "\n")
        self.stream.flush()

    def __enter__(self) -> "ProgressLine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # A traceback about to print must not land mid-line; a clean
        # exit gets the final summary instead.
        if exc_type is not None:
            self.clear()
        else:
            self.finish()

"""Live run progress: a single self-updating terminal status line.

The engine invokes a progress callback as each compile group finishes;
:class:`ProgressLine` renders those callbacks as one ``\\r``-rewritten
line on stderr::

    cells 12/56 | 10 ok 1 retried 0 degraded 1 failed | 4.1M instr/s

Throughput is *instantaneous*: dynamic instructions completed since the
previous repaint divided by the time since it, so a stall (a hung group,
a backoff storm) is visible as the rate collapsing rather than being
averaged away.  Updates are throttled to one repaint per
``min_interval`` seconds; :meth:`finish` always paints the final state
and terminates the line.
"""

from __future__ import annotations

import sys
import time

__all__ = ["ProgressLine"]


class ProgressLine:
    """Terminal progress reporting for an engine run.

    Usable directly as the engine's ``progress`` callback: it is called
    with ``(cells_done, status_counts, instructions_done)`` deltas via
    :meth:`update` each time a compile group completes.
    """

    def __init__(self, total_cells: int, stream=None,
                 min_interval: float = 0.1) -> None:
        self.total = total_cells
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self.done = 0
        self.instructions = 0
        self.counts = {"ok": 0, "retried": 0, "degraded": 0, "failed": 0}
        self._start = time.monotonic()
        self._last_paint = 0.0
        self._last_instr = 0
        self._rate = 0.0
        self._painted = False

    def update(self, cells: int, status: str, instructions: int) -> None:
        """Record one finished compile group (``cells`` cells, all with
        the same supervision ``status``) and maybe repaint."""
        self.done += cells
        self.instructions += instructions
        if status in self.counts:
            self.counts[status] += cells
        self._paint()

    def _paint(self, force: bool = False) -> None:
        now = time.monotonic()
        if not force and now - self._last_paint < self.min_interval:
            return
        window = now - (self._last_paint or self._start)
        if window > 0:
            self._rate = (self.instructions - self._last_instr) / window
        self._last_paint = now
        self._last_instr = self.instructions
        c = self.counts
        line = (
            f"\rcells {self.done}/{self.total} | "
            f"{c['ok']} ok {c['retried']} retried "
            f"{c['degraded']} degraded {c['failed']} failed | "
            f"{self._format_rate(self._rate)} instr/s"
        )
        self.stream.write(f"{line:<79s}")
        self.stream.flush()
        self._painted = True

    @staticmethod
    def _format_rate(rate: float) -> str:
        if rate >= 1e6:
            return f"{rate / 1e6:.1f}M"
        if rate >= 1e3:
            return f"{rate / 1e3:.1f}k"
        return f"{rate:.0f}"

    def finish(self) -> None:
        """Paint the final state and terminate the line."""
        self._paint(force=True)
        if self._painted:
            self.stream.write("\n")
            self.stream.flush()

"""Pass-level compile profiling.

A :class:`CompileProfile` is threaded through
:func:`repro.opt.driver.compile_module`: every phase of the pipeline is
timed and sized (instruction/block counts before and after), so a run
report can show what each pass did to the program and what it cost.
:data:`NULL_PROFILE` is the disabled no-op — the driver always calls the
same ``profile.measure(...)`` API and pays nothing when profiling is off.

The scheduler additionally reports per-block counts through
:class:`SchedStats` (blocks visited vs. actually scheduled), attached to
the profile by the driver.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator


def program_size(program) -> tuple[int, int]:
    """(instructions, basic blocks) of a :class:`~repro.isa.Program`."""
    instrs = 0
    blocks = 0
    for fn in program.functions.values():
        for block in fn.blocks:
            blocks += 1
            instrs += len(block.instrs)
    return instrs, blocks


@dataclass(slots=True)
class PassStat:
    """One pipeline phase: wall time and program size before/after.

    Size fields are -1 for phases that run before code generation (there
    is no instruction stream to count yet).
    """

    name: str
    seconds: float
    instrs_before: int = -1
    instrs_after: int = -1
    blocks_before: int = -1
    blocks_after: int = -1

    @property
    def instr_delta(self) -> int:
        """Instructions added (positive) or removed (negative)."""
        if self.instrs_before < 0 or self.instrs_after < 0:
            return 0
        return self.instrs_after - self.instrs_before

    def as_dict(self) -> dict:
        return {
            "pass": self.name,
            "seconds": self.seconds,
            "instrs_before": self.instrs_before,
            "instrs_after": self.instrs_after,
            "blocks_before": self.blocks_before,
            "blocks_after": self.blocks_after,
        }


@dataclass(slots=True)
class SchedStats:
    """List-scheduler activity across one compilation."""

    blocks_seen: int = 0
    blocks_scheduled: int = 0
    instructions: int = 0
    seconds: float = 0.0

    def as_dict(self) -> dict:
        return {
            "blocks_seen": self.blocks_seen,
            "blocks_scheduled": self.blocks_scheduled,
            "instructions": self.instructions,
            "seconds": self.seconds,
        }


class CompileProfile:
    """Ordered pass statistics for one compilation."""

    __slots__ = ("passes", "sched")

    enabled = True

    def __init__(self) -> None:
        self.passes: list[PassStat] = []
        self.sched: SchedStats | None = None

    @contextmanager
    def measure(self, name: str, program=None) -> Iterator[None]:
        """Time one phase; ``program`` (if given) is sized before/after."""
        if program is not None:
            instrs_before, blocks_before = program_size(program)
        else:
            instrs_before = blocks_before = -1
        start = time.perf_counter()
        try:
            yield
        finally:
            seconds = time.perf_counter() - start
            if program is not None:
                instrs_after, blocks_after = program_size(program)
            else:
                instrs_after = blocks_after = -1
            self.passes.append(PassStat(
                name=name,
                seconds=seconds,
                instrs_before=instrs_before,
                instrs_after=instrs_after,
                blocks_before=blocks_before,
                blocks_after=blocks_after,
            ))

    def total_seconds(self) -> float:
        """Wall time across every recorded pass."""
        return sum(p.seconds for p in self.passes)

    def as_rows(self) -> list[list[object]]:
        """Table rows: pass, ms, instrs before -> after, blocks."""
        rows: list[list[object]] = []
        for p in self.passes:
            rows.append([
                p.name,
                p.seconds * 1e3,
                "-" if p.instrs_before < 0 else p.instrs_before,
                "-" if p.instrs_after < 0 else p.instrs_after,
                "-" if p.instrs_before < 0 else f"{p.instr_delta:+d}",
                "-" if p.blocks_after < 0 else p.blocks_after,
            ])
        return rows

    def as_dict(self) -> dict:
        return {
            "n_passes": len(self.passes),
            "seconds": self.total_seconds(),
            "passes": [p.as_dict() for p in self.passes],
            "sched": self.sched.as_dict() if self.sched else None,
        }


class NullCompileProfile(CompileProfile):
    """Profile sink that measures nothing (the default path)."""

    __slots__ = ()

    enabled = False

    @contextmanager
    def measure(self, name: str, program=None) -> Iterator[None]:
        yield


#: Shared disabled profile; the driver uses it when none is supplied.
NULL_PROFILE = NullCompileProfile()

"""Hierarchical span tracing across the execution path.

A :class:`Tracer` records *spans* — named, timed intervals with
parent/child structure — through a context-manager API::

    tracer = Tracer()
    with tracer.span("engine.run", cat="engine", cells=56):
        with tracer.span("compile", cat="compile", benchmark="whet"):
            ...

Clocks are monotonic (:func:`time.monotonic_ns`, which is system-wide on
every platform we support), so spans recorded in *different processes on
the same machine* share one time base: engine workers buffer their spans
locally and ship them back piggybacked on the existing result payloads,
and :meth:`Tracer.merge` splices them into the parent's timeline with
re-namespaced span IDs — a complete cross-process trace without any new
IPC.

The merged run exports two ways:

* :func:`chrome_trace` — Chrome trace-event JSON (the ``traceEvents``
  format), loadable in `Perfetto <https://ui.perfetto.dev>`_ or
  ``chrome://tracing``, one row ("thread") per worker track;
* ``span`` events in the JSONL run report (see
  :mod:`repro.obs.recorder`), from which :func:`spans_from_events`
  rebuilds the tree for the ``repro trace`` self-profile CLI.

The disabled path is :data:`NULL_TRACER`: ``span()`` hands back one
shared no-op context manager, so instrumented code costs an attribute
lookup and a function call when tracing is off, nothing more.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "active_tracer",
    "chrome_trace",
    "emit_span_events",
    "profile_tree",
    "spans_from_events",
    "write_chrome_trace",
]

#: Track name of the supervising (parent) process.
MAIN_TRACK = "main"


@dataclass(slots=True)
class Span:
    """One named, timed interval in a run.

    ``start_ns`` is an absolute :func:`time.monotonic_ns` reading;
    ``dur_ns`` is ``-1`` while the span is still open.  ``track`` names
    the process the span was recorded in (``"main"`` or
    ``"worker-<pid>"``); ``args`` carries small JSON-safe annotations
    (benchmark, machine, attempt, ...).
    """

    name: str
    cat: str
    span_id: int
    parent_id: int | None
    start_ns: int
    dur_ns: int
    track: str
    args: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """Compact picklable/JSON-safe form (used to ship worker spans
        back on result payloads and to rebuild from JSONL events)."""
        return {
            "name": self.name, "cat": self.cat,
            "span_id": self.span_id, "parent_id": self.parent_id,
            "start_ns": self.start_ns, "dur_ns": self.dur_ns,
            "track": self.track, "args": self.args,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "Span":
        return cls(
            name=record["name"], cat=record.get("cat", "run"),
            span_id=record["span_id"],
            parent_id=record.get("parent_id"),
            start_ns=record.get("start_ns", 0),
            dur_ns=record.get("dur_ns", 0),
            track=record.get("track", MAIN_TRACK),
            args=dict(record.get("args") or {}),
        )


class _SpanHandle:
    """The context manager :meth:`Tracer.span` returns (one per call)."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc_info) -> None:
        self._tracer._close(self._span)


class _NullSpanHandle:
    """Shared no-op context manager for the disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_HANDLE = _NullSpanHandle()


class Tracer:
    """Records a tree of spans on one track (one per process).

    Not thread-safe by design: one tracer belongs to one thread of one
    process (engine workers each build their own and the parent merges).
    """

    __slots__ = ("spans", "track", "_stack", "_next_id", "_emitted")

    enabled = True

    def __init__(self, track: str | None = None) -> None:
        self.spans: list[Span] = []
        self.track = track if track is not None else MAIN_TRACK
        self._stack: list[int] = []   # indices into self.spans
        self._next_id = 0
        self._emitted = 0             # watermark for emit_span_events

    def span(self, name: str, cat: str = "run", **args) -> _SpanHandle:
        """Open a span; use as ``with tracer.span("compile"): ...``."""
        parent = (self.spans[self._stack[-1]].span_id
                  if self._stack else None)
        span = Span(
            name=name, cat=cat, span_id=self._next_id, parent_id=parent,
            start_ns=time.monotonic_ns(), dur_ns=-1, track=self.track,
            args=args,
        )
        self._next_id += 1
        self._stack.append(len(self.spans))
        self.spans.append(span)
        return _SpanHandle(self, span)

    def _close(self, span: Span) -> None:
        span.dur_ns = time.monotonic_ns() - span.start_ns
        # Close any abandoned children too (exception unwinding).
        while self._stack and self.spans[self._stack[-1]] is not span:
            self._stack.pop()
        if self._stack:
            self._stack.pop()

    def record(self, name: str, cat: str, start_ns: int, dur_ns: int,
               **args) -> Span:
        """Add a retroactive span (e.g. a backoff wait measured after the
        fact).  Parented under the currently open span, if any."""
        parent = (self.spans[self._stack[-1]].span_id
                  if self._stack else None)
        span = Span(
            name=name, cat=cat, span_id=self._next_id, parent_id=parent,
            start_ns=start_ns, dur_ns=max(0, dur_ns), track=self.track,
            args=args,
        )
        self._next_id += 1
        self.spans.append(span)
        return span

    def current_id(self) -> int | None:
        """Span ID of the innermost open span (None at top level)."""
        return (self.spans[self._stack[-1]].span_id
                if self._stack else None)

    def export(self) -> list[dict]:
        """All spans as compact dicts (the cross-process wire format)."""
        return [s.as_dict() for s in self.spans]

    def merge(self, records: list[dict],
              parent_id: int | None = None) -> None:
        """Splice another process's exported spans into this tracer.

        Span IDs are re-namespaced by a constant offset so they cannot
        collide with local IDs; root spans of the merged batch (those
        without a parent) are attached under ``parent_id`` so the
        profile tree stays connected across the process boundary.
        Tracks are preserved — merged spans keep their worker identity.
        """
        if not records:
            return
        offset = self._next_id
        top = 0
        for record in records:
            top = max(top, record["span_id"])
            span = Span.from_dict(record)
            span.span_id += offset
            if span.parent_id is None:
                span.parent_id = parent_id
            else:
                span.parent_id += offset
            self.spans.append(span)
        self._next_id = offset + top + 1


class NullTracer(Tracer):
    """A tracer that records nothing (the zero-overhead default)."""

    __slots__ = ()

    enabled = False

    def span(self, name: str, cat: str = "run", **args) -> _NullSpanHandle:
        return _NULL_HANDLE

    def record(self, name: str, cat: str, start_ns: int, dur_ns: int,
               **args) -> None:
        return None

    def merge(self, records: list[dict],
              parent_id: int | None = None) -> None:
        pass


#: Shared no-op tracer; safe to pass anywhere a tracer is expected.
NULL_TRACER = NullTracer()


def active_tracer(tracer: Tracer | None) -> Tracer:
    """Normalize an optional tracer argument to a usable instance."""
    return tracer if tracer is not None else NULL_TRACER


def worker_track() -> str:
    """The span track name for the current (worker) process."""
    return f"worker-{os.getpid()}"


# ----------------------------------------------------------------------
# JSONL report integration

def emit_span_events(recorder, tracer: Tracer) -> None:
    """Emit every not-yet-emitted span as one ``span`` report event.

    Times are exported in microseconds relative to the tracer's first
    span, so reports are small and diffable; the tracer keeps a
    watermark so repeated calls (e.g. one per ``execute()``) never
    duplicate events.
    """
    if not tracer.enabled or not recorder.enabled:
        return
    if not tracer.spans:
        return
    origin = min(s.start_ns for s in tracer.spans)
    for span in tracer.spans[tracer._emitted:]:
        recorder.emit(
            "span",
            name=span.name,
            cat=span.cat,
            track=span.track,
            start_us=round((span.start_ns - origin) / 1000.0, 3),
            dur_us=round(max(0, span.dur_ns) / 1000.0, 3),
            span_id=span.span_id,
            parent_id=span.parent_id,
            args=span.args,
        )
    tracer._emitted = len(tracer.spans)


def spans_from_events(events: list[dict]) -> list[Span]:
    """Rebuild spans from the ``span`` events of a JSONL run report."""
    spans = []
    for record in events:
        if record.get("event") != "span":
            continue
        spans.append(Span(
            name=record.get("name", "?"),
            cat=record.get("cat", "run"),
            span_id=record.get("span_id", 0),
            parent_id=record.get("parent_id"),
            start_ns=int(record.get("start_us", 0) * 1000),
            dur_ns=int(record.get("dur_us", 0) * 1000),
            track=record.get("track", MAIN_TRACK),
            args=dict(record.get("args") or {}),
        ))
    return spans


# ----------------------------------------------------------------------
# Chrome trace-event export (Perfetto / chrome://tracing)

def chrome_trace(spans: list[Span], process_name: str = "repro") -> dict:
    """Render spans as a Chrome trace-event JSON document.

    Every span becomes one complete ("X") event; each track maps to its
    own ``tid`` with a ``thread_name`` metadata record, so Perfetto
    shows the parent and every worker as separate rows.  Nesting within
    a row follows time containment, which matches the recorded
    parent/child structure because children always open after and close
    before their parent.
    """
    tracks: list[str] = []
    for span in spans:
        if span.track not in tracks:
            tracks.append(span.track)
    # Stable rows: main first, workers in name order after it.
    tracks.sort(key=lambda t: (t != MAIN_TRACK, t))
    tid_of = {track: i for i, track in enumerate(tracks)}

    events: list[dict] = [{
        "ph": "M", "name": "process_name", "pid": 0, "tid": 0,
        "args": {"name": process_name},
    }]
    for track, tid in tid_of.items():
        events.append({
            "ph": "M", "name": "thread_name", "pid": 0, "tid": tid,
            "args": {"name": track},
        })
        events.append({
            "ph": "M", "name": "thread_sort_index", "pid": 0, "tid": tid,
            "args": {"sort_index": tid},
        })
    origin = min((s.start_ns for s in spans), default=0)
    for span in spans:
        events.append({
            "name": span.name,
            "cat": span.cat,
            "ph": "X",
            "ts": round((span.start_ns - origin) / 1000.0, 3),
            "dur": round(max(0, span.dur_ns) / 1000.0, 3),
            "pid": 0,
            "tid": tid_of[span.track],
            "args": {"span_id": span.span_id,
                     "parent_id": span.parent_id, **span.args},
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, spans: list[Span],
                       process_name: str = "repro") -> None:
    """Write :func:`chrome_trace` output to ``path`` (dirs created)."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(spans, process_name), handle,
                  separators=(",", ":"))
        handle.write("\n")


# ----------------------------------------------------------------------
# self-profile tree ("where did the wall-clock go?")

@dataclass(slots=True)
class _Node:
    """One aggregation node of the self-profile tree."""

    name: str
    seconds: float = 0.0
    count: int = 0
    children: dict = field(default_factory=dict)


def _aggregate(spans: list[Span]) -> tuple[_Node, float]:
    """Fold spans into a name-keyed tree; returns (root, wall seconds).

    Sibling spans with the same name aggregate (count/total time), so a
    56-cell sweep collapses to one line per phase rather than 56.
    Wall-clock is the envelope of all spans (the engine root span when
    present).
    """
    by_id = {s.span_id: s for s in spans}
    root = _Node(name="run")
    nodes: dict[int, _Node] = {}

    def node_for(span: Span) -> _Node:
        existing = nodes.get(span.span_id)
        if existing is not None:
            return existing
        parent = by_id.get(span.parent_id) if span.parent_id is not None \
            else None
        bucket = node_for(parent) if parent is not None else root
        child = bucket.children.get(span.name)
        if child is None:
            child = _Node(name=span.name)
            bucket.children[span.name] = child
        nodes[span.span_id] = child
        return child

    for span in spans:
        node = node_for(span)
        node.count += 1
        node.seconds += max(0, span.dur_ns) / 1e9
    if spans:
        start = min(s.start_ns for s in spans)
        end = max(s.start_ns + max(0, s.dur_ns) for s in spans)
        wall = (end - start) / 1e9
    else:
        wall = 0.0
    return root, wall


def profile_tree(spans: list[Span], title: str = "self-profile") -> str:
    """Render spans as an ASCII time-per-phase tree.

    Each line shows a phase's aggregate wall time, its share of the
    run's wall clock, and how many spans were folded into it::

        engine.run                      1.234s   98.7%      1
          compile                       0.456s   36.5%      8
          simulate                      0.601s   48.1%     56
    """
    root, wall = _aggregate(spans)
    lines = [f"{title} ({wall:.3f}s wall)"]

    def render(node: _Node, depth: int) -> None:
        for child in sorted(node.children.values(),
                            key=lambda n: -n.seconds):
            share = (child.seconds / wall * 100.0) if wall > 0 else 0.0
            label = "  " * depth + child.name
            lines.append(
                f"{label:<40s} {child.seconds:>9.3f}s "
                f"{share:>5.1f}%  {child.count:>6d}"
            )
            render(child, depth + 1)

    render(root, 1)
    if len(lines) == 1:
        lines.append("  (no spans recorded)")
    return "\n".join(lines)

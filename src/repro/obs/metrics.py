"""Run-level metrics: counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` accumulates three metric shapes:

* **counters** — monotonically increasing floats (``cache.hits``,
  ``engine.retries``);
* **gauges** — last-write-wins values (``engine.workers``);
* **histograms** — observation counts over *fixed* bucket boundaries.

Bucket boundaries are fixed per histogram name (every process uses the
same boundaries for the same name), so merging registries across
processes is exact and deterministic: counts add, no re-bucketing, no
information loss.  Engine workers build a local registry, ship
:meth:`~MetricsRegistry.as_dict` back on the result payload, and the
parent :meth:`~MetricsRegistry.merge`\\ s them — same pattern as the
span tracer (:mod:`repro.obs.trace`).

Every histogram satisfies a conservation law enforced by the report
schema validator: the bucket counts (including the overflow bucket) sum
exactly to the observation count.  The cache counters satisfy their own:
``cache.gets == cache.hits + cache.misses + cache.corrupt``.

:data:`NULL_METRICS` is the zero-overhead disabled registry.
"""

from __future__ import annotations

from bisect import bisect_left

__all__ = [
    "COUNT_BUCKETS",
    "NULL_METRICS",
    "SECONDS_BUCKETS",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "active_metrics",
]

#: Default boundaries for wall-time observations (seconds).  Spanning
#: 100µs..60s in roughly 1-2.5-5 steps; fixed so merges are exact.
SECONDS_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: Default boundaries for size/count observations (e.g. instructions
#: per cell): powers of ten.
COUNT_BUCKETS = (
    10, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000,
)


class Histogram:
    """Observation counts over fixed, sorted bucket boundaries.

    ``counts[i]`` counts observations ``<= bounds[i]``; the final extra
    slot counts overflow (``> bounds[-1]``).  ``sum`` carries the raw
    total for mean computation — note it is the one field that is *not*
    deterministic for wall-time observations.
    """

    __slots__ = ("bounds", "counts", "count", "sum")

    def __init__(self, bounds=SECONDS_BUCKETS) -> None:
        bounds = tuple(bounds)
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be sorted and non-empty")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    def as_dict(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
        }

    def merge(self, payload: dict) -> None:
        """Add another histogram's counts (bounds must match exactly)."""
        if tuple(payload["bounds"]) != self.bounds:
            raise ValueError(
                f"histogram bounds mismatch: {payload['bounds']} vs "
                f"{list(self.bounds)}"
            )
        for i, n in enumerate(payload["counts"]):
            self.counts[i] += n
        self.count += payload["count"]
        self.sum += payload["sum"]


class MetricsRegistry:
    """Named counters, gauges, and histograms for one run."""

    __slots__ = ("counters", "gauges", "histograms")

    enabled = True

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}

    def incr(self, name: str, value: float = 1) -> None:
        """Add ``value`` to counter ``name`` (creating it at zero)."""
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        self.gauges[name] = value

    def observe(self, name: str, value: float,
                bounds=SECONDS_BUCKETS) -> None:
        """Record one observation into histogram ``name``.

        ``bounds`` applies only on first use of the name; later calls
        must agree (fixed boundaries are what make merges exact).
        """
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram(bounds)
        hist.observe(value)

    def as_dict(self) -> dict:
        """JSON-safe snapshot with deterministically sorted keys."""
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {
                k: self.histograms[k].as_dict()
                for k in sorted(self.histograms)
            },
        }

    def merge(self, payload: dict | None) -> None:
        """Fold one :meth:`as_dict` snapshot (e.g. from a worker) in.

        Counters and histogram counts add; gauges are last-write-wins.
        Merging is associative and, for counters/histogram counts,
        commutative — so any merge order yields the same totals.
        """
        if not payload:
            return
        for name, value in payload.get("counters", {}).items():
            self.incr(name, value)
        for name, value in payload.get("gauges", {}).items():
            self.gauge(name, value)
        for name, hist in payload.get("histograms", {}).items():
            mine = self.histograms.get(name)
            if mine is None:
                mine = self.histograms[name] = Histogram(hist["bounds"])
            mine.merge(hist)


class NullMetrics(MetricsRegistry):
    """A registry that records nothing (the zero-overhead default)."""

    __slots__ = ()

    enabled = False

    def incr(self, name: str, value: float = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float,
                bounds=SECONDS_BUCKETS) -> None:
        pass

    def merge(self, payload: dict | None) -> None:
        pass


#: Shared disabled registry; safe to pass anywhere metrics are expected.
NULL_METRICS = NullMetrics()


def active_metrics(metrics: MetricsRegistry | None) -> MetricsRegistry:
    """Normalize an optional metrics argument to a usable registry."""
    return metrics if metrics is not None else NULL_METRICS

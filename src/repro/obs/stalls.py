"""Stall-cycle attribution: where do the minor cycles go?

The paper's Sections 4-5 reason about lost cycles in terms of causes —
true (RAW) dependences, memory ordering, functional-unit (class)
conflicts, and the issue-width/in-order limit itself — but the timing
model only reported an aggregate cycle count.  :class:`StallBreakdown`
makes the accounting explicit and *exact*:

For dynamic instruction *i* issuing at minor cycle ``t_i``, every minor
cycle in ``[t_{i-1}, t_i)`` is one stall cycle charged to *i* (with
``t_{-1} = 0``).  Because issue is in order and issue times are
non-decreasing, these intervals tile ``[0, t_last)`` exactly — no cycle
is double-counted and none is dropped.  Each charged cycle gets the
*first* applicable cause:

``control``
    the front end is frozen until a conditional branch resolves
    (only under ``branch_policy="stall"``; zero for the paper's model);
``raw_dep``
    a register source is not complete yet (true dependence);
``memory_order``
    a load's word has a pending earlier store (store→load ordering);
``unit_conflict``
    every copy of the required functional unit is busy (class conflict);
``issue_width``
    nothing else blocks the instruction — it waits only because the
    machine already issued ``issue_width`` instructions that cycle
    (or, equivalently, because issue is in order behind them).

``issued_cycles`` is the remainder ``minor_cycles - stalled``: the span
from the final issue to the completion of the last result (on a
stall-free run, the whole run).  The conservation law

    ``breakdown.stalled + breakdown.issued_cycles == minor_cycles``

therefore holds *exactly* on every trace and machine; the test suite
asserts it on hand-built traces and on random programs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.opcodes import InstrClass

#: Attribution order; the first applicable cause wins.
STALL_CAUSES: tuple[str, ...] = (
    "control",
    "raw_dep",
    "memory_order",
    "unit_conflict",
    "issue_width",
)

_N_CAUSES = len(STALL_CAUSES)
_CAUSE_INDEX = {name: i for i, name in enumerate(STALL_CAUSES)}


@dataclass(slots=True)
class StallBreakdown:
    """Per-cause (and per-instruction-class) stall-cycle totals."""

    control: int = 0
    raw_dep: int = 0
    memory_order: int = 0
    unit_conflict: int = 0
    issue_width: int = 0
    #: minor cycles not attributed to any stall (final issue + drain).
    issued_cycles: int = 0
    #: instruction class -> [cycles per cause, in STALL_CAUSES order]
    by_class: dict[InstrClass, list[int]] = field(default_factory=dict)

    @property
    def stalled(self) -> int:
        """Total stall cycles across every cause."""
        return (self.control + self.raw_dep + self.memory_order
                + self.unit_conflict + self.issue_width)

    @property
    def minor_cycles(self) -> int:
        """Reconstructed run length (the conservation law's right side)."""
        return self.stalled + self.issued_cycles

    def get(self, cause: str) -> int:
        """Stall cycles of one cause by name."""
        if cause not in _CAUSE_INDEX:
            raise KeyError(f"unknown stall cause {cause!r}")
        return getattr(self, cause)

    def charge(self, klass: InstrClass, cause_index: int, cycles: int) -> None:
        """Add ``cycles`` of the given cause, rolled up under ``klass``."""
        if cycles <= 0:
            return
        name = STALL_CAUSES[cause_index]
        setattr(self, name, getattr(self, name) + cycles)
        per_class = self.by_class.get(klass)
        if per_class is None:
            per_class = [0] * _N_CAUSES
            self.by_class[klass] = per_class
        per_class[cause_index] += cycles

    def class_totals(self) -> dict[InstrClass, int]:
        """Total stall cycles charged to each instruction class."""
        return {klass: sum(row) for klass, row in self.by_class.items()}

    def as_dict(self) -> dict:
        """JSON-serializable form (class keys become their string values)."""
        return {
            "control": self.control,
            "raw_dep": self.raw_dep,
            "memory_order": self.memory_order,
            "unit_conflict": self.unit_conflict,
            "issue_width": self.issue_width,
            "issued_cycles": self.issued_cycles,
            "by_class": {
                klass.value: dict(zip(STALL_CAUSES, row))
                for klass, row in sorted(
                    self.by_class.items(), key=lambda kv: kv[0].value
                )
            },
        }

    def merged_with(self, other: "StallBreakdown") -> "StallBreakdown":
        """Element-wise sum (for aggregating across benchmarks)."""
        merged = StallBreakdown(
            control=self.control + other.control,
            raw_dep=self.raw_dep + other.raw_dep,
            memory_order=self.memory_order + other.memory_order,
            unit_conflict=self.unit_conflict + other.unit_conflict,
            issue_width=self.issue_width + other.issue_width,
            issued_cycles=self.issued_cycles + other.issued_cycles,
        )
        for source in (self.by_class, other.by_class):
            for klass, row in source.items():
                acc = merged.by_class.setdefault(klass, [0] * _N_CAUSES)
                for i, v in enumerate(row):
                    acc[i] += v
        return merged

"""The run-history ledger: an append-only, content-addressed store.

Every JSONL run report (and every ``BENCH_sim.json`` throughput
document) can be *ingested* into one small SQLite database, giving the
repro a memory across runs: per-cell measurements (cycles,
instructions, ILP, stall attribution, replay-memo counters, supervision
status and attempt histories), run-level engine statistics and metric
counters, per-track resource telemetry, and bench throughput modes.
``repro diff`` compares any two entries (or raw files) and ``repro
dash`` renders the whole ledger as a self-contained HTML dashboard.

Entries are **content-addressed**: each run's deterministic measurement
content — package version, run id, machine list, and every cell's
simulation numbers, status, attempts and attempt-history structure, but
*not* wall-clock seconds or counter timings — is hashed into a SHA-256
fingerprint, and ingesting a report whose fingerprint is already
present is a no-op.  Ingesting the same report twice is therefore
idempotent, and two runs of the same configuration (bit-identical by
the engine's determinism guarantee) collapse to one ledger entry even
though their wall-clock fields differ.

Only the stdlib (``sqlite3``, ``json``, ``hashlib``) is used.  The
default ledger lives at ``results/history.sqlite``; override with
``$REPRO_LEDGER`` or the CLI ``--ledger`` flag.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import time
from dataclasses import dataclass

from .recorder import read_jsonl_tolerant
from .schema import STALL_CAUSES

#: Default on-disk location (CI uploads this file as an artifact).
DEFAULT_LEDGER_PATH = "results/history.sqlite"

#: Environment override for the ledger path.
LEDGER_ENV = "REPRO_LEDGER"

#: Bump when the table layout changes (old ledgers are rejected,
#: not migrated — the source reports are the durable artifact).
#: v2: per-cell ``scheduler`` column (the scheduler backend the cell
#: compiled through; NULL for pre-backend reports).
#: v3: vectorized-replay counter columns (``replay_vectorized_blocks``,
#: ``replay_scalar_fallback_blocks``, ``replay_memo_persisted_hits``)
#: and the matching engine-event roll-ups.
LEDGER_VERSION = 3

#: Per-cell replay-memo counter columns (match ReplayStats.as_dict()).
_REPLAY_KEYS = ("blocks", "memo_hits", "memo_misses", "fallbacks",
                "memo_instructions", "direct_instructions",
                "vectorized_blocks", "scalar_fallback_blocks",
                "memo_persisted_hits")

#: Run-level engine-report fields copied straight from the ``engine``
#: event (numeric roll-ups plus the replay backend name).
_ENGINE_KEYS = (
    "workers", "cells", "groups", "cache_hits", "cache_misses",
    "seconds", "compile_seconds", "sim_seconds",
    "memo_hits", "memo_misses", "memo_fallbacks",
    "memo_instructions", "direct_instructions",
    "vectorized_blocks", "scalar_fallback_blocks", "memo_persisted_hits",
    "replay_backend",
    "ok_cells", "retried_cells", "degraded_cells", "failed_cells",
    "group_retries", "pool_restarts",
)

_SCHEMA_SQL = f"""
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    fingerprint TEXT NOT NULL UNIQUE,
    kind TEXT NOT NULL,              -- 'report' | 'bench'
    run_id TEXT NOT NULL,
    schema_version INTEGER,
    package_version TEXT NOT NULL,
    source TEXT,
    machines TEXT NOT NULL,          -- JSON list of machine names
    wall_seconds REAL,
    engine TEXT,                     -- JSON: the 'engine' event, if any
    counters TEXT,                   -- JSON: run_end counters
    gauges TEXT                      -- JSON: metrics gauges
);
CREATE TABLE IF NOT EXISTS cells (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    run_ref INTEGER NOT NULL REFERENCES runs(id),
    benchmark TEXT NOT NULL,
    machine TEXT NOT NULL,
    options TEXT NOT NULL,
    scheduler TEXT,
    status TEXT NOT NULL,
    attempts INTEGER NOT NULL,
    cached INTEGER,
    seconds REAL,
    instructions INTEGER,
    minor_cycles INTEGER,
    base_cycles REAL,
    parallelism REAL,
    cpi REAL,
    {", ".join(f"stall_{c} INTEGER" for c in STALL_CAUSES)},
    issued_cycles INTEGER,
    by_class TEXT,                   -- JSON: per-class stall roll-up
    {", ".join(f"replay_{k} INTEGER" for k in _REPLAY_KEYS)},
    error TEXT,                      -- JSON: final typed error
    history TEXT                     -- JSON: per-attempt records
);
CREATE TABLE IF NOT EXISTS bench_modes (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    run_ref INTEGER NOT NULL REFERENCES runs(id),
    mode TEXT NOT NULL,
    seconds REAL,
    instructions INTEGER,
    instr_per_sec REAL
);
CREATE TABLE IF NOT EXISTS resources (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    run_ref INTEGER NOT NULL REFERENCES runs(id),
    track TEXT NOT NULL,
    rss_mb REAL,
    rss_peak_mb REAL,
    cpu_seconds REAL,
    samples INTEGER
);
CREATE INDEX IF NOT EXISTS idx_cells_run ON cells(run_ref);
CREATE INDEX IF NOT EXISTS idx_cells_key
    ON cells(benchmark, machine, options);
"""


def default_ledger_path() -> str:
    """The ledger path: ``$REPRO_LEDGER`` or the repo-local default."""
    return os.environ.get(LEDGER_ENV) or DEFAULT_LEDGER_PATH


@dataclass(frozen=True, slots=True)
class IngestResult:
    """What one ingest call did."""

    run_ref: int        # runs.id of the (new or pre-existing) entry
    fingerprint: str
    created: bool       # False when content addressing deduplicated

    def summary(self) -> str:
        verb = "ingested as" if self.created else "already present as"
        return f"{verb} run #{self.run_ref} ({self.fingerprint[:12]})"


def _package_version() -> str:
    from .. import __version__

    return __version__


# ----------------------------------------------------------------------
# report events -> uniform payload

def _cell_template(benchmark: str, machine: str, options: str) -> dict:
    cell = {
        "benchmark": benchmark,
        "machine": machine,
        "options": options,
        "scheduler": None,
        "status": "ok",
        "attempts": 1,
        "cached": None,
        "seconds": None,
        "instructions": None,
        "minor_cycles": None,
        "base_cycles": None,
        "parallelism": None,
        "cpi": None,
        "stalls": None,
        "replay": None,
        "error": None,
        "history": [],
    }
    return cell


def _stalls_payload(stalls: dict | None) -> dict | None:
    if not isinstance(stalls, dict):
        return None
    out = {c: stalls.get(c) for c in STALL_CAUSES}
    out["issued_cycles"] = stalls.get("issued_cycles")
    by_class = stalls.get("by_class")
    if isinstance(by_class, dict):
        out["by_class"] = by_class
    return out


def _derive_minor_cycles(stalls: dict | None) -> int | None:
    """Reconstruct minor cycles via the conservation law, if possible."""
    if not isinstance(stalls, dict):
        return None
    values = [stalls.get(c) for c in STALL_CAUSES]
    values.append(stalls.get("issued_cycles"))
    if any(not isinstance(v, int) for v in values):
        return None
    return sum(values)


def payload_from_events(events: list[dict], source: str | None = None) -> dict:
    """Build the uniform run payload the ledger stores and ``diff`` reads.

    Joins the report's event streams into one per-cell view:

    * ``cell`` events (the engine path) carry status/attempts/cached/
      seconds plus — since this schema revision — the simulation numbers
      and attempt histories;
    * ``sweep_row`` events contribute the stall breakdown for observed
      sweeps;
    * ``timing`` events (the ``repro report`` observe path, and the
      per-cell timings ``repro suite --report`` re-emits) contribute
      instructions/cycles/stalls/replay for reports without engine
      events.

    Every numeric field present in the source events survives into the
    payload unchanged — the ledger round-trip is lossless.
    """
    run_id = "?"
    schema = None
    machines: list[str] = []
    engine = None
    counters: dict = {}
    gauges: dict = {}
    wall_seconds = None
    resources: list[dict] = []

    cell_events: list[dict] = []
    sweep_rows: dict[tuple, list[dict]] = {}
    timings: dict[tuple, list[dict]] = {}

    for event in events:
        name = event.get("event")
        if name == "run_start":
            run_id = event.get("run_id", "?")
            schema = event.get("schema")
            if isinstance(event.get("machines"), list):
                machines = [str(m) for m in event["machines"]]
        elif name == "engine":
            engine = {k: event.get(k) for k in _ENGINE_KEYS
                      if k in event}
        elif name == "metrics":
            if isinstance(event.get("gauges"), dict):
                gauges = event["gauges"]
        elif name == "run_end":
            if isinstance(event.get("counters"), dict):
                counters = event["counters"]
            if isinstance(event.get("seconds"), (int, float)):
                wall_seconds = event["seconds"]
        elif name == "resource":
            resources.append({
                "track": event.get("track"),
                "rss_mb": event.get("rss_mb"),
                "rss_peak_mb": event.get("rss_peak_mb"),
                "cpu_seconds": event.get("cpu_seconds"),
                "samples": event.get("samples"),
            })
        elif name == "cell":
            cell_events.append(event)
        elif name == "sweep_row":
            key = (event.get("benchmark"), event.get("machine"),
                   event.get("options"))
            sweep_rows.setdefault(key, []).append(event)
        elif name == "timing":
            key = (event.get("benchmark"), event.get("machine"))
            timings.setdefault(key, []).append(event)

    # Engine runs report their own wall clock; prefer it over the
    # CLI-level run_end stamp (measure writes 0.0 there).
    if engine is not None and isinstance(engine.get("seconds"),
                                         (int, float)):
        wall_seconds = engine["seconds"]

    cells: list[dict] = []
    if cell_events:
        for event in cell_events:
            cell = _cell_template(event.get("benchmark"),
                                  event.get("machine"),
                                  event.get("options", "default"))
            cell["scheduler"] = event.get("scheduler")
            cell["status"] = event.get("status", "ok")
            cell["attempts"] = event.get("attempts", 1)
            cell["cached"] = event.get("cached")
            cell["seconds"] = event.get("seconds")
            for field in ("instructions", "minor_cycles", "base_cycles",
                          "parallelism"):
                if field in event:
                    cell[field] = event[field]
            if isinstance(event.get("stalls"), dict):
                cell["stalls"] = _stalls_payload(event["stalls"])
            if isinstance(event.get("replay"), dict):
                cell["replay"] = event["replay"]
            if isinstance(event.get("error"), dict):
                cell["error"] = event["error"]
            if isinstance(event.get("history"), list):
                cell["history"] = event["history"]
            key = (cell["benchmark"], cell["machine"], cell["options"])
            rows = sweep_rows.get(key)
            if rows:
                row = rows.pop(0)
                for field in ("instructions", "base_cycles",
                              "parallelism"):
                    if cell[field] is None and field in row:
                        cell[field] = row[field]
                if cell["stalls"] is None:
                    cell["stalls"] = _stalls_payload(row.get("stalls"))
            tkey = (cell["benchmark"], cell["machine"])
            trows = timings.get(tkey)
            if trows:
                timing = trows.pop(0)
                for field in ("instructions", "minor_cycles",
                              "base_cycles", "parallelism", "cpi"):
                    if cell[field] is None and field in timing:
                        cell[field] = timing[field]
                if cell["stalls"] is None:
                    cell["stalls"] = _stalls_payload(timing.get("stalls"))
                if cell["replay"] is None and isinstance(
                        timing.get("replay"), dict):
                    cell["replay"] = timing["replay"]
            if cell["minor_cycles"] is None:
                cell["minor_cycles"] = _derive_minor_cycles(cell["stalls"])
            if cell["cpi"] is None and isinstance(
                    cell["minor_cycles"], int) and isinstance(
                    cell["instructions"], int) and cell["instructions"]:
                cell["cpi"] = cell["minor_cycles"] / cell["instructions"]
            cells.append(cell)
    else:
        # No engine events: a pure observe report (repro report path).
        # One cell per timing event, in emission order.
        for (benchmark, machine), trows in timings.items():
            for timing in trows:
                cell = _cell_template(benchmark, machine, "default")
                for field in ("instructions", "minor_cycles",
                              "base_cycles", "parallelism", "cpi"):
                    if field in timing:
                        cell[field] = timing[field]
                cell["stalls"] = _stalls_payload(timing.get("stalls"))
                if isinstance(timing.get("replay"), dict):
                    cell["replay"] = timing["replay"]
                cells.append(cell)

    if not machines:
        seen: list[str] = []
        for cell in cells:
            if cell["machine"] not in seen:
                seen.append(cell["machine"])
        machines = seen

    return {
        "kind": "report",
        "run_id": run_id,
        "schema": schema,
        "package_version": _package_version(),
        "source": source,
        "machines": machines,
        "wall_seconds": wall_seconds,
        "engine": engine,
        "counters": counters,
        "gauges": gauges,
        "cells": cells,
        "resources": resources,
    }


def _deterministic_cell(cell: dict) -> dict:
    """The fingerprint-relevant subset of one cell (no wall-clock)."""
    out = {
        "benchmark": cell.get("benchmark"),
        "machine": cell.get("machine"),
        "options": cell.get("options"),
        "scheduler": cell.get("scheduler"),
        "status": cell.get("status"),
        "attempts": cell.get("attempts"),
        "instructions": cell.get("instructions"),
        "minor_cycles": cell.get("minor_cycles"),
        "base_cycles": cell.get("base_cycles"),
        "parallelism": cell.get("parallelism"),
        "stalls": cell.get("stalls"),
        "replay": cell.get("replay"),
    }
    error = cell.get("error")
    out["error_kind"] = error.get("kind") if isinstance(error, dict) \
        else None
    # Attempt messages embed wall-clock figures (timeouts, paths) and
    # seconds are wall-clock outright; the ladder *structure* is what
    # identical runs reproduce.
    out["history"] = [
        (entry.get("attempt"), entry.get("where"), entry.get("kind"))
        for entry in cell.get("history") or []
        if isinstance(entry, dict)
    ]
    return out


def fingerprint_payload(payload: dict) -> str:
    """SHA-256 over a payload's deterministic measurement content."""
    if payload.get("kind") == "bench":
        content = {"kind": "bench", "document": payload.get("document")}
    else:
        cells = sorted(
            (_deterministic_cell(c) for c in payload.get("cells", [])),
            key=lambda c: (c["benchmark"] or "", c["machine"] or "",
                           c["options"] or ""),
        )
        content = {
            "kind": "report",
            "package_version": payload.get("package_version"),
            "schema": payload.get("schema"),
            "run_id": payload.get("run_id"),
            "machines": payload.get("machines"),
            "cells": cells,
        }
    canonical = json.dumps(content, sort_keys=True,
                           separators=(",", ":"), default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def payload_from_bench(document: dict, source: str | None = None) -> dict:
    """Wrap one ``BENCH_sim.json`` document as a ledger payload."""
    modes = []
    for mode, row in (document.get("modes") or {}).items():
        if not isinstance(row, dict):
            continue
        modes.append({
            "mode": mode,
            "seconds": row.get("seconds"),
            "instructions": row.get("instructions"),
            "instr_per_sec": row.get("instr_per_sec"),
        })
    grid = document.get("grid") or {}
    machines = grid.get("machines") if isinstance(grid, dict) else None
    return {
        "kind": "bench",
        "run_id": "bench",
        "schema": None,
        "package_version": _package_version(),
        "source": source,
        "machines": [str(m) for m in machines] if machines else [],
        "wall_seconds": sum(
            m["seconds"] for m in modes
            if isinstance(m.get("seconds"), (int, float))
        ) or None,
        "engine": None,
        "counters": {},
        "gauges": {},
        "cells": [],
        "resources": [],
        "modes": modes,
        "document": document,
    }


# ----------------------------------------------------------------------
# the ledger itself

class LedgerError(ValueError):
    """Raised for unusable ledgers or unresolvable run references."""


#: Seconds SQLite waits on a locked database before giving up (both the
#: driver-level connect timeout and PRAGMA busy_timeout).
BUSY_TIMEOUT = 30.0

#: Bounded application-level retries for writes that still lose the
#: lock race after the busy timeout (each sleeps briefly first).
LOCK_RETRIES = 5
_LOCK_RETRY_SLEEP = 0.05


def _is_locked(exc: sqlite3.OperationalError) -> bool:
    text = str(exc).lower()
    return "locked" in text or "busy" in text


class HistoryLedger:
    """One SQLite-backed run-history ledger (see module docstring).

    Usable as a context manager; all writes are committed per ingest.
    Safe under concurrent writers: the connection waits
    :data:`BUSY_TIMEOUT` seconds on a locked database, and ingestion
    additionally retries a bounded number of times, so two simultaneous
    ``repro ingest`` processes serialize instead of dying with
    ``database is locked``.

    ``create=False`` refuses to materialize a missing ledger — readers
    (``repro diff``, ``repro dash``) use it so a typo'd path is a clean
    :class:`LedgerError`, never a fresh empty database.
    """

    def __init__(self, path: str | None = None, *,
                 create: bool = True) -> None:
        self.path = path or default_ledger_path()
        if not create and not os.path.exists(self.path):
            raise LedgerError(f"no ledger at {self.path}")
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._conn = sqlite3.connect(self.path, timeout=BUSY_TIMEOUT)
        self._conn.row_factory = sqlite3.Row
        self._conn.execute(
            f"PRAGMA busy_timeout = {int(BUSY_TIMEOUT * 1000)}")
        self._conn.executescript(_SCHEMA_SQL)
        # Two processes may race to stamp a fresh ledger's version:
        # INSERT OR IGNORE lets the loser fall through to the re-read.
        self._conn.execute(
            "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
            ("ledger_version", str(LEDGER_VERSION)),
        )
        self._conn.commit()
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = 'ledger_version'"
        ).fetchone()
        if row is not None and row["value"] != str(LEDGER_VERSION):
            raise LedgerError(
                f"{self.path}: ledger version {row['value']} != "
                f"{LEDGER_VERSION}; re-ingest the source reports into a "
                "fresh ledger"
            )

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "HistoryLedger":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- ingestion ------------------------------------------------------

    def ingest_report(self, report: str | list,
                      source: str | None = None) -> IngestResult:
        """Ingest one JSONL run report (path or pre-loaded event list)."""
        if isinstance(report, str):
            events, _skipped = read_jsonl_tolerant(report)
            source = source if source is not None else report
        else:
            events = report
        payload = payload_from_events(events, source=source)
        return self._ingest_payload(payload)

    def ingest_bench(self, document: str | dict,
                     source: str | None = None) -> IngestResult:
        """Ingest one BENCH_sim.json document (path or loaded dict)."""
        if isinstance(document, str):
            source = source if source is not None else document
            with open(document, encoding="utf-8") as handle:
                document = json.load(handle)
        payload = payload_from_bench(document, source=source)
        return self._ingest_payload(payload)

    def _ingest_payload(self, payload: dict) -> IngestResult:
        """Write one payload, retrying bounded times on a locked db."""
        last: sqlite3.OperationalError | None = None
        for attempt in range(LOCK_RETRIES + 1):
            if attempt:
                time.sleep(_LOCK_RETRY_SLEEP * attempt)
            try:
                return self._ingest_once(payload)
            except sqlite3.OperationalError as exc:
                if not _is_locked(exc):
                    raise
                last = exc
                try:
                    self._conn.rollback()
                except sqlite3.Error:
                    pass
        raise LedgerError(
            f"{self.path}: database stayed locked through "
            f"{LOCK_RETRIES} retries ({last})"
        )

    def _ingest_once(self, payload: dict) -> IngestResult:
        fingerprint = fingerprint_payload(payload)
        row = self._conn.execute(
            "SELECT id FROM runs WHERE fingerprint = ?", (fingerprint,)
        ).fetchone()
        if row is not None:
            return IngestResult(row["id"], fingerprint, created=False)
        try:
            return self._insert_payload(payload, fingerprint)
        except sqlite3.IntegrityError:
            # Concurrent ingest of identical content: the other writer
            # won the UNIQUE(fingerprint) race; dedupe to its entry.
            self._conn.rollback()
            row = self._conn.execute(
                "SELECT id FROM runs WHERE fingerprint = ?",
                (fingerprint,),
            ).fetchone()
            if row is None:  # pragma: no cover - defensive
                raise
            return IngestResult(row["id"], fingerprint, created=False)

    def _insert_payload(self, payload: dict,
                        fingerprint: str) -> IngestResult:
        cur = self._conn.execute(
            "INSERT INTO runs (fingerprint, kind, run_id, schema_version,"
            " package_version, source, machines, wall_seconds, engine,"
            " counters, gauges) VALUES (?,?,?,?,?,?,?,?,?,?,?)",
            (
                fingerprint,
                payload["kind"],
                payload["run_id"],
                payload.get("schema"),
                payload["package_version"],
                payload.get("source"),
                json.dumps(payload.get("machines") or []),
                payload.get("wall_seconds"),
                json.dumps(payload["engine"])
                if payload.get("engine") is not None else None,
                json.dumps(payload.get("counters") or {}),
                json.dumps(payload.get("gauges") or {}),
            ),
        )
        run_ref = cur.lastrowid
        assert run_ref is not None
        for cell in payload.get("cells", []):
            self._insert_cell(run_ref, cell)
        for mode in payload.get("modes", []):
            self._conn.execute(
                "INSERT INTO bench_modes (run_ref, mode, seconds,"
                " instructions, instr_per_sec) VALUES (?,?,?,?,?)",
                (run_ref, mode.get("mode"), mode.get("seconds"),
                 mode.get("instructions"), mode.get("instr_per_sec")),
            )
        for res in payload.get("resources", []):
            self._conn.execute(
                "INSERT INTO resources (run_ref, track, rss_mb,"
                " rss_peak_mb, cpu_seconds, samples) VALUES (?,?,?,?,?,?)",
                (run_ref, res.get("track"), res.get("rss_mb"),
                 res.get("rss_peak_mb"), res.get("cpu_seconds"),
                 res.get("samples")),
            )
        self._conn.commit()
        return IngestResult(run_ref, fingerprint, created=True)

    def _insert_cell(self, run_ref: int, cell: dict) -> None:
        stalls = cell.get("stalls") or {}
        replay = cell.get("replay") or {}
        by_class = stalls.get("by_class")
        columns = [
            "run_ref", "benchmark", "machine", "options", "scheduler",
            "status", "attempts", "cached", "seconds", "instructions",
            "minor_cycles", "base_cycles", "parallelism", "cpi",
        ]
        values: list = [
            run_ref, cell["benchmark"], cell["machine"], cell["options"],
            cell.get("scheduler"), cell["status"], cell["attempts"],
            (None if cell.get("cached") is None
             else int(bool(cell["cached"]))),
            cell.get("seconds"), cell.get("instructions"),
            cell.get("minor_cycles"), cell.get("base_cycles"),
            cell.get("parallelism"), cell.get("cpi"),
        ]
        for cause in STALL_CAUSES:
            columns.append(f"stall_{cause}")
            values.append(stalls.get(cause))
        columns.append("issued_cycles")
        values.append(stalls.get("issued_cycles"))
        columns.append("by_class")
        values.append(json.dumps(by_class, sort_keys=True)
                      if by_class is not None else None)
        for key in _REPLAY_KEYS:
            columns.append(f"replay_{key}")
            values.append(replay.get(key))
        columns.append("error")
        values.append(json.dumps(cell["error"], sort_keys=True)
                      if cell.get("error") is not None else None)
        columns.append("history")
        values.append(json.dumps(cell.get("history") or [])
                      if cell.get("history") else None)
        marks = ",".join("?" * len(columns))
        self._conn.execute(
            f"INSERT INTO cells ({','.join(columns)}) VALUES ({marks})",
            values,
        )

    # -- queries --------------------------------------------------------

    def runs(self, kind: str | None = None) -> list[dict]:
        """All ledger entries, oldest first."""
        sql = ("SELECT id, fingerprint, kind, run_id, schema_version,"
               " package_version, source, machines, wall_seconds,"
               " engine, counters, gauges FROM runs")
        args: tuple = ()
        if kind is not None:
            sql += " WHERE kind = ?"
            args = (kind,)
        sql += " ORDER BY id"
        out = []
        for row in self._conn.execute(sql, args):
            entry = dict(row)
            entry["machines"] = json.loads(entry["machines"])
            for field in ("engine", "counters", "gauges"):
                entry[field] = (json.loads(entry[field])
                                if entry[field] else None)
            out.append(entry)
        return out

    def resolve(self, ref: str) -> int:
        """Resolve a run reference to a ``runs.id``.

        Accepts a numeric id, ``latest`` / ``latest~N`` (N entries back,
        any kind), or a unique fingerprint hex prefix (≥ 6 chars).
        """
        ref = ref.strip()
        if ref.isdigit():
            run_ref = int(ref)
            row = self._conn.execute(
                "SELECT id FROM runs WHERE id = ?", (run_ref,)
            ).fetchone()
            if row is None:
                raise LedgerError(f"no ledger entry with id {run_ref}")
            return run_ref
        if ref == "latest" or ref.startswith("latest~"):
            back = 0
            if ref.startswith("latest~"):
                suffix = ref[len("latest~"):]
                if not suffix.isdigit():
                    raise LedgerError(f"bad run reference {ref!r}")
                back = int(suffix)
            rows = self._conn.execute(
                "SELECT id FROM runs ORDER BY id DESC LIMIT 1 OFFSET ?",
                (back,),
            ).fetchone()
            if rows is None:
                raise LedgerError(
                    f"ledger has no entry {back} back from latest")
            return rows["id"]
        if len(ref) >= 6 and all(c in "0123456789abcdef"
                                 for c in ref.lower()):
            rows = self._conn.execute(
                "SELECT id FROM runs WHERE fingerprint LIKE ?",
                (ref.lower() + "%",),
            ).fetchall()
            if len(rows) == 1:
                return rows[0]["id"]
            if len(rows) > 1:
                raise LedgerError(
                    f"fingerprint prefix {ref!r} is ambiguous "
                    f"({len(rows)} matches)")
        raise LedgerError(
            f"cannot resolve run reference {ref!r} (use an id, 'latest',"
            " 'latest~N', or a fingerprint prefix)")

    def cells(self, run_ref: int) -> list[dict]:
        """Per-cell payload dicts for one run, in ingest order."""
        out = []
        for row in self._conn.execute(
            "SELECT * FROM cells WHERE run_ref = ? ORDER BY id",
            (run_ref,),
        ):
            out.append(self._row_to_cell(row))
        return out

    @staticmethod
    def _row_to_cell(row: sqlite3.Row) -> dict:
        cell = {
            "benchmark": row["benchmark"],
            "machine": row["machine"],
            "options": row["options"],
            "scheduler": row["scheduler"],
            "status": row["status"],
            "attempts": row["attempts"],
            "cached": (None if row["cached"] is None
                       else bool(row["cached"])),
            "seconds": row["seconds"],
            "instructions": row["instructions"],
            "minor_cycles": row["minor_cycles"],
            "base_cycles": row["base_cycles"],
            "parallelism": row["parallelism"],
            "cpi": row["cpi"],
            "stalls": None,
            "replay": None,
            "error": (json.loads(row["error"])
                      if row["error"] else None),
            "history": (json.loads(row["history"])
                        if row["history"] else []),
        }
        if row["issued_cycles"] is not None or any(
            row[f"stall_{c}"] is not None for c in STALL_CAUSES
        ):
            stalls = {c: row[f"stall_{c}"] for c in STALL_CAUSES}
            stalls["issued_cycles"] = row["issued_cycles"]
            if row["by_class"]:
                stalls["by_class"] = json.loads(row["by_class"])
            cell["stalls"] = stalls
        if any(row[f"replay_{k}"] is not None for k in _REPLAY_KEYS):
            cell["replay"] = {k: row[f"replay_{k}"]
                              for k in _REPLAY_KEYS}
        return cell

    def bench_modes(self, run_ref: int) -> list[dict]:
        return [
            {"mode": row["mode"], "seconds": row["seconds"],
             "instructions": row["instructions"],
             "instr_per_sec": row["instr_per_sec"]}
            for row in self._conn.execute(
                "SELECT * FROM bench_modes WHERE run_ref = ? ORDER BY id",
                (run_ref,),
            )
        ]

    def resources(self, run_ref: int) -> list[dict]:
        return [
            {"track": row["track"], "rss_mb": row["rss_mb"],
             "rss_peak_mb": row["rss_peak_mb"],
             "cpu_seconds": row["cpu_seconds"],
             "samples": row["samples"]}
            for row in self._conn.execute(
                "SELECT * FROM resources WHERE run_ref = ? ORDER BY id",
                (run_ref,),
            )
        ]

    def payload(self, run_ref: int) -> dict:
        """Rebuild the uniform payload for one ledger entry.

        Inverse of ingestion: every numeric field round-trips exactly
        (SQLite REAL is an IEEE double; Python floats survive intact).
        """
        row = self._conn.execute(
            "SELECT * FROM runs WHERE id = ?", (run_ref,)
        ).fetchone()
        if row is None:
            raise LedgerError(f"no ledger entry with id {run_ref}")
        payload = {
            "kind": row["kind"],
            "run_id": row["run_id"],
            "schema": row["schema_version"],
            "package_version": row["package_version"],
            "source": row["source"],
            "machines": json.loads(row["machines"]),
            "wall_seconds": row["wall_seconds"],
            "engine": (json.loads(row["engine"])
                       if row["engine"] else None),
            "counters": (json.loads(row["counters"])
                         if row["counters"] else {}),
            "gauges": (json.loads(row["gauges"])
                       if row["gauges"] else {}),
            "cells": self.cells(run_ref),
            "resources": self.resources(run_ref),
        }
        if row["kind"] == "bench":
            payload["modes"] = self.bench_modes(run_ref)
        return payload

    def flaky_cells(self) -> list[dict]:
        """Every cell across history that was not a clean first-try ok.

        The dashboard's flaky-cell table: one entry per (run, cell)
        whose status is retried/degraded/failed, with the run reference
        and attempt history attached.
        """
        out = []
        for row in self._conn.execute(
            "SELECT cells.*, runs.run_id AS run_label FROM cells"
            " JOIN runs ON runs.id = cells.run_ref"
            " WHERE cells.status != 'ok' ORDER BY cells.run_ref, cells.id"
        ):
            cell = self._row_to_cell(row)
            cell["run_ref"] = row["run_ref"]
            cell["run_label"] = row["run_label"]
            out.append(cell)
        return out

    def export(self) -> dict:
        """The whole ledger as one canonical dict (dashboard data).

        The dashboard embeds exactly this structure as JSON; tests
        compare the embedded blob against a fresh ``export()`` to prove
        the dashboard shows the ledger, nothing else.
        """
        runs = []
        for entry in self.runs():
            run_ref = entry["id"]
            entry = dict(entry)
            if entry["kind"] == "bench":
                entry["modes"] = self.bench_modes(run_ref)
                entry["cells"] = []
            else:
                entry["cells"] = self.cells(run_ref)
                entry["modes"] = []
            entry["resources"] = self.resources(run_ref)
            runs.append(entry)
        return {
            "ledger_version": LEDGER_VERSION,
            "path": self.path,
            "runs": runs,
            "flaky": self.flaky_cells(),
        }

"""The run-report event schema and its validators — one shared module.

This is the single home of the knowledge that used to be split across
``scripts/check_report_schema.py`` (event names, required fields,
conservation laws) and ``scripts/validate_bench.py`` (the bench-document
throughput gate).  Both scripts now import it — by file path, via
:func:`importlib.util.spec_from_file_location`, so CI can validate a
report without installing the package — and
:mod:`repro.obs.recorder` re-exports :data:`EVENT_SCHEMA` /
:data:`SCHEMA_VERSION` from here, so the emitters and the validator can
never drift.

Deliberately **stdlib-only with no intra-package imports**: loading this
file executes nothing but constant definitions and pure functions.

Checks, per report file (:func:`check_file`):

* every line is a JSON object with a string ``event`` field;
* the first event is ``run_start`` carrying the expected schema version,
  and a ``run_end`` event is present;
* every event type is known and carries its required fields;
* common numeric fields have sane types and signs;
* every ``timing``/``sweep_row`` event with a ``stalls`` payload obeys
  the conservation law: the per-cause stall cycles plus ``issued_cycles``
  reconstruct ``minor_cycles`` exactly, and the per-class roll-up sums
  back to the per-cause totals;
* every event with a ``replay`` payload obeys
  ``memo_instructions + direct_instructions == instructions``,
  ``vectorized_blocks + scalar_fallback_blocks <= blocks`` and
  ``memo_persisted_hits <= memo_hits``;
* every ``status`` is one of ``ok/retried/degraded/failed``; ``engine``
  events obey status conservation
  (``ok + retried + degraded + failed == cells``);
* every ``cell`` event's ``history`` payload (per-attempt records for
  retried/degraded/failed cells) is structurally sound;
* ``span`` events carry non-negative microsecond times and well-formed
  span/parent IDs;
* ``metrics`` events carry numeric counters/gauges and histograms
  obeying bucket conservation, plus the cache conservation law
  ``cache.gets == cache.hits + cache.misses + cache.corrupt`` (and the
  same law for the persistent replay-memo store's ``cache.memo_*``
  family);
* ``resource`` events (per-track RSS/CPU telemetry from the sampling
  thread, see :mod:`repro.obs.resource`) carry a track name and
  non-negative gauges.

The bench-document side (:func:`check_throughput`) compares two
``BENCH_sim.json`` documents mode by mode and fails only on the
:data:`GATED_MODE` (warm replay — the steady-state cost every later
replay pays); other modes report informationally.
"""

from __future__ import annotations

import json

#: Version stamp carried by every ``run_start`` event.
SCHEMA_VERSION = 1

#: event name -> fields that must be present (value may be any JSON type;
#: the validator additionally type-checks the common numeric fields).
#: ``timing`` and ``cell`` events may carry an optional ``replay``
#: payload (replay-memo counters) and ``cell`` events an optional
#: ``history`` payload (per-attempt supervision records); ``engine``
#: events carry the corresponding ``memo_*`` roll-ups.  The validator
#: checks all three.  ``cell`` events may additionally carry an
#: optional ``scheduler`` string (the scheduler backend the cell
#: compiled through; absent in pre-backend reports, which implies the
#: historical ``"list"`` scheduler).
EVENT_SCHEMA: dict[str, tuple[str, ...]] = {
    "run_start": ("schema", "run_id"),
    "compile_pass": ("benchmark", "pass", "seconds"),
    "compile": ("benchmark", "seconds", "n_passes"),
    "timing": ("benchmark", "machine", "instructions", "minor_cycles",
               "base_cycles", "parallelism", "cpi"),
    "sweep_row": ("benchmark", "machine", "options", "instructions",
                  "base_cycles", "parallelism"),
    "cell": ("benchmark", "machine", "options", "seconds", "cached",
             "status"),
    "engine": ("workers", "cells", "groups", "cache_hits",
               "cache_misses", "seconds", "ok_cells", "retried_cells",
               "degraded_cells", "failed_cells"),
    "span": ("name", "cat", "track", "start_us", "dur_us", "span_id",
             "parent_id"),
    "metrics": ("counters", "gauges", "histograms"),
    "resource": ("track", "rss_peak_mb", "cpu_seconds", "samples"),
    "exhibit": ("ident", "title", "seconds"),
    "flow": ("run_id", "nodes", "executed", "restored", "failed"),
    "run_end": ("seconds", "counters"),
}

STALL_CAUSES = ("control", "raw_dep", "memory_order", "unit_conflict",
                "issue_width")

#: field -> (allowed types, may the value be negative?)
_NUMERIC_FIELDS: dict[str, tuple[tuple[type, ...], bool]] = {
    "seconds": ((int, float), False),
    "instructions": ((int,), False),
    "minor_cycles": ((int,), False),
    "base_cycles": ((int, float), False),
    "parallelism": ((int, float), False),
    "cpi": ((int, float), False),
    "n_passes": ((int,), False),
    # engine-summary counts
    "workers": ((int,), False),
    "cells": ((int,), False),
    "groups": ((int,), False),
    "cache_hits": ((int,), False),
    "cache_misses": ((int,), False),
    # engine replay-memo roll-ups
    "memo_hits": ((int,), False),
    "memo_misses": ((int,), False),
    "memo_fallbacks": ((int,), False),
    "memo_instructions": ((int,), False),
    "direct_instructions": ((int,), False),
    # vectorized-replay roll-ups (engine events and replay payloads)
    "vectorized_blocks": ((int,), False),
    "scalar_fallback_blocks": ((int,), False),
    "memo_persisted_hits": ((int,), False),
    # supervision status counts and retry accounting
    "ok_cells": ((int,), False),
    "retried_cells": ((int,), False),
    "degraded_cells": ((int,), False),
    "failed_cells": ((int,), False),
    "group_retries": ((int,), False),
    "pool_restarts": ((int,), False),
    "attempts": ((int,), False),
    # span events (microsecond times relative to the run's first span)
    "start_us": ((int, float), False),
    "dur_us": ((int, float), False),
    "span_id": ((int,), False),
    # resource telemetry gauges
    "rss_mb": ((int, float), False),
    "rss_peak_mb": ((int, float), False),
    "cpu_seconds": ((int, float), False),
    "samples": ((int,), False),
    # flow events (checkpointed workflow-DAG summaries)
    "nodes": ((int,), False),
    "executed": ((int,), False),
    "restored": ((int,), False),
    "failed": ((int,), False),
    # compile_pass size fields use -1 for "not applicable"
    "instrs_before": ((int,), True),
    "instrs_after": ((int,), True),
    "blocks_before": ((int,), True),
    "blocks_after": ((int,), True),
}

#: replay payload counters (all required, all non-negative ints)
_REPLAY_FIELDS = ("blocks", "memo_hits", "memo_misses", "fallbacks",
                  "memo_instructions", "direct_instructions")

#: vectorized-replay payload counters: optional (absent in pre-kernel
#: reports) but non-negative ints when present.
_REPLAY_VEC_FIELDS = ("vectorized_blocks", "scalar_fallback_blocks",
                      "memo_persisted_hits")

#: legal values of a cell/sweep_row supervision status
CELL_STATUSES = ("ok", "retried", "degraded", "failed")

#: fields every history attempt record must carry.
_HISTORY_FIELDS = ("attempt", "where", "kind", "message", "seconds")


def check_replay(replay: object, record: dict) -> list[str]:
    """Validate one replay-memo payload; returns error strings."""
    if not isinstance(replay, dict):
        return [f"replay must be an object, got {type(replay).__name__}"]
    errors = []
    for name in _REPLAY_FIELDS:
        value = replay.get(name)
        if isinstance(value, bool) or not isinstance(value, int) \
                or value < 0:
            errors.append(f"replay.{name} must be a non-negative int")
    for name in _REPLAY_VEC_FIELDS:
        if name not in replay:
            continue
        value = replay[name]
        if isinstance(value, bool) or not isinstance(value, int) \
                or value < 0:
            errors.append(f"replay.{name} must be a non-negative int")
    if errors:
        return errors
    instructions = record.get("instructions")
    if isinstance(instructions, int):
        total = replay["memo_instructions"] + replay["direct_instructions"]
        if total != instructions:
            errors.append(
                f"replay conservation violated: memoized+direct == "
                f"{total}, instructions == {instructions}"
            )
    # Vectorized-kernel conservation: every block is replayed by at
    # most one of the vectorized kernel / the scalar fallback pass, and
    # a persisted memo hit is in particular a memo hit.
    vec = replay.get("vectorized_blocks", 0)
    fallback = replay.get("scalar_fallback_blocks", 0)
    if vec + fallback > replay["blocks"]:
        errors.append(
            f"replay conservation violated: vectorized+fallback == "
            f"{vec + fallback} exceeds blocks == {replay['blocks']}"
        )
    persisted = replay.get("memo_persisted_hits", 0)
    if persisted > replay["memo_hits"]:
        errors.append(
            f"replay conservation violated: memo_persisted_hits == "
            f"{persisted} exceeds memo_hits == {replay['memo_hits']}"
        )
    return errors


def check_stalls(stalls: object, record: dict) -> list[str]:
    """Validate one stall-breakdown payload; returns error strings."""
    errors = []
    if not isinstance(stalls, dict):
        return [f"stalls must be an object, got {type(stalls).__name__}"]
    for cause in STALL_CAUSES + ("issued_cycles",):
        value = stalls.get(cause)
        if not isinstance(value, int) or value < 0:
            errors.append(f"stalls.{cause} must be a non-negative int")
    if errors:
        return errors
    total = sum(stalls[c] for c in STALL_CAUSES) + stalls["issued_cycles"]
    minor = record.get("minor_cycles")
    if isinstance(minor, int) and total != minor:
        errors.append(
            f"conservation violated: stalls+issued == {total}, "
            f"minor_cycles == {minor}"
        )
    by_class = stalls.get("by_class", {})
    if not isinstance(by_class, dict):
        errors.append("stalls.by_class must be an object")
        return errors
    for cause in STALL_CAUSES:
        rolled = 0
        for klass, row in by_class.items():
            if not isinstance(row, dict):
                errors.append(f"by_class[{klass!r}] must be an object")
                return errors
            rolled += row.get(cause, 0)
        if rolled != stalls[cause]:
            errors.append(
                f"by_class roll-up of {cause} is {rolled}, "
                f"expected {stalls[cause]}"
            )
    return errors


def check_history(history: object) -> list[str]:
    """Validate one cell ``history`` payload (per-attempt records)."""
    if not isinstance(history, (list, tuple)):
        return ["history must be a list of attempt records"]
    errors = []
    for i, entry in enumerate(history):
        if not isinstance(entry, dict):
            errors.append(f"history[{i}] must be an object")
            continue
        for name in _HISTORY_FIELDS:
            if name not in entry:
                errors.append(f"history[{i}]: missing field {name!r}")
        attempt = entry.get("attempt")
        if isinstance(attempt, bool) or not isinstance(attempt, int) \
                or attempt < 1:
            errors.append(f"history[{i}]: attempt must be a positive int")
        seconds = entry.get("seconds")
        if isinstance(seconds, bool) \
                or not isinstance(seconds, (int, float)) or seconds < 0:
            errors.append(
                f"history[{i}]: seconds must be a non-negative number")
        for name in ("where", "kind", "message"):
            if name in entry and not isinstance(entry[name], str):
                errors.append(f"history[{i}]: {name} must be a string")
        if entry.get("where") not in (None, "worker", "serial"):
            errors.append(
                f"history[{i}]: where must be 'worker' or 'serial'")
    return errors


def check_span(record: dict) -> list[str]:
    """Validate one span event's ID fields; returns error strings."""
    errors = []
    parent = record.get("parent_id")
    if parent is not None and (isinstance(parent, bool)
                               or not isinstance(parent, int)
                               or parent < 0):
        errors.append("span: parent_id must be null or a non-negative int")
    for name in ("name", "cat", "track"):
        if name in record and not isinstance(record[name], str):
            errors.append(f"span: field {name!r} must be a string")
    return errors


def check_resource(record: dict) -> list[str]:
    """Validate one resource-telemetry event; returns error strings.

    Numeric signs/types are covered by the shared numeric-field table;
    this adds the track name and the samples/peak coherence rule
    (a peak exists only if at least one sample was taken).
    """
    errors = []
    track = record.get("track")
    if not isinstance(track, str) or not track:
        errors.append("resource: track must be a non-empty string")
    samples = record.get("samples")
    peak = record.get("rss_peak_mb")
    if isinstance(samples, int) and not isinstance(samples, bool) \
            and samples == 0 and isinstance(peak, (int, float)) and peak > 0:
        errors.append("resource: rss_peak_mb > 0 with samples == 0")
    return errors


def check_histogram(name: str, hist: object) -> list[str]:
    """Validate one histogram payload; returns error strings."""
    if not isinstance(hist, dict):
        return [f"metrics: histogram {name!r} must be an object"]
    errors = []
    bounds = hist.get("bounds")
    counts = hist.get("counts")
    count = hist.get("count")
    total = hist.get("sum")
    if (not isinstance(bounds, list) or not bounds
            or any(isinstance(b, bool) or not isinstance(b, (int, float))
                   for b in bounds)
            or bounds != sorted(bounds)):
        errors.append(
            f"metrics: histogram {name!r} bounds must be a sorted "
            "non-empty numeric list")
    if (not isinstance(counts, list)
            or any(isinstance(c, bool) or not isinstance(c, int) or c < 0
                   for c in counts)):
        errors.append(
            f"metrics: histogram {name!r} counts must be "
            "non-negative ints")
    elif isinstance(bounds, list) and len(counts) != len(bounds) + 1:
        errors.append(
            f"metrics: histogram {name!r} needs len(bounds)+1 buckets "
            f"(overflow included), got {len(counts)}")
    if isinstance(count, bool) or not isinstance(count, int) or count < 0:
        errors.append(
            f"metrics: histogram {name!r} count must be a "
            "non-negative int")
    elif isinstance(counts, list) and all(
            isinstance(c, int) and not isinstance(c, bool) for c in counts
    ) and sum(counts) != count:
        errors.append(
            f"metrics: histogram {name!r} bucket conservation violated: "
            f"sum(counts) == {sum(counts)}, count == {count}")
    if isinstance(total, bool) or not isinstance(total, (int, float)):
        errors.append(f"metrics: histogram {name!r} sum must be numeric")
    return errors


def check_metrics(record: dict) -> list[str]:
    """Validate one metrics snapshot event; returns error strings."""
    errors = []
    for section in ("counters", "gauges"):
        values = record.get(section)
        if not isinstance(values, dict):
            errors.append(f"metrics: {section} must be an object")
            continue
        for name, value in values.items():
            if isinstance(value, bool) \
                    or not isinstance(value, (int, float)):
                errors.append(
                    f"metrics: {section}[{name!r}] must be numeric")
    histograms = record.get("histograms")
    if not isinstance(histograms, dict):
        errors.append("metrics: histograms must be an object")
    else:
        for name, hist in histograms.items():
            errors.extend(check_histogram(name, hist))
    counters = record.get("counters")
    if isinstance(counters, dict):
        # Cache conservation: every lookup ends as exactly one of
        # hit / miss / corrupt-drop.  The persistent replay-memo store
        # (cache.memo_*) obeys the same law as the trace cache.
        for family in ("cache.", "cache.memo_"):
            if f"{family}gets" not in counters:
                continue
            parts = (counters.get(f"{family}hits", 0)
                     + counters.get(f"{family}misses", 0)
                     + counters.get(f"{family}corrupt", 0))
            if parts != counters[f"{family}gets"]:
                errors.append(
                    f"metrics: {family}* conservation violated: "
                    f"hits+misses+corrupt == {parts}, "
                    f"gets == {counters[f'{family}gets']}")
    return errors


def check_event(record: dict) -> list[str]:
    """Validate one event object; returns error strings."""
    event = record.get("event")
    if not isinstance(event, str):
        return ["missing or non-string 'event' field"]
    required = EVENT_SCHEMA.get(event)
    if required is None:
        return [f"unknown event type {event!r}"]
    errors = [f"{event}: missing field {name!r}"
              for name in required if name not in record]
    for name, (types, allow_negative) in _NUMERIC_FIELDS.items():
        if name not in record:
            continue
        value = record[name]
        if isinstance(value, bool) or not isinstance(value, types):
            errors.append(f"{event}: field {name!r} has bad type "
                          f"{type(value).__name__}")
        elif not allow_negative and value < 0:
            errors.append(f"{event}: field {name!r} is negative ({value})")
    if event == "run_start" and record.get("schema") != SCHEMA_VERSION:
        errors.append(
            f"run_start: schema {record.get('schema')!r}, "
            f"expected {SCHEMA_VERSION}"
        )
    for name in ("scheduler", "replay_backend"):
        if name in record and not isinstance(record[name], str):
            errors.append(
                f"{event}: field {name!r} has bad type "
                f"{type(record[name]).__name__}"
            )
    if "status" in record and record["status"] not in CELL_STATUSES:
        errors.append(
            f"{event}: status {record['status']!r} not in "
            f"{'/'.join(CELL_STATUSES)}"
        )
    if event == "engine" and all(
        isinstance(record.get(name), int)
        for name in ("cells", "ok_cells", "retried_cells",
                     "degraded_cells", "failed_cells")
    ):
        # Status conservation: every cell ends in exactly one state.
        total = (record["ok_cells"] + record["retried_cells"]
                 + record["degraded_cells"] + record["failed_cells"])
        if total != record["cells"]:
            errors.append(
                f"engine: status conservation violated: "
                f"ok+retried+degraded+failed == {total}, "
                f"cells == {record['cells']}"
            )
    if event == "flow" and all(
        isinstance(record.get(name), int)
        for name in ("nodes", "executed", "restored", "failed")
    ):
        # Node conservation: every node ends in exactly one state
        # (skipped nodes are counted under ``failed``).
        total = (record["executed"] + record["restored"]
                 + record["failed"])
        if total != record["nodes"]:
            errors.append(
                f"flow: node conservation violated: "
                f"executed+restored+failed == {total}, "
                f"nodes == {record['nodes']}"
            )
    if event == "span":
        errors.extend(check_span(record))
    if event == "metrics":
        errors.extend(check_metrics(record))
    if event == "resource":
        errors.extend(check_resource(record))
    if "stalls" in record:
        errors.extend(check_stalls(record["stalls"], record))
    if "replay" in record and record["replay"] is not None:
        errors.extend(check_replay(record["replay"], record))
    if "history" in record and record["history"] is not None:
        errors.extend(check_history(record["history"]))
    return errors


def check_file(path: str) -> list[str]:
    """Validate one JSONL report; returns 'line: message' error strings."""
    errors: list[str] = []
    events: list[tuple[int, dict]] = []
    try:
        with open(path, encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    errors.append(f"line {lineno}: invalid JSON ({exc})")
                    continue
                if not isinstance(record, dict):
                    errors.append(f"line {lineno}: not a JSON object")
                    continue
                events.append((lineno, record))
                errors.extend(
                    f"line {lineno}: {msg}" for msg in check_event(record)
                )
    except OSError as exc:
        return [str(exc)]
    if not events:
        errors.append("report contains no events")
    else:
        if events[0][1].get("event") != "run_start":
            errors.append("first event must be 'run_start'")
        names = [record.get("event") for _, record in events]
        if "run_end" not in names:
            errors.append("no 'run_end' event found")
    return errors


# ----------------------------------------------------------------------
# Bench-document (BENCH_sim.json) throughput knowledge

#: The mode whose throughput gates; others are informational only.
GATED_MODE = "warm"

#: Default allowed fractional drop in warm instr/s before failing.
DEFAULT_MAX_REGRESSION = 0.10


def check_throughput(
    candidate: dict, baseline: dict,
    max_regression: float = DEFAULT_MAX_REGRESSION,
) -> tuple[list[str], list[str]]:
    """Compare two ``BENCH_sim.json`` documents mode by mode.

    Returns ``(failures, lines)``: the failure messages (empty when the
    gated mode holds) and human-readable report lines for every mode in
    the baseline.  Only :data:`GATED_MODE` can fail; a missing or
    malformed gated mode in either document is itself a failure so a
    truncated candidate can't pass silently.
    """
    failures: list[str] = []
    lines: list[str] = []
    cand_modes = candidate.get("modes") or {}
    base_modes = baseline.get("modes") or {}
    for label in base_modes:
        base = (base_modes.get(label) or {}).get("instr_per_sec")
        cand = (cand_modes.get(label) or {}).get("instr_per_sec")
        if not isinstance(base, (int, float)) or base <= 0 \
                or not isinstance(cand, (int, float)) or cand <= 0:
            if label == GATED_MODE:
                failures.append(
                    f"{label}: instr_per_sec missing or non-positive "
                    f"(baseline={base!r}, candidate={cand!r})"
                )
            continue
        ratio = cand / base
        gated = label == GATED_MODE
        verdict = "ok"
        if ratio < 1.0 - max_regression:
            verdict = "REGRESSED" if gated else "slower (not gated)"
            if gated:
                failures.append(
                    f"{label}: {cand:,.0f} instr/s is "
                    f"{(1.0 - ratio):.1%} below baseline {base:,.0f} "
                    f"(allowed {max_regression:.0%})"
                )
        lines.append(
            f"  {label:7s} baseline {base / 1e6:8.2f} M/s  "
            f"candidate {cand / 1e6:8.2f} M/s  "
            f"({ratio:6.1%}) {verdict}"
        )
    if GATED_MODE not in base_modes:
        failures.append(f"baseline has no '{GATED_MODE}' mode")
    return failures, lines

"""Optimization passes and the compile-pipeline driver."""

from .alias import bind_array_parameters, may_conflict
from .cleanup import cleanup_control_flow, remove_redundant_jumps, thread_jumps
from .dataflow import Liveness, liveness
from .driver import compile_module, compile_source
from .globalopt import loop_invariant_code_motion
from .local import dead_code_elimination, value_number_function
from .options import AliasLevel, CompilerOptions, OptLevel
from .regalloc import (
    AllocationStats,
    assign_temporaries,
    promote_variables,
)
from .unroll import UnrollStats, unroll_module

__all__ = [
    "AliasLevel",
    "AllocationStats",
    "CompilerOptions",
    "Liveness",
    "OptLevel",
    "UnrollStats",
    "assign_temporaries",
    "bind_array_parameters",
    "cleanup_control_flow",
    "compile_module",
    "compile_source",
    "dead_code_elimination",
    "liveness",
    "loop_invariant_code_motion",
    "may_conflict",
    "promote_variables",
    "remove_redundant_jumps",
    "thread_jumps",
    "unroll_module",
    "value_number_function",
]

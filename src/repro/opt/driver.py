"""The compile pipeline: source -> optimized, scheduled machine code.

Order of phases (mirroring the paper's language system):

1. parse; loop unrolling (source-to-source, naive or careful);
2. semantic analysis; code generation (naive code, virtual registers);
3. intra-block optimization (value numbering) + dead-code elimination;
4. global optimization (loop-invariant code motion) + DCE;
5. global register allocation (home registers) + cleanup VN/DCE;
6. interprocedural alias binding (careful mode);
7. temporary assignment (linear scan onto the temp pool);
8. pipeline scheduling for the target machine description.

Every phase runs under ``profile.measure(...)``: pass a
:class:`~repro.obs.profile.CompileProfile` to collect wall time and
instruction/block counts per pass (the ``--profile`` CLI path); with the
default :data:`~repro.obs.profile.NULL_PROFILE` the measurement hooks
are no-ops.
"""

from __future__ import annotations

from ..isa.program import Program
from ..lang import ast
from ..lang.codegen import generate
from ..lang.parser import parse
from ..lang.semantics import check
from ..obs.profile import NULL_PROFILE, CompileProfile, SchedStats
from ..sched import registry as sched_registry
from .alias import bind_array_parameters
from .cleanup import cleanup_control_flow
from .globalopt import loop_invariant_code_motion
from .local import dead_code_elimination, value_number_function
from .options import CompilerOptions, OptLevel
from .regalloc import assign_temporaries, promote_variables
from .unroll import resolve_partial_decls, unroll_module


def compile_source(
    source: str,
    options: CompilerOptions | None = None,
    profile: CompileProfile | None = None,
) -> Program:
    """Compile Tin source text under ``options`` (defaults to full opt)."""
    prof = profile if profile is not None else NULL_PROFILE
    with prof.measure("parse"):
        module = parse(source)
    return compile_module(module, options, profile)


def compile_module(
    module: ast.Module,
    options: CompilerOptions | None = None,
    profile: CompileProfile | None = None,
) -> Program:
    """Compile a freshly parsed module.  The module is consumed (the
    unroller rewrites it in place); parse a new one per compilation."""
    opts = options or CompilerOptions()
    prof = profile if profile is not None else NULL_PROFILE

    if opts.unroll > 1:
        with prof.measure("unroll"):
            unroll_module(module, opts.unroll, opts.careful)
            resolve_partial_decls(module)

    with prof.measure("semantics"):
        info = check(module)
    with prof.measure("codegen"):
        program = generate(module, info)

    if opts.do_local:
        with prof.measure("local-opt", program):
            for fn in program.functions.values():
                value_number_function(fn, opts.alias_level)
                dead_code_elimination(fn)
                cleanup_control_flow(fn)

    if opts.do_global:
        with prof.measure("global-opt", program):
            for fn in program.functions.values():
                loop_invariant_code_motion(fn, opts.alias_level)
                dead_code_elimination(fn)
                cleanup_control_flow(fn)

    if opts.do_regalloc:
        with prof.measure("regalloc", program):
            promote_variables(program, opts.regfile)
            if opts.do_local:
                for fn in program.functions.values():
                    value_number_function(fn, opts.alias_level)
                    dead_code_elimination(fn)

    if opts.careful:
        with prof.measure("alias-binding", program):
            bind_array_parameters(program)

    with prof.measure("temp-alloc", program):
        for fn in program.functions.values():
            assign_temporaries(fn, opts.regfile)

    if opts.do_schedule:
        stats = SchedStats() if prof.enabled else None
        backend = sched_registry.get(opts.scheduler)
        with prof.measure("schedule", program):
            for fn in program.functions.values():
                backend.schedule_function(
                    fn, opts.schedule_for, opts.alias_level,
                    opts.sched_heuristic, stats,
                )
        if stats is not None:
            prof.sched = stats

    with prof.measure("validate", program):
        program.validate()
    return program

"""Memory alias analysis.

:func:`may_conflict` is the oracle the scheduler's dependence DAG and the
local value numbering use to decide whether two memory operations can touch
the same word.  Its precision is controlled by
:class:`~repro.opt.options.AliasLevel`.

:func:`bind_array_parameters` is the interprocedural analysis of careful
unrolling ("to do interprocedural alias analysis to determine when memory
references are independent", Section 6): when every call site binds an
array parameter to the same concrete array, the parameter's accesses are
re-labelled with that array's storage object.
"""

from __future__ import annotations

from ..isa.instruction import MemRef
from ..isa.opcodes import Opcode
from ..isa.program import Program
from .options import AliasLevel


def may_conflict(a: MemRef | None, b: MemRef | None, level: AliasLevel) -> bool:
    """May the two accesses touch the same word?

    At every level, two accesses whose addresses are *statically known*
    (a named scalar, a constant array index — but not an access through an
    array parameter, whose base is unknown) conflict only when the
    addresses are equal: any scheduler gets that much by comparing
    displacement fields.  Beyond that, CONSERVATIVE assumes everything
    else collides ("the scheduler must assume that two memory locations
    are the same unless it can prove otherwise").

    Note the AFFINE same-object test has a side condition — none of the
    affine core's variables may be redefined between the two accesses —
    which the *caller* must check (see ``repro.sched.dag``); this function
    only compares the static references.
    """
    if a is None or b is None:
        return True
    known_a = a.offset is not None and not a.may_alias_all
    known_b = b.offset is not None and not b.may_alias_all
    if known_a and known_b:
        return a.obj == b.obj and a.offset == b.offset
    if level <= AliasLevel.CONSERVATIVE:
        return True
    if a.obj == b.obj:
        if (
            level >= AliasLevel.AFFINE
            and a.offset is not None
            and b.offset is not None
        ):
            return a.offset == b.offset
        # Same-object accesses with *affine* tags can be disambiguated,
        # but only under a positional side condition (no redefinition of
        # the index variables in between) that this position-free oracle
        # cannot check; the scheduler's DAG builder applies that rule.
        return True
    # Distinct array parameters of the same function are assumed
    # independent at AFFINE level: this is the Fortran argument-aliasing
    # rule the original Linpack/Livermore codes rely on, and the result
    # the paper's hand "interprocedural alias analysis" established.
    if (
        level >= AliasLevel.AFFINE
        and a.obj.startswith("p:")
        and b.obj.startswith("p:")
    ):
        return False
    # Distinct objects.  Accesses through an (unbound) array parameter can
    # alias any array-like storage, but never a named scalar.
    if a.may_alias_all or b.may_alias_all:
        other = b if a.may_alias_all else a
        return other.is_array or other.may_alias_all
    return False


def bind_array_parameters(program: Program, max_rounds: int = 4) -> int:
    """Interprocedural binding of array parameters to concrete arrays.

    Scans every call site for the argument moves the code generator
    annotated with the passed array's storage object.  If *all* call sites
    of a function pass the same object for a parameter, the function's
    ``p:<fn>:<param>`` references are rewritten to that object.  Iterates
    so pass-through chains (f passes its own parameter to g) resolve.

    Returns the number of parameters bound.
    """
    bound_total = 0
    for _ in range(max_rounds):
        bindings = _collect_bindings(program)
        # A parameter binding resolves when exactly one non-parameter
        # object is seen for it.  We only rewrite a function when *every*
        # array parameter resolves and the bound objects are pairwise
        # distinct — a partial or overlapping rewrite would defeat the
        # argument-independence rule applied at AFFINE level.
        per_fn: dict[str, dict[str, str | None]] = {}
        for key, objs in bindings.items():
            fn_name = key.split(":", 2)[1]
            obj = next(iter(objs)) if len(objs) == 1 else None
            if obj is not None and obj.startswith("p:"):
                obj = None
            per_fn.setdefault(fn_name, {})[key] = obj
        resolved: dict[str, str] = {}
        for fn_name, param_objs in per_fn.items():
            objs = list(param_objs.values())
            if all(o is not None for o in objs) and len(set(objs)) == len(objs):
                resolved.update(param_objs)  # type: ignore[arg-type]
        if not resolved:
            break
        changed = _apply_bindings(program, resolved)
        bound_total += changed
        if not changed:
            break
    return bound_total


def _collect_bindings(program: Program) -> dict[str, set[str]]:
    """param key ('p:<fn>:<name>') -> set of argument objects seen."""
    param_keys: dict[str, list[str]] = {}
    for fn in program.functions.values():
        param_keys[fn.name] = [f"p:{fn.name}:{p}" for p in fn.params]

    bindings: dict[str, set[str]] = {}
    for fn in program.functions.values():
        for block in fn.blocks:
            pending: dict[int, str] = {}
            for ins in block.instrs:
                if (
                    ins.op is Opcode.MOV
                    and ins.mem is not None
                    and ins.dest is not None
                    and not ins.dest.virtual
                ):
                    # argument-register move annotated with the array object
                    pending[ins.dest.index] = ins.mem.obj
                elif ins.op is Opcode.CALL:
                    callee = program.functions.get(ins.target or "")
                    if callee is not None:
                        from ..isa.registers import FIRST_ARG_INDEX

                        for i, _param in enumerate(callee.params):
                            key = f"p:{callee.name}:{callee.params[i]}"
                            obj = pending.get(FIRST_ARG_INDEX + i)
                            if obj is not None:
                                bindings.setdefault(key, set()).add(obj)
                    pending.clear()
    return bindings


def _apply_bindings(program: Program, resolved: dict[str, str]) -> int:
    """Rewrite MemRefs whose object resolved; returns rewrite count."""
    from dataclasses import replace

    changed = 0
    for fn in program.functions.values():
        for block in fn.blocks:
            for ins in block.instrs:
                mem = ins.mem
                if mem is not None and mem.obj in resolved:
                    ins.mem = replace(
                        mem, obj=resolved[mem.obj], may_alias_all=False
                    )
                    changed += 1
    return changed

"""Intra-block optimizations: local value numbering and dead-code removal.

The value-numbering pass implements, in one sweep per basic block, the
paper's "intra-block optimizations":

* constant folding (including floating point) and algebraic identities;
* strength reduction of multiplies by powers of two into shifts;
* copy propagation through ``MOV`` chains;
* common subexpression elimination, including redundant-load elimination
  and store-to-load forwarding keyed on *value-identical addresses*
  (the Livermore "address of A[I] computed twice" case of Section 4.4).

Dead-code elimination is liveness-based and only ever deletes
instructions that write an unused **virtual** register; stores, calls and
control flow are never touched.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa import build
from ..isa.instruction import Instruction, MemRef
from ..isa.opcodes import Opcode
from ..isa.program import Function
from ..isa.registers import ZERO, Reg
from ..sim.interp import _ALU_FUNCS
from .alias import may_conflict
from .dataflow import liveness
from .options import AliasLevel

_COMMUTATIVE = frozenset(
    op for op in Opcode if op.info.commutative
)

#: opcodes whose removal when dead could suppress a runtime fault; the
#: classical optimizer removes them anyway (so do we), but folding a
#: *constant* division by zero is never done.
_TRAPPING = frozenset({Opcode.DIV, Opcode.MOD, Opcode.FDIV})

_FLOAT_RESULT = frozenset(
    {Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV, Opcode.FNEG,
     Opcode.CVTIF, Opcode.LIF}
)


@dataclass(slots=True)
class _AvailLoad:
    """One memory word known to be in a register."""

    mem: MemRef | None
    addr_key: tuple[int, int]   # (value number of base, displacement)
    vn: int


@dataclass(slots=True)
class _VNState:
    next_vn: int = 0
    reg_vn: dict[Reg, int] = field(default_factory=dict)
    vn_regs: dict[int, list[Reg]] = field(default_factory=dict)
    vn_const: dict[int, int | float] = field(default_factory=dict)
    expr_vn: dict[tuple, int] = field(default_factory=dict)
    loads: list[_AvailLoad] = field(default_factory=list)

    def fresh(self) -> int:
        vn = self.next_vn
        self.next_vn += 1
        return vn

    def vn_of(self, reg: Reg) -> int:
        vn = self.reg_vn.get(reg)
        if vn is None:
            vn = self.fresh()
            self.reg_vn[reg] = vn
            self.vn_regs.setdefault(vn, []).append(reg)
        return vn

    def const_vn(self, value: int | float, is_float: bool) -> int:
        key = ("const", is_float, repr(value))
        vn = self.expr_vn.get(key)
        if vn is None:
            vn = self.fresh()
            self.expr_vn[key] = vn
            self.vn_const[vn] = value
        return vn

    def canonical(self, vn: int) -> Reg | None:
        regs = self.vn_regs.get(vn)
        if regs:
            return regs[0]
        return None

    def set_reg(self, reg: Reg, vn: int) -> None:
        old = self.reg_vn.get(reg)
        if old is not None:
            holders = self.vn_regs.get(old)
            if holders and reg in holders:
                holders.remove(reg)
        self.reg_vn[reg] = vn
        self.vn_regs.setdefault(vn, []).append(reg)

    def kill_reg(self, reg: Reg) -> None:
        old = self.reg_vn.pop(reg, None)
        if old is not None:
            holders = self.vn_regs.get(old)
            if holders and reg in holders:
                holders.remove(reg)


def value_number_function(
    fn: Function, alias_level: AliasLevel = AliasLevel.CONSERVATIVE
) -> int:
    """Run local value numbering over every block; returns #rewrites."""
    changed = 0
    # Home registers that hold *global* variables are written by callees;
    # local home registers are callee-save and survive calls.
    global_homes = tuple(
        reg for obj, reg in fn.home_bindings.items() if obj.startswith("g:")
    )
    for block in fn.blocks:
        changed += _value_number_block(block, alias_level, global_homes)
    return changed


def _value_number_block(
    block, alias_level: AliasLevel, global_homes: tuple[Reg, ...] = ()
) -> int:
    state = _VNState()
    state.set_reg(ZERO, state.const_vn(0, is_float=False))
    out: list[Instruction] = []
    changed = 0
    # Loads may be disambiguated against stores at OBJECT precision at
    # most: affine claims carry a side condition local VN cannot check.
    kill_level = min(alias_level, AliasLevel.OBJECT)

    for ins in block.instrs:
        ins, delta = _process(ins, state, kill_level, global_homes)
        changed += delta
        out.append(ins)
    block.instrs = out
    return changed


def _replace_srcs(ins: Instruction, state: _VNState) -> bool:
    """Canonicalize sources through copy propagation."""
    new_srcs = []
    replaced = False
    for r in ins.srcs:
        vn = state.vn_of(r)
        canon = state.canonical(vn)
        if canon is not None and canon != r:
            new_srcs.append(canon)
            replaced = True
        else:
            new_srcs.append(r)
    if replaced:
        ins.srcs = tuple(new_srcs)
    return replaced


def _process(
    ins: Instruction,
    state: _VNState,
    kill_level: AliasLevel,
    global_homes: tuple[Reg, ...] = (),
) -> tuple[Instruction, int]:
    op = ins.op
    info = op.info
    changed = 1 if _replace_srcs(ins, state) else 0

    if op in (Opcode.LI, Opcode.LIF):
        vn = state.const_vn(ins.imm, is_float=op is Opcode.LIF)
        assert ins.dest is not None
        state.set_reg(ins.dest, vn)
        return ins, changed

    if op is Opcode.MOV:
        vn = state.vn_of(ins.srcs[0])
        assert ins.dest is not None
        state.set_reg(ins.dest, vn)
        return ins, changed

    if op is Opcode.LW:
        base_vn = state.vn_of(ins.srcs[0])
        addr_key = (base_vn, int(ins.imm or 0))
        for avail in state.loads:
            if avail.addr_key == addr_key:
                canon = state.canonical(avail.vn)
                if canon is not None and ins.dest is not None:
                    new = build.mov(ins.dest, canon)
                    new.comment = "cse-load"
                    state.set_reg(ins.dest, avail.vn)
                    return new, changed + 1
        vn = state.fresh()
        assert ins.dest is not None
        state.set_reg(ins.dest, vn)
        state.loads.append(_AvailLoad(ins.mem, addr_key, vn))
        return ins, changed

    if op is Opcode.SW:
        value_vn = state.vn_of(ins.srcs[0])
        base_vn = state.vn_of(ins.srcs[1])
        addr_key = (base_vn, int(ins.imm or 0))
        kept: list[_AvailLoad] = []
        for avail in state.loads:
            if avail.addr_key == addr_key:
                continue  # superseded below
            if may_conflict(ins.mem, avail.mem, kill_level):
                continue
            kept.append(avail)
        kept.append(_AvailLoad(ins.mem, addr_key, value_vn))
        state.loads = kept
        return ins, changed

    if op is Opcode.CALL:
        state.loads.clear()
        # The callee may clobber ra, rv, the argument registers, and any
        # home register holding a global variable (it may assign to the
        # global); local home registers are callee-save.
        from ..isa.registers import ARG_REGS, RA, RV

        for reg in (RA, RV, *ARG_REGS, *global_homes):
            state.kill_reg(reg)
        if ins.dest is not None:
            state.set_reg(ins.dest, state.fresh())
        return ins, changed

    if info.is_branch or op in (Opcode.NOP, Opcode.HALT):
        return ins, changed

    # Plain computational instruction.
    assert ins.dest is not None
    src_vns = tuple(state.vn_of(r) for r in ins.srcs)
    consts = [state.vn_const.get(v) for v in src_vns]

    folded = _try_fold(ins, consts, state)
    if folded is not None:
        return folded, changed + 1

    simplified = _try_identity(ins, src_vns, consts, state)
    if simplified is not None:
        return simplified, changed + 1

    reduced = _try_strength_reduce(ins, src_vns, consts, state)
    if reduced is not None:
        ins = reduced
        changed += 1
        src_vns = tuple(state.vn_of(r) for r in ins.srcs)

    key_vns = src_vns
    if op in _COMMUTATIVE:
        key_vns = tuple(sorted(src_vns))
    key = (ins.op.value, key_vns, ins.imm)
    existing = state.expr_vn.get(key)
    if existing is not None and ins.op not in _TRAPPING:
        canon = state.canonical(existing)
        if canon is not None:
            new = build.mov(ins.dest, canon)
            new.comment = "cse"
            state.set_reg(ins.dest, existing)
            return new, changed + 1
    vn = state.fresh()
    state.expr_vn[key] = vn
    state.set_reg(ins.dest, vn)
    return ins, changed


def _try_fold(ins: Instruction, consts, state: _VNState) -> Instruction | None:
    """Constant-fold when every operand is a known constant."""
    if any(c is None for c in consts) and ins.srcs:
        return None
    fnc = _ALU_FUNCS.get(ins.op)
    if fnc is None:
        return None
    try:
        if ins.op.info.has_imm and len(consts) == 1:
            value = fnc(consts[0], ins.imm)
        elif len(consts) == 2:
            value = fnc(consts[0], consts[1])
        elif len(consts) == 1:
            value = fnc(consts[0])
        else:
            return None
    except Exception:
        return None  # e.g. constant division by zero: leave it to run time
    assert ins.dest is not None
    is_float = isinstance(value, float)
    new = build.lif(ins.dest, value) if is_float else build.li(ins.dest, value)
    new.comment = "fold"
    state.set_reg(ins.dest, state.const_vn(value, is_float))
    return new


def _copy_to(dest: Reg, vn: int, state: _VNState) -> Instruction | None:
    canon = state.canonical(vn)
    if canon is None:
        return None
    new = build.mov(dest, canon)
    new.comment = "identity"
    state.set_reg(dest, vn)
    return new


def _try_identity(
    ins: Instruction, src_vns, consts, state: _VNState
) -> Instruction | None:
    """Algebraic identities: x+0, x-0, x*1, x*0, x<<0, x|0, x^0 ..."""
    op = ins.op
    dest = ins.dest
    assert dest is not None
    if op in (Opcode.ADDI, Opcode.ORI, Opcode.XORI, Opcode.SLLI, Opcode.SRAI,
              Opcode.SRLI) and ins.imm == 0:
        return _copy_to(dest, src_vns[0], state)
    if op in (Opcode.ADD, Opcode.OR, Opcode.XOR):
        if consts[1] == 0:
            return _copy_to(dest, src_vns[0], state)
        if consts[0] == 0:
            return _copy_to(dest, src_vns[1], state)
    if op is Opcode.SUB and consts[1] == 0:
        return _copy_to(dest, src_vns[0], state)
    if op is Opcode.MUL:
        for a, b in ((0, 1), (1, 0)):
            if consts[a] == 1:
                return _copy_to(dest, src_vns[b], state)
            if consts[a] == 0:
                new = build.li(dest, 0)
                new.comment = "mul0"
                state.set_reg(dest, state.const_vn(0, is_float=False))
                return new
    if op is Opcode.FMUL:
        for a, b in ((0, 1), (1, 0)):
            if consts[a] == 1.0:
                return _copy_to(dest, src_vns[b], state)
    if op is Opcode.FADD:
        for a, b in ((0, 1), (1, 0)):
            if consts[a] == 0.0:
                return _copy_to(dest, src_vns[b], state)
    if op is Opcode.FSUB and consts[1] == 0.0:
        return _copy_to(dest, src_vns[0], state)
    return None


def _try_strength_reduce(
    ins: Instruction, src_vns, consts, state: _VNState
) -> Instruction | None:
    """Rewrite integer multiply by a power of two into a shift."""
    if ins.op is not Opcode.MUL:
        return None
    for a, b in ((1, 0), (0, 1)):
        c = consts[a]
        if isinstance(c, int) and c > 1 and (c & (c - 1)) == 0:
            assert ins.dest is not None
            new = build.alui(
                Opcode.SLLI, ins.dest, ins.srcs[b], c.bit_length() - 1
            )
            new.comment = "strength"
            return new
    return None


def dead_code_elimination(fn: Function, max_rounds: int = 10) -> int:
    """Remove instructions whose virtual destination is never used.

    Liveness-driven; iterates until fixpoint because deleting a use can
    make its producers dead.  Returns the number of removed instructions.
    """
    removed_total = 0
    for _ in range(max_rounds):
        lv = liveness(fn)
        removed = 0
        for block in fn.blocks:
            live: set[Reg] = set(lv.live_out[block.label])
            kept_rev: list[Instruction] = []
            for ins in reversed(block.instrs):
                dest = ins.dest
                removable = (
                    dest is not None
                    and dest.virtual
                    and dest not in live
                    and not ins.op.info.is_store
                    and not ins.op.info.is_branch
                )
                if not removable and ins.op is Opcode.MOV:
                    if dest == ins.srcs[0]:
                        removable = True  # mov x <- x
                if removable:
                    removed += 1
                    continue
                if dest is not None and dest.virtual:
                    live.discard(dest)
                for r in ins.srcs:
                    if r.virtual:
                        live.add(r)
                kept_rev.append(ins)
            block.instrs = list(reversed(kept_rev))
        removed_total += removed
        if removed == 0:
            break
    return removed_total

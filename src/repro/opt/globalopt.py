"""Global optimizations: loop-invariant code motion.

This is the paper's "global optimizations" step (Figure 4-8): "to move
invariant code out of a loop, we just remove a large computation and
replace it with a reference to a single temporary" (Section 4.4).

The pass finds natural loops, materializes a preheader in front of each
header, and hoists invariant computations into it:

* pure, non-trapping computations (ALU, moves, immediates, FP except
  divides) may be hoisted speculatively from anywhere in the loop body;
* loads may be hoisted only from the header block (which is executed at
  least once whenever the preheader runs) and only when no store or call
  in the loop may touch the same memory.

Correctness conditions: the destination is a virtual register with a
single definition in the loop, is not live into the header (no use before
the definition), is not live at any loop exit, and every source is loop
invariant (defined outside, or by an already-hoisted instruction).
"""

from __future__ import annotations

from ..isa.instruction import Instruction
from ..isa.opcodes import InstrClass, Opcode
from ..isa.program import BasicBlock, Function, natural_loops
from ..isa.registers import Reg
from .alias import may_conflict
from .dataflow import liveness
from .options import AliasLevel

_PURE_CLASSES = frozenset(
    {
        InstrClass.LOGICAL,
        InstrClass.SHIFT,
        InstrClass.ADDSUB,
        InstrClass.INTMUL,
        InstrClass.FPADD,
        InstrClass.FPMUL,
        InstrClass.FPCVT,
        InstrClass.MOVE,
    }
)


def loop_invariant_code_motion(
    fn: Function, alias_level: AliasLevel = AliasLevel.CONSERVATIVE
) -> int:
    """Hoist loop-invariant code in ``fn``; returns #hoisted instructions."""
    hoisted_total = 0
    processed: set[str] = set()
    while True:
        loops = natural_loops(fn)  # innermost (smallest) first
        target = None
        for header, body in loops:
            if header not in processed:
                target = (header, body)
                break
        if target is None:
            break
        header, body = target
        processed.add(header)
        hoisted_total += _process_loop(fn, header, body, alias_level)
    return hoisted_total


def _ensure_preheader(fn: Function, header: str, body: set[str]) -> BasicBlock:
    """Insert a preheader block immediately before ``header``."""
    index = fn.block_index()[header]
    pre_label = f"{header}.pre"
    assert pre_label not in fn.block_index(), "preheader already exists"

    # Safety: no in-loop predecessor may reach the header by fallthrough,
    # or the preheader would execute on the back edge.  Our code generator
    # always uses explicit jumps for back edges.
    if index > 0:
        prev = fn.blocks[index - 1]
        if prev.label in body and prev.terminator is None:
            raise AssertionError(
                f"{fn.name}: in-loop fallthrough into loop header {header}"
            )
        if prev.label in body and prev.terminator is not None:
            term = prev.terminator
            if term.op in (Opcode.BEQZ, Opcode.BNEZ):
                raise AssertionError(
                    f"{fn.name}: in-loop conditional fallthrough into "
                    f"loop header {header}"
                )

    pre = BasicBlock(pre_label)
    fn.blocks.insert(index, pre)
    for block in fn.blocks:
        if block.label in body or block.label == pre_label:
            continue
        term = block.terminator
        if term is not None and term.target == header and term.op in (
            Opcode.J, Opcode.BEQZ, Opcode.BNEZ,
        ):
            term.target = pre_label
    return pre


def _process_loop(
    fn: Function, header: str, body: set[str], alias_level: AliasLevel
) -> int:
    pre = _ensure_preheader(fn, header, body)
    block_map = fn.block_map()
    body_blocks = [b for b in fn.blocks if b.label in body]

    # Definition counts for every register (physical included: a CALL
    # defines ra, which makes ra-derived values variant).
    def_count: dict[Reg, int] = {}
    store_refs = []
    has_call = False
    from ..isa.registers import ARG_REGS, RV

    global_homes = tuple(
        reg for obj, reg in fn.home_bindings.items() if obj.startswith("g:")
    )
    for block in body_blocks:
        for ins in block.instrs:
            if ins.dest is not None:
                def_count[ins.dest] = def_count.get(ins.dest, 0) + 1
            if ins.op.info.is_store:
                store_refs.append(ins.mem)
            if ins.op is Opcode.CALL:
                has_call = True
                # the callee may clobber rv, the argument registers, and
                # home registers holding globals
                for reg in (RV, *ARG_REGS, *global_homes):
                    def_count[reg] = def_count.get(reg, 0) + 1

    succ = fn.successors()
    exit_targets = {
        s
        for label in body
        for s in succ[label]
        if s not in body
    }

    # The alias cap: affine disambiguation is only valid between points
    # with no redefinition of the index variables; across loop iterations
    # the index variable advances, so cap the oracle at object precision.
    cap = min(alias_level, AliasLevel.OBJECT)

    hoisted = 0
    changed = True
    while changed:
        changed = False
        lv = liveness(fn)
        live_stop = set(lv.live_in[header])
        for target in exit_targets:
            live_stop |= lv.live_in[target]
        for block in body_blocks:
            kept: list[Instruction] = []
            for ins in block.instrs:
                if _hoistable(
                    ins, block, header, def_count, store_refs, has_call,
                    live_stop, cap,
                ):
                    pre.instrs.append(ins)
                    def_count[ins.dest] -= 1  # now invariant for its users
                    hoisted += 1
                    changed = True
                else:
                    kept.append(ins)
            block.instrs = kept
    return hoisted


def _hoistable(
    ins: Instruction,
    block: BasicBlock,
    header: str,
    def_count: dict[Reg, int],
    store_refs: list,
    has_call: bool,
    live_stop: set[Reg],
    alias_cap: AliasLevel,
) -> bool:
    dest = ins.dest
    if dest is None or not dest.virtual:
        return False
    if def_count.get(dest, 0) != 1:
        return False
    if dest in live_stop:
        return False
    for src in ins.srcs:
        if def_count.get(src, 0) != 0:
            return False
    if ins.op.info.is_load:
        if has_call or block.label != header:
            return False
        return not any(
            may_conflict(ins.mem, s, alias_cap) for s in store_refs
        )
    if ins.op.klass not in _PURE_CLASSES:
        return False
    if ins.op in (Opcode.DIV, Opcode.MOD, Opcode.FDIV):
        return False
    return True

"""Control-flow cleanup: jump threading and redundant-jump removal.

Code generation (especially after short-circuit lowering and loop
unrolling) leaves behind empty blocks that only jump onward, and jumps
whose target is the very next block.  Branches are real instructions in
the trace, so cleaning these up matters for the measured numbers the
same way it did for the paper's compiler.

Passes:

* :func:`thread_jumps` — retarget any branch whose destination block is
  empty except for an unconditional jump, following chains (with cycle
  protection), then drop the now-unreachable trampolines;
* :func:`remove_redundant_jumps` — delete a ``J`` whose target is the
  next block in layout order (fallthrough reaches it anyway).
"""

from __future__ import annotations

from ..isa.opcodes import Opcode
from ..isa.program import Function, remove_unreachable_blocks


def thread_jumps(fn: Function) -> int:
    """Retarget branches through empty jump-only blocks; returns the
    number of retargeted edges."""
    block_map = fn.block_map()

    def resolve(label: str) -> str:
        seen = {label}
        current = label
        while True:
            block = block_map[current]
            if len(block.instrs) != 1:
                return current
            only = block.instrs[0]
            if only.op is not Opcode.J:
                return current
            nxt = only.target
            assert nxt is not None
            if nxt in seen:      # empty jump cycle: leave it alone
                return current
            seen.add(nxt)
            current = nxt

    changed = 0
    for block in fn.blocks:
        term = block.terminator
        if term is None or term.op not in (Opcode.J, Opcode.BEQZ, Opcode.BNEZ):
            continue
        assert term.target is not None
        final = resolve(term.target)
        if final != term.target:
            term.target = final
            changed += 1
    if changed:
        remove_unreachable_blocks(fn)
    return changed


def remove_redundant_jumps(fn: Function) -> int:
    """Drop ``J next-block`` terminators; returns the removal count."""
    removed = 0
    for i, block in enumerate(fn.blocks[:-1]):
        term = block.terminator
        if (
            term is not None
            and term.op is Opcode.J
            and term.target == fn.blocks[i + 1].label
        ):
            block.instrs.pop()
            removed += 1
    return removed


def cleanup_control_flow(fn: Function) -> int:
    """Run both cleanups to a fixpoint; returns total changes."""
    total = 0
    while True:
        changed = thread_jumps(fn) + remove_redundant_jumps(fn)
        total += changed
        if not changed:
            return total

"""Dataflow analyses over the CFG: liveness of virtual registers.

All optimization passes run before temporary assignment, when values live
in *virtual* registers; the handful of physical registers present (sp, ra,
rv, argument registers) are pinned by convention and never subject to
removal or renaming, so liveness is computed for virtual registers only.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..isa.instruction import Instruction
from ..isa.program import Function
from ..isa.registers import Reg


def _uses_defs(ins: Instruction) -> tuple[list[Reg], Reg | None]:
    """Virtual registers used and defined by one instruction."""
    uses = [r for r in ins.srcs if r.virtual]
    dest = ins.dest if ins.dest is not None and ins.dest.virtual else None
    return uses, dest


@dataclass(slots=True)
class Liveness:
    """Per-block live-in/live-out sets of virtual registers."""

    live_in: dict[str, set[Reg]]
    live_out: dict[str, set[Reg]]


def liveness(fn: Function) -> Liveness:
    """Backward may-liveness of virtual registers over ``fn``'s CFG."""
    use: dict[str, set[Reg]] = {}
    deff: dict[str, set[Reg]] = {}
    for block in fn.blocks:
        u: set[Reg] = set()
        d: set[Reg] = set()
        for ins in block.instrs:
            ins_uses, ins_def = _uses_defs(ins)
            for r in ins_uses:
                if r not in d:
                    u.add(r)
            if ins_def is not None:
                d.add(ins_def)
        use[block.label] = u
        deff[block.label] = d

    succ = fn.successors()
    live_in = {b.label: set(use[b.label]) for b in fn.blocks}
    live_out: dict[str, set[Reg]] = {b.label: set() for b in fn.blocks}

    changed = True
    order = list(reversed(fn.blocks))
    while changed:
        changed = False
        for block in order:
            label = block.label
            out: set[Reg] = set()
            for s in succ[label]:
                out |= live_in[s]
            if out != live_out[label]:
                live_out[label] = out
            new_in = use[label] | (out - deff[label])
            if new_in != live_in[label]:
                live_in[label] = new_in
                changed = True
    return Liveness(live_in=live_in, live_out=live_out)


def defs_in_function(fn: Function) -> dict[Reg, int]:
    """Count of definitions of each virtual register across the function."""
    counts: dict[Reg, int] = {}
    for ins in fn.instructions():
        if ins.dest is not None and ins.dest.virtual:
            counts[ins.dest] = counts.get(ins.dest, 0) + 1
    return counts

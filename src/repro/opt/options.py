"""Compiler options: optimization levels and knobs.

The optimization levels mirror the x-axis of the paper's Figure 4-8, where
each step *adds* a set of optimizations:

====  =====================  ==========================================
code  name                   adds
====  =====================  ==========================================
0     NONE                   nothing (raw code generation)
1     SCHEDULE               pipeline instruction scheduling
2     LOCAL                  intra-block optimizations (VN/CSE/fold/DCE)
3     GLOBAL                 global optimizations (LICM, global DCE)
4     REGALLOC               global register allocation (home registers)
====  =====================  ==========================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..isa.registers import RegisterFileSpec
from ..machine.config import MachineConfig
from ..machine.presets import ideal_superscalar


def _default_scheduler() -> str:
    """The scheduler registry's current default backend name (lazy
    import: the registry's backends compile against these options)."""
    from ..sched.registry import get_default

    return get_default()


def _scheduler_names() -> list[str]:
    from ..sched.registry import names

    return names()


class OptLevel(enum.IntEnum):
    """Cumulative optimization levels (Figure 4-8's x-axis)."""

    NONE = 0
    SCHEDULE = 1
    LOCAL = 2
    GLOBAL = 3
    REGALLOC = 4


class AliasLevel(enum.IntEnum):
    """How much the scheduler's memory disambiguation may assume.

    CONSERVATIVE reproduces the paper's baseline scheduler: "the scheduler
    must assume that two memory locations are the same unless it can prove
    otherwise" — and it can prove nothing.  OBJECT distinguishes distinct
    named storage objects.  AFFINE additionally separates accesses to the
    same object whose indices provably differ by a constant (the analysis
    behind *careful* loop unrolling).
    """

    CONSERVATIVE = 0
    OBJECT = 1
    AFFINE = 2


@dataclass(frozen=True)
class CompilerOptions:
    """All knobs of the compile pipeline.

    ``unroll`` is the loop-unrolling factor applied to innermost counted
    loops (1 = none).  ``careful`` selects careful unrolling: reduction
    reassociation, affine memory disambiguation, and interprocedural alias
    analysis (Section 4.4's "careful" mode); plain unrolling with
    ``careful=False`` is the paper's "naive" mode.

    ``schedule_for`` is the machine description the pipeline scheduler
    optimizes for; the paper's system schedules for the same specification
    it simulates.
    """

    opt_level: OptLevel = OptLevel.REGALLOC
    regfile: RegisterFileSpec = field(default_factory=RegisterFileSpec)
    unroll: int = 1
    careful: bool = False
    alias: AliasLevel | None = None
    schedule_for: MachineConfig = field(
        default_factory=lambda: ideal_superscalar(8)
    )
    #: list-scheduling priority: "critical-path" or "source-order"
    sched_heuristic: str = "critical-path"
    #: scheduler backend name (see :mod:`repro.sched.registry`); the
    #: default tracks the registry's process-wide default ("list"
    #: unless the CLI's --scheduler overrode it)
    scheduler: str = field(default_factory=lambda: _default_scheduler())

    def __post_init__(self) -> None:
        if self.unroll < 1:
            raise ValueError("unroll factor must be >= 1")
        if self.sched_heuristic not in ("critical-path", "source-order"):
            raise ValueError(
                f"unknown scheduling heuristic {self.sched_heuristic!r}"
            )
        names = _scheduler_names()
        if self.scheduler not in names:
            raise ValueError(
                f"unknown scheduler backend {self.scheduler!r} "
                f"(registered: {', '.join(names)})"
            )

    def fingerprint(self) -> tuple:
        """Canonical value covering every knob that can change the
        compiled program or its schedule.

        The benchmark suite's in-process memo and the execution engine's
        on-disk trace cache both key on this one tuple (plus the source
        text), so the two caches can never disagree: any option field
        that affects compilation must be added *here* and nowhere else.
        ``alias`` folds to :attr:`alias_level` because that is the
        effective setting the scheduler sees.  The ``scheduler``
        backend name participates too, so two compilations differing
        only in backend can never share a memo entry, a trace-cache
        entry, or a ledger fingerprint.
        """
        return (
            int(self.opt_level),
            self.regfile.n_temp,
            self.regfile.n_home,
            self.unroll,
            self.careful,
            int(self.alias_level),
            self.sched_heuristic,
            self.scheduler,
            self.schedule_for.fingerprint(),
        )

    @property
    def alias_level(self) -> AliasLevel:
        """Effective alias level: explicit setting, else careful => AFFINE."""
        if self.alias is not None:
            return self.alias
        return AliasLevel.AFFINE if self.careful else AliasLevel.CONSERVATIVE

    @property
    def do_schedule(self) -> bool:
        return self.opt_level >= OptLevel.SCHEDULE

    @property
    def do_local(self) -> bool:
        return self.opt_level >= OptLevel.LOCAL

    @property
    def do_global(self) -> bool:
        return self.opt_level >= OptLevel.GLOBAL

    @property
    def do_regalloc(self) -> bool:
        return self.opt_level >= OptLevel.REGALLOC

"""Loop unrolling — naive and careful (Section 4.4, Figure 4-6).

The paper unrolled loops *by hand* in two ways:

* **naive**: "simply duplicating the loop body inside the loop, and
  allowing the normal code optimizer and scheduler to remove redundant
  computations and to re-order the instructions";
* **careful**: "we reassociate long strings of additions or
  multiplications to maximize the parallelism, and we analyze the stores
  in the unrolled loop so that stores from early copies of the loop do
  not interfere with loads in later copies".

We mechanize both as a source-to-source transformation on ``for`` loops
(innermost counted loops with a constant step).  ``for v = a to b by s``
with factor *u* becomes::

    v = a; __limit = b;
    while (v*sgn <= (__limit - (u-1)*s)*sgn) {   # main unrolled loop
        body[v]; body[v+s]; ...; body[v+(u-1)*s];
        v = v + u*s;
    }
    while (v*sgn <= __limit*sgn) { body[v]; v = v + s; }   # remainder

Careful mode additionally rewrites accumulator statements
``acc = acc + E`` appearing once per copy into partial sums combined by a
balanced tree (floating-point reassociation — exactly the paper's use of
"knowledge of operator associativity").  The store/load disambiguation
half of careful mode lives in the scheduler's affine alias analysis
(:mod:`repro.opt.alias`), enabled by the same ``careful`` option.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lang import ast


@dataclass(slots=True)
class UnrollStats:
    """What the unroller did (for logging and tests)."""

    loops_unrolled: int = 0
    reductions_reassociated: int = 0


def unroll_module(
    module: ast.Module, factor: int, careful: bool = False
) -> UnrollStats:
    """Unroll innermost ``for`` loops of every procedure, in place."""
    stats = UnrollStats()
    if factor <= 1:
        return stats
    namer = _Namer()
    for proc in module.procs:
        proc.body = _unroll_stmts(proc.body, factor, careful, namer, stats)
    return stats


class _Namer:
    """Generates unique compiler-introduced local names."""

    def __init__(self) -> None:
        self._n = 0

    def fresh(self, hint: str) -> str:
        self._n += 1
        return f"__{hint}{self._n}"


def _unroll_stmts(
    stmts: list[ast.StmtT],
    factor: int,
    careful: bool,
    namer: _Namer,
    stats: UnrollStats,
) -> list[ast.StmtT]:
    out: list[ast.StmtT] = []
    for stmt in stmts:
        if isinstance(stmt, ast.If):
            stmt.then = _unroll_stmts(stmt.then, factor, careful, namer, stats)
            stmt.els = _unroll_stmts(stmt.els, factor, careful, namer, stats)
            out.append(stmt)
        elif isinstance(stmt, ast.While):
            stmt.body = _unroll_stmts(stmt.body, factor, careful, namer, stats)
            out.append(stmt)
        elif isinstance(stmt, ast.For):
            if _is_innermost(stmt) and not _assigns_var(stmt.body, stmt.var):
                out.extend(
                    _unroll_for(stmt, factor, careful, namer, stats)
                )
            else:
                stmt.body = _unroll_stmts(
                    stmt.body, factor, careful, namer, stats
                )
                out.append(stmt)
        else:
            out.append(stmt)
    return out


def _is_innermost(stmt: ast.For) -> bool:
    """True when the loop body contains no further loops."""

    def has_loop(stmts: list[ast.StmtT]) -> bool:
        for s in stmts:
            if isinstance(s, (ast.For, ast.While)):
                return True
            if isinstance(s, ast.If) and (has_loop(s.then) or has_loop(s.els)):
                return True
        return False

    return not has_loop(stmt.body)


def _assigns_var(stmts: list[ast.StmtT], name: str) -> bool:
    for s in stmts:
        if isinstance(s, ast.Assign):
            if isinstance(s.target, ast.VarRef) and s.target.name == name:
                return True
        elif isinstance(s, ast.If):
            if _assigns_var(s.then, name) or _assigns_var(s.els, name):
                return True
        elif isinstance(s, (ast.While, ast.For)):
            if _assigns_var(s.body, name):  # pragma: no cover - innermost only
                return True
    return False


def _contains_return(stmts: list[ast.StmtT]) -> bool:
    for s in stmts:
        if isinstance(s, ast.Return):
            return True
        if isinstance(s, ast.If) and (
            _contains_return(s.then) or _contains_return(s.els)
        ):
            return True
        if isinstance(s, (ast.While, ast.For)) and _contains_return(s.body):
            return True
    return False


def _extract_decls(
    stmts: list[ast.StmtT], decls: list[ast.StmtT]
) -> list[ast.StmtT]:
    """Return ``stmts`` with every (possibly nested) LocalDecl moved into
    ``decls``; the structure of the remaining statements is preserved."""
    out: list[ast.StmtT] = []
    for st in stmts:
        if isinstance(st, ast.LocalDecl):
            decls.append(st)
        elif isinstance(st, ast.If):
            st.then = _extract_decls(st.then, decls)
            st.els = _extract_decls(st.els, decls)
            out.append(st)
        elif isinstance(st, (ast.While, ast.For)):
            st.body = _extract_decls(st.body, decls)
            out.append(st)
        else:
            out.append(st)
    return out


def _unroll_for(
    loop: ast.For,
    factor: int,
    careful: bool,
    namer: _Namer,
    stats: UnrollStats,
) -> list[ast.StmtT]:
    if _contains_return(loop.body):
        # An early exit would skip the remaining copies' bookkeeping; the
        # paper unrolled only straight-line numeric loops, so skip these.
        return [loop]
    stats.loops_unrolled += 1
    v, s, u = loop.var, loop.step, factor

    # Locals are function-scoped: hoist every declaration out of the body
    # (even ones nested in conditionals) so the copies don't redeclare.
    decls: list[ast.StmtT] = []
    body = _extract_decls(loop.body, decls)

    limit = namer.fresh("limit")
    out: list[ast.StmtT] = list(decls)
    out.append(ast.LocalDecl([limit], ast.INT))
    out.append(ast.Assign(ast.VarRef(v), loop.start))
    out.append(ast.Assign(ast.VarRef(limit), loop.stop))

    copies = [
        [_subst_stmt(st, v, k * s) for st in body] for k in range(u)
    ]
    if careful:
        extra_decls = _reassociate(copies, v, loop, namer, stats)
        out.extend(extra_decls)

    main_body: list[ast.StmtT] = []
    for copy in copies:
        main_body.extend(copy)
    main_body.append(
        ast.Assign(
            ast.VarRef(v),
            ast.BinOp("+", ast.VarRef(v), ast.IntLit(u * s)),
        )
    )
    cmp_op = "<=" if s > 0 else ">="
    main_cond = ast.BinOp(
        cmp_op,
        ast.VarRef(v),
        ast.BinOp("-", ast.VarRef(limit), ast.IntLit((u - 1) * s)),
    )
    out.append(ast.While(main_cond, main_body))

    rem_body: list[ast.StmtT] = [_subst_stmt(st, v, 0) for st in body]
    rem_body.append(
        ast.Assign(
            ast.VarRef(v), ast.BinOp("+", ast.VarRef(v), ast.IntLit(s))
        )
    )
    out.append(
        ast.While(ast.BinOp(cmp_op, ast.VarRef(v), ast.VarRef(limit)), rem_body)
    )
    return out


# --------------------------------------------------------------- reassociation
def _reassociate(
    copies: list[list[ast.StmtT]],
    loopvar: str,
    loop: ast.For,
    namer: _Namer,
    stats: UnrollStats,
) -> list[ast.StmtT]:
    """Rewrite per-copy accumulations into balanced partial-sum trees.

    A statement position qualifies when every copy holds
    ``acc = acc op E_k`` (op in {+, *}), ``acc`` is a scalar referenced
    nowhere else in the body, and ``E_k`` does not mention ``acc``.
    Copy *k* is rewritten to ``__pk = E_k`` and the final copy is followed
    by ``acc = acc op tree(__p0 .. __p{u-1})``.

    Returns the declarations for the introduced partial temporaries.
    """
    u = len(copies)
    original = list(copies[0])  # untouched snapshot for the analysis
    decls: list[ast.StmtT] = []
    # Reversed so the tree-combining inserts into the last copy do not
    # shift the positions of accumulations handled later.
    for pos in reversed(range(len(original))):
        shape = _accumulation_shape(original[pos])
        if shape is None:
            continue
        acc, op = shape
        if acc == loopvar:
            continue
        # acc must appear exactly twice in the whole body: target + operand.
        refs = sum(_count_refs(s, acc) for s in original)
        if refs != 2:
            continue
        if not all(
            _accumulation_shape(copy[pos]) == (acc, op) for copy in copies
        ):
            continue  # pragma: no cover - copies are substitutions of base
        temps = [namer.fresh("p") for _ in range(u)]
        for k, copy in enumerate(copies):
            st = copy[pos]
            assert isinstance(st, ast.Assign)
            term = _accumulation_term(st, acc)
            copy[pos] = ast.Assign(ast.VarRef(temps[k]), term)
        tree = _balanced_tree(op, [ast.VarRef(t) for t in temps])
        copies[-1].insert(
            pos + 1,
            ast.Assign(
                ast.VarRef(acc), ast.BinOp(op, ast.VarRef(acc), tree)
            ),
        )
        # The partials inherit the accumulator's type; declare as float
        # when the accumulator is float, which sema will verify.  We do
        # not know the type before sema, so declare with the accumulator's
        # declared type looked up lazily at semantic analysis via a
        # same-type marker: a float literal initialisation is not
        # available in locals, so emit the declaration using the type
        # recorded on the loop's enclosing procedure later.  In practice
        # the accumulator's type is discovered by name lookup during
        # semantic analysis; we declare the partials with the placeholder
        # type stored on the statement and fix it there.
        decls.append(_PartialDecl(temps, acc))
        stats.reductions_reassociated += 1
    return decls


class _PartialDecl(ast.LocalDecl):
    """LocalDecl whose type is resolved to another variable's type.

    Semantic analysis cannot see this class; :func:`resolve_partial_decls`
    rewrites these into ordinary declarations once variable types are
    known (it runs between unrolling and semantic analysis).
    """

    def __init__(self, names: list[str], like: str):
        super().__init__(names=names, ty=ast.INT)
        self.like = like


def resolve_partial_decls(module: ast.Module) -> None:
    """Give reassociation temporaries the type of their accumulator."""
    global_types = {}
    for g in module.globals_:
        for name in g.names:
            if g.size is None:
                global_types[name] = g.ty
    for proc in module.procs:
        local_types = dict(global_types)
        for p in proc.params:
            if p.size is None:
                local_types[p.name] = p.ty
        _collect_scalar_types(proc.body, local_types)
        _fix_decls(proc.body, local_types)


def _collect_scalar_types(stmts: list[ast.StmtT], types: dict[str, str]) -> None:
    for s in stmts:
        if isinstance(s, ast.LocalDecl) and s.size is None:
            if not isinstance(s, _PartialDecl):
                for name in s.names:
                    types[name] = s.ty
        elif isinstance(s, ast.If):
            _collect_scalar_types(s.then, types)
            _collect_scalar_types(s.els, types)
        elif isinstance(s, (ast.While, ast.For)):
            _collect_scalar_types(s.body, types)


def _fix_decls(stmts: list[ast.StmtT], types: dict[str, str]) -> None:
    for i, s in enumerate(stmts):
        if isinstance(s, _PartialDecl):
            ty = types.get(s.like, ast.INT)
            stmts[i] = ast.LocalDecl(names=s.names, ty=ty)
        elif isinstance(s, ast.If):
            _fix_decls(s.then, types)
            _fix_decls(s.els, types)
        elif isinstance(s, (ast.While, ast.For)):
            _fix_decls(s.body, types)


def _accumulation_shape(stmt: ast.StmtT):
    """``acc = acc op E`` -> (acc, op); otherwise None."""
    if not isinstance(stmt, ast.Assign):
        return None
    if not isinstance(stmt.target, ast.VarRef):
        return None
    acc = stmt.target.name
    value = stmt.value
    if not isinstance(value, ast.BinOp) or value.op not in ("+", "*"):
        return None
    left_is_acc = isinstance(value.left, ast.VarRef) and value.left.name == acc
    right_is_acc = (
        isinstance(value.right, ast.VarRef) and value.right.name == acc
    )
    if left_is_acc == right_is_acc:  # both or neither
        return None
    term = value.right if left_is_acc else value.left
    if _expr_refs(term, acc):
        return None
    return acc, value.op


def _accumulation_term(stmt: ast.Assign, acc: str) -> ast.ExprT:
    value = stmt.value
    assert isinstance(value, ast.BinOp)
    if isinstance(value.left, ast.VarRef) and value.left.name == acc:
        return value.right
    return value.left


def _balanced_tree(op: str, leaves: list[ast.ExprT]) -> ast.ExprT:
    if len(leaves) == 1:
        return leaves[0]
    mid = len(leaves) // 2
    return ast.BinOp(
        op, _balanced_tree(op, leaves[:mid]), _balanced_tree(op, leaves[mid:])
    )


def _count_refs(stmt: ast.StmtT, name: str) -> int:
    count = 0
    if isinstance(stmt, ast.Assign):
        if isinstance(stmt.target, ast.VarRef) and stmt.target.name == name:
            count += 1
        if isinstance(stmt.target, ast.Index):
            count += _expr_refs(stmt.target.index, name)
        count += _expr_refs(stmt.value, name)
    elif isinstance(stmt, ast.If):
        count += _expr_refs(stmt.cond, name)
        count += sum(_count_refs(s, name) for s in stmt.then)
        count += sum(_count_refs(s, name) for s in stmt.els)
    elif isinstance(stmt, (ast.While,)):
        count += _expr_refs(stmt.cond, name)
        count += sum(_count_refs(s, name) for s in stmt.body)
    elif isinstance(stmt, ast.For):
        count += _expr_refs(stmt.start, name) + _expr_refs(stmt.stop, name)
        count += sum(_count_refs(s, name) for s in stmt.body)
    elif isinstance(stmt, ast.Return) and stmt.value is not None:
        count += _expr_refs(stmt.value, name)
    elif isinstance(stmt, ast.CallStmt):
        count += _expr_refs(stmt.call, name)
    return count


def _expr_refs(expr: ast.ExprT, name: str) -> int:
    if isinstance(expr, ast.VarRef):
        return 1 if expr.name == name else 0
    if isinstance(expr, ast.Index):
        base = 1 if expr.name == name else 0
        return base + _expr_refs(expr.index, name)
    if isinstance(expr, ast.BinOp):
        return _expr_refs(expr.left, name) + _expr_refs(expr.right, name)
    if isinstance(expr, (ast.UnOp, ast.Cast)):
        return _expr_refs(expr.operand, name)
    if isinstance(expr, ast.Call):
        return sum(_expr_refs(a, name) for a in expr.args)
    return 0


# ------------------------------------------------------------- substitution
def _subst_stmt(stmt: ast.StmtT, var: str, delta: int) -> ast.StmtT:
    """Clone ``stmt`` with ``var`` replaced by ``var + delta``."""
    if isinstance(stmt, ast.Assign):
        target = stmt.target
        if isinstance(target, ast.Index):
            new_target: ast.VarRef | ast.Index = ast.Index(
                target.name, _subst_expr(target.index, var, delta)
            )
        else:
            new_target = ast.VarRef(target.name)
        return ast.Assign(new_target, _subst_expr(stmt.value, var, delta))
    if isinstance(stmt, ast.If):
        return ast.If(
            _subst_expr(stmt.cond, var, delta),
            [_subst_stmt(s, var, delta) for s in stmt.then],
            [_subst_stmt(s, var, delta) for s in stmt.els],
        )
    if isinstance(stmt, ast.While):
        return ast.While(
            _subst_expr(stmt.cond, var, delta),
            [_subst_stmt(s, var, delta) for s in stmt.body],
        )
    if isinstance(stmt, ast.For):
        return ast.For(
            stmt.var,
            _subst_expr(stmt.start, var, delta),
            _subst_expr(stmt.stop, var, delta),
            stmt.step,
            [_subst_stmt(s, var, delta) for s in stmt.body],
        )
    if isinstance(stmt, ast.Return):
        value = (
            None if stmt.value is None else _subst_expr(stmt.value, var, delta)
        )
        return ast.Return(value)
    if isinstance(stmt, ast.CallStmt):
        call = _subst_expr(stmt.call, var, delta)
        assert isinstance(call, ast.Call)
        return ast.CallStmt(call)
    if isinstance(stmt, ast.LocalDecl):
        return ast.LocalDecl(list(stmt.names), stmt.ty, stmt.size)
    raise TypeError(f"cannot substitute into {stmt!r}")  # pragma: no cover


def _subst_expr(expr: ast.ExprT, var: str, delta: int) -> ast.ExprT:
    if isinstance(expr, ast.IntLit):
        return ast.IntLit(expr.value)
    if isinstance(expr, ast.FloatLit):
        return ast.FloatLit(expr.value)
    if isinstance(expr, ast.VarRef):
        if expr.name == var and delta != 0:
            return ast.BinOp("+", ast.VarRef(var), ast.IntLit(delta))
        return ast.VarRef(expr.name)
    if isinstance(expr, ast.Index):
        return ast.Index(expr.name, _subst_expr(expr.index, var, delta))
    if isinstance(expr, ast.Call):
        return ast.Call(
            expr.name, [_subst_expr(a, var, delta) for a in expr.args]
        )
    if isinstance(expr, ast.BinOp):
        return ast.BinOp(
            expr.op,
            _subst_expr(expr.left, var, delta),
            _subst_expr(expr.right, var, delta),
        )
    if isinstance(expr, ast.UnOp):
        return ast.UnOp(expr.op, _subst_expr(expr.operand, var, delta))
    if isinstance(expr, ast.Cast):
        return ast.Cast(expr.to, _subst_expr(expr.operand, var, delta))
    raise TypeError(f"cannot substitute into {expr!r}")  # pragma: no cover

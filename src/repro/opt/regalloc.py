"""Register allocation: home-register promotion and temporary assignment.

Two passes, mirroring the paper's compiler (Section 3: "Our compiler
divides the register set into two disjoint parts ... temporaries for
short-term expressions ... home locations for local and global
variables"):

1. :func:`promote_variables` — *global register allocation* in the style
   of Wall's link-time allocator: scalar variables are ranked by
   loop-depth-weighted access counts and the hottest ones get dedicated
   **home registers**; their loads and stores become register moves.
   Globals hold their register program-wide; locals/params of different
   functions reuse the remaining registers under a callee-save discipline.

2. :func:`assign_temporaries` — linear-scan assignment of the unbounded
   virtual registers onto the finite pool of **expression temporaries**,
   spilling to stack slots when the pool is exhausted.  Values live across
   a call are always spilled (the callee may use every temporary).
   Temporary-pool size is the knob behind the paper's observation that
   "using the same temporary register for two different values ...
   introduces an artificial dependency" — a small pool forces reuse that
   the scheduler then cannot undo.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import RegisterAllocationError
from ..isa import build
from ..isa.instruction import Instruction, MemRef
from ..isa.opcodes import Opcode
from ..isa.program import Function, Program, loop_depths
from ..isa.registers import SCRATCH0, SCRATCH1, SP, Reg, RegisterFileSpec
from ..lang.codegen import finalize_frames
from .dataflow import liveness

# ------------------------------------------------------------------ promotion


@dataclass(slots=True)
class _Candidate:
    obj: str                  # storage object, "g:x" or "s:fn:x"
    weight: float
    fn: str | None            # owning function for locals, None for globals


def _is_promotable_scalar(mem: MemRef | None) -> bool:
    if mem is None or mem.is_array or mem.may_alias_all:
        return False
    if ":__" in mem.obj:      # __ra, __save*, __spill*: allocator-internal
        return False
    return mem.obj.startswith(("g:", "s:"))


def _collect_candidates(program: Program) -> list[_Candidate]:
    weights: dict[str, float] = {}
    owner: dict[str, str | None] = {}
    for fn in program.functions.values():
        depths = loop_depths(fn)
        for block in fn.blocks:
            w = 10.0 ** min(depths[block.label], 4)
            for ins in block.instrs:
                if ins.op not in (Opcode.LW, Opcode.SW):
                    continue
                if not _is_promotable_scalar(ins.mem):
                    continue
                obj = ins.mem.obj
                weights[obj] = weights.get(obj, 0.0) + w
                owner[obj] = None if obj.startswith("g:") else fn.name
    ranked = [
        _Candidate(obj, weight, owner[obj])
        for obj, weight in weights.items()
    ]
    ranked.sort(key=lambda c: (-c.weight, c.obj))
    return ranked


def promote_variables(
    program: Program, spec: RegisterFileSpec
) -> dict[str, Reg]:
    """Allocate home registers to the hottest scalar variables.

    Returns the mapping from storage object to home register.  Rewrites
    loads/stores of promoted variables into moves, adds callee-save
    save/restore code for local home registers, initializes global home
    registers in the ``_start`` stub, and records each function's visible
    bindings in ``Function.home_bindings``.
    """
    home = spec.home_regs
    if not home:
        return {}
    ranked = _collect_candidates(program)

    global_count = 0
    local_count: dict[str, int] = {}
    assignment: dict[str, Reg] = {}
    local_order: dict[str, list[str]] = {}
    for cand in ranked:
        max_local = max(local_count.values(), default=0)
        if cand.fn is None:
            if global_count + max_local < len(home):
                global_count += 1
                assignment[cand.obj] = home[global_count - 1]
        else:
            used = local_count.get(cand.fn, 0)
            if global_count + used < len(home):
                local_count[cand.fn] = used + 1
                local_order.setdefault(cand.fn, []).append(cand.obj)

    # Locals take registers above the global block.
    for fn_name, objs in local_order.items():
        for i, obj in enumerate(objs):
            assignment[obj] = home[global_count + i]

    if not assignment:
        return {}

    global_objs = {
        obj for obj, _reg in assignment.items() if obj.startswith("g:")
    }

    for fn in program.functions.values():
        written: set[Reg] = set()
        visible: dict[str, Reg] = {}
        for block in fn.blocks:
            new_instrs: list[Instruction] = []
            for ins in block.instrs:
                reg = None
                if ins.op in (Opcode.LW, Opcode.SW) and ins.mem is not None:
                    reg = assignment.get(ins.mem.obj)
                if reg is None:
                    new_instrs.append(ins)
                    continue
                visible[ins.mem.obj] = reg
                if ins.op is Opcode.LW:
                    mov = build.mov(ins.dest, reg)
                    mov.comment = "home-read"
                    new_instrs.append(mov)
                else:
                    mov = build.mov(reg, ins.srcs[0])
                    mov.comment = "home-write"
                    new_instrs.append(mov)
                    if ins.mem.obj not in global_objs:
                        written.add(reg)
            block.instrs = new_instrs
        # every global binding is visible everywhere
        for obj in global_objs:
            visible[obj] = assignment[obj]
        fn.home_bindings = visible
        if fn.name != "_start":
            _insert_callee_saves(fn, sorted(written, key=lambda r: r.index))

    _init_global_homes(program, sorted(global_objs), assignment)
    return assignment


def _insert_callee_saves(fn: Function, regs: list[Reg]) -> None:
    """Save/restore the home registers this function writes."""
    if not regs:
        return
    entry = fn.blocks[0]
    exit_block = next(
        b for b in fn.blocks
        if b.terminator is not None and b.terminator.op is Opcode.RET
    )
    saves: list[Instruction] = []
    restores: list[Instruction] = []
    for reg in regs:
        slot = fn.frame_slots
        fn.frame_slots += 1
        mem = MemRef(obj=f"s:{fn.name}:__save{reg.index}", offset=0)
        saves.append(build.sw(reg, SP, slot, mem=mem, frame_slot=slot))
        restores.append(build.lw(reg, SP, slot, mem=mem, frame_slot=slot))
    # entry block: [sp adjust, sw ra, ...]; insert saves after the ra save
    entry.instrs[2:2] = saves
    exit_block.instrs[0:0] = restores
    finalize_frames(fn)


def _init_global_homes(
    program: Program, objs: list[str], assignment: dict[str, Reg]
) -> None:
    """Load initial global values into their home registers in ``_start``."""
    from ..isa.registers import ZERO

    start = program.functions["_start"]
    loads: list[Instruction] = []
    for obj in objs:
        g = program.globals_[obj[2:]]
        ins = build.lw(
            assignment[obj], ZERO, g.address, mem=MemRef(obj=obj, offset=0)
        )
        ins.comment = "init-home"
        loads.append(ins)
    start.blocks[0].instrs[0:0] = loads


# ----------------------------------------------------------- temporary regs


@dataclass(slots=True)
class _Interval:
    reg: Reg
    start: int
    end: int
    assigned: Reg | None = None
    spilled: bool = False
    slot: int | None = None


@dataclass(slots=True)
class AllocationStats:
    """Outcome of temporary assignment (for tests and diagnostics)."""

    n_virtual: int = 0
    n_spilled: int = 0
    spill_slots: int = 0


def assign_temporaries(
    fn: Function, spec: RegisterFileSpec
) -> AllocationStats:
    """Map virtual registers onto the temporary pool by linear scan."""
    intervals, call_positions = _build_intervals(fn)
    stats = AllocationStats(n_virtual=len(intervals))
    if not intervals:
        return stats

    ordered = sorted(intervals.values(), key=lambda iv: (iv.start, iv.end))
    pool = list(spec.temp_regs)
    if len(pool) < 1:
        raise RegisterAllocationError("empty temporary pool")

    def _spill(iv: _Interval) -> None:
        iv.spilled = True
        iv.slot = fn.frame_slots
        fn.frame_slots += 1
        stats.n_spilled += 1
        stats.spill_slots += 1

    # Values live across a call are spilled outright: the callee may use
    # every temporary register.
    import bisect
    from collections import deque

    call_sorted = sorted(call_positions)
    active: list[_Interval] = []
    # FIFO recycling spreads values over the whole pool, so register reuse
    # (and the WAR "artificial dependencies" it creates, Section 3) only
    # appears once the pool is genuinely exhausted — which makes the
    # temporary count the experimental knob the paper describes.
    free: deque[Reg] = deque(pool)
    for iv in ordered:
        # CALL never reads or writes a virtual register, so any call
        # position inside [start, end] means the value lives across it.
        lo = bisect.bisect_left(call_sorted, iv.start)
        crosses_call = lo < len(call_sorted) and call_sorted[lo] <= iv.end
        if crosses_call:
            _spill(iv)
            continue
        active = [a for a in active if a.end >= iv.start or _free(a, free)]
        if free:
            iv.assigned = free.popleft()
            active.append(iv)
        else:
            victim = max(active, key=lambda a: a.end)
            if victim.end > iv.end:
                iv.assigned = victim.assigned
                victim.assigned = None
                _spill(victim)
                active.remove(victim)
                active.append(iv)
            else:
                _spill(iv)

    _rewrite_spills(fn, intervals)
    finalize_frames(fn)
    return stats


def _free(iv: _Interval, free: list[Reg]) -> bool:
    """Expire ``iv``: return its register to the pool.  Always False so it
    can be used as a filter predicate that drops the interval."""
    if iv.assigned is not None:
        free.append(iv.assigned)
    return False


def _build_intervals(
    fn: Function,
) -> tuple[dict[Reg, _Interval], list[int]]:
    lv = liveness(fn)
    intervals: dict[Reg, _Interval] = {}
    call_positions: list[int] = []

    def extend(reg: Reg, pos: int) -> None:
        iv = intervals.get(reg)
        if iv is None:
            intervals[reg] = _Interval(reg, pos, pos)
        else:
            if pos < iv.start:
                iv.start = pos
            if pos > iv.end:
                iv.end = pos

    pos = 0
    for block in fn.blocks:
        block_start = pos
        block_end = pos + max(len(block.instrs) - 1, 0)
        for reg in lv.live_in[block.label]:
            extend(reg, block_start)
        for reg in lv.live_out[block.label]:
            extend(reg, block_end)
        for ins in block.instrs:
            if ins.op is Opcode.CALL:
                call_positions.append(pos)
            if ins.dest is not None and ins.dest.virtual:
                extend(ins.dest, pos)
            for r in ins.srcs:
                if r.virtual:
                    extend(r, pos)
            pos += 1
    return intervals, call_positions


def _rewrite_spills(fn: Function, intervals: dict[Reg, _Interval]) -> None:
    """Apply the allocation: rename assigned vregs, wrap spilled ones in
    scratch-register reloads/stores."""
    for block in fn.blocks:
        new_instrs: list[Instruction] = []
        for ins in block.instrs:
            scratch_map: dict[Reg, Reg] = {}
            scratches = [SCRATCH0, SCRATCH1]
            new_srcs = []
            for r in ins.srcs:
                if not r.virtual:
                    new_srcs.append(r)
                    continue
                iv = intervals[r]
                if iv.spilled:
                    if r not in scratch_map:
                        if not scratches:
                            raise RegisterAllocationError(
                                f"{fn.name}: more than two spilled sources"
                            )
                        scratch = scratches.pop(0)
                        scratch_map[r] = scratch
                        mem = MemRef(
                            obj=f"s:{fn.name}:__spill{iv.slot}", offset=0
                        )
                        new_instrs.append(
                            build.lw(
                                scratch, SP, iv.slot,
                                mem=mem, frame_slot=iv.slot,
                            )
                        )
                    new_srcs.append(scratch_map[r])
                else:
                    assert iv.assigned is not None
                    new_srcs.append(iv.assigned)
            ins.srcs = tuple(new_srcs)

            store_after: Instruction | None = None
            if ins.dest is not None and ins.dest.virtual:
                iv = intervals[ins.dest]
                if iv.spilled:
                    ins.dest = SCRATCH0
                    mem = MemRef(
                        obj=f"s:{fn.name}:__spill{iv.slot}", offset=0
                    )
                    store_after = build.sw(
                        SCRATCH0, SP, iv.slot, mem=mem, frame_slot=iv.slot
                    )
                else:
                    assert iv.assigned is not None
                    ins.dest = iv.assigned
            new_instrs.append(ins)
            if store_after is not None:
                new_instrs.append(store_after)
        block.instrs = new_instrs

    for ins in fn.instructions():
        if (ins.dest is not None and ins.dest.virtual) or any(
            r.virtual for r in ins.srcs
        ):
            raise RegisterAllocationError(
                f"{fn.name}: virtual register survived allocation: {ins}"
            )

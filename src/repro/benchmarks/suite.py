"""The eight-benchmark suite and its compile/run/measure plumbing.

Mirrors the paper's Section 4 suite (ccom, grr, linpack, livermore, met,
stanford, whet, yacc) with synthetic equivalents written in Tin — see
DESIGN.md for the substitution argument per benchmark.

Every benchmark is self-checking: its ``main`` returns an integer
checksum, and the module provides a pure-Python :func:`reference`
implementation computing the same value.  The integration tests compare
the two at every optimization level, which exercises the whole compiler.

Compilation and functional simulation are memoized per
``(benchmark, options)`` because the experiment drivers sweep many machine
configurations over the same trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..machine.config import MachineConfig
from ..opt.driver import compile_source
from ..opt.options import CompilerOptions
from ..sim.interp import RunResult, run
from ..sim.timing import TimingResult, simulate


@dataclass(frozen=True)
class Benchmark:
    """One benchmark program."""

    name: str
    description: str
    source: Callable[[], str]
    reference: Callable[[], int]
    #: checksum tolerance under reassociating (careful-unroll) compiles
    fp_tolerance: int = 0
    #: options the paper's "official" version implies (e.g. linpack's
    #: inner loops come unrolled four times)
    default_overrides: dict = field(default_factory=dict, hash=False)


_REGISTRY: dict[str, Benchmark] = {}


def register(benchmark: Benchmark) -> Benchmark:
    """Add a benchmark to the global registry."""
    if benchmark.name in _REGISTRY:
        raise ValueError(f"duplicate benchmark {benchmark.name!r}")
    _REGISTRY[benchmark.name] = benchmark
    return benchmark


def all_benchmarks() -> list[Benchmark]:
    """The suite in the paper's listing order."""
    _ensure_loaded()
    order = ["ccom", "grr", "linpack", "livermore", "met", "stanford",
             "whet", "yacc"]
    return [_REGISTRY[name] for name in order if name in _REGISTRY]


def get(name: str) -> Benchmark:
    """Look a benchmark up by name."""
    _ensure_loaded()
    return _REGISTRY[name]


def _ensure_loaded() -> None:
    """Import the program modules (they self-register)."""
    import importlib

    for name in ("ccom", "grr", "linpack", "livermore", "met", "stanford",
                 "whet", "yacc"):
        try:
            importlib.import_module(f"repro.benchmarks.programs.{name}")
        except ModuleNotFoundError as exc:
            if name not in str(exc):
                raise


# ------------------------------------------------------------------- caching
def _options_key(options: CompilerOptions) -> tuple:
    """Memo key for one compile unit.

    Delegates to :meth:`CompilerOptions.fingerprint` — the same canonical
    key the engine's on-disk trace cache hashes — so the in-process memo
    and the content-addressed cache can never disagree about which option
    fields (unroll, careful/alias, scheduling heuristic, the full target
    machine description) distinguish two compilations.
    """
    return options.fingerprint()


_RUN_CACHE: dict[tuple, RunResult] = {}


def run_benchmark(
    benchmark: Benchmark | str,
    options: CompilerOptions | None = None,
    max_instructions: int | None = None,
) -> RunResult:
    """Compile and functionally execute a benchmark (memoized).

    ``max_instructions`` tightens the interpreter's runaway guard for
    this call (the engine's per-cell instruction budget); a run that
    completes within a budget is identical to an unbounded one, so the
    memo key is unaffected.
    """
    if isinstance(benchmark, str):
        benchmark = get(benchmark)
    opts = options or default_options(benchmark)
    key = (benchmark.name, _options_key(opts))
    cached = _RUN_CACHE.get(key)
    if cached is not None:
        return cached
    program = compile_source(benchmark.source(), opts)
    if max_instructions is None:
        result = run(program)
    else:
        result = run(program, max_instructions=max_instructions)
    _RUN_CACHE[key] = result
    return result


def cached_run(
    benchmark: Benchmark | str,
    options: CompilerOptions,
) -> RunResult | None:
    """The memoized run for (benchmark, options), if already computed."""
    if isinstance(benchmark, str):
        benchmark = get(benchmark)
    return _RUN_CACHE.get((benchmark.name, _options_key(options)))


def seed_run(
    benchmark: Benchmark | str,
    options: CompilerOptions,
    result: RunResult,
) -> None:
    """Install an externally computed run into the memo cache.

    The execution engine uses this to share runs it obtained from pool
    workers or the on-disk trace cache, so inline code that follows a
    parallel sweep (exhibit drivers, summaries) never recompiles.
    """
    if isinstance(benchmark, str):
        benchmark = get(benchmark)
    _RUN_CACHE[(benchmark.name, _options_key(options))] = result


def parse_benchmark_list(
    tokens: "list[str] | str | None",
) -> list[str] | None:
    """Parse a user-supplied benchmark list into validated names.

    Accepts a single string or a list of tokens, each comma- and/or
    whitespace-separated (``"linpack,whet"``, ``["linpack", "whet"]``,
    ``["linpack,whet", "yacc"]``).  ``None`` (and an empty selection)
    mean "the whole suite" and return ``None``.  Unknown names raise
    ``ValueError`` listing the suite; this is the one benchmark-list
    parser shared by the measure/suite/report commands and the API.
    """
    if tokens is None:
        return None
    if isinstance(tokens, str):
        tokens = [tokens]
    names = [name for tok in tokens
             for name in tok.replace(",", " ").split()]
    if not names:
        return None
    known = {b.name for b in all_benchmarks()}
    unknown = [n for n in names if n not in known]
    if unknown:
        raise ValueError(
            f"unknown benchmark(s): {', '.join(unknown)} "
            f"(choose from {', '.join(sorted(known))})"
        )
    return names


def default_options(benchmark: Benchmark, **kwargs) -> CompilerOptions:
    """The benchmark's default compile options, with overrides applied."""
    merged = dict(benchmark.default_overrides)
    merged.update(kwargs)
    return CompilerOptions(**merged)


def measure(
    benchmark: Benchmark | str,
    config: MachineConfig,
    options: CompilerOptions | None = None,
    observe: bool = False,
) -> TimingResult:
    """Run a benchmark and replay its trace on ``config``.

    ``observe=True`` attaches per-cause stall attribution to the result
    (see :mod:`repro.obs.stalls`); the default path is unchanged.
    """
    result = run_benchmark(benchmark, options)
    return simulate(result.trace, config, observe=observe)


def profile_benchmark(
    benchmark: Benchmark | str,
    options: CompilerOptions | None = None,
):
    """Compile a benchmark fresh with pass-level profiling.

    Returns ``(program, CompileProfile)``.  Bypasses the run cache on
    purpose: a memoized compile has no wall time to measure.
    """
    from ..obs.profile import CompileProfile
    from ..opt.driver import compile_source as _compile_profiled

    if isinstance(benchmark, str):
        benchmark = get(benchmark)
    opts = options or default_options(benchmark)
    profile = CompileProfile()
    program = _compile_profiled(benchmark.source(), opts, profile)
    return program, profile


def clear_cache() -> None:
    """Drop memoized runs (tests use this to bound memory)."""
    _RUN_CACHE.clear()

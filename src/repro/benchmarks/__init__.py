"""The eight-benchmark suite (ccom, grr, linpack, livermore, met,
stanford, whet, yacc)."""

from . import suite
from .suite import (
    Benchmark,
    all_benchmarks,
    clear_cache,
    default_options,
    get,
    measure,
    run_benchmark,
)

__all__ = [
    "Benchmark",
    "all_benchmarks",
    "clear_cache",
    "default_options",
    "get",
    "measure",
    "run_benchmark",
    "suite",
]

"""``stanford`` — the Hennessy benchmark collection (subset).

The paper's *stanford* is "the collection of Hennessy benchmarks from
Stanford (including puzzle, tower, queens, etc.)".  We reproduce the same
mix of small recursive/array kernels: Perm, Towers, Queens, IntMM,
Bubblesort and Quicksort, each seeded deterministically and folded into a
single checksum.
"""

from __future__ import annotations

from ..suite import Benchmark, register

_N_SORT = 120
_N_BUBBLE = 40
_N_MM = 10

SOURCE = f"""
# stanford: Perm, Towers, Queens, IntMM, Bubble, Quick
const MOD = 999999937;
const NSORT = {_N_SORT};
const NBUB = {_N_BUBBLE};
const NMM = {_N_MM};

var seed: int;
var chk: int;
var pvec: int[8];
var pcount: int;
var moves: int;
var qcount: int;
var colfree: int[8];
var diag1: int[16];
var diag2: int[16];
var ma: int[{_N_MM * _N_MM}];
var mb: int[{_N_MM * _N_MM}];
var mc: int[{_N_MM * _N_MM}];
var buf: int[{_N_SORT}];

proc rnd(m: int): int {{
    seed = (seed * 1103515245 + 12345) % 2147483648;
    return seed % m;
}}

# ---- Perm: count calls of the recursive permutation generator
proc permute(n: int) {{
    var k, t: int;
    pcount = pcount + 1;
    if (n > 1) {{
        permute(n - 1);
        for k = 0 to n - 2 {{
            t = pvec[k];
            pvec[k] = pvec[n - 1];
            pvec[n - 1] = t;
            permute(n - 1);
            t = pvec[k];
            pvec[k] = pvec[n - 1];
            pvec[n - 1] = t;
        }}
    }}
}}

proc perm_test(): int {{
    var i: int;
    for i = 0 to 5 {{ pvec[i] = i; }}
    pcount = 0;
    permute(6);
    return pcount;
}}

# ---- Towers of Hanoi
proc hanoi(n: int, src: int, dst: int, via: int) {{
    if (n > 0) {{
        hanoi(n - 1, src, via, dst);
        moves = moves + 1;
        hanoi(n - 1, via, dst, src);
    }}
}}

proc towers_test(): int {{
    moves = 0;
    hanoi(10, 0, 2, 1);
    return moves;
}}

# ---- Eight queens
proc place(r: int) {{
    var c: int;
    if (r == 8) {{
        qcount = qcount + 1;
    }} else {{
        for c = 0 to 7 {{
            if (colfree[c] == 0 && diag1[r + c] == 0 && diag2[r - c + 7] == 0) {{
                colfree[c] = 1;
                diag1[r + c] = 1;
                diag2[r - c + 7] = 1;
                place(r + 1);
                colfree[c] = 0;
                diag1[r + c] = 0;
                diag2[r - c + 7] = 0;
            }}
        }}
    }}
}}

proc queens_test(): int {{
    var i: int;
    for i = 0 to 7 {{ colfree[i] = 0; }}
    for i = 0 to 15 {{ diag1[i] = 0; diag2[i] = 0; }}
    qcount = 0;
    place(0);
    return qcount;
}}

# ---- Integer matrix multiply
proc intmm_test(): int {{
    var i, j, k, s, acc: int;
    for i = 0 to NMM * NMM - 1 {{
        ma[i] = rnd(20) - 10;
        mb[i] = rnd(20) - 10;
    }}
    for i = 0 to NMM - 1 {{
        for j = 0 to NMM - 1 {{
            s = 0;
            for k = 0 to NMM - 1 {{
                s = s + ma[i * NMM + k] * mb[k * NMM + j];
            }}
            mc[i * NMM + j] = s;
        }}
    }}
    acc = 0;
    for i = 0 to NMM * NMM - 1 {{
        acc = (acc * 3 + mc[i] + 4000) % MOD;
    }}
    return acc;
}}

# ---- Bubble sort
proc bubble_test(): int {{
    var i, j, t, acc: int;
    for i = 0 to NBUB - 1 {{ buf[i] = rnd(10000); }}
    for i = 0 to NBUB - 2 {{
        for j = 0 to NBUB - 2 - i {{
            if (buf[j] > buf[j + 1]) {{
                t = buf[j];
                buf[j] = buf[j + 1];
                buf[j + 1] = t;
            }}
        }}
    }}
    acc = 0;
    for i = 0 to NBUB - 1 {{ acc = (acc * 7 + buf[i]) % MOD; }}
    return acc;
}}

# ---- Quicksort
proc quick(lo: int, hi: int) {{
    var i, j, p, t: int;
    if (lo < hi) {{
        p = buf[hi];
        i = lo - 1;
        for j = lo to hi - 1 {{
            if (buf[j] < p) {{
                i = i + 1;
                t = buf[i];
                buf[i] = buf[j];
                buf[j] = t;
            }}
        }}
        t = buf[i + 1];
        buf[i + 1] = buf[hi];
        buf[hi] = t;
        quick(lo, i);
        quick(i + 2, hi);
    }}
}}

proc quick_test(): int {{
    var i, acc: int;
    for i = 0 to NSORT - 1 {{ buf[i] = rnd(100000); }}
    quick(0, NSORT - 1);
    acc = 0;
    for i = 0 to NSORT - 1 {{ acc = (acc * 5 + buf[i]) % MOD; }}
    return acc;
}}

proc main(): int {{
    seed = 74755;
    chk = 0;
    chk = (chk * 31 + perm_test()) % MOD;
    chk = (chk * 31 + towers_test()) % MOD;
    chk = (chk * 31 + queens_test()) % MOD;
    chk = (chk * 31 + intmm_test()) % MOD;
    chk = (chk * 31 + bubble_test()) % MOD;
    chk = (chk * 31 + quick_test()) % MOD;
    return chk;
}}
"""

_MOD = 999999937


class _Rng:
    def __init__(self, seed: int):
        self.seed = seed

    def rnd(self, m: int) -> int:
        self.seed = (self.seed * 1103515245 + 12345) % 2147483648
        return self.seed % m


def reference() -> int:
    """Pure-Python mirror of the Tin program."""
    rng = _Rng(74755)

    # perm
    pvec = list(range(6))
    count = 0

    def permute(n: int) -> None:
        nonlocal count
        count += 1
        if n > 1:
            permute(n - 1)
            for k in range(n - 1):
                pvec[k], pvec[n - 1] = pvec[n - 1], pvec[k]
                permute(n - 1)
                pvec[k], pvec[n - 1] = pvec[n - 1], pvec[k]

    permute(6)
    perm = count

    # towers
    moves = 0

    def hanoi(n: int) -> None:
        nonlocal moves
        if n > 0:
            hanoi(n - 1)
            moves += 1
            hanoi(n - 1)

    hanoi(10)

    # queens
    qcount = 0
    colfree = [0] * 8
    diag1 = [0] * 16
    diag2 = [0] * 16

    def place(r: int) -> None:
        nonlocal qcount
        if r == 8:
            qcount += 1
            return
        for c in range(8):
            if not colfree[c] and not diag1[r + c] and not diag2[r - c + 7]:
                colfree[c] = diag1[r + c] = diag2[r - c + 7] = 1
                place(r + 1)
                colfree[c] = diag1[r + c] = diag2[r - c + 7] = 0

    place(0)

    # intmm
    n = _N_MM
    ma = [0] * (n * n)
    mb = [0] * (n * n)
    for i in range(n * n):
        ma[i] = rng.rnd(20) - 10
        mb[i] = rng.rnd(20) - 10
    acc = 0
    mc = [0] * (n * n)
    for i in range(n):
        for j in range(n):
            mc[i * n + j] = sum(
                ma[i * n + k] * mb[k * n + j] for k in range(n)
            )
    for i in range(n * n):
        acc = (acc * 3 + mc[i] + 4000) % _MOD
    intmm = acc

    # bubble
    buf = [rng.rnd(10000) for _ in range(_N_BUBBLE)]
    buf.sort()
    acc = 0
    for v in buf:
        acc = (acc * 7 + v) % _MOD
    bub = acc

    # quick
    buf = [rng.rnd(100000) for _ in range(_N_SORT)]
    buf.sort()
    acc = 0
    for v in buf:
        acc = (acc * 5 + v) % _MOD
    quick = acc

    chk = 0
    for part in (perm, moves, qcount, intmm, bub, quick):
        chk = (chk * 31 + part) % _MOD
    return chk


register(
    Benchmark(
        name="stanford",
        description="Hennessy Stanford suite subset: perm, towers, "
        "queens, intmm, bubble, quick",
        source=lambda: SOURCE,
        reference=reference,
    )
)

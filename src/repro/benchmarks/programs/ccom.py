"""``ccom`` — a small compiler, standing in for the paper's C compiler.

The workload is a compiler's inner life in miniature: a grammar-directed
random generator produces token streams for arithmetic expressions over
constants and variables; a recursive-descent parser compiles each stream
to stack code; a constant-folding peephole pass optimizes the code; and a
stack machine executes it.  The profile matches a real compiler front
end: deep recursion, table dispatch on token kinds, short basic blocks,
and almost no floating point — which is why ccom sits near the bottom of
the paper's parallelism range.
"""

from __future__ import annotations

from ..suite import Benchmark, register

_N_EXPRS = 45
_DEPTH = 3
_MOD = 999999937
_VMOD = 10007

# token codes
_NUM, _PLUS, _MINUS, _MUL, _DIV, _LP, _RP, _VAR, _END = range(9)

SOURCE = f"""
# ccom: generate -> parse -> constant-fold -> execute expressions
const NEXPR = {_N_EXPRS};
const DEPTH = {_DEPTH};
const MOD = {_MOD};
const VMOD = {_VMOD};
const TNUM = 0;
const TPLUS = 1;
const TMINUS = 2;
const TMUL = 3;
const TDIV = 4;
const TLP = 5;
const TRP = 6;
const TVAR = 7;
const TEND = 8;
const OPUSH = 0;
const OLOAD = 5;

var tok: int[2048];
var tval: int[2048];
var tpos: int;
var code: int[2048];
var cval: int[2048];
var cpos: int;
var opt: int[2048];
var oval: int[2048];
var opos: int;
var stk: int[256];
var vars: int[4];
var pos: int;
var seed: int;

proc rnd(m: int): int {{
    seed = (seed * 1103515245 + 12345) % 2147483648;
    return seed % m;
}}

proc emit_tok(t: int, v: int) {{
    tok[tpos] = t;
    tval[tpos] = v;
    tpos = tpos + 1;
}}

# ---- grammar-directed random generator
proc gen_factor(d: int) {{
    if (d > 0 && rnd(4) == 0) {{
        emit_tok(TLP, 0);
        gen_expr(d - 1);
        emit_tok(TRP, 0);
    }} else {{
        if (rnd(3) == 0) {{
            emit_tok(TVAR, rnd(4));
        }} else {{
            emit_tok(TNUM, rnd(100) + 1);
        }}
    }}
}}

proc gen_term(d: int) {{
    var k, j: int;
    gen_factor(d);
    k = rnd(3);
    for j = 1 to k {{
        if (rnd(2) == 0) {{
            emit_tok(TMUL, 0);
        }} else {{
            emit_tok(TDIV, 0);
        }}
        gen_factor(d);
    }}
}}

proc gen_expr(d: int) {{
    var k, j: int;
    gen_term(d);
    k = rnd(3);
    for j = 1 to k {{
        if (rnd(2) == 0) {{
            emit_tok(TPLUS, 0);
        }} else {{
            emit_tok(TMINUS, 0);
        }}
        gen_term(d);
    }}
}}

# ---- recursive-descent parser emitting postfix code
proc emit_code(op: int, v: int) {{
    code[cpos] = op;
    cval[cpos] = v;
    cpos = cpos + 1;
}}

proc p_factor() {{
    if (tok[pos] == TLP) {{
        pos = pos + 1;
        p_expr();
        pos = pos + 1;         # consume ')'
    }} else {{
        if (tok[pos] == TVAR) {{
            emit_code(OLOAD, tval[pos]);
        }} else {{
            emit_code(OPUSH, tval[pos]);
        }}
        pos = pos + 1;
    }}
}}

proc p_term() {{
    var op: int;
    p_factor();
    while (tok[pos] == TMUL || tok[pos] == TDIV) {{
        op = tok[pos];
        pos = pos + 1;
        p_factor();
        emit_code(op, 0);      # TMUL/TDIV double as postfix opcodes
    }}
}}

proc p_expr() {{
    var op: int;
    p_term();
    while (tok[pos] == TPLUS || tok[pos] == TMINUS) {{
        op = tok[pos];
        pos = pos + 1;
        p_term();
        emit_code(op, 0);
    }}
}}

proc apply(op: int, a: int, b: int): int {{
    var r: int;
    if (op == TPLUS) {{
        r = (a + b) % VMOD;
    }} else {{
        if (op == TMINUS) {{
            r = (a - b + VMOD) % VMOD;
        }} else {{
            if (op == TMUL) {{
                r = (a * b) % VMOD;
            }} else {{
                if (b == 0) {{
                    r = a;
                }} else {{
                    r = a / b;
                }}
            }}
        }}
    }}
    return r;
}}

# ---- peephole constant folding: PUSH a, PUSH b, op -> PUSH (a op b)
proc fold() {{
    var i: int;
    opos = 0;
    i = 0;
    while (i < cpos) {{
        if (code[i] >= TPLUS && code[i] <= TDIV && opos >= 2) {{
            if (opt[opos - 1] == OPUSH && opt[opos - 2] == OPUSH) {{
                oval[opos - 2] = apply(
                    code[i], oval[opos - 2], oval[opos - 1]);
                opos = opos - 1;
            }} else {{
                opt[opos] = code[i];
                oval[opos] = 0;
                opos = opos + 1;
            }}
        }} else {{
            opt[opos] = code[i];
            oval[opos] = cval[i];
            opos = opos + 1;
        }}
        i = i + 1;
    }}
}}

# ---- stack-machine execution of the optimized code
proc execute(): int {{
    var i, sp, a, b: int;
    sp = 0;
    for i = 0 to opos - 1 {{
        if (opt[i] == OPUSH) {{
            stk[sp] = oval[i];
            sp = sp + 1;
        }} else {{
            if (opt[i] == OLOAD) {{
                stk[sp] = vars[oval[i]];
                sp = sp + 1;
            }} else {{
                b = stk[sp - 1];
                a = stk[sp - 2];
                sp = sp - 2;
                stk[sp] = apply(opt[i], a, b);
                sp = sp + 1;
            }}
        }}
    }}
    return stk[0];
}}

proc main(): int {{
    var e, i, chk, folded: int;
    seed = 31415926;
    chk = 0;
    for i = 0 to 3 {{
        vars[i] = rnd(VMOD);
    }}
    for e = 1 to NEXPR {{
        tpos = 0;
        cpos = 0;
        gen_expr(DEPTH);
        emit_tok(TEND, 0);
        pos = 0;
        p_expr();
        fold();
        folded = cpos - opos;
        chk = (chk * 31 + execute() * 7 + folded) % MOD;
    }}
    return chk;
}}
"""


def reference() -> int:
    """Pure-Python mirror of the Tin compiler pipeline."""
    seed = 31415926

    def rnd(m: int) -> int:
        nonlocal seed
        seed = (seed * 1103515245 + 12345) % 2147483648
        return seed % m

    variables = [rnd(_VMOD) for _ in range(4)]
    chk = 0

    def apply(op: int, a: int, b: int) -> int:
        if op == _PLUS:
            return (a + b) % _VMOD
        if op == _MINUS:
            return (a - b + _VMOD) % _VMOD
        if op == _MUL:
            return (a * b) % _VMOD
        return a if b == 0 else a // b

    for _ in range(_N_EXPRS):
        toks: list[tuple[int, int]] = []

        def gen_factor(d: int) -> None:
            if d > 0 and rnd(4) == 0:
                toks.append((_LP, 0))
                gen_expr(d - 1)
                toks.append((_RP, 0))
            elif rnd(3) == 0:
                toks.append((_VAR, rnd(4)))
            else:
                toks.append((_NUM, rnd(100) + 1))

        def gen_term(d: int) -> None:
            gen_factor(d)
            for _j in range(rnd(3)):
                toks.append((_MUL if rnd(2) == 0 else _DIV, 0))
                gen_factor(d)

        def gen_expr(d: int) -> None:
            gen_term(d)
            for _j in range(rnd(3)):
                toks.append((_PLUS if rnd(2) == 0 else _MINUS, 0))
                gen_term(d)

        gen_expr(_DEPTH)
        toks.append((_END, 0))

        code: list[tuple[int, int]] = []
        pos = 0
        OPUSH, OLOAD = 0, 5

        def p_factor() -> None:
            nonlocal pos
            if toks[pos][0] == _LP:
                pos += 1
                p_expr()
                pos += 1
            else:
                kind, value = toks[pos]
                code.append((OLOAD if kind == _VAR else OPUSH, value))
                pos += 1

        def p_term() -> None:
            nonlocal pos
            p_factor()
            while toks[pos][0] in (_MUL, _DIV):
                op = toks[pos][0]
                pos += 1
                p_factor()
                code.append((op, 0))

        def p_expr() -> None:
            nonlocal pos
            p_term()
            while toks[pos][0] in (_PLUS, _MINUS):
                op = toks[pos][0]
                pos += 1
                p_term()
                code.append((op, 0))

        p_expr()

        folded: list[tuple[int, int]] = []
        for op, value in code:
            if (
                _PLUS <= op <= _DIV
                and len(folded) >= 2
                and folded[-1][0] == OPUSH
                and folded[-2][0] == OPUSH
            ):
                a = folded[-2][1]
                b = folded[-1][1]
                folded.pop()
                folded[-1] = (OPUSH, apply(op, a, b))
            else:
                folded.append((op, value))

        stack: list[int] = []
        for op, value in folded:
            if op == OPUSH:
                stack.append(value)
            elif op == OLOAD:
                stack.append(variables[value])
            else:
                b = stack.pop()
                a = stack.pop()
                stack.append(apply(op, a, b))
        result = stack[0]
        n_folded = len(code) - len(folded)
        chk = (chk * 31 + result * 7 + n_folded) % _MOD
    return chk


register(
    Benchmark(
        name="ccom",
        description="expression compiler: generate, parse, constant-fold, "
        "execute (stands in for the paper's C compiler)",
        source=lambda: SOURCE,
        reference=reference,
    )
)
